"""In-system silicon debug with selective trace capture (paper Sec. 2.1).

Trace buffers store a fixed number of entries per debug session.  Capturing
every cycle observes only ``depth`` consecutive cycles; gating capture on
the masking circuit's indicator ``e_i`` — "this cycle exercised a
speed-path" — stores only the suspect cycles, expanding the observation
window by the inverse of the indicator activation rate.

Run with::

    python examples/debug_trace_capture.py
"""

from repro import lsi10k_like_library, make_benchmark, mask_circuit
from repro.apps import capture_experiment


def main() -> None:
    library = lsi10k_like_library()
    circuit = make_benchmark("cu", library)
    result = mask_circuit(circuit, library)
    design = result.design
    print(f"{circuit.name}: {len(result.masking.outputs)} critical outputs, "
          f"indicator nets {sorted(set(design.indicator_nets.values()))}")

    print(f"\n{'depth':>6} {'always-on window':>17} {'selective window':>17} "
          f"{'expansion':>10} {'indicator rate':>15}")
    for depth in (8, 16, 32, 64, 128):
        report = capture_experiment(
            design, buffer_depth=depth, cycles=16384, seed=31
        )
        print(f"{depth:6d} {report.always_window:17d} "
              f"{report.selective_window:17d} "
              f"{report.expansion_factor:10.1f} "
              f"{report.indicator_rate:15.3f}")

    print("\nSelective capture stores a cycle only when a speed-path was "
          "exercised, so the same buffer observes a window ~1/e-rate wider "
          "— the paper's argument for indicator-guided debug.")


if __name__ == "__main__":
    main()

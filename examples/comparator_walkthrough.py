"""The paper's Sec. 4.2 walkthrough: the 2-bit comparator, step by step.

Reproduces every intermediate quantity of the worked example:

* the mapped comparator with the unit delay model (INV=1, 2-input gates=2)
  and its critical path delay of 7,
* the two speed-paths within 10% of the critical delay,
* the exact SPCF  ``Sigma_y = a1' + a0' b1``  (10 of 16 patterns),
* the satisfiability care sets s0/s1 induced by Sigma,
* the synthesized prediction/indicator logic and the output mux.

Run with::

    python examples/comparator_walkthrough.py
"""

from repro import mask_circuit, unit_library
from repro.benchcircuits import comparator2
from repro.netlist import write_blif
from repro.spcf import SpcfContext, spcf_shortpath
from repro.sta import analyze, enumerate_speed_paths


def main() -> None:
    library = unit_library()
    circuit = comparator2(library)
    print("== the circuit (Fig. 2a) ==")
    print(write_blif(circuit))

    report = analyze(circuit)
    print(f"critical path delay Delta = {report.critical_delay} "
          f"(paper: 7), Delta_y = {report.target} (paper: 6.3 -> floor 6)")

    print("\n== speed-paths within 10% of Delta ==")
    for path in enumerate_speed_paths(circuit, report=report):
        print(f"  {' -> '.join(path.nets)}   delay {path.delay}")

    ctx = SpcfContext(circuit)
    sigma = spcf_shortpath(circuit, context=ctx).per_output["y"]
    mgr = ctx.manager
    paper_sigma = (~mgr.var("a1")) | (~mgr.var("a0") & mgr.var("b1"))
    print(f"\n== SPCF ==\n|Sigma| = {sigma.count(4)} of 16 patterns; "
          f"equals paper's a1' + a0' b1: {sigma == paper_sigma}")

    f_y = ctx.functions["y"]
    print(f"care sets: |s0| = {(sigma & ~f_y).count(4)}, "
          f"|s1| = {(sigma & f_y).count(4)}")

    result = mask_circuit(circuit, library, max_support=8)
    print("\n== the error-masking circuit ==")
    print(write_blif(result.masking.masking_circuit))
    r = result.report
    print(f"sound: {r.sound}, coverage: {r.coverage_percent:.0f}%, "
          f"masking delay {r.masking_delay} vs Delta {r.original_delay}")

    print("\n== the masked design (original + C~ + mux) ==")
    masked = result.design
    mux_net = masked.output_map["y"]
    mux = masked.circuit.gate(mux_net)
    print(f"output mux: {mux_net} = MUX2(select={mux.fanins[0]}, "
          f"d0={mux.fanins[1]}, d1={mux.fanins[2]})")


if __name__ == "__main__":
    main()

"""Wearout prediction with the error-masking circuit (paper Sec. 2.1).

Deploys the masking circuit on a benchmark, then ages the speed-path gates
epoch by epoch (NBTI-style saturating slowdown).  Each epoch runs a
workload on the aged design and logs the paper's masked-error event
``e AND (y XOR y~)``.  The wearout monitor watches the windowed event rate
and flags onset — while the output muxes keep every architectural output
correct (residual error rate stays zero).

Run with::

    python examples/wearout_monitoring.py
"""

from repro import lsi10k_like_library, make_benchmark, mask_circuit
from repro.apps import WearoutMonitor, predict_onset, wearout_experiment
from repro.sim import SaturatingAging


def main() -> None:
    library = lsi10k_like_library()
    circuit = make_benchmark("cu", library)
    result = mask_circuit(circuit, library)
    print(f"{circuit.name}: masking synthesized "
          f"(slack {result.report.slack_percent:.1f}%, "
          f"area +{result.report.area_overhead_percent:.1f}%)")

    epochs = wearout_experiment(
        result.masking,
        result.design,
        aging=SaturatingAging(amplitude=0.6, tau=4.0),
        epochs=10,
        cycles_per_epoch=200,
        seed=17,
    )
    monitor = WearoutMonitor(rate_threshold=0.02, trend_windows=3)
    onset = predict_onset(epochs, monitor)

    print(f"\n{'epoch':>5} {'delay scale':>12} {'masked-error rate':>18} "
          f"{'raw-error rate':>15} {'residual':>9}")
    for i, e in enumerate(epochs):
        mark = "  <-- wearout onset flagged" if onset == i else ""
        print(f"{i:5d} {e.delay_scale:12.3f} {e.masked_error_rate:18.3f} "
              f"{e.unmasked_error_rate:15.3f} {e.residual_error_rate:9.3f}"
              f"{mark}")

    protected = [e for e in epochs if e.delay_scale <= 1.0 / 0.9]
    exceeded = [e for e in epochs if e.delay_scale > 1.0 / 0.9]
    assert all(e.residual_error_rate == 0.0 for e in protected)
    print(
        "\nWhile the slowdown stays within the protected 10% band "
        f"(scale <= {1.0 / 0.9:.2f}), every timing error is masked "
        "(residual rate 0)."
    )
    if exceeded and any(e.residual_error_rate > 0 for e in exceeded):
        print(
            "Beyond the band, paths that were never speed-paths cross the "
            "clock and escape the mask — which is exactly why the monitor "
            f"flags onset early (epoch {onset}), long before that point."
        )


if __name__ == "__main__":
    main()

"""Protecting a ripple-carry adder's carry chain.

The longest paths of a ripple adder run through the carry chain, and they
are exercised only by carry-propagating operand patterns — a textbook
speed-path scenario (and the reason carry-skip/carry-select adders exist).
Instead of redesigning the adder, this example deploys the paper's
error-masking circuit on it:

* the SPCF identifies exactly the carry-propagating patterns,
* the masking circuit predicts the top sum bits and carry-out for those
  patterns from a shallow (carry-lookahead-like) prediction network,
* the output muxes keep every result correct even when the carry chain is
  slowed past the clock (aging / overclocking).

Run with::

    python examples/adder_protection.py
"""

from repro import lsi10k_like_library, mask_circuit
from repro.benchcircuits.handmade import ripple_adder, ripple_adder_reference
from repro.sim import (
    exhaustive_patterns,
    sample_at_clock,
    speed_path_gates,
)
from repro.sta import analyze

N = 4


def main() -> None:
    library = lsi10k_like_library()
    adder = ripple_adder(N, library)
    report = analyze(adder)
    print(f"{N}-bit ripple adder: {adder.num_gates} gates, "
          f"critical delay {report.critical_delay}, "
          f"critical outputs {report.critical_outputs(adder)}")

    result = mask_circuit(adder, library, max_support=10)
    r = result.report
    print(f"masking: {result.masking.masking_circuit.num_gates} gates, "
          f"slack {r.slack_percent:.1f}%, area +{r.area_overhead_percent:.1f}%, "
          f"coverage {r.coverage_percent:.0f}%, sound={r.sound}")
    print(f"SPCF: {r.critical_minterms} carry-propagating patterns "
          f"of {2 ** len(adder.inputs)}")

    # Slow the carry chain just past the clock and check every operand pair
    # that matters: the masked design never produces a wrong sum.  The
    # masking protects the top-10% delay band and the clock absorbs the
    # output-mux delay, so the guaranteed-safe slowdown is 1/0.9 = 1.11x;
    # we stress slightly below that.
    design = result.design
    clock = design.clock_period
    safe_scale = 1.0 / 0.9
    chain = speed_path_gates(adder) & set(adder.gates)
    # Integer pin delays quantize aging; search for a scale inside the
    # budget whose rounded delays actually push the carry chain past the
    # clock (so raw timing errors are observable).
    scale = None
    for step in range(20, 1, -1):
        cand = round(1.0 + (safe_scale - 1.0) * step / 21, 4)
        aged_delta = analyze(
            adder.with_delay_scales({g: cand for g in chain}), target=0
        ).critical_delay
        if aged_delta + design.mux_delay > clock:
            scale = cand
            break
    assert scale is not None, "band too narrow to quantize on this library"
    print(f"aging speed-path gates by {scale:.3f}x "
          f"(protection budget {safe_scale:.3f}x)")
    slow = {g: scale for g in chain}
    aged = design.circuit.with_delay_scales(slow)
    raw_aged = adder.with_delay_scales(slow)

    # Drive every carry-propagating pattern (the SPCF, enumerated exactly)
    # plus a random sample of ordinary operands.
    sigma = result.masking.spcf.union
    activating = []
    for cube in sigma.cubes():
        base = dict.fromkeys(adder.inputs, False)
        base.update(cube)
        activating.append(base)
    # A two-vector test launches a transition down the whole carry chain:
    # v2 sets every propagate bit (a_i != b_i) and v1 differs only in cin,
    # so cin's edge ripples through all N stages — the textbook worst case.
    pairs = []
    import itertools
    for bits in itertools.product([False, True], repeat=N):
        v2 = {f"a{i}": bits[i] for i in range(N)}
        v2.update({f"b{i}": not bits[i] for i in range(N)})
        v2["cin"] = True
        for launch in ("cin", "a0"):
            v1 = dict(v2)
            v1[launch] = not v1[launch]
            pairs.append((v1, v2))
        assert sigma.evaluate(v2), "propagate patterns must be in the SPCF"
    for v2 in activating:
        v1 = dict(v2)
        v1["cin"] = not v1["cin"]
        pairs.append((v1, v2))
    pats = list(exhaustive_patterns(adder.inputs))
    pairs.extend(zip(pats[::7], pats[1::7]))
    raw_errors = residual = 0
    checked = 0
    clock_raw = report.critical_delay  # the unprotected design's own period
    for v1, v2 in pairs:
        raw = sample_at_clock(raw_aged, v1, v2, clock_raw)
        # conservative sampling: a net still switching at the clock edge is
        # an error even if the instantaneous value is accidentally right
        unstable = any(t > clock_raw for t in raw.settle_time.values())
        raw_errors += int(raw.has_error or unstable)
        masked = sample_at_clock(aged, v1, v2, clock)
        want = ripple_adder_reference(N, v2)
        for y, net in design.output_map.items():
            stable = masked.settle_time[net] <= clock
            if masked.sampled[net] != want[y] or not stable:
                residual += 1
        checked += 1
    print(f"\naged carry chain: {checked} sampled operand pairs, "
          f"{raw_errors} raw timing errors, {residual} errors after masking")
    assert residual == 0


if __name__ == "__main__":
    main()

"""Quickstart: mask timing errors on the speed-paths of a benchmark circuit.

This walks the whole pipeline of the paper (Fig. 1) in a dozen lines:

1. build (or load) a technology-mapped circuit,
2. run :func:`repro.mask_circuit` — SPCF computation, error-masking
   synthesis, mux integration, formal verification, and overhead reporting,
3. inspect the result: every speed-path pattern raises the indicator, and
   whenever the indicator is up the prediction equals the true output.

Run with::

    python examples/quickstart.py
"""

from repro import lsi10k_like_library, make_benchmark, mask_circuit


def main() -> None:
    library = lsi10k_like_library()
    circuit = make_benchmark("C432", library)
    print(f"circuit: {circuit.name}  "
          f"({len(circuit.inputs)} inputs, {len(circuit.outputs)} outputs, "
          f"{circuit.num_gates} gates)")

    result = mask_circuit(circuit, library)
    report = result.report

    print(f"critical path delay        : {report.original_delay}")
    print(f"critical primary outputs   : {report.critical_outputs}")
    print(f"critical (SPCF) minterms   : {report.critical_minterms:.3e}")
    print(f"masking circuit delay      : {report.masking_delay} "
          f"(slack {report.slack_percent:.1f}%)")
    print(f"area overhead              : {report.area_overhead_percent:.1f}%")
    print(f"power overhead             : {report.power_overhead_percent:.1f}%")
    print(f"soundness (e=1 => y~=y)    : {report.sound}")
    print(f"masking coverage           : {report.coverage_percent:.1f}%")

    design = result.design
    print(f"\nmasked design: {design.circuit.num_gates} gates, "
          f"clock period {design.clock_period} "
          f"(mux delay {design.mux_delay} absorbed)")
    for y, masked in design.output_map.items():
        if masked != y:
            print(f"  output {y!r} -> mux net {masked!r} "
                  f"(select={design.indicator_nets[y]!r})")


if __name__ == "__main__":
    main()

"""Table 1 as a script: compare the three SPCF algorithms.

For each of the paper's five circuits, computes the speed-path
characteristic function with

* the node-based over-approximation of [22],
* the exact path-based extension of [22],
* the paper's exact short-path-based algorithm (Eqn. 1),

and prints critical-pattern counts and runtimes.  The two exact algorithms
always agree; the node-based result is a superset.

Run with::

    python examples/spcf_accuracy.py
"""

from repro import compare_algorithms, make_benchmark
from repro.benchcircuits import TABLE1_NAMES


def main() -> None:
    print(f"{'circuit':18s} {'I/O':>9s} "
          f"{'node-based':>12s} {'t(s)':>7s} "
          f"{'path-based':>12s} {'t(s)':>7s} "
          f"{'short-path':>12s} {'t(s)':>7s} {'over-approx':>12s}")
    for name in TABLE1_NAMES:
        circuit = make_benchmark(name)
        row = compare_algorithms(circuit)
        io = f"{row.num_inputs}/{row.num_outputs}"
        print(
            f"{name:18s} {io:>9s} "
            f"{row.node_based_count:12.2e} {row.node_based_runtime:7.3f} "
            f"{row.path_based_count:12.2e} {row.path_based_runtime:7.3f} "
            f"{row.short_path_count:12.2e} {row.short_path_runtime:7.3f} "
            f"{row.over_approximation_factor:11.1f}x"
        )
        assert row.path_based_count == row.short_path_count
        assert row.node_based_count >= row.short_path_count


if __name__ == "__main__":
    main()

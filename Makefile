# Developer entry points. `make check` is the CI gate: tier-1 tests, the
# warning-level lint sweep over every builtin benchmark, the
# abstract-interpretation sweep, and the campaign crash/quarantine/resume
# and distributed (lease steal / fleet loss) smoke drills.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check test lint-circuits analyze paths campaign-smoke distributed-smoke verify-mask lint-py typecheck bench bench-obs bench-spcf

check: test lint-circuits analyze paths campaign-smoke distributed-smoke bench-spcf

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint-circuits:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro lint all --fail-on warning

# Abstract-interpretation sweep (ABS001-ABS008) over every builtin
# benchmark.  Errors here mean an internal-consistency bug (interval vs.
# STA, or a hazard escaping Sigma_y), so the gate is --fail-on error.
analyze:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro analyze all --fail-on error

# Path-sensitization acceptance gate: the builtin sweep must keep the SPCF
# bit-identical under tightened-arrival certificates, strictly improve the
# summed precert discharge count, and record the prefilter discharge rate.
paths:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_paths.py --check

# End-to-end campaign drill: worker SIGKILL absorbed by retry, a persistent
# crasher quarantined, and resume reproducing the baseline byte-for-byte.
campaign-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro campaign smoke

# Distributed drill: a queue campaign on 4 elastic workers loses half the
# fleet to SIGKILL plus one wedged worker holding a lease, and must still
# finish with every shard done and the aggregate byte-identical to a
# single-host inline run.
distributed-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro campaign smoke --distributed

verify-mask:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro verify-mask comparator2
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro verify-mask cmb

# Python-side style lint; config lives in pyproject.toml ([tool.ruff]).
# Optional: skipped with a notice when ruff is not installed.
lint-py:
	@command -v ruff >/dev/null 2>&1 \
		&& ruff check src tests \
		|| echo "ruff not installed; skipping python lint"

# Strict type-checking of the analysis package (config in pyproject.toml,
# [tool.mypy]).  Optional: skipped with a notice when mypy is not installed.
typecheck:
	@command -v mypy >/dev/null 2>&1 \
		&& mypy \
		|| echo "mypy not installed; skipping typecheck"

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Observability overhead gate: instrumented hot paths with REPRO_OBS unset
# must run within 2% of a pristine (never-instrumented) copy.
bench-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_obs_overhead.py --check

# Pre-certification acceptance gate: the 5-threshold exact short-path sweep
# must be bit-identical with certificates on and >= 2x faster (median) via
# precertify + the multi-root compile.
bench-spcf:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_spcf.py --check

"""Scenario test: protecting a ripple adder's carry chain (end to end).

The ripple adder is the canonical rarely-sensitized-speed-path circuit: its
longest paths run through the carry chain and are exercised only by
carry-propagating operands.  This pins the full story: the SPCF captures
exactly those operands, the masking circuit covers them, and after aging the
chain up to the protected band every injected timing error is masked.
"""

import itertools

import pytest

from repro.benchcircuits.handmade import ripple_adder, ripple_adder_reference
from repro.core import mask_circuit
from repro.netlist import lsi10k_like_library
from repro.sim import sample_at_clock, speed_path_gates
from repro.sta import analyze

N = 4


@pytest.fixture(scope="module")
def setup():
    lib = lsi10k_like_library()
    adder = ripple_adder(N, lib)
    result = mask_circuit(adder, lib, max_support=10)
    return adder, result


def test_cout_is_the_critical_output(setup):
    adder, result = setup
    assert tuple(result.masking.outputs) == ("cout",)


def test_spcf_contains_all_full_propagate_patterns(setup):
    adder, result = setup
    sigma = result.masking.spcf.union
    for bits in itertools.product([False, True], repeat=N):
        v = {f"a{i}": bits[i] for i in range(N)}
        v.update({f"b{i}": not bits[i] for i in range(N)})
        v["cin"] = True
        assert sigma.evaluate(v), v


def test_spcf_excludes_killed_carries(setup):
    adder, result = setup
    sigma = result.masking.spcf.union
    # a = b = 0: every carry is killed at bit 0..N-1's generate/propagate
    v = {f"a{i}": False for i in range(N)}
    v.update({f"b{i}": False for i in range(N)})
    v["cin"] = False
    assert not sigma.evaluate(v)


def test_aged_chain_fully_masked(setup):
    adder, result = setup
    design = result.design
    clock = design.clock_period
    chain = speed_path_gates(adder) & set(adder.gates)
    scale = 1.106  # just inside the 1/0.9 protection budget
    aged = design.circuit.with_delay_scales({g: scale for g in chain})
    raw_aged = adder.with_delay_scales({g: scale for g in chain})

    raw_errors = residual = 0
    for bits in itertools.product([False, True], repeat=N):
        v2 = {f"a{i}": bits[i] for i in range(N)}
        v2.update({f"b{i}": not bits[i] for i in range(N)})
        v2["cin"] = True
        for launch in ("cin", "a0"):
            v1 = dict(v2)
            v1[launch] = not v1[launch]
            raw = sample_at_clock(raw_aged, v1, v2, adder_clock(adder))
            unstable = any(t > adder_clock(adder) for t in raw.settle_time.values())
            raw_errors += int(raw.has_error or unstable)
            masked = sample_at_clock(aged, v1, v2, clock)
            want = ripple_adder_reference(N, v2)
            for y, net in design.output_map.items():
                ok = (
                    masked.sampled[net] == want[y]
                    and masked.settle_time[net] <= clock
                )
                residual += int(not ok)
    assert raw_errors > 0, "aging must actually break the unprotected adder"
    assert residual == 0, "every injected timing error must be masked"


def adder_clock(adder):
    return analyze(adder, target=0).critical_delay

"""Tests for mux integration of the masking circuit."""

import pytest

from repro.benchcircuits import comparator_nbit, make_benchmark
from repro.core import MASKED_PREFIX, build_masked_design, synthesize_masking
from repro.netlist import lsi10k_like_library, unit_library
from repro.sim import exhaustive_patterns, simulate
from repro.sta import analyze

UNIT = unit_library()


@pytest.fixture(scope="module")
def integrated():
    circuit = comparator_nbit(4)
    masking = synthesize_masking(circuit, UNIT, max_support=8)
    return circuit, masking, build_masked_design(masking)


def test_original_gates_untouched(integrated):
    circuit, masking, design = integrated
    for name, gate in circuit.gates.items():
        assert design.circuit.gates[name] == gate


def test_inputs_preserved(integrated):
    circuit, masking, design = integrated
    assert design.circuit.inputs == circuit.inputs


def test_output_map_covers_all_outputs(integrated):
    circuit, masking, design = integrated
    assert set(design.output_map) == set(circuit.outputs)
    for y, net in design.output_map.items():
        if y in masking.outputs:
            assert net == MASKED_PREFIX + y
        else:
            assert net == y


def test_mux_delay_and_clock_period(integrated):
    circuit, masking, design = integrated
    delta = analyze(circuit, target=0).critical_delay
    assert design.mux_delay == max(UNIT.get("MUX2").pin_delays)
    assert delta < design.clock_period <= delta + design.mux_delay


def test_functional_transparency_exhaustive(integrated):
    circuit, masking, design = integrated
    for pat in exhaustive_patterns(circuit.inputs):
        ref = simulate(circuit, pat)
        got = simulate(design.circuit, pat)
        for y in circuit.outputs:
            assert got[design.output_map[y]] == ref[y]


def test_uncritical_outputs_pass_through():
    lib = lsi10k_like_library()
    circuit = make_benchmark("x2", lib)  # 7 outputs, 1 critical
    masking = synthesize_masking(circuit, lib)
    design = build_masked_design(masking)
    untouched = [y for y in circuit.outputs if y not in masking.outputs]
    assert untouched
    for y in untouched:
        assert design.output_map[y] == y
        assert y not in design.prediction_nets


def test_masked_design_validates(integrated):
    _, _, design = integrated
    design.circuit.validate()

"""Hypothesis property tests: the masking invariants on arbitrary circuits.

Where ``test_masking_properties`` uses fixed seeds, these tests let
hypothesis drive the circuit structure (cell mix, fanin choices, output
selection) and shrink failures to minimal netlists.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import synthesize_masking, verify_masking
from repro.netlist import Circuit, unit_library
from repro.sim import exhaustive_patterns, simulate, stabilization_times
from repro.spcf import SpcfContext, spcf_nodebased, spcf_shortpath

LIB = unit_library()
CELLS = ("INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2")


@st.composite
def circuits(draw, num_inputs=5, max_gates=12):
    n_gates = draw(st.integers(min_value=3, max_value=max_gates))
    inputs = [f"x{i}" for i in range(num_inputs)]
    c = Circuit("hyp", inputs=inputs)
    nets = list(inputs)
    for g in range(n_gates):
        cell = LIB.get(draw(st.sampled_from(CELLS)))
        fanins = [
            nets[draw(st.integers(min_value=0, max_value=len(nets) - 1))]
            for _ in range(cell.num_inputs)
        ]
        c.add_gate(f"g{g}", cell, fanins)
        nets.append(f"g{g}")
    n_outputs = draw(st.integers(min_value=1, max_value=2))
    for k in range(n_outputs):
        c.add_output(f"g{n_gates - 1 - k}")
    c.validate()
    return c


@given(circuits())
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_exact_spcf_matches_oracle(circuit):
    ctx = SpcfContext(circuit)
    res = spcf_shortpath(circuit, context=ctx)
    node = spcf_nodebased(circuit, context=ctx)
    for pat in exhaustive_patterns(circuit.inputs):
        st_times = stabilization_times(circuit, pat)
        for y, fn in res.per_output.items():
            late = st_times[y] > res.target
            assert fn.evaluate(pat) == late
            if late:
                assert node.per_output[y].evaluate(pat)


@given(circuits())
@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_masking_invariants(circuit):
    result = synthesize_masking(circuit, LIB, max_support=8)
    v = verify_masking(result)
    assert v.sound
    assert v.full_coverage


@given(circuits())
@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_masked_design_transparent(circuit):
    from repro.core import build_masked_design

    result = synthesize_masking(circuit, LIB, max_support=8)
    design = build_masked_design(result)
    for pat in exhaustive_patterns(circuit.inputs):
        ref = simulate(circuit, pat)
        got = simulate(design.circuit, pat)
        for y in circuit.outputs:
            assert got[design.output_map[y]] == ref[y]

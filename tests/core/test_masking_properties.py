"""Property tests for the masking synthesis on random and real circuits.

The two invariants the whole scheme rests on (DESIGN.md §7):

* soundness — ``e_y = 1`` implies ``y~ = y`` for *every* input pattern,
* coverage — every SPCF pattern raises ``e_y`` (100% masking).

Plus: functional transparency of the masked design, slack bookkeeping, and
behaviour under parameter variations.
"""

import pytest

from repro.benchcircuits import comparator_nbit
from repro.benchcircuits.handmade import priority_encoder, ripple_adder
from repro.core import (
    build_masked_design,
    mask_circuit,
    masking_delay,
    synthesize_masking,
    verify_masking,
)
from repro.netlist import lsi10k_like_library, unit_library
from repro.sim import exhaustive_patterns, simulate
from repro.spcf import expr_to_function
from tests.conftest import random_dag_circuit

UNIT = unit_library()
LSI = lsi10k_like_library()


def masked_functions(result):
    """BDDs of every masking-circuit net over the PIs."""
    mgr = result.context.manager
    fns = {net: mgr.var(net) for net in result.circuit.inputs}
    for name in result.masking_circuit.topo_order():
        gate = result.masking_circuit.gates[name]
        env = {p: fns[f] for p, f in zip(gate.cell.inputs, gate.fanins)}
        fns[name] = expr_to_function(gate.cell.expr, env, mgr)
    return fns


def assert_invariants(circuit, library, **kwargs):
    result = synthesize_masking(circuit, library, **kwargs)
    verification = verify_masking(result)
    assert verification.sound, verification.unsound_outputs
    assert verification.full_coverage
    # Brute-force double check on small circuits.
    if len(circuit.inputs) <= 10 and not result.is_trivial:
        fns = masked_functions(result)
        for pat in exhaustive_patterns(circuit.inputs):
            ref = simulate(circuit, pat)
            for y, (pred_net, ind_net) in result.outputs.items():
                e = fns[ind_net].evaluate(pat)
                if e:
                    assert fns[pred_net].evaluate(pat) == ref[y], (pat, y)
                if result.spcf.per_output[y].evaluate(pat):
                    assert e, (pat, y)
    return result


@pytest.mark.parametrize("seed", range(8))
def test_random_circuits_sound_and_covered(seed):
    c = random_dag_circuit(seed, num_inputs=6, num_gates=16, num_outputs=3)
    assert_invariants(c, UNIT, max_support=8)


@pytest.mark.parametrize("seed", [2, 5])
@pytest.mark.parametrize("threshold", [0.75, 0.9])
def test_threshold_variations(seed, threshold):
    c = random_dag_circuit(seed, num_inputs=6, num_gates=14, num_outputs=2)
    assert_invariants(c, UNIT, threshold=threshold, max_support=8)


@pytest.mark.parametrize("max_support", [4, 8, 15])
def test_collapse_bound_variations(max_support):
    c = comparator_nbit(4)
    assert_invariants(c, UNIT, max_support=max_support)


@pytest.mark.parametrize("cube_pool", ["isop", "primes"])
def test_cube_pool_variations(cube_pool):
    c = comparator_nbit(3)
    assert_invariants(c, UNIT, cube_pool=cube_pool, max_support=8)


@pytest.mark.parametrize("dontcare", [True, False])
def test_dontcare_isop_toggle(dontcare):
    c = comparator_nbit(3)
    assert_invariants(c, UNIT, dontcare_isop=dontcare, max_support=8)


def test_real_circuits_with_lsi_library():
    for make in (lambda: ripple_adder(3, LSI), lambda: priority_encoder(6, LSI)):
        c = make()
        result = assert_invariants(c, LSI)
        design = build_masked_design(result)
        for pat in exhaustive_patterns(c.inputs):
            ref = simulate(c, pat)
            got = simulate(design.circuit, pat)
            for y in c.outputs:
                assert got[design.output_map[y]] == ref[y]


def test_trivial_when_no_critical_outputs():
    c = comparator_nbit(3)
    result = synthesize_masking(c, UNIT, target=10**6)
    assert result.is_trivial
    assert result.masking_circuit.num_gates == 0
    design = build_masked_design(result)
    assert design.output_map == {y: y for y in c.outputs}
    assert masking_delay(result) == 0


def test_masked_design_structure():
    c = comparator_nbit(4)
    res = mask_circuit(c, UNIT, max_support=8)
    design = res.design
    # one mux per critical output, selecting between original and prediction
    for y in res.masking.outputs:
        masked_net = design.output_map[y]
        mux = design.circuit.gate(masked_net)
        assert mux.cell.name == "MUX2"
        ind, orig, pred = mux.fanins
        assert orig == y
        assert ind == design.indicator_nets[y]
        assert pred == design.prediction_nets[y]
    # output order preserved
    assert design.circuit.outputs == tuple(
        design.output_map[y] for y in c.outputs
    )


def test_overhead_report_fields():
    c = comparator_nbit(4)
    res = mask_circuit(c, UNIT, max_support=8)
    r = res.report
    assert r.circuit_name == c.name
    assert r.num_gates == c.num_gates
    assert r.critical_minterms == res.masking.spcf.count()
    assert r.masking_delay == masking_delay(res.masking)
    assert 0 < r.masking_area
    assert r.original_power > 0
    assert r.coverage_percent == 100.0
    # slack bookkeeping: slack% = (delta - mask_delay)/delta
    expected = 100.0 * (r.original_delay - r.masking_delay) / r.original_delay
    assert r.slack_percent == pytest.approx(expected)


def test_name_collision_detected():
    from repro.errors import MaskingError

    c = comparator_nbit(3)
    res = synthesize_masking(c, UNIT, max_support=8)
    # sabotage: add a gate to the original that clashes with a masking net
    clash = next(iter(res.masking_circuit.gates))
    res.circuit.add_gate(clash, UNIT.get("INV"), (c.inputs[0],))
    with pytest.raises(MaskingError):
        build_masked_design(res)

"""Tests for essential-weight cube selection (paper Sec. 4.1 (i)–(iii))."""

from fractions import Fraction

import pytest

from repro.bdd import BddManager
from repro.core import select_cubes
from repro.core.careset import cover_image, cube_image
from repro.logic import Cover


def setup_space():
    """Two PIs drive two 'nets' that are just the PIs themselves."""
    mgr = BddManager(["x0", "x1", "x2"])
    fns = {n: mgr.var(n) for n in ("x0", "x1", "x2")}
    return mgr, fns


def test_zero_weight_cubes_dropped():
    mgr, fns = setup_space()
    # cover = x0 | x1 ; sigma only touches x0: the x1 cube is inessential.
    cover = Cover.from_strings(("x0", "x1"), ["1-", "-1"])
    sigma = mgr.var("x0") & ~mgr.var("x1")
    sel = select_cubes(cover, sigma, fns, mgr, 3)
    assert sel.dropped == 1
    assert [str(c) for c in sel.kept.cubes] == ["1-"]
    assert sel.total_weight == 1


def test_weights_are_exact_fractions():
    mgr, fns = setup_space()
    cover = Cover.from_strings(("x0", "x1"), ["1-", "-1"])
    sigma = mgr.var("x0") | mgr.var("x1")  # 6 of 8 minterms
    sel = select_cubes(cover, sigma, fns, mgr, 3)
    assert sel.dropped == 0
    assert sum(sel.weights) == 1
    assert sel.weights[0] == Fraction(4, 6)
    assert sel.weights[1] == Fraction(2, 6)


def test_ascending_literal_order_prefers_big_cubes():
    mgr, fns = setup_space()
    # Both cubes cover sigma; the 1-literal cube is processed first and
    # absorbs all the weight, so the 2-literal cube drops.
    cover = Cover.from_strings(("x0", "x1"), ["11", "1-"])
    sigma = mgr.var("x0") & mgr.var("x1")
    sel = select_cubes(cover, sigma, fns, mgr, 3)
    assert [str(c) for c in sel.kept.cubes] == ["1-"]


def test_empty_sigma_drops_everything():
    mgr, fns = setup_space()
    cover = Cover.from_strings(("x0", "x1"), ["1-", "-1"])
    sel = select_cubes(cover, mgr.false, fns, mgr, 3)
    assert sel.kept.num_cubes == 0
    assert sel.total_weight == 0


def test_coverage_property_on_internal_nets():
    """Kept cubes cover every sigma-reachable minterm of the full cover."""
    mgr = BddManager(["x0", "x1", "x2", "x3"])
    pis = {n: mgr.var(n) for n in mgr.var_names}
    # internal nets: n1 = x0&x1, n2 = x2|x3
    fns = {**pis, "n1": pis["x0"] & pis["x1"], "n2": pis["x2"] | pis["x3"]}
    cover = Cover.from_strings(("n1", "n2"), ["1-", "-1"])
    sigma = pis["x0"] & pis["x1"] & ~pis["x2"]
    sel = select_cubes(cover, sigma, fns, mgr, 4)
    kept_img = cover_image(sel.kept, fns, mgr)
    full_img = cover_image(cover, fns, mgr)
    assert (sigma & full_img).is_subset_of(kept_img)


def test_cube_image_unknown_net():
    from repro.errors import MaskingError
    from repro.logic.cube import Cube

    mgr, fns = setup_space()
    with pytest.raises(MaskingError):
        cube_image(Cube.from_string("1"), ("ghost",), fns, mgr)

"""Tests for verification and overhead reporting."""

from fractions import Fraction

import pytest

from repro.benchcircuits import comparator_nbit, make_benchmark
from repro.core import (
    build_masked_design,
    masking_delay,
    overhead_report,
    synthesize_masking,
    verify_masking,
)
from repro.core.report import VerificationReport
from repro.netlist import lsi10k_like_library, unit_library
from repro.sta import analyze

UNIT = unit_library()
LSI = lsi10k_like_library()


@pytest.fixture(scope="module")
def result():
    return synthesize_masking(comparator_nbit(4), UNIT, max_support=8)


def test_verification_report(result):
    v = verify_masking(result)
    assert v.sound and not v.unsound_outputs
    assert v.full_coverage
    assert v.coverage_percent == 100.0
    assert set(v.coverage) == set(result.outputs)
    assert all(c == Fraction(1) for c in v.coverage.values())


def test_verification_report_empty_coverage_is_full():
    v = VerificationReport(sound=True, unsound_outputs=(), coverage={})
    assert v.coverage_percent == 100.0
    assert v.full_coverage


def test_masking_delay_matches_sta(result):
    rep = analyze(result.masking_circuit, target=0)
    nets = [n for pair in result.outputs.values() for n in pair]
    assert masking_delay(result) == max(rep.arrival[n] for n in nets)


def test_overhead_report_consistency(result):
    design = build_masked_design(result)
    r = overhead_report(result, design=design)
    assert r.original_area == result.circuit.area()
    mux_area = UNIT.get("MUX2").area * len(result.outputs)
    assert r.masking_area == result.masking_circuit.area() + mux_area
    assert r.area_overhead_percent == pytest.approx(
        100.0 * r.masking_area / r.original_area
    )
    assert r.masking_power == pytest.approx(
        r.power_overhead_percent / 100.0 * r.original_power
    )
    assert r.meets_slack_constraint == (r.slack_percent >= 20.0)


def test_overhead_report_sim_power_method(result):
    r = overhead_report(result, power_method="sim")
    assert r.original_power > 0


def test_report_on_lsi_benchmark():
    circuit = make_benchmark("x2", LSI)
    result = synthesize_masking(circuit, LSI)
    r = overhead_report(result)
    assert r.sound and r.coverage_percent == 100.0
    assert r.critical_outputs == 1
    assert r.masking_delay <= r.original_delay


def test_unsound_masking_detected():
    """Corrupting the masking circuit must flip the soundness verdict."""
    circuit = comparator_nbit(3)
    result = synthesize_masking(circuit, UNIT, max_support=8)
    mc = result.masking_circuit
    pred_net = result.outputs[circuit.outputs[0]][0]
    gate = mc.gate(pred_net)
    # invert the prediction: e stays up, prediction now disagrees with y
    from dataclasses import replace

    if gate.cell.name == "INV":
        mc.replace_gate(replace(gate, cell=UNIT.get("BUF")))
    else:
        sub = gate.fanins[0]
        mc.remove_gate(pred_net)
        mc.add_gate(pred_net + "_n", gate.cell, gate.fanins)
        mc.add_gate(pred_net, UNIT.get("INV"), (pred_net + "_n",))
    v = verify_masking(result)
    assert not v.sound
    assert circuit.outputs[0] in v.unsound_outputs

"""Golden test: the paper's 2-bit comparator walkthrough (Sec. 4.2, Fig. 2).

Reproduces, from our implementation, every quantity the paper derives:

* critical path delay 7 under the unit-delay model (INV = 1, 2-input = 2),
* speed-path threshold ``Delta_y = floor(0.9 * 7) = 6``,
* the exact SPCF  ``Sigma_y = a1' + a0' b1``  (10 of 16 patterns),
* the satisfiability care sets s0/s1 induced by Sigma,
* a masking circuit with ``e = 1  =>  y~ = y`` for every pattern and
  ``Sigma => e = 1`` (100% masking), whose indicator covers the paper's
  simplified ``e = a1' + b1`` region on Sigma.
"""

import pytest

from repro.benchcircuits import comparator2
from repro.core import (
    local_care_sets,
    mask_circuit,
    synthesize_masking,
    verify_masking,
)
from repro.netlist import unit_library
from repro.sim import exhaustive_patterns, simulate
from repro.spcf import SpcfContext, spcf_shortpath
from repro.sta import analyze

LIB = unit_library()


@pytest.fixture(scope="module")
def circuit():
    return comparator2()


@pytest.fixture(scope="module")
def context(circuit):
    return SpcfContext(circuit)


def test_delay_and_threshold(circuit, context):
    rep = analyze(circuit)
    assert rep.critical_delay == 7
    assert rep.target == 6
    assert context.target == 6


def test_exact_sigma_matches_paper(circuit, context):
    res = spcf_shortpath(circuit, context=context)
    mgr = context.manager
    paper = (~mgr.var("a1")) | (~mgr.var("a0") & mgr.var("b1"))
    assert res.per_output["y"] == paper
    assert res.count() == 10


def test_care_sets_match_paper(circuit, context):
    """s0/s1 from the paper, expressed in the node-local (= PI) space."""
    res = spcf_shortpath(circuit, context=context)
    sigma = res.per_output["y"]
    mgr = context.manager
    f_y = context.functions["y"]
    s0 = sigma & ~f_y
    s1 = sigma & f_y
    a0, a1, b0, b1 = (mgr.var(v) for v in ("a0", "a1", "b0", "b1"))
    paper_s0 = (~a1 & b1) | (~a0 & b0 & (~a1 | b1))
    paper_s1 = (~a1 & ~b1 & (a0 | ~b0)) | (~a0 & ~b0 & a1 & b1)
    assert s0 == paper_s0
    assert s1 == paper_s1


def test_masking_circuit_semantics(circuit):
    result = mask_circuit(circuit, LIB, max_support=8)
    report = result.report
    assert report.sound
    assert report.coverage_percent == 100.0
    assert report.critical_outputs == 1
    assert report.critical_minterms == 10
    # non-intrusive: the original gates are untouched in the masked design
    for name, gate in circuit.gates.items():
        assert result.design.circuit.gates[name] == gate


def test_indicator_covers_paper_e_on_sigma(circuit, context):
    """The paper's simplified e = a1' + b1 and ours must agree on Sigma."""
    masking = synthesize_masking(circuit, LIB, max_support=8)
    verification = verify_masking(masking)
    assert verification.sound and verification.full_coverage
    # Reconstruct our mapped e_y as a BDD and compare where it matters.
    from repro.spcf import expr_to_function

    mgr = masking.context.manager
    fns = {net: mgr.var(net) for net in circuit.inputs}
    for name in masking.masking_circuit.topo_order():
        gate = masking.masking_circuit.gates[name]
        env = {p: fns[f] for p, f in zip(gate.cell.inputs, gate.fanins)}
        fns[name] = expr_to_function(gate.cell.expr, env, mgr)
    _, ind_net = masking.outputs["y"]
    sigma = masking.spcf.per_output["y"]
    assert sigma.is_subset_of(fns[ind_net])


def test_masked_design_functionally_transparent(circuit):
    result = mask_circuit(circuit, LIB, max_support=8)
    masked = result.design
    for pat in exhaustive_patterns(circuit.inputs):
        ref = simulate(circuit, pat)
        got = simulate(masked.circuit, pat)
        assert got[masked.output_map["y"]] == ref["y"], pat


def test_local_care_sets_on_collapsed_node(circuit, context):
    """local_care_sets must agree with the PI-space care sets for the
    (single) collapsed node of the comparator."""
    masking = synthesize_masking(circuit, LIB, max_support=8)
    mgr = masking.context.manager
    node = masking.technet.node("y")
    sigma = masking.spcf.per_output["y"]
    tfns = masking.technet.global_functions(mgr)
    s0, s1 = local_care_sets(node, sigma, tfns, mgr)
    assert (s0 & s1).is_false
    assert not s0.is_false and not s1.is_false

"""Shared fixtures and circuit-generation helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.netlist import Circuit, Library, lsi10k_like_library, unit_library


@pytest.fixture(autouse=True)
def _obs_clean():
    """Leave the process-global observability layer off and empty.

    Tests that enable recording (or merge worker snapshots) must not leak
    series or spans into whichever test runs next.
    """
    yield
    obs.configure(enabled=False, trace_jsonl="")
    obs.install_flight_recorder(None)
    obs.reset()


@pytest.fixture(scope="session")
def unit_lib() -> Library:
    return unit_library()


@pytest.fixture(scope="session")
def lsi_lib() -> Library:
    return lsi10k_like_library()


def random_dag_circuit(
    seed: int,
    num_inputs: int = 5,
    num_gates: int = 12,
    library: Library | None = None,
    num_outputs: int = 2,
    name: str | None = None,
) -> Circuit:
    """A random acyclic circuit for property tests.

    Gates draw fanins from all earlier nets, so arbitrary reconvergence and
    multi-fanout structures occur; outputs are the last ``num_outputs`` gate
    nets (guaranteeing non-trivial cones).
    """
    lib = library or unit_library()
    rng = random.Random(seed)
    cells = [
        lib.get(n)
        for n in ("INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "AND3", "OR3")
        if n in lib
    ]
    inputs = [f"x{i}" for i in range(num_inputs)]
    c = Circuit(name or f"rand{seed}", inputs=inputs)
    nets = list(inputs)
    for g in range(num_gates):
        cell = rng.choice(cells)
        fanins = [rng.choice(nets) for _ in range(cell.num_inputs)]
        net = f"g{g}"
        c.add_gate(net, cell, fanins)
        nets.append(net)
    for k in range(num_outputs):
        c.add_output(f"g{num_gates - 1 - k}")
    c.validate()
    return c

"""Tests for the built-in cell libraries."""

import itertools

import pytest

from repro.errors import LibraryError
from repro.netlist import Library, builtin_library, lsi10k_like_library, unit_library
from repro.netlist.cell import Cell


def test_unit_library_delay_model():
    """The paper's example model: INV = 1, 2-input gates = 2."""
    lib = unit_library()
    assert lib.get("INV").pin_delays == (1,)
    for name in ("AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"):
        assert lib.get(name).pin_delays == (2, 2), name


def test_duplicate_cell_rejected():
    lib = Library("t")
    lib.add(Cell("INV", ("a",), "~a", 1.0, (1,)))
    with pytest.raises(LibraryError):
        lib.add(Cell("INV", ("a",), "~a", 1.0, (1,)))


def test_unknown_cell_rejected():
    with pytest.raises(LibraryError):
        unit_library().get("FLUXCAP")


def test_contains_iter_len():
    lib = unit_library()
    assert "INV" in lib and "FLUXCAP" not in lib
    assert len(lib) == len(list(lib))
    assert set(lib.cell_names) == {c.name for c in lib}


def test_cells_with_inputs():
    lib = unit_library()
    assert all(c.num_inputs == 2 for c in lib.cells_with_inputs(2))
    assert {c.name for c in lib.cells_with_inputs(0)} == {"ZERO", "ONE"}


def test_builtin_library_lookup():
    assert builtin_library("unit").name == "unit"
    assert builtin_library("lsi10k_like").name == "lsi10k_like"
    with pytest.raises(LibraryError):
        builtin_library("tsmc7")


@pytest.mark.parametrize("lib_factory", [unit_library, lsi10k_like_library])
def test_all_cell_functions_are_consistent(lib_factory):
    """Every cell's expression, truth table, and primes must agree."""
    for cell in lib_factory():
        table = cell.truth_table()
        on, off = cell.primes()
        n = cell.num_inputs
        for idx in range(1 << n):
            bits = [(idx >> (n - 1 - i)) & 1 for i in range(n)]
            expected = table[idx]
            in_on = any(p.contains_minterm(bits) for p in on)
            in_off = any(p.contains_minterm(bits) for p in off)
            assert in_on == expected, (cell.name, idx)
            assert in_off == (not expected), (cell.name, idx)


def test_mux_semantics():
    for lib in (unit_library(), lsi10k_like_library()):
        mux = lib.get("MUX2")
        for s, d0, d1 in itertools.product([False, True], repeat=3):
            expected = d1 if s else d0
            assert mux.evaluate({"s": s, "d0": d0, "d1": d1}) == expected

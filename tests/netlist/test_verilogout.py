"""Tests for the structural Verilog writer."""

import re

from repro.benchcircuits import comparator2
from repro.netlist import write_verilog, write_verilog_file


def test_module_structure():
    text = write_verilog(comparator2())
    assert text.startswith("module comparator2 (")
    assert text.rstrip().endswith("endmodule")
    assert "  input a0;" in text
    assert "  output y;" in text
    # every gate appears exactly once
    assert text.count("INV ") == 2
    assert text.count("AND2 ") == 2
    assert text.count("OR2 ") == 3


def test_all_internal_nets_declared():
    c = comparator2()
    text = write_verilog(c)
    for net in c.topo_order():
        if net not in c.outputs:
            assert f"wire {net};" in text


def test_escaped_identifiers():
    from repro.netlist import Circuit, unit_library

    lib = unit_library()
    c = Circuit("t", inputs=("a",), outputs=("p$y",))
    c.add_gate("p$y", lib.get("INV"), ("a",))
    text = write_verilog(c)
    assert "\\p$y " in text


def test_write_file(tmp_path):
    path = tmp_path / "c.v"
    write_verilog_file(comparator2(), path)
    assert path.read_text().startswith("module")

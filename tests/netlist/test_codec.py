"""The faithful circuit JSON codec: lossless round-trip, strict errors."""

from __future__ import annotations

import json

import pytest

from repro.benchcircuits import all_circuit_names, circuit_by_name
from repro.errors import NetlistError
from repro.netlist import (
    CIRCUIT_SCHEMA,
    Cell,
    Circuit,
    circuit_from_json,
    circuit_to_json,
    unit_library,
)
from repro.sta import analyze


def _shape(circuit: Circuit):
    return (
        circuit.name,
        tuple(circuit.inputs),
        tuple(circuit.outputs),
        [
            (g.name, g.cell, g.fanins, g.delay_scale)
            for g in circuit.gates.values()
        ],
    )


@pytest.mark.parametrize("name", ["comparator2", "cmb", "C432", "alu_slice"])
def test_round_trip_is_lossless(name):
    circuit = circuit_by_name(name)
    doc = json.loads(json.dumps(circuit_to_json(circuit)))
    rebuilt = circuit_from_json(doc)
    assert _shape(rebuilt) == _shape(circuit)
    # Timing is the payload the codec exists to preserve.
    assert analyze(rebuilt).arrival == analyze(circuit).arrival


def test_delay_scale_survives():
    lib = unit_library()
    c = Circuit("aged", inputs=["a", "b"], outputs=["y"])
    c.add_gate("y", lib.get("AND2"), ("a", "b"), delay_scale=2.5)
    rebuilt = circuit_from_json(circuit_to_json(c))
    assert rebuilt.gates["y"].delay_scale == 2.5
    assert analyze(rebuilt).arrival == analyze(c).arrival


def test_schema_and_kind_fields():
    doc = circuit_to_json(circuit_by_name("comparator2"))
    assert doc["schema"] == CIRCUIT_SCHEMA
    assert doc["kind"] == "repro-circuit"


def test_every_bench_circuit_round_trips():
    for name in all_circuit_names():
        circuit = circuit_by_name(name)
        assert _shape(circuit_from_json(circuit_to_json(circuit))) == _shape(
            circuit
        )


class TestErrors:
    def test_wrong_kind(self):
        with pytest.raises(NetlistError, match="not a repro-circuit"):
            circuit_from_json({"kind": "something-else"})

    def test_wrong_schema(self):
        doc = circuit_to_json(circuit_by_name("comparator2"))
        doc["schema"] = 99
        with pytest.raises(NetlistError, match="unsupported circuit schema"):
            circuit_from_json(doc)

    def test_missing_field(self):
        doc = circuit_to_json(circuit_by_name("comparator2"))
        del doc["gates"]
        with pytest.raises(NetlistError, match="missing field 'gates'"):
            circuit_from_json(doc)

    def test_unknown_cell_reference(self):
        doc = circuit_to_json(circuit_by_name("comparator2"))
        doc["gates"][0]["cell"] = "GHOST"
        with pytest.raises(NetlistError, match="unknown cell 'GHOST'"):
            circuit_from_json(doc)

    def test_missing_cell_field(self):
        doc = circuit_to_json(circuit_by_name("comparator2"))
        cell_name = next(iter(doc["cells"]))
        del doc["cells"][cell_name]["pin_delays"]
        with pytest.raises(NetlistError, match="missing field 'pin_delays'"):
            circuit_from_json(doc)

    def test_homonym_cells_rejected(self):
        lib = unit_library()
        and2 = lib.get("AND2")
        impostor = Cell(
            name="AND2",
            inputs=and2.inputs,
            expression=and2.expression,
            area=and2.area + 1.0,
            pin_delays=and2.pin_delays,
        )
        c = Circuit("twins", inputs=["a", "b"], outputs=["y"])
        c.add_gate("g0", and2, ("a", "b"))
        c.add_gate("y", impostor, ("g0", "b"))
        with pytest.raises(NetlistError, match="two different cells"):
            circuit_to_json(c)

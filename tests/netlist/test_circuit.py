"""Tests for the circuit DAG."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Circuit, unit_library

LIB = unit_library()


def small():
    c = Circuit("t", inputs=("a", "b"), outputs=("y",))
    c.add_gate("n1", LIB.get("AND2"), ("a", "b"))
    c.add_gate("y", LIB.get("INV"), ("n1",))
    return c


def test_basic_structure():
    c = small()
    c.validate()
    assert c.inputs == ("a", "b")
    assert c.outputs == ("y",)
    assert c.num_gates == 2
    assert c.has_net("n1") and c.has_net("a") and not c.has_net("zz")
    assert c.is_input("a") and not c.is_input("n1")
    assert list(c.nets()) == ["a", "b", "n1", "y"]


def test_duplicate_names_rejected():
    c = small()
    with pytest.raises(NetlistError):
        c.add_input("a")
    with pytest.raises(NetlistError):
        c.add_gate("n1", LIB.get("INV"), ("a",))
    with pytest.raises(NetlistError):
        c.add_gate("a", LIB.get("INV"), ("b",))
    with pytest.raises(NetlistError):
        c.add_output("y")
    with pytest.raises(NetlistError):
        c.add_input("n1")


def test_arity_mismatch_rejected():
    c = Circuit("t", inputs=("a",))
    with pytest.raises(NetlistError):
        c.add_gate("g", LIB.get("AND2"), ("a",))


def test_undefined_fanin_caught_by_validate():
    c = Circuit("t", inputs=("a",), outputs=("g",))
    c.add_gate("g", LIB.get("AND2"), ("a", "ghost"))
    with pytest.raises(NetlistError):
        c.validate()


def test_undriven_output_caught():
    c = Circuit("t", inputs=("a",), outputs=("nope",))
    with pytest.raises(NetlistError):
        c.validate()


def test_cycle_detected():
    c = Circuit("t", inputs=("a",))
    c.add_gate("g1", LIB.get("AND2"), ("a", "g2"))
    c.add_gate("g2", LIB.get("INV"), ("g1",))
    with pytest.raises(NetlistError):
        c.topo_order()


def test_topo_order_respects_dependencies():
    c = small()
    order = c.topo_order()
    assert order.index("n1") < order.index("y")


def test_fanouts():
    c = small()
    fan = c.fanouts()
    assert fan["a"] == [("n1", 0)]
    assert fan["n1"] == [("y", 0)]
    assert fan["y"] == []


def test_cones():
    c = small()
    assert c.fanin_cone("y") == {"y", "n1"}
    assert c.cone_inputs("y") == {"a", "b"}
    assert c.cone_inputs("a") == {"a"}
    with pytest.raises(NetlistError):
        c.fanin_cone("ghost")


def test_levels_and_depth():
    c = small()
    levels = c.level_map()
    assert levels["a"] == 0 and levels["n1"] == 1 and levels["y"] == 2
    assert c.depth() == 2


def test_area():
    assert small().area() == LIB.get("AND2").area + LIB.get("INV").area


def test_copy_is_independent():
    c = small()
    d = c.copy("copy")
    d.add_gate("extra", LIB.get("INV"), ("a",))
    assert "extra" not in c.gates
    assert d.name == "copy"


def test_delay_scales():
    c = small()
    aged = c.with_delay_scales({"n1": 2.0})
    assert aged.gate("n1").pin_delay(0) == 2 * c.gate("n1").pin_delay(0)
    assert c.gate("n1").delay_scale == 1.0  # original untouched
    with pytest.raises(NetlistError):
        c.with_delay_scales({"n1": 0.5})  # speed-up not allowed


def test_gate_lookup_errors():
    c = small()
    with pytest.raises(NetlistError):
        c.gate("a")  # input has no driver
    with pytest.raises(NetlistError):
        c.remove_gate("ghost")


def test_replace_gate():
    c = small()
    g = c.gate("y")
    c.replace_gate(type(g)("y", LIB.get("BUF"), ("n1",)))
    assert c.gate("y").cell.name == "BUF"

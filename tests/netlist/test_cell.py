"""Tests for the library cell model."""

import pytest

from repro.errors import LibraryError
from repro.netlist.cell import Cell


def nand2():
    return Cell("NAND2", ("a", "b"), "~(a & b)", 2.0, (6, 7))


def test_truth_table_pin0_is_msb():
    c = nand2()
    assert c.truth_table() == (True, True, True, False)


def test_evaluate_by_name_and_position():
    c = nand2()
    assert c.evaluate({"a": True, "b": True}) is False
    assert c.evaluate_seq([True, False]) is True
    with pytest.raises(LibraryError):
        c.evaluate_seq([True])


def test_primes_of_nand():
    on, off = nand2().primes()
    assert {str(p) for p in on} == {"0-", "-0"}
    assert [str(p) for p in off] == ["11"]


def test_constant_cells():
    one = Cell("ONE", (), "1", 0.0, ())
    assert one.truth_table() == (True,)
    assert one.evaluate({}) is True


def test_max_delay():
    assert nand2().max_delay() == 7
    assert Cell("ONE", (), "1", 0.0, ()).max_delay() == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(name="X", inputs=("a", "a"), expression="a", area=1.0, pin_delays=(1, 1)),
        dict(name="X", inputs=("a",), expression="a", area=1.0, pin_delays=()),
        dict(name="X", inputs=("a",), expression="a", area=1.0, pin_delays=(-1,)),
        dict(name="X", inputs=("a",), expression="a & b", area=1.0, pin_delays=(1,)),
        dict(name="X", inputs=(), expression="a", area=1.0, pin_delays=()),
    ],
)
def test_invalid_cells_rejected(kwargs):
    with pytest.raises(LibraryError):
        Cell(**kwargs)


def test_too_many_inputs_rejected():
    pins = tuple(f"p{i}" for i in range(11))
    with pytest.raises(LibraryError):
        Cell("BIG", pins, " & ".join(pins), 1.0, (1,) * 11)


def test_aoi_cell_truth_table():
    c = Cell("AOI21", ("a", "b", "c"), "~((a & b) | c)", 3.0, (8, 9, 7))
    # index: a=MSB. f = 1 only when c=0 and not(a&b)
    table = c.truth_table()
    for idx in range(8):
        a, b, cc = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        assert table[idx] == (not ((a and b) or cc))

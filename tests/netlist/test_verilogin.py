"""Tests for the structural Verilog reader (and writer round-trips)."""

import pytest

from repro.benchcircuits import comparator2, make_benchmark
from repro.errors import NetlistError
from repro.netlist import lsi10k_like_library, unit_library, write_verilog
from repro.netlist.verilogin import read_verilog
from repro.sim import exhaustive_patterns, random_patterns, simulate

UNIT = unit_library()


def test_writer_reader_roundtrip_comparator():
    c = comparator2()
    back = read_verilog(write_verilog(c), UNIT)
    assert back.name == c.name
    assert back.inputs == c.inputs
    assert back.outputs == c.outputs
    for pat in exhaustive_patterns(c.inputs):
        assert simulate(back, pat)["y"] == simulate(c, pat)["y"]


def test_roundtrip_with_escaped_identifiers():
    """Masked designs contain p$/e$/masked$ nets needing escapes."""
    from repro.core import mask_circuit

    lib = lsi10k_like_library()
    c = make_benchmark("x2", lib)
    design = mask_circuit(c, lib).design
    back = read_verilog(write_verilog(design.circuit), lib)
    assert set(back.outputs) == set(design.circuit.outputs)
    for pat in random_patterns(c.inputs, 40, seed=3):
        ref = simulate(design.circuit, pat)
        got = simulate(back, pat)
        for y in design.circuit.outputs:
            assert got[y] == ref[y]


def test_hand_written_module():
    text = """
// a comment
module top (a, b, y);
  input a;
  input b;
  output y;
  wire n1; /* block
     comment */
  NAND2 g0 (.a(a), .b(b), .y(n1));
  INV g1 (.a(n1), .y(y));
endmodule
"""
    c = read_verilog(text, UNIT)
    assert c.num_gates == 2
    for pat in exhaustive_patterns(("a", "b")):
        assert simulate(c, pat)["y"] == (pat["a"] and pat["b"])


def test_multi_name_declarations():
    text = (
        "module t (a, b, y);\n  input a, b;\n  output y;\n"
        "  AND2 g (.a(a), .b(b), .y(y));\nendmodule\n"
    )
    c = read_verilog(text, UNIT)
    assert c.inputs == ("a", "b")


@pytest.mark.parametrize(
    "text",
    [
        "module t (a); input a; assign y = a; endmodule",
        "module t (a); input a; always @(a) y = a; endmodule",
        "module t (a); input a; INV g (.a(a)); endmodule",  # no output port
        "module t (a); input a; INV g (.y(z)); endmodule",  # unbound pin
        "module t (a); input a;",  # truncated
    ],
)
def test_rejects_bad_input(text):
    with pytest.raises(NetlistError):
        read_verilog(text, UNIT)


def test_file_path_input(tmp_path):
    from repro.netlist import write_verilog_file

    path = tmp_path / "c.v"
    write_verilog_file(comparator2(), path)
    c = read_verilog(path, UNIT)
    assert c.num_gates == comparator2().num_gates

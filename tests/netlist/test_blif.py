"""Tests for BLIF reading/writing."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import BlifError
from repro.netlist import read_blif, unit_library, write_blif
from repro.sim import exhaustive_patterns, simulate

LIB = unit_library()


def test_gate_roundtrip_preserves_function():
    c = comparator2()
    c2 = read_blif(write_blif(c), library=LIB)
    assert c2.inputs == c.inputs and c2.outputs == c.outputs
    for pat in exhaustive_patterns(c.inputs):
        assert simulate(c2, pat)["y"] == simulate(c, pat)["y"]


def test_names_tables():
    text = """
.model test
.inputs a b c
.outputs f g
.names a b f
11 1
.names a b c g
1-0 1
01- 1
.end
"""
    c = read_blif(text)
    for pat in exhaustive_patterns(("a", "b", "c")):
        vals = simulate(c, pat)
        assert vals["f"] == (pat["a"] and pat["b"])
        assert vals["g"] == (
            (pat["a"] and not pat["c"]) or (not pat["a"] and pat["b"])
        )


def test_names_zero_polarity():
    text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
    c = read_blif(text)
    for pat in exhaustive_patterns(("a", "b")):
        assert simulate(c, pat)["f"] == (not (pat["a"] and pat["b"]))


def test_constant_names_node():
    text = ".model t\n.inputs a\n.outputs k\n.names k\n1\n.end\n"
    c = read_blif(text)
    assert simulate(c, {"a": False})["k"] is True


def test_continuation_lines_and_comments():
    text = (
        ".model t  # a comment\n"
        ".inputs a \\\n b\n"
        ".outputs f\n"
        ".names a b f\n"
        "11 1\n"
        ".end\n"
    )
    c = read_blif(text)
    assert c.inputs == ("a", "b")


@pytest.mark.parametrize(
    "text,message",
    [
        (".inputs a\n", ".inputs before .model"),
        (".model t\n.inputs a\n.latch a b\n", "unsupported"),
        (".model t\n.inputs a\n11 1\n", "outside"),
        (".model t\n.model u\n", "multiple"),
        ("", "no .model"),
        (".model t\n.inputs a\n.outputs f\n.names a f\n1- 1\n.end\n", "bad cover row"),
    ],
)
def test_malformed_blif_rejected(text, message):
    with pytest.raises(BlifError):
        read_blif(text, library=LIB)


def test_gate_requires_library():
    with pytest.raises(BlifError):
        read_blif(".model t\n.inputs x y\n.gate NAND2 a=x b=y y=z\n.end\n")


def test_gate_binding_errors():
    with pytest.raises(BlifError):
        read_blif(".model t\n.inputs a\n.gate INV a=a\n.end\n", library=LIB)
    with pytest.raises(BlifError):
        read_blif(".model t\n.inputs a b\n.gate AND2 a=a y=f\n.end\n", library=LIB)


def test_write_blif_file(tmp_path):
    from repro.netlist import write_blif_file

    c = comparator2()
    path = tmp_path / "c.blif"
    write_blif_file(c, path)
    c2 = read_blif(path, library=LIB)
    assert c2.num_gates == c.num_gates

"""Tests for static timing analysis."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import TimingError
from repro.netlist import Circuit, unit_library
from repro.sim import exhaustive_patterns, stabilization_times
from repro.sta import INFINITE_TIME, analyze, threshold_target
from tests.conftest import random_dag_circuit

LIB = unit_library()


def test_comparator_paper_delay():
    """Unit-delay 2-bit comparator has critical path delay exactly 7."""
    rep = analyze(comparator2())
    assert rep.critical_delay == 7
    assert rep.target == 6  # floor(0.9 * 7)


def test_arrival_times_chain():
    c = Circuit("chain", inputs=("a",), outputs=("g2",))
    c.add_gate("g1", LIB.get("INV"), ("a",))
    c.add_gate("g2", LIB.get("INV"), ("g1",))
    rep = analyze(c, target=0)
    assert rep.arrival == {"a": 0, "g1": 1, "g2": 2}


def test_required_and_slack():
    c = comparator2()
    rep = analyze(c)
    # outputs: required == target
    assert rep.required["y"] == 6
    assert rep.slack("y") == 6 - 7 == -1
    # a net not feeding any output would have infinite required time
    with pytest.raises(TimingError):
        rep.slack("ghost")


def test_critical_sets():
    c = comparator2()
    rep = analyze(c)
    crit = rep.critical_gates(c)
    assert "y" in crit and "t4" in crit
    assert rep.critical_outputs(c) == ("y",)
    nets = rep.critical_nets()
    assert "b0" in nets or "b1" in nets  # late inverter inputs are critical


def test_min_stable_bounds_stabilization():
    """min_stable must lower-bound the floating-mode oracle everywhere."""
    for seed in range(6):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=10)
        rep = analyze(c)
        for pat in exhaustive_patterns(c.inputs):
            st = stabilization_times(c, pat)
            for net, t in st.items():
                assert rep.min_stable[net] <= t <= rep.arrival[net], (seed, net)


def test_threshold_target():
    assert threshold_target(100, 0.9) == 90
    assert threshold_target(7, 0.9) == 6
    assert threshold_target(10, 1.0) == 10
    with pytest.raises(TimingError):
        threshold_target(10, 0.0)
    with pytest.raises(TimingError):
        threshold_target(10, 1.5)


def test_explicit_target_overrides_threshold():
    rep = analyze(comparator2(), target=3)
    assert rep.target == 3
    assert len(rep.critical_outputs(comparator2())) == 1


def test_net_not_driving_output_gets_infinite_required():
    c = Circuit("t", inputs=("a",), outputs=("g1",))
    c.add_gate("g1", LIB.get("INV"), ("a",))
    c.add_gate("dangling", LIB.get("INV"), ("a",))
    rep = analyze(c)
    assert rep.required["dangling"] == INFINITE_TIME


def test_aging_shifts_arrival():
    c = comparator2()
    slow = c.with_delay_scales({"t4": 2.0})
    assert analyze(slow).critical_delay > analyze(c).critical_delay

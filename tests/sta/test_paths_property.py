"""Property test: the speed-path counting DP matches full enumeration.

``count_speed_paths`` answers "how many paths would ``enumerate_speed_paths``
yield?" without materializing them (the blowup guard uses it before
committing to an enumeration).  Hypothesis drives random reconvergent DAGs
across the whole threshold range; the DP must agree with the enumerator's
actual output exactly — same circuit, same timing report, same threshold.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sta import analyze, count_speed_paths, enumerate_speed_paths
from tests.conftest import random_dag_circuit

circuits = st.builds(
    random_dag_circuit,
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=3, max_value=5),
    num_gates=st.integers(min_value=3, max_value=14),
    num_outputs=st.integers(min_value=1, max_value=3),
)


@settings(max_examples=60, deadline=None)
@given(
    circuit=circuits,
    threshold=st.sampled_from([0.5, 0.6, 0.75, 0.9, 0.99]),
)
def test_count_matches_enumeration(circuit, threshold):
    report = analyze(circuit, threshold=threshold)
    paths = enumerate_speed_paths(
        circuit, report=report, threshold=threshold
    )
    assert count_speed_paths(
        circuit, report=report, threshold=threshold
    ) == len(paths)
    # The count is a pure function of (circuit, report, threshold): a
    # second call with a fresh report must agree.
    assert count_speed_paths(circuit, threshold=threshold) == len(paths)

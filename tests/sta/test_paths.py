"""Tests for speed-path enumeration and counting."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import TimingError
from repro.netlist import Circuit, unit_library
from repro.sta import analyze, count_speed_paths, enumerate_speed_paths

LIB = unit_library()


def path_delay(circuit, nets):
    total = 0
    for src, dst in zip(nets, nets[1:]):
        gate = circuit.gates[dst]
        pin = gate.fanins.index(src)
        total += gate.pin_delay(pin)
    return total


def test_comparator_speed_paths():
    c = comparator2()
    paths = enumerate_speed_paths(c)
    # The two delay-7 paths run from b0 and b1 through the inverters and t4.
    assert {p.start for p in paths} == {"b0", "b1"}
    for p in paths:
        assert p.end == "y"
        assert p.delay == 7
        assert path_delay(c, p.nets) == p.delay
    assert count_speed_paths(c) == len(paths)


def test_paths_sorted_longest_first():
    c = comparator2()
    paths = enumerate_speed_paths(c, threshold=0.5)
    delays = [p.delay for p in paths]
    assert delays == sorted(delays, reverse=True)
    assert count_speed_paths(c, threshold=0.5) == len(paths)


def test_no_speed_paths_when_threshold_is_full_delay():
    c = comparator2()
    rep = analyze(c, target=7)
    assert enumerate_speed_paths(c, report=rep) == []
    assert count_speed_paths(c, report=rep) == 0


def test_every_enumerated_path_exceeds_target():
    from tests.conftest import random_dag_circuit

    for seed in range(5):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=14)
        rep = analyze(c)
        for p in enumerate_speed_paths(c, report=rep):
            assert p.delay > rep.target
            assert path_delay(c, p.nets) == p.delay
            assert c.is_input(p.start)
            assert p.end in c.outputs
            assert len(p) >= 1


def test_limit_guard():
    # A wide multiplier-ish structure has exponentially many paths; ensure
    # the limit guard fires rather than hanging.
    c = Circuit("wide", inputs=("a", "b"))
    prev = ["a", "b"]
    for level in range(16):
        n1 = f"l{level}_0"
        n2 = f"l{level}_1"
        c.add_gate(n1, LIB.get("AND2"), (prev[0], prev[1]))
        c.add_gate(n2, LIB.get("OR2"), (prev[0], prev[1]))
        prev = [n1, n2]
    c.add_gate("out", LIB.get("AND2"), tuple(prev))
    c.add_output("out")
    with pytest.raises(TimingError):
        enumerate_speed_paths(c, threshold=0.1, limit=100)
    # counting still works (DP, no materialization)
    assert count_speed_paths(c, threshold=0.1) > 100

"""Cross-validation of the three SPCF algorithms (paper Sec. 3, Table 1).

The invariants (DESIGN.md §7):

1. short-path and path-based agree exactly,
2. node-based is a superset of the exact SPCF,
3. the exact SPCF matches the per-pattern floating-mode oracle.
"""

import pytest

from repro.benchcircuits import comparator2, comparator_nbit
from repro.sim import exhaustive_patterns, stabilization_times
from repro.spcf import (
    SpcfContext,
    compare_algorithms,
    spcf_nodebased,
    spcf_pathbased,
    spcf_shortpath,
)
from tests.conftest import random_dag_circuit


def check_all(circuit, threshold=0.9, exhaustive=True):
    ctx = SpcfContext(circuit, threshold=threshold)
    short = spcf_shortpath(circuit, context=ctx)
    path = spcf_pathbased(circuit, context=ctx)
    node = spcf_nodebased(circuit, context=ctx)
    assert short.per_output.keys() == path.per_output.keys()
    assert short.per_output.keys() == node.per_output.keys()
    for y in short.per_output:
        assert short.per_output[y] == path.per_output[y], y
        assert short.per_output[y].is_subset_of(node.per_output[y]), y
    if exhaustive:
        for pat in exhaustive_patterns(circuit.inputs):
            st = stabilization_times(circuit, pat)
            for y, fn in short.per_output.items():
                assert fn.evaluate(pat) == (st[y] > short.target), (pat, y)
    return short, path, node


def test_comparator_reproduces_paper_sigma():
    c = comparator2()
    ctx = SpcfContext(c)
    short = spcf_shortpath(c, context=ctx)
    mgr = ctx.manager
    paper_sigma = (~mgr.var("a1")) | (~mgr.var("a0") & mgr.var("b1"))
    assert short.per_output["y"] == paper_sigma
    assert short.count() == 10


def test_comparator_all_algorithms():
    check_all(comparator2())


@pytest.mark.parametrize("n", [3, 4])
def test_nbit_comparators(n):
    check_all(comparator_nbit(n))


@pytest.mark.parametrize("seed", range(12))
def test_random_circuits_agree_with_oracle(seed):
    c = random_dag_circuit(seed, num_inputs=5, num_gates=14, num_outputs=3)
    check_all(c)


@pytest.mark.parametrize("threshold", [0.7, 0.8, 0.95])
def test_alternate_thresholds(threshold):
    c = random_dag_circuit(99, num_inputs=5, num_gates=14, num_outputs=2)
    check_all(c, threshold=threshold)


def test_monotone_in_threshold():
    """Raising the target arrival time can only shrink the SPCF."""
    c = comparator_nbit(4)
    ctx_lo = SpcfContext(c, threshold=0.8)
    ctx_hi = SpcfContext(c, threshold=0.95, manager=ctx_lo.manager)
    lo = spcf_shortpath(c, context=ctx_lo)
    hi = spcf_shortpath(c, context=ctx_hi)
    assert ctx_hi.target > ctx_lo.target
    for y, fn in hi.per_output.items():
        assert y in lo.per_output
        assert fn.is_subset_of(lo.per_output[y])


def test_compare_algorithms_row():
    row = compare_algorithms(comparator2())
    assert row.circuit_name == "comparator2"
    assert row.short_path_count == row.path_based_count == 10
    assert row.node_based_count >= 10
    assert row.over_approximation_factor >= 1.0
    assert row.num_inputs == 4 and row.num_outputs == 1


def test_no_critical_outputs_when_target_is_delta():
    c = comparator2()
    res = spcf_shortpath(c, target=7)
    assert res.per_output == {}
    assert res.count() == 0
    assert res.is_empty()


def test_result_counts_by_output():
    c = comparator_nbit(3)
    res = spcf_shortpath(c)
    counts = res.counts_by_output()
    assert set(counts) == set(res.per_output)
    assert all(v >= 0 for v in counts.values())
    assert res.count() <= sum(counts.values()) or len(counts) == 1

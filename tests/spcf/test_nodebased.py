"""Focused tests for the node-based over-approximating algorithm."""

import pytest

from repro.benchcircuits import make_benchmark
from repro.netlist import Circuit, unit_library
from repro.sim import exhaustive_patterns, stabilization_times
from repro.spcf import SpcfContext, spcf_nodebased, spcf_shortpath
from repro.sta import analyze

LIB = unit_library()


def test_superset_on_reconvergent_structure():
    """A gate critical along only one fanout makes node-based strictly loose.

    Structure: a long chain Z feeds output y1 directly (critical path) and
    also feeds y2 through a short guarded path.  Statically Z is critical,
    so node-based cannot use the guard to rule out lateness at y2.
    """
    c = Circuit("recon", inputs=("a", "b", "g1", "g2"), outputs=("y1", "y2"))
    prev = "a"
    for i in range(6):
        c.add_gate(f"z{i}", LIB.get("INV"), (prev,))
        prev = f"z{i}"
    c.add_gate("y1", LIB.get("AND2"), (prev, "b"))
    # y2: guarded short path from the critical tail
    c.add_gate("gg", LIB.get("AND2"), ("g1", "g2"))
    c.add_gate("y2", LIB.get("AND2"), (prev, "gg"))
    c.validate()

    ctx = SpcfContext(c, threshold=0.8)
    exact = spcf_shortpath(c, context=ctx)
    node = spcf_nodebased(c, context=ctx)
    for y in exact.per_output:
        assert exact.per_output[y].is_subset_of(node.per_output[y])
    # exhaustive oracle agreement for the exact algorithm
    for pat in exhaustive_patterns(c.inputs):
        st = stabilization_times(c, pat)
        for y, fn in exact.per_output.items():
            assert fn.evaluate(pat) == (st[y] > exact.target)


def test_benchmark_over_approximation_is_material():
    """On the generated Table-1 circuits the looseness must be visible."""
    c = make_benchmark("C2670")
    ctx = SpcfContext(c)
    exact = spcf_shortpath(c, context=ctx)
    node = spcf_nodebased(c, context=ctx)
    assert node.count() > exact.count()


def test_node_based_empty_when_no_critical_gates():
    c = Circuit("t", inputs=("a", "b"), outputs=("g",))
    c.add_gate("g", LIB.get("AND2"), ("a", "b"))
    res = spcf_nodebased(c, target=100)
    assert res.per_output == {}


def test_node_based_includes_exact_across_thresholds():
    c = make_benchmark("cmb")
    for threshold in (0.8, 0.9, 0.95):
        ctx = SpcfContext(c, threshold=threshold)
        exact = spcf_shortpath(c, context=ctx)
        node = spcf_nodebased(c, context=ctx)
        for y in exact.per_output:
            assert exact.per_output[y].is_subset_of(node.per_output[y]), threshold


def test_algorithm_labels():
    c = make_benchmark("cmb")
    assert "node-based" in spcf_nodebased(c).algorithm
    assert "short-path" in spcf_shortpath(c).algorithm

"""Certificates through the SPCF plane: bit-identity, multiroot, guards."""

import pytest

from repro import obs
from repro.analysis.precert import PrecertConfig, precertify
from repro.benchcircuits import circuit_by_name
from repro.engine import compile_circuit
from repro.errors import SpcfError
from repro.spcf import (
    SpcfContext,
    spcf_multiroot,
    spcf_nodebased,
    spcf_pathbased,
    spcf_shortpath,
)
from repro.sta.timing import threshold_target
from tests.conftest import random_dag_circuit

ALGORITHMS = (spcf_shortpath, spcf_pathbased, spcf_nodebased)


def _canonical(result):
    """Cross-manager comparable form: output -> ROBDD cube sequence."""
    return {y: list(fn.cubes()) for y, fn in sorted(result.per_output.items())}


def _assert_certs_change_nothing(circuit, threshold=0.9):
    certs = precertify(circuit, threshold=threshold)
    for algorithm in ALGORITHMS:
        plain = algorithm(circuit, threshold=threshold)
        certified = algorithm(circuit, threshold=threshold, certificates=certs)
        assert _canonical(certified) == _canonical(plain), algorithm.__name__
        assert certified.target == plain.target


@pytest.mark.parametrize(
    "name", ["comparator2", "comparator4", "full_adder", "cla4", "cmb", "mux_tree3"]
)
def test_builtin_bit_identity(name, lsi_lib):
    _assert_certs_change_nothing(circuit_by_name(name, lsi_lib))


@pytest.mark.parametrize("seed", [3, 17, 29, 51])
def test_random_dag_bit_identity(seed):
    c = random_dag_circuit(seed, num_inputs=5, num_gates=14, num_outputs=3)
    _assert_certs_change_nothing(c)


@pytest.mark.parametrize("threshold", [0.5, 0.7])
def test_bit_identity_across_thresholds(threshold, lsi_lib):
    _assert_certs_change_nothing(
        circuit_by_name("comparator2", lsi_lib), threshold=threshold
    )


def test_refutations_preserve_bit_identity(lsi_lib):
    # Refuted roots still go to the BDD plane; results match with and
    # without the refutation budget.
    circuit = circuit_by_name("comparator2", lsi_lib)
    with_refute = precertify(circuit)
    without = precertify(circuit, config=PrecertConfig(refute_budget=0))
    a = spcf_shortpath(circuit, certificates=with_refute)
    b = spcf_shortpath(circuit, certificates=without)
    assert _canonical(a) == _canonical(b)


def test_multiroot_matches_per_target_sweep(lsi_lib):
    circuit = circuit_by_name("comparator4", lsi_lib)
    delta = compile_circuit(circuit).critical_delay()
    targets = sorted({threshold_target(delta, f) for f in (0.5, 0.7, 0.9)})

    certs = precertify(circuit, targets=targets)
    multi = spcf_multiroot(circuit, targets=targets, certificates=certs)
    assert sorted(multi) == targets
    for tgt in targets:
        single = spcf_shortpath(circuit, target=tgt)
        assert multi[tgt].target == tgt  # target_override, not the context's
        assert _canonical(multi[tgt]) == _canonical(single)


def test_multiroot_threshold_spelling(lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    delta = compile_circuit(circuit).critical_delay()
    by_threshold = spcf_multiroot(circuit, thresholds=(0.5, 0.9))
    expected = sorted({threshold_target(delta, f) for f in (0.5, 0.9)})
    assert sorted(by_threshold) == expected


def test_context_rejects_mismatched_certificates(lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    other_certs = precertify(circuit_by_name("full_adder", lsi_lib))
    with pytest.raises(SpcfError, match="fingerprint"):
        SpcfContext(circuit, certificates=other_certs)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_context_and_certificates_conflict(algorithm, lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    certs = precertify(circuit)
    ctx = SpcfContext(circuit)
    with pytest.raises(SpcfError, match="either"):
        algorithm(circuit, context=ctx, certificates=certs)


def test_obligations_skipped_counters(lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    certs = precertify(circuit)
    obs.configure(enabled=True)
    try:
        spcf_shortpath(circuit, certificates=certs)
        spcf_pathbased(circuit, certificates=certs)
        series = obs.metrics_snapshot()["metrics"][
            "repro_spcf_obligations_skipped_total"
        ]["series"]
    finally:
        obs.configure(enabled=False)
        obs.reset()
    assert series.get("algorithm=shortpath", 0) > 0
    assert series.get("algorithm=pathbased", 0) > 0


def test_obligation_totals_published_by_precertify(lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    obs.configure(enabled=True)
    try:
        certs = precertify(circuit)
        series = obs.metrics_snapshot()["metrics"][
            "repro_spcf_obligations_total"
        ]["series"]
    finally:
        obs.configure(enabled=False)
        obs.reset()
    counts = certs.counts()
    assert series == {
        f"verdict={v}": n for v, n in counts.items() if n
    }

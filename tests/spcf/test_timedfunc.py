"""Tests for the shared SPCF context and timed characteristic functions."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SpcfError
from repro.sim import exhaustive_patterns, simulate, stabilization_times
from repro.spcf import SpcfContext, expr_to_function
from repro.bdd import BddManager
from repro.logic import parse_expr
from tests.conftest import random_dag_circuit


def test_global_functions_match_simulation():
    for seed in range(5):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=12)
        ctx = SpcfContext(c)
        for pat in exhaustive_patterns(c.inputs):
            vals = simulate(c, pat)
            for net in c.nets():
                assert ctx.functions[net].evaluate(pat) == vals[net], (seed, net)


def test_stable_pair_partitions_on_time_patterns():
    """S0/S1 at time t == patterns with that final value stabilized by t."""
    c = comparator2()
    ctx = SpcfContext(c)
    for t in (0, 3, 5, 6, 7):
        s0, s1 = ctx.stable("y", t)
        assert (s0 & s1).is_false
        for pat in exhaustive_patterns(c.inputs):
            st = stabilization_times(c, pat)
            val = simulate(c, pat)["y"]
            on_time = st["y"] <= t
            assert s1.evaluate(pat) == (on_time and val), (t, pat)
            assert s0.evaluate(pat) == (on_time and not val), (t, pat)


def test_late_is_complement_of_stable():
    c = comparator2()
    ctx = SpcfContext(c)
    s0, s1 = ctx.stable("y", 5)
    assert ctx.late("y", 5) == ~(s0 | s1)


def test_stable_beyond_arrival_is_everything():
    c = comparator2()
    ctx = SpcfContext(c)
    s0, s1 = ctx.stable("y", 100)
    assert (s0 | s1).is_true
    assert s1 == ctx.functions["y"]


def test_stable_before_min_is_empty():
    c = comparator2()
    ctx = SpcfContext(c)
    s0, s1 = ctx.stable("y", 0)
    assert s0.is_false and s1.is_false


def test_expr_to_function_unbound_name():
    mgr = BddManager(["a"])
    with pytest.raises(SpcfError):
        expr_to_function(parse_expr("a & b"), {"a": mgr.var("a")}, mgr)


def test_context_count_uses_pi_space():
    c = comparator2()
    ctx = SpcfContext(c)
    assert ctx.count(ctx.manager.true) == 16
    assert ctx.count(ctx.manager.false) == 0


def test_critical_outputs_property():
    c = comparator2()
    ctx = SpcfContext(c)
    assert ctx.critical_outputs == ("y",)

"""``spcf_parallel`` ≡ serial SPCF: property tests and failure drills.

The contract under test is *bit-identity*: the parallel driver must hand
back the very node ids the serial short-path algorithm would have built in
the same manager, for any circuit, threshold, and certificate set — and a
worker that dies or wedges must quarantine its output while every other
output still comes back bit-identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.precert import precertify
from repro.bdd import function_from_json, function_to_json
from repro.benchcircuits import circuit_by_name
from repro.exec import ProcessPoolExecutor, RetryPolicy
from repro.spcf import (
    SpcfContext,
    spcf_multiroot,
    spcf_nodebased,
    spcf_parallel,
    spcf_parallel_multi,
    spcf_pathbased,
    spcf_shortpath,
)

from tests.conftest import random_dag_circuit

circuits = st.builds(
    random_dag_circuit,
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=3, max_value=5),
    num_gates=st.integers(min_value=3, max_value=14),
    num_outputs=st.integers(min_value=1, max_value=3),
)


def _nodes(result) -> dict[str, int]:
    return {y: fn.node for y, fn in result.per_output.items()}


@settings(max_examples=25, deadline=None)
@given(
    circuit=circuits,
    threshold=st.sampled_from([0.5, 0.7, 0.9]),
    use_certs=st.booleans(),
)
def test_parallel_bit_identical_to_serial(circuit, threshold, use_certs):
    certs = precertify(circuit, threshold=threshold) if use_certs else None
    par = spcf_parallel(
        circuit, threshold=threshold, certificates=certs, jobs=0
    )
    assert par.is_complete
    # Serial recompute *in the parallel run's manager*: equal functions over
    # one variable order are the same node, so ids must match exactly.
    ctx = SpcfContext(
        circuit, threshold=threshold, manager=par.context.manager
    )
    serial = spcf_shortpath(circuit, context=ctx)
    assert _nodes(par) == _nodes(serial)
    assert tuple(par.per_output) == tuple(serial.per_output)


@settings(max_examples=15, deadline=None)
@given(circuit=circuits, threshold=st.sampled_from([0.6, 0.9]))
def test_parallel_agrees_with_path_and_node_based(circuit, threshold):
    par = spcf_parallel(circuit, threshold=threshold, jobs=0)
    path = spcf_pathbased(circuit, threshold=threshold)
    node = spcf_nodebased(circuit, threshold=threshold)
    # Path-based is exact: per-output counts must agree with the parallel
    # short-path result.  Node-based over-approximates: per-output superset.
    assert par.counts_by_output() == path.counts_by_output()
    assert par.count() == path.count()
    for y, fn in par.per_output.items():
        # Bridge the node-based result into the parallel run's manager (the
        # same serialized-DAG path worker results travel) to prove the
        # superset relation on one manager.
        over = function_from_json(
            par.context.manager, function_to_json(node.per_output[y])
        )
        assert (fn & ~over).is_false


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_parallel_multi_matches_multiroot(seed):
    circuit = random_dag_circuit(seed, num_gates=10, num_outputs=2)
    thresholds = (0.5, 0.7, 0.9)
    par = spcf_parallel_multi(circuit, thresholds=thresholds, jobs=0)
    manager = next(iter(par.values())).context.manager
    serial = spcf_multiroot(circuit, thresholds=thresholds, manager=manager)
    assert par.keys() == serial.keys()
    for tgt in serial:
        assert _nodes(par[tgt]) == _nodes(serial[tgt])
        assert par[tgt].is_complete


class TestProcessPool:
    """Cross-process runs: the wire format must preserve bit-identity."""

    def test_bit_identity_and_pool_reuse(self):
        circuit = circuit_by_name("comparator2")
        with ProcessPoolExecutor(workers=2, task_timeout=120.0) as pool:
            par = spcf_parallel(circuit, threshold=0.5, executor=pool)
            again = spcf_parallel(circuit, threshold=0.5, executor=pool)
        assert par.is_complete and again.is_complete
        ctx = SpcfContext(
            circuit, threshold=0.5, manager=par.context.manager
        )
        serial = spcf_shortpath(circuit, context=ctx)
        assert _nodes(par) == _nodes(serial)
        assert par.count() == again.count() == serial.count()

    def test_certificates_cross_the_wire(self):
        circuit = circuit_by_name("comparator2")
        certs = precertify(circuit, threshold=0.9)
        par = spcf_parallel(
            circuit, threshold=0.9, certificates=certs, jobs=1
        )
        plain = spcf_shortpath(circuit, threshold=0.9)
        assert par.is_complete
        assert par.counts_by_output() == plain.counts_by_output()


class _SabotagingPool(ProcessPoolExecutor):
    """Injects drill directives into every run (keyed by output name)."""

    def __init__(self, directives, **kwargs):
        super().__init__(**kwargs)
        self.directives = directives

    def run(self, tasks, on_result=None, sabotage=None):
        return super().run(tasks, on_result, sabotage=self.directives)


class TestFailureIsolation:
    """A killed or wedged output quarantines; the rest still completes."""

    def test_kill_and_hang_yield_clean_partial_results(self):
        circuit = circuit_by_name("cu")
        serial = spcf_shortpath(circuit, threshold=0.5)
        outputs = list(serial.per_output)
        assert len(outputs) >= 3
        directives = {
            outputs[0]: {"mode": "kill"},
            outputs[1]: {"mode": "hang", "seconds": 60},
        }
        pool = _SabotagingPool(
            directives,
            workers=1,
            retry=RetryPolicy(
                max_retries=1, backoff_base=0.0, backoff_jitter=0.0
            ),
            task_timeout=2.0,
        )
        with pool:
            par = spcf_parallel(circuit, threshold=0.5, executor=pool)
        assert not par.is_complete
        assert set(par.incomplete) == {outputs[0], outputs[1]}
        assert "killed by signal 9" in par.incomplete[outputs[0]]
        assert "timed out" in par.incomplete[outputs[1]]
        # Every surviving output is present and bit-comparable to serial.
        survivors = {y for y in outputs if y not in par.incomplete}
        assert set(par.per_output) == survivors
        for y in survivors:
            assert par.context.count(par.per_output[y]) == serial.count(y)

"""Tests for switching-power estimation."""

from fractions import Fraction

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SimulationError
from repro.netlist import Circuit, unit_library
from repro.synth import (
    signal_probabilities_bdd,
    signal_probabilities_sim,
    switching_power,
)

LIB = unit_library()


def test_exact_probabilities_known_circuit():
    c = Circuit("t", inputs=("a", "b"), outputs=("g",))
    c.add_gate("g", LIB.get("AND2"), ("a", "b"))
    probs = signal_probabilities_bdd(c)
    assert probs["a"] == Fraction(1, 2)
    assert probs["g"] == Fraction(1, 4)


def test_sim_probabilities_approach_exact():
    c = comparator2()
    exact = signal_probabilities_bdd(c)
    approx = signal_probabilities_sim(c, vectors=4096, seed=1)
    for net in c.nets():
        assert abs(float(exact[net]) - float(approx[net])) < 0.05, net


def test_switching_power_positive_and_methods_close():
    c = comparator2()
    p_bdd = switching_power(c, method="bdd")
    p_sim = switching_power(c, method="sim", vectors=4096)
    assert p_bdd > 0
    assert abs(p_bdd - p_sim) / p_bdd < 0.2


def test_constant_nets_consume_nothing():
    c = Circuit("t", inputs=("a",), outputs=("k",))
    c.add_gate("k", LIB.get("ONE"), ())
    assert switching_power(c) == 0.0


def test_bad_method_rejected():
    with pytest.raises(SimulationError):
        switching_power(comparator2(), method="psychic")
    with pytest.raises(SimulationError):
        signal_probabilities_sim(comparator2(), vectors=0)


def test_power_scales_with_activity():
    # An XOR output (p=1/2) switches more than an AND output (p=1/4).
    cx = Circuit("x", inputs=("a", "b"), outputs=("g",))
    cx.add_gate("g", LIB.get("XOR2"), ("a", "b"))
    ca = Circuit("a", inputs=("a", "b"), outputs=("g",))
    ca.add_gate("g", LIB.get("AND2"), ("a", "b"))
    assert switching_power(cx) > switching_power(ca)

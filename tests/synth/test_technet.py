"""Tests for technology-independent networks."""

import pytest

from repro.bdd import BddManager
from repro.errors import SynthesisError
from repro.logic import Cover
from repro.logic.cube import Cube
from repro.synth import TechNetwork, TechNode, node_from_function


def and_node(name, fanins):
    width = len(fanins)
    on = Cover(tuple(fanins), (Cube((1,) * width),))
    off = Cover(
        tuple(fanins),
        tuple(Cube.from_literals({i: False}, width) for i in range(width)),
    )
    return TechNode(name, tuple(fanins), on, off)


def test_node_validation():
    with pytest.raises(SynthesisError):
        TechNode("n", ("a", "a"), Cover(("a", "a")), Cover(("a", "a")))
    with pytest.raises(SynthesisError):
        TechNode("n", ("a",), Cover(("b",)), Cover(("a",)))


def test_node_check_consistent():
    good = and_node("n", ["a", "b"])
    good.check_consistent()
    bad = TechNode(
        "n",
        ("a", "b"),
        Cover.from_strings(("a", "b"), ["11"]),
        Cover.from_strings(("a", "b"), ["00"]),  # misses 01 and 10
    )
    with pytest.raises(SynthesisError):
        bad.check_consistent()


def test_node_from_function_drops_unused_fanins():
    mgr = BddManager(["a", "b", "c"])
    node = node_from_function("n", ["a", "b", "c"], mgr.var("a") & mgr.var("c"))
    assert node.fanins == ("a", "c")


def test_network_structure_and_validation():
    net = TechNetwork("t", ["a", "b", "c"], ["n2"])
    net.add_node(and_node("n1", ["a", "b"]))
    net.add_node(and_node("n2", ["n1", "c"]))
    net.validate()
    assert net.num_nodes == 2
    assert net.topo_order().index("n1") < net.topo_order().index("n2")
    assert net.fanin_cone("n2") == {"n1", "n2"}
    counts = net.fanout_counts()
    assert counts["n1"] == 1 and counts["n2"] == 1  # n2 read by output
    assert counts["c"] == 1

    with pytest.raises(SynthesisError):
        net.add_node(and_node("n1", ["a", "b"]))
    with pytest.raises(SynthesisError):
        net.node("ghost")


def test_undefined_fanin_rejected():
    net = TechNetwork("t", ["a"], ["n1"])
    net.add_node(and_node("n1", ["a", "ghost"]))
    with pytest.raises(SynthesisError):
        net.validate()


def test_cycle_rejected():
    net = TechNetwork("t", ["a"], [])
    net.add_node(and_node("n1", ["a", "n2"]))
    net.add_node(and_node("n2", ["n1", "a"]))
    with pytest.raises(SynthesisError):
        net.topo_order()


def test_global_functions():
    net = TechNetwork("t", ["a", "b", "c"], ["n2"])
    net.add_node(and_node("n1", ["a", "b"]))
    net.add_node(and_node("n2", ["n1", "c"]))
    mgr = BddManager(["a", "b", "c"])
    fns = net.global_functions(mgr)
    assert fns["n2"] == (mgr.var("a") & mgr.var("b") & mgr.var("c"))


def test_copy_independent():
    net = TechNetwork("t", ["a", "b"], [])
    net.add_node(and_node("n1", ["a", "b"]))
    dup = net.copy("u")
    dup.remove_node("n1")
    assert "n1" in net.nodes and "n1" not in dup.nodes

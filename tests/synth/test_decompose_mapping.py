"""Tests for cover decomposition, gate building, and technology mapping."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.errors import SynthesisError
from repro.logic import Cover, parse_expr
from repro.netlist import Circuit, lsi10k_like_library, unit_library
from repro.sim import exhaustive_patterns, simulate
from repro.synth import (
    GateBuilder,
    circuit_to_technet,
    collapse,
    decompose_cover,
    map_technet,
    remove_buffers,
)
from repro.synth.decompose import decompose_expr
from repro.synth.mapping import trial_cost
from tests.conftest import random_dag_circuit

LIB = unit_library()
NAMES = ("a", "b", "c", "d")


def build_and_check(cover, invert=False):
    circuit = Circuit("t", inputs=cover.names)
    builder = GateBuilder(circuit, LIB, "k_")
    net = decompose_cover(cover, builder, invert_output=invert)
    circuit.add_output(net) if not circuit.is_input(net) else None
    for bits in itertools.product([False, True], repeat=len(cover.names)):
        asgn = dict(zip(cover.names, bits))
        vals = simulate(circuit, asgn)
        expected = cover.evaluate(asgn) ^ invert
        assert vals[net] == expected, (str(cover), invert, asgn)
    return circuit, net


@pytest.mark.parametrize(
    "rows", [["11--"], ["1---", "-1--"], ["1-1-", "-01-", "--01"], []]
)
@pytest.mark.parametrize("invert", [False, True])
def test_decompose_cover_correct(rows, invert):
    build_and_check(Cover.from_strings(NAMES, rows), invert)


def test_inverters_are_shared():
    cover = Cover.from_strings(NAMES, ["0-0-", "0--0"])
    circuit, _ = build_and_check(cover)
    inv_count = sum(1 for g in circuit.gates.values() if g.cell.name == "INV")
    assert inv_count == 3  # ~a, ~c, ~d: the repeated ~a is shared


def test_strashing_dedupes_identical_gates():
    circuit = Circuit("t", inputs=("a", "b"))
    builder = GateBuilder(circuit, LIB, "k_")
    n1 = builder.and_tree(["a", "b"])
    n2 = builder.and_tree(["b", "a"])  # commutative normalization
    assert n1 == n2
    assert circuit.num_gates == 1


def test_decompose_expr_negation_pushdown():
    """An inverted AND should become an OR of negated leaves (De Morgan)."""
    circuit = Circuit("t", inputs=("a", "b", "c"))
    builder = GateBuilder(circuit, LIB, "k_")
    expr = parse_expr("a & b & c")
    net = decompose_expr(expr, builder, negate=True)
    cells = [g.cell.name for g in circuit.gates.values()]
    assert "OR2" in cells and "AND2" not in cells
    for bits in itertools.product([False, True], repeat=3):
        asgn = dict(zip(("a", "b", "c"), bits))
        assert simulate(circuit, asgn)[net] == (not all(bits))


def test_decompose_expr_xor():
    circuit = Circuit("t", inputs=("a", "b"))
    builder = GateBuilder(circuit, LIB, "k_")
    net = decompose_expr(parse_expr("a ^ b"), builder)
    for bits in itertools.product([False, True], repeat=2):
        asgn = dict(zip(("a", "b"), bits))
        assert simulate(circuit, asgn)[net] == (bits[0] != bits[1])


def test_builder_constants_and_mux():
    circuit = Circuit("t", inputs=("s", "x", "y"))
    builder = GateBuilder(circuit, LIB, "k_")
    one = builder.constant(True)
    mux = builder.mux("s", "x", "y")
    vals = simulate(circuit, {"s": True, "x": False, "y": True})
    assert vals[one] is True
    assert vals[mux] is True
    vals = simulate(circuit, {"s": False, "x": False, "y": True})
    assert vals[mux] is False


def test_empty_tree_rejected():
    builder = GateBuilder(Circuit("t", inputs=("a",)), LIB, "k_")
    with pytest.raises(SynthesisError):
        builder.and_tree([])


def test_claim_as_refuses_read_nets():
    circuit = Circuit("t", inputs=("a", "b"))
    builder = GateBuilder(circuit, LIB, "k_")
    inner = builder.and_tree(["a", "b"])
    outer = builder.or_tree([inner, "a"])
    assert not builder.claim_as(inner, "named")  # inner is read by outer
    assert builder.claim_as(outer, "named")
    assert circuit.has_net("named")


def test_map_technet_equivalence():
    for seed in range(6):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=14, num_outputs=2)
        tn = collapse(circuit_to_technet(c), max_support=8)
        mapped = remove_buffers(map_technet(tn, LIB))
        for pat in exhaustive_patterns(c.inputs):
            ref = simulate(c, pat)
            got = simulate(mapped, pat)
            for y in c.outputs:
                assert got[y] == ref[y], (seed, y)


def test_map_technet_xor_pattern_matched():
    lib = lsi10k_like_library()
    c = Circuit("t", inputs=("a", "b"), outputs=("g",))
    c.add_gate("g", lib.get("XOR2"), ("a", "b"))
    mapped = map_technet(circuit_to_technet(c), lib)
    assert mapped.gate("g").cell.name == "XOR2"


def test_remove_buffers_keeps_output_names():
    c = comparator_with_buffer()
    out = remove_buffers(c)
    assert set(out.outputs) == set(c.outputs)
    for pat in exhaustive_patterns(c.inputs):
        assert simulate(out, pat)["y"] == simulate(c, pat)["y"]
    assert out.num_gates < c.num_gates


def comparator_with_buffer():
    from repro.benchcircuits import comparator2

    c = comparator2().copy()
    gate = c.gate("y")
    c.remove_gate("y")
    c.add_gate("pre", LIB.get("OR2"), gate.fanins)
    c.add_gate("mid", LIB.get("BUF"), ("pre",))
    c.add_gate("y", LIB.get("BUF"), ("mid",))
    c.validate()
    return c


def test_trial_cost_prefers_cheap_polarity():
    # An AND's off-set needs two cubes; on-set needs one: on-set is cheaper.
    on = Cover.from_strings(("a", "b"), ["11"])
    off = Cover.from_strings(("a", "b"), ["0-", "-0"])
    assert trial_cost(on, LIB, inverted=False) <= trial_cost(off, LIB, inverted=True)

"""Tests for technet extraction and the collapse/eliminate pass."""

import pytest

from repro.benchcircuits import comparator2
from repro.bdd import BddManager
from repro.errors import SynthesisError
from repro.netlist import lsi10k_like_library, unit_library
from repro.sim import exhaustive_patterns, simulate
from repro.synth import circuit_to_technet, collapse
from tests.conftest import random_dag_circuit


def functions_match(circuit, technet):
    mgr = BddManager(circuit.inputs)
    fns = technet.global_functions(mgr)
    for pat in exhaustive_patterns(circuit.inputs):
        vals = simulate(circuit, pat)
        for y in circuit.outputs:
            if fns[y].evaluate(pat) != vals[y]:
                return False
    return True


def test_one_to_one_lift_preserves_functions():
    c = comparator2()
    tn = circuit_to_technet(c)
    assert tn.num_nodes == c.num_gates
    assert functions_match(c, tn)


def test_collapse_preserves_functions_and_bounds():
    for seed in range(6):
        c = random_dag_circuit(seed, num_inputs=6, num_gates=16, num_outputs=3)
        tn = collapse(circuit_to_technet(c), max_support=6)
        tn.validate()
        assert functions_match(c, tn)
        for node in tn.nodes.values():
            assert node.num_fanins <= 6


def test_collapse_reduces_node_count():
    c = comparator2()
    tn = circuit_to_technet(c)
    col = collapse(tn, max_support=10)
    assert col.num_nodes < tn.num_nodes
    assert functions_match(c, col)


def test_outputs_survive_collapse():
    for seed in range(4):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=12, num_outputs=2)
        col = collapse(circuit_to_technet(c), max_support=8)
        for y in c.outputs:
            assert y in col.nodes


def test_collapse_with_library_cost_guard():
    lib = lsi10k_like_library()
    for seed in range(4):
        c = random_dag_circuit(
            seed, num_inputs=6, num_gates=16, library=lib, num_outputs=2
        )
        col = collapse(circuit_to_technet(c), max_support=8, library=lib)
        assert functions_match(c, col)


def test_max_support_guard():
    c = comparator2()
    with pytest.raises(SynthesisError):
        collapse(circuit_to_technet(c), max_support=1)


def test_duplicate_fanin_gate_lifts_cleanly():
    """A gate reading the same net twice collapses to distinct fanins."""
    from repro.netlist import Circuit

    lib = unit_library()
    c = Circuit("t", inputs=("a",), outputs=("g",))
    c.add_gate("g", lib.get("AND2"), ("a", "a"))
    tn = circuit_to_technet(c)
    assert tn.node("g").fanins == ("a",)
    assert functions_match(c, tn)

"""Functional tests for the hand-made real circuits."""

import itertools

import pytest

from repro.benchcircuits.comparator import comparator_nbit
from repro.benchcircuits.handmade import (
    alu_slice,
    carry_lookahead4,
    decoder,
    full_adder,
    mux_tree,
    parity_tree,
    priority_encoder,
    ripple_adder,
    ripple_adder_reference,
)
from repro.sim import exhaustive_patterns, simulate


def test_full_adder():
    c = full_adder()
    for pat in exhaustive_patterns(c.inputs):
        total = pat["a"] + pat["b"] + pat["cin"]
        vals = simulate(c, pat)
        assert vals["sum"] == bool(total & 1)
        assert vals["cout"] == (total >= 2)


@pytest.mark.parametrize("n", [2, 3, 4])
def test_ripple_adder(n):
    c = ripple_adder(n)
    for pat in exhaustive_patterns(c.inputs):
        expected = ripple_adder_reference(n, pat)
        vals = simulate(c, pat)
        for net, want in expected.items():
            assert vals[net] == want, (pat, net)


def test_carry_lookahead():
    c = carry_lookahead4()
    for pat in exhaustive_patterns(c.inputs):
        vals = simulate(c, pat)
        carry = pat["cin"]
        for i in range(4):
            carry = pat[f"g{i}"] or (pat[f"p{i}"] and carry)
            assert vals[f"c{i + 1}"] == carry


def test_alu_slice():
    c = alu_slice()
    for pat in exhaustive_patterns(c.inputs):
        vals = simulate(c, pat)
        a, b, cin = pat["a"], pat["b"], pat["cin"]
        op = (pat["op1"] << 1) | pat["op0"]
        expected = [a and b, a or b, a != b, (a != b) != cin][op]
        assert vals["out"] == expected, pat
        if op == 3:
            assert vals["cout"] == ((a and b) or ((a != b) and cin))


@pytest.mark.parametrize("n", [2, 3])
def test_decoder(n):
    c = decoder(n)
    for pat in exhaustive_patterns(c.inputs):
        vals = simulate(c, pat)
        sel = sum(int(pat[f"s{i}"]) << i for i in range(n))
        for idx in range(1 << n):
            assert vals[f"d{idx}"] == (pat["en"] and idx == sel)


@pytest.mark.parametrize("n", [4, 8])
def test_priority_encoder(n):
    c = priority_encoder(n)
    for pat in itertools.islice(exhaustive_patterns(c.inputs), 0, 1 << n):
        vals = simulate(c, pat)
        requests = [i for i in range(n) if pat[f"r{i}"]]
        assert vals["valid"] == bool(requests)
        winner = max(requests) if requests else None
        for i in range(n):
            assert vals[f"h{i}"] == (i == winner)


@pytest.mark.parametrize("n", [3, 8])
def test_parity_tree(n):
    c = parity_tree(n)
    for pat in exhaustive_patterns(c.inputs):
        expected = sum(pat.values()) % 2 == 1
        assert simulate(c, pat)["p"] == expected


@pytest.mark.parametrize("k", [1, 2, 3])
def test_mux_tree(k):
    c = mux_tree(k)
    for pat in itertools.islice(exhaustive_patterns(c.inputs), 0, 2048):
        sel = sum(int(pat[f"s{i}"]) << i for i in range(k))
        assert simulate(c, pat)["z"] == pat[f"d{sel}"]


@pytest.mark.parametrize("n", [2, 3, 5])
def test_nbit_comparator(n):
    c = comparator_nbit(n)
    for pat in itertools.islice(exhaustive_patterns(c.inputs), 0, 1024):
        a = sum(int(pat[f"a{i}"]) << i for i in range(n))
        b = sum(int(pat[f"b{i}"]) << i for i in range(n))
        assert simulate(c, pat)["y"] == (a >= b), pat

"""Tests for the synthetic paper-benchmark generators."""

import pytest

from repro.benchcircuits import (
    PAPER_SPECS,
    TABLE1_NAMES,
    all_circuit_names,
    circuit_by_name,
    make_benchmark,
)
from repro.errors import NetlistError
from repro.sim import random_patterns, stabilization_times
from repro.sta import analyze

SMALL = ("i1", "cmb", "x2", "cu", "frg1", "C432")


def test_unknown_benchmark_rejected():
    with pytest.raises(NetlistError):
        make_benchmark("b17_opt")
    with pytest.raises(NetlistError):
        circuit_by_name("nope")


def test_deterministic_generation():
    a = make_benchmark("C432")
    b = make_benchmark("C432")
    assert a.num_gates == b.num_gates
    assert list(a.gates) == list(b.gates)
    assert all(
        a.gates[k].cell.name == b.gates[k].cell.name
        and a.gates[k].fanins == b.gates[k].fanins
        for k in a.gates
    )


@pytest.mark.parametrize("name", SMALL)
def test_io_counts_match_paper(name):
    spec = PAPER_SPECS[name]
    c = make_benchmark(name)
    assert len(c.inputs) == spec.num_inputs
    assert len(c.outputs) == spec.num_outputs
    c.validate()


@pytest.mark.parametrize("name", SMALL)
def test_critical_output_counts_match_spec(name):
    spec = PAPER_SPECS[name]
    c = make_benchmark(name)
    rep = analyze(c)
    assert len(rep.critical_outputs(c)) == spec.deep_outputs


@pytest.mark.parametrize("name", ("cmb", "C432"))
def test_speed_paths_are_true_paths(name):
    """Some sampled pattern must actually exercise the top-10% band."""
    c = make_benchmark(name)
    rep = analyze(c)
    crit = rep.critical_outputs(c)
    best = {y: 0 for y in crit}
    for pat in random_patterns(c.inputs, 600, seed=1):
        st = stabilization_times(c, pat)
        for y in crit:
            best[y] = max(best[y], st[y])
    # the deep cones are guarded: random sampling rarely hits the exact
    # guard cube, but at least one output must show deep stabilization
    assert max(best.values()) > rep.target * 0.5


def test_table1_names_are_generable():
    for name in TABLE1_NAMES:
        assert name in PAPER_SPECS


def test_suite_lookup():
    names = all_circuit_names()
    assert "comparator2" in names and "C432" in names
    c = circuit_by_name("full_adder")
    assert c.name == "full_adder"
    c = circuit_by_name("cmb")
    assert c.name == "cmb"

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.netlist import read_blif, lsi10k_like_library


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _ = run(capsys, "list")
    assert code == 0
    assert "comparator2" in out and "C432" in out
    assert "[table 2]" in out


def test_report_named_benchmark(capsys):
    code, out, _ = run(capsys, "report", "cmb")
    assert code == 0
    assert "critical delay" in out
    assert "16/4" in out


def test_report_unit_library_comparator(capsys):
    code, out, _ = run(capsys, "--library", "unit", "report", "comparator2")
    assert code == 0
    assert "critical delay   : 7" in out


@pytest.mark.parametrize("algo", ["short", "path", "node", "all"])
def test_spcf(capsys, algo):
    code, out, _ = run(capsys, "spcf", "cmb", "--algorithm", algo)
    assert code == 0
    if algo == "all":
        assert "over-approximation factor" in out
    else:
        assert "critical patterns" in out


def test_mask_writes_files(capsys, tmp_path):
    out_blif = tmp_path / "masked.blif"
    mask_blif = tmp_path / "mask.blif"
    verilog = tmp_path / "masked.v"
    code, out, _ = run(
        capsys,
        "mask",
        "cmb",
        "--out", str(out_blif),
        "--mask-out", str(mask_blif),
        "--verilog", str(verilog),
    )
    assert code == 0
    assert "masking coverage   : 100.0%" in out
    masked = read_blif(out_blif, library=lsi10k_like_library())
    assert any(net.startswith("masked$") for net in masked.outputs)
    assert read_blif(mask_blif, library=lsi10k_like_library()).num_gates > 0
    assert verilog.read_text().startswith("module")


def test_mask_blif_input_roundtrip(capsys, tmp_path):
    """CLI accepts a .blif file path as the circuit argument."""
    from repro.benchcircuits import make_benchmark
    from repro.netlist import write_blif_file

    lib = lsi10k_like_library()
    path = tmp_path / "c.blif"
    write_blif_file(make_benchmark("x2", lib), path)
    code, out, _ = run(capsys, "report", str(path))
    assert code == 0
    assert "10/7" in out


def test_table1(capsys):
    code, out, _ = run(capsys, "table1")
    assert code == 0
    assert "C432" in out and "lsu_stb_ctl" in out


def test_table2_subset(capsys):
    code, out, _ = run(capsys, "table2", "--circuits", "cmb", "x2")
    assert code == 0
    assert "average" in out
    assert out.count("100") >= 2  # both rows at 100% coverage


def test_unknown_circuit_is_graceful(capsys):
    code, out, err = run(capsys, "report", "does_not_exist")
    assert code == 2
    assert "error:" in err


def test_missing_blif_path_names_the_file(capsys):
    """A nonexistent .blif path fails with a BlifError naming the path."""
    code, out, err = run(capsys, "report", "no/such/file.blif")
    assert code == 2
    assert "no/such/file.blif" in err
    assert "unknown circuit" not in err


@pytest.mark.parametrize(
    "n,expected",
    [
        (0, "0"),
        (5, "5"),
        (-5, "-5"),
        (999, "999"),
        (-999, "-999"),
        (1000, "1.00e3"),
        (1234, "1.23e3"),
        (-1234, "-1.23e3"),
        (10**12, "1.00e12"),
        (2**40, "1.10e12"),
    ],
)
def test_fmt_count(n, expected):
    from repro.cli import _fmt_count

    assert _fmt_count(n) == expected


def test_lint_text(capsys):
    code, out, _ = run(capsys, "lint", "cmb")
    assert code == 0
    assert "finding(s)" in out


def test_lint_json_has_stable_rule_ids(capsys):
    import json

    code, out, _ = run(capsys, "lint", "i1", "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == "repro-lint/1"
    ids = {d["rule_id"] for d in payload["diagnostics"]}
    assert ids <= {f"LINT00{k}" for k in range(1, 8)}


def test_lint_fail_on_gates_exit_code(capsys):
    # i1 has info-level findings: clean at the default gate, dirty at info.
    code, _, _ = run(capsys, "lint", "i1")
    assert code == 0
    code, _, _ = run(capsys, "lint", "i1", "--fail-on", "info")
    assert code == 1
    code, _, _ = run(capsys, "lint", "i1", "--fail-on", "info", "--ignore",
                     "LINT004", "LINT007")
    assert code == 0


def test_lint_broken_blif_reaches_the_linter(capsys, tmp_path):
    """A looped + dangling BLIF is linted, not rejected by the loader."""
    path = tmp_path / "broken.blif"
    path.write_text(
        ".model broken\n.inputs a\n.outputs y\n"
        ".names a g2 g1\n11 1\n"     # g1 <-> g2 loop
        ".names g1 g2\n0 1\n"
        ".names g1 ghost y\n11 1\n"  # 'ghost' has no driver
        ".end\n"
    )
    code, out, _ = run(capsys, "lint", str(path))
    assert code == 1
    assert "LINT001" in out and "LINT002" in out
    assert "ghost" in out


def test_lint_all_is_warning_clean(capsys):
    code, out, _ = run(capsys, "lint", "all", "--fail-on", "warning")
    assert code == 0
    assert "linted" in out


def test_verify_mask_cli(capsys):
    code, out, _ = run(capsys, "verify-mask", "comparator2")
    assert code == 0
    assert "soundness" in out and "coverage" in out and "equivalence" in out
    assert "VERIFIED" in out


def test_verify_mask_cli_json(capsys):
    import json

    code, out, _ = run(capsys, "verify-mask", "cmb", "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == "repro-verify/1"
    assert payload["verified"] is True
    assert {c["check"] for c in payload["checks"]} == {
        "soundness", "coverage", "equivalence",
    }


def test_campaign_plan(capsys):
    code, out, _ = run(
        capsys, "campaign", "plan",
        "--circuits", "comparator2",
        "--modes", "seu", "delay:scale=3.0,arcs=1",
        "--shards", "2",
    )
    assert code == 0
    assert "4 shards" in out
    assert "seu(flips=1)" in out
    assert "delay(arcs=1,scale=3.0)" in out


def test_campaign_run_report_resume_inline(capsys, tmp_path):
    import json

    ckpt = tmp_path / "c.ckpt.jsonl"
    code, out, _ = run(
        capsys, "campaign", "run", str(ckpt),
        "--circuits", "comparator2", "--modes", "seu",
        "--shards", "2", "--vectors", "6", "--workers", "0",
    )
    assert code == 0
    assert "COMPLETE" in out
    assert ckpt.exists()

    code, out, _ = run(
        capsys, "campaign", "report", str(ckpt), "--format", "json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["complete"] is True
    assert payload["shards_done"] == 2

    code, out, _ = run(capsys, "campaign", "resume", str(ckpt), "--workers", "0")
    assert code == 0
    assert "COMPLETE" in out


def test_campaign_run_refuses_existing_checkpoint(capsys, tmp_path):
    ckpt = tmp_path / "c.ckpt.jsonl"
    ckpt.write_text("{}\n")
    code, _, err = run(
        capsys, "campaign", "run", str(ckpt),
        "--circuits", "comparator2", "--modes", "seu", "--workers", "0",
    )
    assert code == 2
    assert "already exists" in err


def test_campaign_bad_mode_and_sabotage_args(capsys, tmp_path):
    code, _, err = run(
        capsys, "campaign", "plan", "--modes", "seu:wings=3"
    )
    assert code == 2
    assert "no parameter" in err

    code, _, err = run(
        capsys, "campaign", "run", str(tmp_path / "x.jsonl"),
        "--modes", "seu", "--sabotage", "notanint:kill",
    )
    assert code == 2
    assert "sabotage" in err


def test_campaign_report_written_to_file(capsys, tmp_path):
    import json

    ckpt = tmp_path / "c.ckpt.jsonl"
    out_path = tmp_path / "report.json"
    code, _, _ = run(
        capsys, "campaign", "run", str(ckpt),
        "--circuits", "comparator2", "--modes", "stuck",
        "--shards", "1", "--vectors", "4", "--workers", "0",
        "--format", "json", "--out", str(out_path),
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["complete"] is True


# ---------------------------------------------------------------------------
# analyze: the abstract interpreter from the command line
# ---------------------------------------------------------------------------


def test_analyze_text(capsys):
    code, out, _ = run(capsys, "analyze", "comparator2")
    assert code == 0  # default --fail-on error; hazards are warnings
    assert "ABS005" in out
    assert "finding(s)" in out


def test_analyze_fail_on_gates_exit_code(capsys):
    code, _, _ = run(capsys, "analyze", "comparator2", "--fail-on", "warning")
    assert code == 1
    code, _, _ = run(capsys, "analyze", "comparator2", "--fail-on", "warning",
                     "--ignore", "ABS005")
    assert code == 0


def test_analyze_crash_is_exit_2_not_1(capsys):
    code, _, err = run(capsys, "analyze", "does_not_exist")
    assert code == 2
    assert "error:" in err


def test_analyze_json(capsys):
    import json

    code, out, _ = run(capsys, "analyze", "comparator2", "--format", "json")
    assert code == 0
    payload = json.loads(out)
    ids = {d["rule_id"] for d in payload["diagnostics"]}
    assert ids <= {f"ABS00{k}" for k in range(1, 9)}
    assert any(d.get("data", {}).get("settle_time") for d in payload["diagnostics"])


def test_analyze_sarif_to_file(capsys, tmp_path):
    import json

    out_path = tmp_path / "report.sarif"
    code, _, _ = run(capsys, "analyze", "comparator2", "--format", "sarif",
                     "--out", str(out_path))
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"]


def test_analyze_baseline_round_trip(capsys, tmp_path):
    base = tmp_path / "abs.baseline.json"
    code, _, err = run(capsys, "analyze", "comparator2",
                       "--write-baseline", str(base))
    assert code == 0
    assert "baseline" in err
    code, out, err = run(capsys, "analyze", "comparator2",
                         "--baseline", str(base), "--fail-on", "info")
    assert code == 0
    assert "suppressed" in err
    assert "0 error, 0 warning, 0 info" in out


def test_analyze_bad_baseline_is_exit_2(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    code, _, err = run(capsys, "analyze", "comparator2", "--baseline", str(bad))
    assert code == 2
    assert "error:" in err


def test_lint_baseline_round_trip(capsys, tmp_path):
    base = tmp_path / "lint.baseline.json"
    code, _, _ = run(capsys, "lint", "i1", "--write-baseline", str(base))
    assert code == 0
    code, _, err = run(capsys, "lint", "i1", "--baseline", str(base),
                       "--fail-on", "info")
    assert code == 0
    assert "suppressed" in err


def test_exit_codes_documented_in_help(capsys):
    for cmd in ("lint", "analyze"):
        with pytest.raises(SystemExit):
            run(capsys, cmd, "--help")
        out = capsys.readouterr().out
        assert "exit codes" in out.lower()
        assert "--baseline" in out


def test_info_reports_executor_backends(capsys):
    code, out, _ = run(capsys, "info")
    assert code == 0
    assert "executor backends : inline, thread, process" in out
    assert "cpu count" in out
    assert "default workers" in out


def test_spcf_jobs_inline_matches_serial(capsys):
    code, serial_out, _ = run(capsys, "spcf", "comparator2")
    assert code == 0
    code, out, _ = run(capsys, "spcf", "comparator2", "--jobs", "0")
    assert code == 0
    assert "jobs      : 0 (inline)" in out
    assert "(proposed, parallel)" in out
    # Same per-output pattern counts as the serial run.
    def counts(text):
        return [l for l in text.splitlines() if "critical patterns" in l]
    assert counts(out) == counts(serial_out)


def test_spcf_precert_keeps_counts(capsys):
    code, plain, _ = run(capsys, "spcf", "comparator2")
    code2, certified, _ = run(capsys, "spcf", "comparator2", "--precert")
    assert code == 0 and code2 == 0
    def counts(text):
        return [l for l in text.splitlines() if "critical patterns" in l]
    assert counts(certified) == counts(plain)


def test_spcf_negative_jobs_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run(capsys, "spcf", "comparator2", "--jobs", "-1")
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "must be >= 0 (0 = inline)" in err


def test_campaign_negative_workers_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run(capsys, "campaign", "run", "x.jsonl", "--workers", "-3")
    assert excinfo.value.code == 2


def test_spcf_jobs_requires_short_algorithm(capsys):
    code, _, err = run(capsys, "spcf", "comparator2",
                       "--algorithm", "node", "--jobs", "0")
    assert code == 2
    assert "--algorithm short" in err
    code, _, err = run(capsys, "spcf", "comparator2",
                       "--algorithm", "all", "--jobs", "0")
    assert code == 2


def test_paths_text_report(capsys):
    code, out, _ = run(capsys, "paths", "bypass")
    assert code == 0
    assert "speed-paths: 1 (false 1, true 0, unresolved 0)" in out
    assert "FALSE" in out and "prunable" in out
    assert "TIGHTEN" in out


def test_paths_true_paths_report(capsys):
    code, out, _ = run(capsys, "paths", "comparator2")
    assert code == 0
    assert "TRUE" in out and "rank=1" in out


def test_paths_json_to_file(capsys, tmp_path):
    import json

    target = tmp_path / "bypass.paths.json"
    code, _, err = run(
        capsys, "paths", "bypass", "--format", "json", "--out", str(target)
    )
    assert code == 0
    assert "written to" in err
    data = json.loads(target.read_text())
    assert set(data) == {"certificates", "stats", "tightened_arrivals"}
    assert data["certificates"]["schema"] == "repro-paths/1"
    assert data["tightened_arrivals"] == {"y": data["certificates"]["target"]}


def test_paths_unresolved_is_exit_1(capsys):
    code, out, _ = run(
        capsys, "paths", "comparator2", "--replay-budget", "0"
    )
    assert code == 1
    assert "UNRESOLVED" in out


def test_paths_limit_guard_is_exit_2(capsys):
    code, _, err = run(capsys, "paths", "bypass", "--limit", "0")
    assert code == 2
    assert "error:" in err


def test_paths_masked_design(capsys):
    code, out, _ = run(capsys, "paths", "comparator2", "--masked")
    assert code in (0, 1)
    assert "circuit comparator2" in out


def test_analyze_paths_flag(capsys):
    code, out, _ = run(capsys, "analyze", "bypass", "--paths")
    assert code == 0
    assert "ABS011" in out
    code, out, _ = run(capsys, "analyze", "comparator2", "--paths")
    assert code == 0
    assert "ABS012" in out and "masking rank 1" in out
    # Opt-in: the default sweep stays free of path findings.
    code, out, _ = run(capsys, "analyze", "comparator2")
    assert code == 0
    assert "ABS011" not in out and "ABS012" not in out


def test_analyze_unknown_select_is_exit_2(capsys):
    code, _, err = run(capsys, "analyze", "comparator2", "--select", "NOPE")
    assert code == 2
    assert "unknown absint pass 'NOPE'" in err
    assert "ABS001" in err and "ABS013" in err


def test_analyze_unknown_ignore_is_exit_2(capsys):
    code, _, err = run(
        capsys, "analyze", "comparator2", "--ignore", "ABS999"
    )
    assert code == 2
    assert "known passes" in err


def test_info_lists_every_registered_rule(capsys):
    code, out, _ = run(capsys, "info")
    assert code == 0
    assert "analysis rules" in out
    for rid in ("LINT001", "LINT007", "ABS001", "ABS011", "ABS013"):
        assert rid in out
    assert "false-speed-path" in out and "[error]" in out

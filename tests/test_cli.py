"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.netlist import read_blif, lsi10k_like_library


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _ = run(capsys, "list")
    assert code == 0
    assert "comparator2" in out and "C432" in out
    assert "[table 2]" in out


def test_report_named_benchmark(capsys):
    code, out, _ = run(capsys, "report", "cmb")
    assert code == 0
    assert "critical delay" in out
    assert "16/4" in out


def test_report_unit_library_comparator(capsys):
    code, out, _ = run(capsys, "--library", "unit", "report", "comparator2")
    assert code == 0
    assert "critical delay   : 7" in out


@pytest.mark.parametrize("algo", ["short", "path", "node", "all"])
def test_spcf(capsys, algo):
    code, out, _ = run(capsys, "spcf", "cmb", "--algorithm", algo)
    assert code == 0
    if algo == "all":
        assert "over-approximation factor" in out
    else:
        assert "critical patterns" in out


def test_mask_writes_files(capsys, tmp_path):
    out_blif = tmp_path / "masked.blif"
    mask_blif = tmp_path / "mask.blif"
    verilog = tmp_path / "masked.v"
    code, out, _ = run(
        capsys,
        "mask",
        "cmb",
        "--out", str(out_blif),
        "--mask-out", str(mask_blif),
        "--verilog", str(verilog),
    )
    assert code == 0
    assert "masking coverage   : 100.0%" in out
    masked = read_blif(out_blif, library=lsi10k_like_library())
    assert any(net.startswith("masked$") for net in masked.outputs)
    assert read_blif(mask_blif, library=lsi10k_like_library()).num_gates > 0
    assert verilog.read_text().startswith("module")


def test_mask_blif_input_roundtrip(capsys, tmp_path):
    """CLI accepts a .blif file path as the circuit argument."""
    from repro.benchcircuits import make_benchmark
    from repro.netlist import write_blif_file

    lib = lsi10k_like_library()
    path = tmp_path / "c.blif"
    write_blif_file(make_benchmark("x2", lib), path)
    code, out, _ = run(capsys, "report", str(path))
    assert code == 0
    assert "10/7" in out


def test_table1(capsys):
    code, out, _ = run(capsys, "table1")
    assert code == 0
    assert "C432" in out and "lsu_stb_ctl" in out


def test_table2_subset(capsys):
    code, out, _ = run(capsys, "table2", "--circuits", "cmb", "x2")
    assert code == 0
    assert "average" in out
    assert out.count("100") >= 2  # both rows at 100% coverage


def test_unknown_circuit_is_graceful(capsys):
    code, out, err = run(capsys, "report", "does_not_exist")
    assert code == 2
    assert "error:" in err

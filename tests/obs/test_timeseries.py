"""Delta-encoded telemetry: snapshot math, writer/tail plumbing, fleet
rate/ETA/straggler arithmetic — all with injected clocks and timelines.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    FleetSeries,
    TelemetryTail,
    TelemetryWriter,
    snapshot_delta,
)


class Clock:
    """Settable injected clock."""

    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def record(worker, seq, ts, done, walls=(), current=None, delta=None):
    return {
        "schema": TIMESERIES_SCHEMA, "ts": ts, "worker": worker, "seq": seq,
        "tasks_done": done, "walls": list(walls), "current": current,
        "delta": delta if delta is not None else {"schema": 1, "metrics": {}},
    }


class TestSnapshotDelta:
    def _registry(self) -> MetricsRegistry:
        return MetricsRegistry(enabled=True)

    def test_counters_subtract_pointwise(self):
        reg = self._registry()
        calls = reg.counter("repro_test_calls_total", "help")
        calls.add(3, backend="a")
        before = reg.snapshot()
        calls.add(2, backend="a")
        calls.add(1, backend="b")
        delta = snapshot_delta(before, reg.snapshot())
        series = delta["metrics"]["repro_test_calls_total"]["series"]
        assert sorted(series.values()) == [1, 2]

    def test_counter_below_previous_is_a_reset(self):
        # Prometheus rate() convention: a drop means the registry was
        # cleared, and the current value *is* the increment since then.
        reg = self._registry()
        reg.counter("repro_test_calls_total").add(7)
        high = reg.snapshot()
        fresh = self._registry()
        fresh.counter("repro_test_calls_total").add(2)
        delta = snapshot_delta(high, fresh.snapshot())
        assert list(delta["metrics"]["repro_test_calls_total"]["series"].values()) == [2]

    def test_unchanged_counter_is_dropped(self):
        reg = self._registry()
        reg.counter("repro_test_calls_total").add(4)
        snap = reg.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta == {"schema": 1, "metrics": {}}

    def test_gauges_pass_through(self):
        reg = self._registry()
        reg.gauge("repro_test_gauge").set(9)
        snap = reg.snapshot()
        # Gauges are instantaneous: same value in prev and curr still shows.
        delta = snapshot_delta(snap, snap)
        assert list(delta["metrics"]["repro_test_gauge"]["series"].values()) == [9]

    def test_histogram_subtracts_bucketwise(self):
        reg = self._registry()
        hist = reg.histogram("repro_test_seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        before = reg.snapshot()
        hist.observe(20.0)
        delta = snapshot_delta(before, reg.snapshot())
        series = next(iter(delta["metrics"]["repro_test_seconds"]["series"].values()))
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(20.0)
        assert series["buckets"] == [0, 0, 1]

    def test_histogram_count_drop_taken_wholesale(self):
        reg = self._registry()
        hist = reg.histogram("repro_test_seconds", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(0.6)
        high = reg.snapshot()
        fresh = self._registry()
        fresh.histogram("repro_test_seconds", buckets=(1.0,)).observe(2.0)
        delta = snapshot_delta(high, fresh.snapshot())
        series = next(iter(delta["metrics"]["repro_test_seconds"]["series"].values()))
        assert series["count"] == 1
        assert series["buckets"] == [0, 1]

    def test_unknown_kind_rejected(self):
        bad = {"schema": 1, "metrics": {"x": {"kind": "summary"}}}
        with pytest.raises(ObsError, match="unknown kind"):
            snapshot_delta({"schema": 1, "metrics": {}}, bad)


class TestTelemetryWriter:
    def test_flush_appends_delta_records(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        clock = Clock(100.0)
        writer = TelemetryWriter(tmp_path, "w1", registry=reg, clock=clock)
        reg.counter("repro_test_total").add(3)
        writer.note_task(1.5)
        writer.set_current("fp-a")
        first = writer.flush()
        assert first["seq"] == 1
        assert first["ts"] == pytest.approx(100.0)
        assert first["tasks_done"] == 1
        assert first["walls"] == [1.5]
        assert first["current"] == "fp-a"
        assert list(
            first["delta"]["metrics"]["repro_test_total"]["series"].values()
        ) == [3]

        clock.t = 105.0
        second = writer.flush()  # idle interval: empty delta, no walls
        assert second["seq"] == 2
        assert second["walls"] == []
        assert second["delta"]["metrics"] == {}

        lines = (tmp_path / "w1.jsonl").read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]

    def test_disabled_registry_writes_nothing(self, tmp_path):
        writer = TelemetryWriter(
            tmp_path, "w1", registry=MetricsRegistry(enabled=False)
        )
        assert writer.flush() is None
        assert not (tmp_path / "w1.jsonl").exists()

    def test_mark_reset_rebases_the_delta_baseline(self, tmp_path):
        # flush -> owner resets the registry -> mark_reset: the next
        # flush must carry the full post-reset increments even when they
        # exceed the pre-reset value (where one-sided reset detection in
        # snapshot_delta alone would under-count).
        reg = MetricsRegistry(enabled=True)
        writer = TelemetryWriter(tmp_path, "w1", registry=reg)
        reg.counter("repro_test_calls_total").add(3)
        writer.flush()
        reg.reset()
        writer.mark_reset()
        reg.counter("repro_test_calls_total").add(5)
        rec = writer.flush()
        assert list(rec["delta"]["metrics"]["repro_test_calls_total"]["series"].values()) == [5]

    def test_flight_mirror_fed_non_empty_deltas_only(self, tmp_path):
        class Sink:
            def __init__(self):
                self.calls = []

            def record_metrics(self, seq, delta):
                self.calls.append((seq, delta))

        reg = MetricsRegistry(enabled=True)
        writer = TelemetryWriter(tmp_path, "w1", registry=reg)
        writer.flight = Sink()
        writer.flush()  # empty delta: not mirrored
        reg.counter("repro_test_calls_total").add(1)
        writer.flush()
        assert [seq for seq, _ in writer.flight.calls] == [2]


class TestTelemetryTail:
    def test_consumes_only_complete_lines(self, tmp_path):
        path = tmp_path / "w1.jsonl"
        path.write_text(
            json.dumps(record("w1", 1, 10.0, 0)) + "\n" + '{"worker": "w1"'
        )
        tail = TelemetryTail(tmp_path)
        assert [r["seq"] for r in tail.new_records()] == [1]
        assert tail.new_records() == []  # torn tail not consumed
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(', "seq": 2, "ts": 11.0}\n')
        assert [r["seq"] for r in tail.new_records()] == [2]

    def test_skips_garbage_and_workerless_lines(self, tmp_path):
        (tmp_path / "w1.jsonl").write_text(
            "not json\n"
            + json.dumps({"seq": 1, "ts": 1.0}) + "\n"
            + json.dumps(record("w1", 2, 2.0, 1)) + "\n"
        )
        (tmp_path / "w1.flight.json").write_text("{}")  # dumps share the dir
        records = TelemetryTail(tmp_path).new_records()
        assert [(r["worker"], r["seq"]) for r in records] == [("w1", 2)]

    def test_merges_workers_in_timestamp_order(self, tmp_path):
        (tmp_path / "b.jsonl").write_text(
            json.dumps(record("b", 1, 5.0, 0)) + "\n"
        )
        (tmp_path / "a.jsonl").write_text(
            json.dumps(record("a", 1, 3.0, 0)) + "\n"
            + json.dumps(record("a", 2, 7.0, 1)) + "\n"
        )
        records = TelemetryTail(tmp_path).new_records()
        assert [(r["worker"], r["ts"]) for r in records] == [
            ("a", 3.0), ("b", 5.0), ("a", 7.0)
        ]

    def test_missing_directory_is_empty(self, tmp_path):
        assert TelemetryTail(tmp_path / "nope").new_records() == []


class TestFleetSeries:
    def test_window_must_be_positive(self):
        with pytest.raises(ObsError, match="window"):
            FleetSeries(window=0.0)

    def test_rate_from_cumulative_counts(self):
        fleet = FleetSeries()
        fleet.ingest([
            record("w1", 1, 100.0, 0),
            record("w1", 2, 110.0, 5),
            record("w1", 3, 120.0, 10),
        ])
        assert fleet.rate("w1", now=120.0) == pytest.approx(0.5)
        assert fleet.tasks_done("w1") == 10
        assert fleet.fleet_rate(120.0) == pytest.approx(0.5)

    def test_rate_window_trims_old_samples(self):
        fleet = FleetSeries(window=8.0)
        fleet.ingest([
            record("w1", 1, 0.0, 0),
            record("w1", 2, 10.0, 100),
            record("w1", 3, 20.0, 110),
        ])
        # Only the last 8 seconds count: (110-100) / (20-10).
        assert fleet.rate("w1", now=20.0) == pytest.approx(1.0)
        wide = FleetSeries(window=100.0)
        wide.ingest([
            record("w1", 1, 0.0, 0),
            record("w1", 2, 10.0, 100),
            record("w1", 3, 20.0, 110),
        ])
        assert wide.rate("w1", now=20.0) == pytest.approx(5.5)

    def test_single_sample_has_no_rate(self):
        fleet = FleetSeries()
        fleet.ingest([record("w1", 1, 100.0, 4)])
        assert fleet.rate("w1", now=100.0) == 0.0
        assert fleet.rate("ghost", now=100.0) == 0.0

    def test_duplicate_and_stale_seq_dropped(self):
        fleet = FleetSeries()
        batch = [record("w1", 1, 100.0, 1), record("w1", 2, 110.0, 2)]
        assert fleet.ingest(batch) == 2
        # Re-reading the file from offset zero must be harmless.
        assert fleet.ingest(batch) == 0
        assert fleet.tasks_done("w1") == 2

    def test_eta_from_fleet_rate(self):
        fleet = FleetSeries()
        fleet.ingest([
            record("w1", 1, 100.0, 0),
            record("w1", 2, 120.0, 10),
        ])
        assert fleet.eta_seconds(10, now=120.0) == pytest.approx(20.0)
        assert fleet.eta_seconds(0, now=120.0) == 0.0
        idle = FleetSeries()
        idle.ingest([record("w1", 1, 100.0, 0)])
        assert idle.eta_seconds(10, now=120.0) is None

    def _straggler_fleet(self, slow_walls) -> FleetSeries:
        fleet = FleetSeries()
        fleet.ingest([
            record("w1", 1, 100.0, 40, walls=[1.0] * 40),
            record("w2", 1, 100.0, len(slow_walls), walls=slow_walls),
        ])
        return fleet

    def test_straggler_flagged_against_fleet_p90(self):
        fleet = self._straggler_fleet([30.0, 30.0, 30.0])
        assert fleet.fleet_p90() == pytest.approx(1.0)
        assert fleet.worker_p90("w2") == pytest.approx(30.0)
        assert fleet.stragglers() == ["w2"]

    def test_straggler_needs_min_samples(self):
        fleet = self._straggler_fleet([30.0, 30.0])  # below min_samples=3
        assert fleet.stragglers() == []

    def test_lone_worker_never_flags(self):
        fleet = FleetSeries()
        fleet.ingest([record("w1", 1, 100.0, 3, walls=[9.0, 9.0, 9.0])])
        assert fleet.stragglers() == []

    def test_merged_snapshot_sums_worker_deltas(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_test_calls_total").add(3)
        delta = reg.snapshot()
        fleet = FleetSeries()
        fleet.ingest([
            record("w1", 1, 100.0, 1, delta=delta),
            record("w2", 1, 101.0, 1, delta=delta),
        ])
        merged = fleet.merged_snapshot()
        assert list(merged["metrics"]["repro_test_calls_total"]["series"].values()) == [6]

    def test_summary_digest(self):
        fleet = self._straggler_fleet([30.0, 30.0, 30.0])
        fleet.ingest([record("w1", 2, 120.0, 80, current="fp-live")])
        summary = fleet.summary(now=121.0, remaining=4)
        assert summary["schema"] == TIMESERIES_SCHEMA
        assert summary["fleet"]["tasks_done"] == 83
        assert summary["fleet"]["stragglers"] == ["w2"]
        assert summary["fleet"]["remaining"] == 4
        assert summary["fleet"]["eta_seconds"] == pytest.approx(
            4 / summary["fleet"]["rate_per_second"], rel=1e-3
        )
        w1 = summary["workers"]["w1"]
        assert w1["rate_per_second"] == pytest.approx(2.0)
        assert w1["straggler"] is False
        assert w1["current"] == "fp-live"
        assert w1["last_report_age_seconds"] == pytest.approx(1.0)
        assert summary["workers"]["w2"]["straggler"] is True

    def test_from_queue_dir_reads_telemetry_subdir(self, tmp_path):
        tdir = tmp_path / "telemetry"
        tdir.mkdir()
        (tdir / "w1.jsonl").write_text(
            json.dumps(record("w1", 1, 100.0, 2)) + "\n"
        )
        fleet = FleetSeries.from_queue_dir(tmp_path)
        assert fleet.workers() == ["w1"]
        assert fleet.tasks_done("w1") == 2
        assert FleetSeries.from_queue_dir(tmp_path / "empty").workers() == []

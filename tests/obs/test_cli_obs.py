"""CLI observability plumbing: --trace/--metrics, ``info``, ``obs report``.

These run through :func:`repro.cli.main` in-process, so the autouse obs
reset in ``tests/conftest.py`` keeps the global registry clean between
cases.  The campaign case uses real subprocess workers, proving the
``REPRO_OBS`` hand-off and the JSON-over-stdio span return path.
"""

from __future__ import annotations

import json

from repro import obs
from repro.cli import main
from repro.obs.export import load_trace, validate_chrome_trace


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_info_reports_toolkit_state(capsys):
    code, out, _ = run(capsys, "info")
    assert code == 0
    assert "repro version" in out
    assert "engine backends" in out
    assert "python" in out
    assert "observability     : disabled" in out


def test_trace_and_metrics_flags_enable_and_write(capsys, tmp_path):
    trace = tmp_path / "report.trace.json"
    metrics = tmp_path / "report.prom"
    code, _, err = run(
        capsys, "report", "cmb", "--trace", str(trace), "--metrics", str(metrics)
    )
    assert code == 0
    assert f"trace written to {trace}" in err
    assert f"metrics written to {metrics}" in err
    assert obs.enabled()  # the flags switched recording on (fixture restores)

    raw = json.loads(trace.read_text())
    validate_chrome_trace(raw)
    records = load_trace(str(trace))
    assert any(r["name"] == "engine.compile" for r in records)
    text = metrics.read_text()
    assert "# TYPE repro_engine_compile_cache_misses_total counter" in text


def test_metrics_json_extension_writes_snapshot(capsys, tmp_path):
    metrics = tmp_path / "m.json"
    code, _, _ = run(capsys, "report", "cmb", "--metrics", str(metrics))
    assert code == 0
    snap = json.loads(metrics.read_text())
    assert snap["schema"] == 1
    assert "repro_engine_compile_cache_misses_total" in snap["metrics"]


def test_campaign_run_trace_reconstructs_runner_timeline(capsys, tmp_path):
    """The ISSUE acceptance: ``repro campaign run --trace t.json`` yields a
    Chrome trace whose shard spans reconstruct the runner timeline, with
    worker spans stitched in from the subprocess pids."""
    trace = tmp_path / "camp.trace.json"
    ckpt = tmp_path / "camp.jsonl"
    code, _, _ = run(
        capsys,
        "campaign", "run", str(ckpt),
        "--circuits", "comparator2",
        "--modes", "seu",
        "--shards", "2",
        "--vectors", "6",
        "--workers", "1",
        "--trace", str(trace),
    )
    assert code == 0
    validate_chrome_trace(json.loads(trace.read_text()))
    records = load_trace(str(trace))
    by_name: dict[str, list] = {}
    for rec in records:
        by_name.setdefault(rec["name"], []).append(rec)
    assert len(by_name["campaign.run"]) == 1
    assert len(by_name["campaign.shard"]) == 2
    assert len(by_name["campaign.worker_shard"]) == 2
    run_span = by_name["campaign.run"][0]
    # shard spans nest under the run span, on the runner's pid
    for shard_span in by_name["campaign.shard"]:
        assert shard_span["parent"] == run_span["id"]
        assert shard_span["pid"] == run_span["pid"]
        assert shard_span["args"]["outcome"] == "done"
    # worker spans arrived from *other* processes and fit inside the
    # runner's wall-clock envelope (epoch-anchored timestamps line up)
    t0, t1 = run_span["ts_us"], run_span["ts_us"] + run_span["dur_us"]
    for worker_span in by_name["campaign.worker_shard"]:
        assert worker_span["pid"] != run_span["pid"]
        assert t0 <= worker_span["ts_us"] <= worker_span["ts_us"] + \
            worker_span["dur_us"] <= t1


def test_obs_report_summarizes_a_trace(capsys, tmp_path):
    trace = tmp_path / "t.trace.json"
    code, _, _ = run(capsys, "report", "cmb", "--trace", str(trace))
    assert code == 0
    code, out, _ = run(capsys, "obs", "report", str(trace))
    assert code == 0
    assert "engine:engine.compile" in out
    assert "trace envelope" in out


def test_obs_report_bad_file_is_a_tool_error(capsys, tmp_path):
    bad = tmp_path / "nope.json"
    code, _, err = run(capsys, "obs", "report", str(bad))
    assert code == 2
    assert "error" in err

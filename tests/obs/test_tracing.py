"""Span tracing: nesting, thread isolation, ingest, and the no-op path."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.tracing import NOOP_SPAN, SPAN_FIELDS, TraceCollector, Tracer


def fake_clocks():
    """Deterministic ns clocks: wall anchored at an epoch, perf/cpu at 0."""
    wall = itertools.count(1_700_000_000_000_000_000, 1_000_000)
    perf = itertools.count(0, 500_000)
    cpu = itertools.count(0, 200_000)
    return (lambda: next(wall)), (lambda: next(perf)), (lambda: next(cpu))


def collector(enabled: bool = True, pid: int = 4242) -> TraceCollector:
    wall, perf, cpu = fake_clocks()
    return TraceCollector(
        enabled=enabled, wall_ns=wall, perf_ns=perf, cpu_ns=cpu, pid=pid
    )


def test_disabled_tracer_returns_the_shared_noop_span():
    tracer = Tracer("t", collector(enabled=False))
    span = tracer.span("x", a=1)
    assert span is NOOP_SPAN
    with span as s:
        s.set(b=2)  # must be a silent no-op


def test_span_records_have_canonical_fields_and_timing():
    coll = collector()
    tracer = Tracer("engine", coll)
    with tracer.span("compile", circuit="cmb") as span:
        span.set(gates=40)
    (rec,) = coll.records()
    assert tuple(rec) == SPAN_FIELDS
    assert rec["name"] == "compile" and rec["cat"] == "engine"
    assert rec["args"] == {"circuit": "cmb", "gates": 40}
    assert rec["pid"] == 4242
    assert rec["dur_us"] == 500 and rec["cpu_us"] == 200
    assert rec["parent"] is None


def test_nested_spans_parent_correctly():
    coll = collector()
    tracer = Tracer("t", coll)
    with tracer.span("outer"):
        with tracer.span("mid"):
            with tracer.span("inner"):
                pass
        with tracer.span("mid2"):
            pass
    recs = {r["name"]: r for r in coll.records()}
    assert recs["inner"]["parent"] == recs["mid"]["id"]
    assert recs["mid"]["parent"] == recs["outer"]["id"]
    assert recs["mid2"]["parent"] == recs["outer"]["id"]
    assert recs["outer"]["parent"] is None


def test_exception_marks_span_and_propagates():
    coll = collector()
    tracer = Tracer("t", coll)
    with pytest.raises(ValueError):
        with tracer.span("work"):
            raise ValueError("boom")
    (rec,) = coll.records()
    assert rec["args"]["error"] == "ValueError"


def test_two_threads_build_independent_span_trees():
    coll = collector()
    tracer = Tracer("t", coll)
    barrier = threading.Barrier(2)

    def work(label: str) -> None:
        with tracer.span("outer", who=label):
            barrier.wait(timeout=10)  # both outers open concurrently
            with tracer.span("inner", who=label):
                pass

    threads = [threading.Thread(target=work, args=(w,)) for w in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    recs = coll.records()
    assert len(recs) == 4
    outers = {r["args"]["who"]: r for r in recs if r["name"] == "outer"}
    inners = [r for r in recs if r["name"] == "inner"]
    ids = [r["id"] for r in recs]
    assert len(set(ids)) == 4  # unique ids under concurrency
    for inner in inners:
        # each inner is parented to its *own thread's* outer, never the
        # other thread's (the regression a shared stack would cause)
        assert inner["parent"] == outers[inner["args"]["who"]]["id"]
        assert inner["tid"] == outers[inner["args"]["who"]]["tid"]


def test_ingest_remaps_foreign_ids_preserving_structure():
    worker = collector(pid=7)
    wt = Tracer("campaign", worker)
    with wt.span("worker_shard"):
        with wt.span("child"):
            pass
    runner = collector(pid=1)
    with Tracer("campaign", runner).span("shard"):
        pass
    runner.ingest(worker.records())
    recs = runner.records()
    by_name = {r["name"]: r for r in recs}
    assert len({r["id"] for r in recs}) == 3
    assert by_name["child"]["parent"] == by_name["worker_shard"]["id"]
    assert by_name["worker_shard"]["pid"] == 7  # provenance survives ingest


def test_ingest_rejects_malformed_records():
    with pytest.raises(ObsError, match="malformed"):
        collector().ingest([{"nope": 1}])


def test_jsonl_sink_streams_records(tmp_path):
    import json

    path = tmp_path / "spans.jsonl"
    coll = collector()
    coll.set_jsonl(str(path))
    with Tracer("t", coll).span("a"):
        pass
    with Tracer("t", coll).span("b"):
        pass
    coll.set_jsonl(None)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in lines] == ["a", "b"]


def test_module_configure_round_trip():
    assert not obs.enabled()
    obs.configure(enabled=True)
    try:
        assert obs.enabled()
        with obs.get_tracer("t").span("x"):
            pass
        assert [r["name"] for r in obs.span_records()] == ["x"]
    finally:
        obs.configure(enabled=False)
        obs.reset()
    assert obs.span_records() == []


def test_env_var_parsing():
    assert obs.enabled_from_env({"REPRO_OBS": "1"})
    assert obs.enabled_from_env({"REPRO_OBS": "true"})
    assert obs.enabled_from_env({"REPRO_OBS": " On "})
    assert not obs.enabled_from_env({"REPRO_OBS": "0"})
    assert not obs.enabled_from_env({"REPRO_OBS": "off"})
    assert not obs.enabled_from_env({})


def test_env_var_unknown_token_raises():
    with pytest.raises(ObsError) as exc:
        obs.enabled_from_env({"REPRO_OBS": "trace"})
    message = str(exc.value)
    assert "REPRO_OBS" in message and "'trace'" in message
    assert "'on'" in message and "'off'" in message  # names valid choices

"""``repro obs serve``: routes, exposition validity, queue-dir attachment."""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.exec.queuedir import QueuePolicy, WorkQueue
from repro.exec.task import Task
from repro.obs.serve import (
    PROMETHEUS_CONTENT_TYPE,
    LiveSource,
    QueueDirSource,
    start_server,
)
from repro.obs.timeseries import TIMESERIES_SCHEMA

#: name{labels}? value — every sample line of a text exposition.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def _get(server, path: str):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


def _assert_valid_exposition(body: str) -> None:
    for line in body.rstrip("\n").splitlines():
        if line.startswith("#"):
            continue
        assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"
        float(line.rsplit(" ", 1)[1])  # value must parse


@pytest.fixture
def server_factory():
    servers = []

    def factory(source):
        server = start_server(source, host="127.0.0.1", port=0)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.shutdown()
        server.server_close()


class TestLiveSource:
    def test_metrics_healthz_and_404(self, server_factory):
        obs.configure(enabled=True)
        obs.get_meter().counter(
            "repro_serve_test_total", "serve test counter"
        ).add(2)
        server = server_factory(LiveSource())
        assert server.port != 0  # port 0 bound a real free port

        status, ctype, body = _get(server, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "repro_serve_test_total 2" in body
        _assert_valid_exposition(body)

        status, ctype, body = _get(server, "/healthz")
        assert status == 200
        assert ctype == "application/json"
        health = json.loads(body)
        assert health == {"ok": True, "mode": "live", "recording": True}

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read())["ok"] is False

    def test_snapshot_without_fleet(self, server_factory):
        server = server_factory(LiveSource())
        _, _, body = _get(server, "/snapshot.json")
        doc = json.loads(body)
        assert doc["fleet"] is None
        assert "metrics" in doc["metrics"]


class TestQueueDirSource:
    def _queue_with_telemetry(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", QueuePolicy(lease_ttl=5.0))
        fps = [
            queue.publish_task(
                Task(kind="exec.probe", payload={"value": k}, key=k)
            )
            for k in range(3)
        ]
        queue.try_claim(fps[0], "w1", 0)
        queue.write_heartbeat("w1", "busy", tasks_done=5, current=fps[0])
        now = time.time()
        tdir = queue.root / "telemetry"
        tdir.mkdir(exist_ok=True)
        with open(tdir / "w1.jsonl", "w", encoding="utf-8") as handle:
            for seq, (ts, done) in enumerate(
                [(now - 10.0, 0), (now, 5)], start=1
            ):
                handle.write(json.dumps({
                    "schema": TIMESERIES_SCHEMA, "ts": ts, "worker": "w1",
                    "seq": seq, "tasks_done": done, "walls": [0.5] * done,
                    "current": fps[0],
                    "delta": {"schema": 1, "metrics": {}},
                }) + "\n")
        return queue

    def test_fleet_gauges_from_queue_scan(self, tmp_path, server_factory):
        queue = self._queue_with_telemetry(tmp_path)
        server = server_factory(QueueDirSource(queue.root))

        _, ctype, body = _get(server, "/metrics")
        assert ctype == PROMETHEUS_CONTENT_TYPE
        _assert_valid_exposition(body)
        assert 'repro_fleet_tasks{state="todo"} 2' in body
        assert 'repro_fleet_tasks{state="claimed"} 1' in body
        assert "repro_fleet_workers 1" in body
        assert 'repro_fleet_rate_tasks_per_second{worker="w1"} 0.5' in body
        assert "repro_fleet_eta_seconds" in body
        assert 'repro_fleet_worker_straggler{worker="w1"} 0' in body

        _, _, body = _get(server, "/healthz")
        health = json.loads(body)
        assert health["mode"] == "queue-dir"
        assert health["todo"] == 2
        assert health["claimed"] == 1
        assert health["workers"] == 1
        assert health["stopped"] is False

        _, _, body = _get(server, "/snapshot.json")
        doc = json.loads(body)
        assert doc["fleet"]["workers"]["w1"]["tasks_done"] == 5
        assert doc["fleet"]["workers"]["w1"]["current"] is not None
        assert doc["fleet"]["fleet"]["remaining"] == 3

    def test_attaches_to_finished_queue(self, tmp_path, server_factory):
        queue = self._queue_with_telemetry(tmp_path)
        queue.stop()
        server = server_factory(QueueDirSource(queue.root))
        _, _, body = _get(server, "/metrics")
        assert "repro_fleet_queue_stopped 1" in body
        # Serving is read-only: repeated scrapes leave the queue unchanged.
        before = sorted(p.name for p in (queue.root / "todo").iterdir())
        _get(server, "/metrics")
        assert sorted(p.name for p in (queue.root / "todo").iterdir()) \
            == before

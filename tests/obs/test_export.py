"""Exporters: golden Prometheus text, golden Chrome trace, round trips.

The golden files under ``tests/obs/golden/`` pin the exact exposition
bytes.  Both exporters are deterministic functions of their input, and
the inputs here are built from injected clocks and fixed pids/tids, so a
byte diff means the wire format changed — bump the goldens consciously.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.errors import ObsError
from repro.obs.export import (
    chrome_trace,
    load_trace,
    render_prometheus,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.tracing import TraceCollector, Tracer

GOLDEN = Path(__file__).resolve().parent / "golden"


def sample_snapshot() -> dict:
    registry = MetricsRegistry(enabled=True)
    calls = registry.counter(
        "repro_engine_eval_calls_total", "word-batch evaluation calls"
    )
    calls.add(3, backend="python", kind="binary")
    calls.add(1, backend="numpy", kind="binary")
    registry.gauge("repro_engine_ir_gates", "gates in the lowered IR").set(40)
    hist = registry.histogram(
        "repro_campaign_shard_seconds",
        "wall seconds per completed shard",
        buckets=(0.1, 1.0, 10.0),
    )
    for value in (0.05, 0.5, 0.75, 20.0):
        hist.observe(value)
    return registry.snapshot()


def sample_records() -> list[dict]:
    wall = itertools.count(1_700_000_000_000_000_000, 1_000_000)
    perf = itertools.count(0, 500_000)
    cpu = itertools.count(0, 200_000)
    coll = TraceCollector(
        enabled=True,
        wall_ns=lambda: next(wall),
        perf_ns=lambda: next(perf),
        cpu_ns=lambda: next(cpu),
        pid=4242,
    )
    tracer = Tracer("campaign", coll)
    with tracer.span("campaign.run", shards=2):
        with tracer.span("campaign.shard", shard=0) as span:
            span.set(outcome="done")
    records = coll.records()
    for rec in records:  # tids are interpreter-assigned; pin for the golden
        rec["tid"] = 7
    return records


def test_prometheus_exposition_matches_golden():
    assert render_prometheus(sample_snapshot()) == (
        GOLDEN / "metrics.prom"
    ).read_text()


def test_chrome_trace_matches_golden_and_validates():
    trace = chrome_trace(sample_records())
    validate_chrome_trace(trace)
    rendered = json.dumps(trace, indent=2, sort_keys=True) + "\n"
    assert rendered == (GOLDEN / "trace.json").read_text()


def test_prometheus_histogram_buckets_are_cumulative():
    text = render_prometheus(sample_snapshot())
    lines = [ln for ln in text.splitlines() if ln.startswith(
        "repro_campaign_shard_seconds_bucket")]
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
    assert counts == [1, 3, 3, 4]  # le=0.1, 1.0, 10.0, +Inf
    assert 'le="+Inf"' in lines[-1]


def test_validate_rejects_malformed_traces():
    with pytest.raises(ObsError, match="missing top-level"):
        validate_chrome_trace({})
    with pytest.raises(ObsError, match="missing field"):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ObsError, match="unsupported phase"):
        validate_chrome_trace(
            {"traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
            ]}
        )


@pytest.mark.parametrize("filename", ["trace.json", "trace.jsonl"])
def test_trace_round_trip_both_formats(tmp_path, filename):
    records = sample_records()
    path = tmp_path / filename
    write_trace(str(path), records)
    loaded = load_trace(str(path))
    assert loaded == records


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ObsError, match="not valid JSONL"):
        load_trace(str(path))
    path = tmp_path / "missing.jsonl"
    with pytest.raises(ObsError, match="cannot read"):
        load_trace(str(path))


def test_write_metrics_formats_by_extension(tmp_path):
    snap = sample_snapshot()
    prom = tmp_path / "m.prom"
    write_metrics(str(prom), snap)
    assert prom.read_text() == render_prometheus(snap)
    js = tmp_path / "m.json"
    write_metrics(str(js), snap)
    assert json.loads(js.read_text()) == snap


def test_trace_summary_totals():
    records = sample_records()
    summary = summarize_trace(records)
    by_name = {(r["cat"], r["name"]): r for r in summary["rows"]}
    assert by_name[("campaign", "campaign.run")]["count"] == 1
    assert by_name[("campaign", "campaign.shard")]["count"] == 1
    assert summary["spans"] == 2 and summary["processes"] == 1
    text = render_trace_summary(records)
    assert "campaign.run" in text and "campaign.shard" in text

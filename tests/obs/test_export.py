"""Exporters: golden Prometheus text, golden Chrome trace, round trips.

The golden files under ``tests/obs/golden/`` pin the exact exposition
bytes.  Both exporters are deterministic functions of their input, and
the inputs here are built from injected clocks and fixed pids/tids, so a
byte diff means the wire format changed — bump the goldens consciously.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.errors import ObsError
from repro.obs.export import (
    chrome_trace,
    load_trace,
    render_prometheus,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.tracing import TraceCollector, Tracer

GOLDEN = Path(__file__).resolve().parent / "golden"


def sample_snapshot() -> dict:
    registry = MetricsRegistry(enabled=True)
    calls = registry.counter(
        "repro_engine_eval_calls_total", "word-batch evaluation calls"
    )
    calls.add(3, backend="python", kind="binary")
    calls.add(1, backend="numpy", kind="binary")
    registry.gauge("repro_engine_ir_gates", "gates in the lowered IR").set(40)
    hist = registry.histogram(
        "repro_campaign_shard_seconds",
        "wall seconds per completed shard",
        buckets=(0.1, 1.0, 10.0),
    )
    for value in (0.05, 0.5, 0.75, 20.0):
        hist.observe(value)
    return registry.snapshot()


def sample_records() -> list[dict]:
    wall = itertools.count(1_700_000_000_000_000_000, 1_000_000)
    perf = itertools.count(0, 500_000)
    cpu = itertools.count(0, 200_000)
    coll = TraceCollector(
        enabled=True,
        wall_ns=lambda: next(wall),
        perf_ns=lambda: next(perf),
        cpu_ns=lambda: next(cpu),
        pid=4242,
    )
    tracer = Tracer("campaign", coll)
    with tracer.span("campaign.run", shards=2):
        with tracer.span("campaign.shard", shard=0) as span:
            span.set(outcome="done")
    records = coll.records()
    for rec in records:  # tids are interpreter-assigned; pin for the golden
        rec["tid"] = 7
    return records


def test_prometheus_exposition_matches_golden():
    assert render_prometheus(sample_snapshot()) == (
        GOLDEN / "metrics.prom"
    ).read_text()


def test_chrome_trace_matches_golden_and_validates():
    trace = chrome_trace(sample_records())
    validate_chrome_trace(trace)
    rendered = json.dumps(trace, indent=2, sort_keys=True) + "\n"
    assert rendered == (GOLDEN / "trace.json").read_text()


def test_prometheus_histogram_buckets_are_cumulative():
    text = render_prometheus(sample_snapshot())
    lines = [ln for ln in text.splitlines() if ln.startswith(
        "repro_campaign_shard_seconds_bucket")]
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
    assert counts == [1, 3, 3, 4]  # le=0.1, 1.0, 10.0, +Inf
    assert 'le="+Inf"' in lines[-1]


def test_validate_rejects_malformed_traces():
    with pytest.raises(ObsError, match="missing top-level"):
        validate_chrome_trace({})
    with pytest.raises(ObsError, match="missing field"):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ObsError, match="unsupported phase"):
        validate_chrome_trace(
            {"traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
            ]}
        )


@pytest.mark.parametrize("filename", ["trace.json", "trace.jsonl"])
def test_trace_round_trip_both_formats(tmp_path, filename):
    records = sample_records()
    path = tmp_path / filename
    write_trace(str(path), records)
    loaded = load_trace(str(path))
    assert loaded == records


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ObsError, match="not valid JSONL"):
        load_trace(str(path))
    path = tmp_path / "missing.jsonl"
    with pytest.raises(ObsError, match="cannot read"):
        load_trace(str(path))


def test_write_metrics_formats_by_extension(tmp_path):
    snap = sample_snapshot()
    prom = tmp_path / "m.prom"
    write_metrics(str(prom), snap)
    assert prom.read_text() == render_prometheus(snap)
    js = tmp_path / "m.json"
    write_metrics(str(js), snap)
    assert json.loads(js.read_text()) == snap


def test_trace_summary_totals():
    records = sample_records()
    summary = summarize_trace(records)
    by_name = {(r["cat"], r["name"]): r for r in summary["rows"]}
    assert by_name[("campaign", "campaign.run")]["count"] == 1
    assert by_name[("campaign", "campaign.shard")]["count"] == 1
    assert summary["spans"] == 2 and summary["processes"] == 1
    text = render_trace_summary(records)
    assert "campaign.run" in text and "campaign.shard" in text


def identity_records() -> list[dict]:
    """Two workers on two hosts whose *real* pids collide (4242 both)."""
    records = sample_records()
    for rec in records:
        rec["worker"], rec["host"] = "w1", "hostA"
    other = json.loads(json.dumps(records[0]))
    other["worker"], other["host"] = "w2", "hostB"
    return records + [other]


def test_chrome_trace_maps_identities_onto_synthetic_pids():
    trace = chrome_trace(identity_records())
    validate_chrome_trace(trace)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_worker = {e["args"]["worker"]: e for e in events}
    # Distinct synthetic pid per (worker, host), all above the real pids
    # so colliding multi-host pids cannot share a row.
    assert by_worker["w1"]["pid"] != by_worker["w2"]["pid"]
    assert all(e["pid"] > 4242 for e in events)
    # Per-identity tids restart from 1.
    assert by_worker["w1"]["tid"] == 1
    assert by_worker["w2"]["tid"] == 1
    process_names = {
        m["pid"]: m["args"]["name"]
        for m in trace["traceEvents"]
        if m["ph"] == "M" and m["name"] == "process_name"
    }
    assert process_names[by_worker["w1"]["pid"]] == "w1 @ hostA"
    assert process_names[by_worker["w2"]["pid"]] == "w2 @ hostB"
    thread_names = {
        (m["pid"], m["tid"]): m["args"]["name"]
        for m in trace["traceEvents"]
        if m["ph"] == "M" and m["name"] == "thread_name"
    }
    # The original (pid, tid) stays legible as the thread label.
    assert thread_names[(by_worker["w1"]["pid"], 1)] == "pid 4242 thread 7"


def test_chrome_trace_without_identity_is_byte_identical():
    # The single-process wire format must not change when no record
    # carries worker/host — the golden test pins it; this pins the
    # equality explicitly against a trace built after the identity pass.
    plain = sample_records()
    assert json.dumps(chrome_trace(plain), sort_keys=True) == json.dumps(
        chrome_trace([dict(r) for r in plain]), sort_keys=True
    )
    assert all(
        "worker" not in e.get("args", {})
        for e in chrome_trace(plain)["traceEvents"]
    )


def test_identity_round_trips_through_both_formats(tmp_path):
    records = identity_records()
    jsonl = tmp_path / "t.jsonl"
    write_trace(str(jsonl), records)
    assert load_trace(str(jsonl)) == records  # JSONL is lossless

    chrome = tmp_path / "t.json"
    write_trace(str(chrome), records)
    loaded = load_trace(str(chrome))
    # Chrome rows use synthetic pids, but the identity fields come back
    # to the top level and the span payload survives.
    assert [(r["worker"], r["host"]) for r in loaded] == [
        (r["worker"], r["host"]) for r in records
    ]
    assert [r["name"] for r in loaded] == [r["name"] for r in records]
    assert all("worker" not in r["args"] for r in loaded)

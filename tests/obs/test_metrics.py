"""Metrics registry: instruments, snapshots, and merge determinism."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    BATCH_BUCKETS,
    MetricsRegistry,
    label_key,
    merge_snapshots,
    parse_label_key,
)


def reg() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry()  # disabled by default
    registry.counter("repro_t_calls_total").add(5)
    registry.gauge("repro_t_depth").set(3)
    registry.histogram("repro_t_seconds").observe(0.1)
    assert registry.snapshot()["metrics"] == {}


def test_counter_accumulates_per_label_set():
    registry = reg()
    c = registry.counter("repro_t_calls_total", "calls")
    c.add()
    c.add(4, backend="numpy")
    c.add(2, backend="numpy")
    snap = registry.snapshot()
    assert snap["metrics"]["repro_t_calls_total"]["series"] == {
        "": 1,
        "backend=numpy": 6,
    }


def test_counter_rejects_negative():
    registry = reg()
    with pytest.raises(ObsError, match="cannot decrease"):
        registry.counter("repro_t_calls_total").add(-1)


def test_bad_metric_name_rejected():
    registry = reg()
    for bad in ("calls_total", "repro_Calls", "repro_x-y", ""):
        with pytest.raises(ObsError, match="convention"):
            registry.counter(bad)


def test_instrument_factories_are_idempotent_but_kind_checked():
    registry = reg()
    a = registry.counter("repro_t_calls_total")
    assert registry.counter("repro_t_calls_total") is a
    with pytest.raises(ObsError, match="already registered"):
        registry.gauge("repro_t_calls_total")


def test_gauge_set_and_high_water():
    registry = reg()
    g = registry.gauge("repro_t_nodes")
    g.set(10)
    g.set(4)
    assert registry.snapshot()["metrics"]["repro_t_nodes"]["series"][""] == 4
    g.set_max(2)
    assert registry.snapshot()["metrics"]["repro_t_nodes"]["series"][""] == 4
    g.set_max(9)
    assert registry.snapshot()["metrics"]["repro_t_nodes"]["series"][""] == 9


def test_histogram_upper_inclusive_buckets_and_overflow():
    registry = reg()
    h = registry.histogram("repro_t_batch", buckets=(1, 16, 64))
    for v in (1, 2, 16, 17, 64, 65, 10**9):
        h.observe(v)
    series = registry.snapshot()["metrics"]["repro_t_batch"]["series"][""]
    assert series["buckets"] == [1, 2, 2, 2]  # le=1, le=16, le=64, +Inf
    assert series["count"] == 7
    assert series["sum"] == 1 + 2 + 16 + 17 + 64 + 65 + 10**9


def test_histogram_bad_buckets_rejected():
    registry = reg()
    for bad in ((), (3, 1), (1, 1)):
        with pytest.raises(ObsError, match="sorted"):
            registry.histogram("repro_t_h", buckets=bad)


def test_label_key_roundtrip_and_validation():
    assert label_key({}) == ""
    key = label_key({"b": "x", "a": 1})
    assert key == "a=1,b=x"
    assert parse_label_key(key) == {"a": "1", "b": "x"}
    with pytest.raises(ObsError, match="may not contain"):
        label_key({"a": "x,y"})


def test_merge_is_commutative_and_kind_aware():
    a = reg()
    a.counter("repro_t_calls_total").add(3, backend="python")
    a.gauge("repro_t_nodes").set(10)
    a.histogram("repro_t_batch", buckets=BATCH_BUCKETS).observe(64)
    b = reg()
    b.counter("repro_t_calls_total").add(2, backend="python")
    b.counter("repro_t_calls_total").add(1, backend="numpy")
    b.gauge("repro_t_nodes").set(7)
    b.histogram("repro_t_batch", buckets=BATCH_BUCKETS).observe(100000)

    ab = merge_snapshots([a.snapshot(), b.snapshot()])
    ba = merge_snapshots([b.snapshot(), a.snapshot()])
    assert ab == ba
    m = ab["metrics"]
    assert m["repro_t_calls_total"]["series"] == {
        "backend=numpy": 1,
        "backend=python": 5,
    }
    assert m["repro_t_nodes"]["series"][""] == 10  # max wins
    hist = m["repro_t_batch"]["series"][""]
    assert hist["count"] == 2 and hist["sum"] == 100064


def test_merge_into_disabled_registry_still_works():
    src = reg()
    src.counter("repro_t_calls_total").add(5)
    dst = MetricsRegistry()  # disabled
    dst.merge_snapshot(src.snapshot())
    assert dst.snapshot()["metrics"]["repro_t_calls_total"]["series"][""] == 5


def test_merge_rejects_boundary_mismatch():
    src = reg()
    src.histogram("repro_t_h", buckets=(1, 2)).observe(1)
    dst = reg()
    dst.histogram("repro_t_h", buckets=(1, 2, 3)).observe(1)
    with pytest.raises(ObsError, match="boundary mismatch"):
        dst.merge_snapshot(src.snapshot())


def test_reset_clears_series_keeps_instruments():
    registry = reg()
    c = registry.counter("repro_t_calls_total")
    c.add(3)
    registry.reset()
    assert registry.snapshot()["metrics"] == {}
    c.add(1)  # same instrument object still records
    assert registry.snapshot()["metrics"]["repro_t_calls_total"]["series"][""] == 1


def test_two_threads_do_not_corrupt_the_registry():
    registry = reg()
    c = registry.counter("repro_t_calls_total")
    h = registry.histogram("repro_t_batch", buckets=(10, 100))
    n = 2000

    def pound(tid: int) -> None:
        for i in range(n):
            c.add(1, thread=tid)
            h.observe(i % 150)

    threads = [threading.Thread(target=pound, args=(t,)) for t in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = registry.snapshot()["metrics"]
    assert snap["repro_t_calls_total"]["series"] == {"thread=0": n, "thread=1": n}
    hist = snap["repro_t_batch"]["series"][""]
    assert hist["count"] == 2 * n
    assert sum(hist["buckets"]) == 2 * n

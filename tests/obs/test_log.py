"""Structured logging: correlation binding, buffer bounds, sink mirror."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.log import (
    LogBuffer,
    StructuredLogger,
    correlation,
    correlation_id,
    render_jsonl,
)


class Clock:
    def __init__(self, t: float = 50.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestCorrelation:
    def test_default_is_none(self):
        assert correlation_id() is None

    def test_nesting_restores_previous_id(self):
        with correlation("outer"):
            assert correlation_id() == "outer"
            with correlation("inner"):
                assert correlation_id() == "inner"
            assert correlation_id() == "outer"
            # None explicitly clears (a worker between tasks).
            with correlation(None):
                assert correlation_id() is None
            assert correlation_id() == "outer"
        assert correlation_id() is None

    def test_exception_still_restores(self):
        try:
            with correlation("fp"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert correlation_id() is None


class TestLogBuffer:
    def test_disabled_buffer_is_a_noop(self):
        buffer = LogBuffer(enabled=False)
        logger = StructuredLogger("test", buffer)
        assert logger.info("event") is None
        assert buffer.records() == []

    def test_record_shape_and_correlation(self):
        buffer = LogBuffer(enabled=True, clock=Clock(50.0))
        logger = StructuredLogger("exec.test", buffer)
        plain = logger.info("task.start", shard=3)
        with correlation("fp-1"):
            tagged = logger.warning("task.slow", wall=9.5)
        assert plain == {
            "ts": 50.0, "level": "info", "logger": "exec.test",
            "event": "task.start", "shard": 3,
        }
        assert tagged["corr"] == "fp-1"
        assert tagged["level"] == "warning"
        assert "corr" not in plain
        assert [r["event"] for r in buffer.records()] == [
            "task.start", "task.slow"
        ]

    def test_buffer_is_bounded_oldest_first_out(self):
        buffer = LogBuffer(enabled=True, limit=3)
        logger = StructuredLogger("t", buffer)
        for i in range(5):
            logger.info(f"e{i}")
        assert [r["event"] for r in buffer.records()] == ["e2", "e3", "e4"]

    def test_sink_mirrors_records(self):
        class Sink:
            def __init__(self):
                self.seen = []

            def record_log(self, record):
                self.seen.append(record)

        buffer = LogBuffer(enabled=True)
        buffer.sink = Sink()
        StructuredLogger("t", buffer).error("boom", code=3)
        assert [r["event"] for r in buffer.sink.seen] == ["boom"]

    def test_reset_clears(self):
        buffer = LogBuffer(enabled=True)
        StructuredLogger("t", buffer).info("e")
        buffer.reset()
        assert buffer.records() == []

    def test_render_jsonl_round_trips(self):
        buffer = LogBuffer(enabled=True, clock=Clock(1.0))
        logger = StructuredLogger("t", buffer)
        logger.info("a", x=1)
        logger.debug("b")
        text = render_jsonl(buffer.records())
        parsed = [json.loads(line) for line in text.splitlines()]
        assert [r["event"] for r in parsed] == ["a", "b"]


class TestGlobalLoggers:
    def test_get_logger_shares_the_process_buffer(self):
        obs.configure(enabled=True)
        logger = obs.get_logger("campaign.test")
        assert obs.get_logger("campaign.test") is logger
        with obs.correlation("fp-9"):
            logger.info("shard.done", shard=1)
        records = obs.log_records()
        assert records[-1]["event"] == "shard.done"
        assert records[-1]["corr"] == "fp-9"
        assert records[-1]["logger"] == "campaign.test"

    def test_disabled_process_records_nothing(self):
        obs.configure(enabled=False)
        obs.get_logger("quiet").info("dropped")
        assert obs.log_records() == []

"""Flight recorder: ring bounds, atomic dump round-trips, sink wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.flight import FLIGHT_SCHEMA, FlightRecorder, load_flight
from repro.obs.log import LogBuffer, StructuredLogger, correlation
from repro.obs.tracing import TraceCollector, Tracer


class Clock:
    def __init__(self, t: float = 200.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(worker="w", limit=2)
        for i in range(4):
            rec.record_log({"event": f"e{i}"})
        assert [e["event"] for e in rec.entries()] == ["e2", "e3"]

    def test_entry_kinds_tagged(self):
        rec = FlightRecorder(worker="w", clock=Clock(200.0))
        rec.record_span_open("job", "test", 1000, 7, "fp-1")
        rec.record_log({"event": "working"})
        rec.record_metrics(3, {"schema": 1, "metrics": {}})
        rec.record_span({"name": "job", "dur_us": 5})
        kinds = [e["kind"] for e in rec.entries()]
        assert kinds == ["span-open", "log", "metrics", "span"]
        openm = rec.entries()[0]
        assert openm["corr"] == "fp-1"
        assert openm["id"] == 7
        metrics = rec.entries()[2]
        assert metrics["seq"] == 3
        assert metrics["ts"] == 200.0

    def test_span_open_without_correlation_omits_corr(self):
        rec = FlightRecorder()
        rec.record_span_open("job", "test", 0, 1, None)
        assert "corr" not in rec.entries()[0]

    def test_reset_clears(self):
        rec = FlightRecorder()
        rec.record_log({"event": "e"})
        rec.reset()
        assert rec.entries() == []


class TestDump:
    def test_dump_document_shape(self):
        rec = FlightRecorder(worker="w9", clock=Clock(333.5))
        rec.record_log({"event": "e"})
        doc = rec.dump(trigger="breaker")
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["worker"] == "w9"
        assert doc["trigger"] == "breaker"
        assert doc["dumped_at"] == 333.5
        assert [e["event"] for e in doc["entries"]] == ["e"]

    def test_dump_to_round_trips_and_is_atomic(self, tmp_path):
        rec = FlightRecorder(worker="w")
        rec.record_log({"event": "e", "corr": "fp"})
        target = tmp_path / "deep" / "w.flight.json"
        path = rec.dump_to(target, trigger="quarantine")
        assert path == target
        doc = load_flight(target)
        assert doc["trigger"] == "quarantine"
        assert doc["entries"][0]["corr"] == "fp"
        # No temp litter after the rename.
        assert list(target.parent.iterdir()) == [target]

    @pytest.mark.parametrize("payload", [
        "[]", '{"schema": 99, "entries": []}', '{"schema": 1}',
    ])
    def test_load_flight_rejects_malformed(self, tmp_path, payload):
        path = tmp_path / "bad.flight.json"
        path.write_text(payload)
        with pytest.raises(ValueError):
            load_flight(path)

    def test_load_flight_rejects_garbage_json(self, tmp_path):
        path = tmp_path / "torn.flight.json"
        path.write_text('{"schema": 1, "entr')  # torn write
        with pytest.raises(ValueError):
            load_flight(path)


class TestSinkWiring:
    def test_collector_sink_sees_open_and_closed_spans(self):
        coll = TraceCollector(enabled=True)
        rec = FlightRecorder(worker="w")
        coll.sink = rec
        tracer = Tracer("test", coll)
        with correlation("fp-1"):
            with tracer.span("job", shard=2):
                pass
        kinds = [e["kind"] for e in rec.entries()]
        assert kinds == ["span-open", "span"]
        opened, closed = rec.entries()
        # The open marker lands in the ring when the span *starts*, so a
        # SIGKILL mid-task still leaves the in-flight work visible.
        assert opened["corr"] == "fp-1"
        assert opened["name"] == "job"
        assert closed["args"]["corr"] == "fp-1"

    def test_log_buffer_sink(self):
        buffer = LogBuffer(enabled=True)
        rec = FlightRecorder()
        buffer.sink = rec
        with correlation("fp-2"):
            StructuredLogger("t", buffer).info("working")
        entry = rec.entries()[0]
        assert entry["kind"] == "log"
        assert entry["corr"] == "fp-2"

    def test_install_flight_recorder_wires_everything(self, tmp_path):
        obs.configure(enabled=True)
        installed = obs.install_flight_recorder(FlightRecorder(worker="me"))
        assert obs.flight_recorder() is installed
        with obs.correlation("fp-3"):
            with obs.get_tracer("test").span("task"):
                obs.get_logger("test").info("inside")
        kinds = [e["kind"] for e in installed.entries()]
        assert kinds == ["span-open", "log", "span"]
        assert all(
            e.get("corr", e.get("args", {}).get("corr")) == "fp-3"
            for e in installed.entries()
        )
        # Uninstall detaches the sinks: nothing further is recorded.
        obs.install_flight_recorder(None)
        assert obs.flight_recorder() is None
        with obs.get_tracer("test").span("after"):
            pass
        assert [e["kind"] for e in installed.entries()] == kinds

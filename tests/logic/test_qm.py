"""Tests for Quine–McCluskey prime generation and greedy covers."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic import Cube, minimal_cover, prime_implicants, primes_of_truth_table


def covers_exactly(cubes, on, width):
    got = set()
    for c in cubes:
        got |= set(c.minterms())
    return got == set(on)


def is_prime(cube, on_set, width):
    """No literal can be dropped without covering an off-set minterm."""
    for pos in range(width):
        if cube.values[pos] == 2:
            continue
        bigger = cube.expand_position(pos)
        if set(bigger.minterms()) <= set(on_set):
            return False
    return True


def test_known_example():
    # f = a'b' + ab  (XNOR): primes are exactly the two minterm pairs? No —
    # XNOR of 2 vars has primes 00 and 11 (no merging possible).
    primes = prime_implicants([0, 3], 2)
    assert {str(p) for p in primes} == {"00", "11"}


def test_full_function_single_prime():
    primes = prime_implicants(list(range(8)), 3)
    assert [str(p) for p in primes] == ["---"]


def test_classic_qm_textbook():
    # f(a,b,c,d) with on-set {4,8,10,11,12,15}, a classic example.
    on = [4, 8, 10, 11, 12, 15]
    primes = prime_implicants(on, 4)
    # The textbook answer: exactly these five prime implicants.
    assert {str(p) for p in primes} == {"-100", "1-00", "10-0", "101-", "1-11"}
    # Every prime must be prime and inside the on-set.
    for p in primes:
        assert set(p.minterms()) <= set(on)
        assert is_prime(p, on, 4)


def test_out_of_range_rejected():
    with pytest.raises(LogicError):
        prime_implicants([9], 3)


def test_primes_of_truth_table():
    # 2-bit AND
    on, off = primes_of_truth_table([False, False, False, True])
    assert [str(p) for p in on] == ["11"]
    assert {str(p) for p in off} == {"0-", "-0"}
    with pytest.raises(LogicError):
        primes_of_truth_table([True, False, True])


@given(st.sets(st.integers(min_value=0, max_value=31), max_size=20))
@settings(max_examples=60, deadline=None)
def test_primes_are_prime_and_sound(on):
    width = 5
    on = sorted(on)
    primes = prime_implicants(on, width)
    union = set()
    for p in primes:
        minterms = set(p.minterms())
        assert minterms <= set(on)  # soundness
        assert is_prime(p, on, width)  # primality
        union |= minterms
    assert union == set(on)  # completeness of the union of primes


@given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_minimal_cover_covers_exactly(on):
    width = 5
    cover = minimal_cover(sorted(on), width)
    assert covers_exactly(cover, sorted(on), width)


@given(
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=8),
    st.sets(st.integers(min_value=0, max_value=15), max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_minimal_cover_with_dont_cares(on, dc):
    width = 4
    dc = dc - on
    cover = minimal_cover(sorted(on), width, dont_cares=sorted(dc))
    covered = set()
    for c in cover:
        covered |= set(c.minterms())
    assert set(on) <= covered
    assert covered <= set(on) | set(dc)

"""Tests for the Boolean expression parser and AST."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.errors import ExprSyntaxError
from repro.logic import BoolExpr, parse_expr


def all_assignments(names):
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))


@pytest.mark.parametrize(
    "text,reference",
    [
        ("a & b", lambda a, b: a and b),
        ("a | b", lambda a, b: a or b),
        ("a ^ b", lambda a, b: a != b),
        ("~a", lambda a, b: not a),
        ("a'", lambda a, b: not a),
        ("!a | !b", lambda a, b: not a or not b),
        ("a * b + a' * b'", lambda a, b: a == b),
        ("~(a & b)", lambda a, b: not (a and b)),
        ("(a | b) & (a' | b')", lambda a, b: a != b),
        ("1", lambda a, b: True),
        ("0 | a", lambda a, b: a),
    ],
)
def test_parse_and_evaluate(text, reference):
    expr = parse_expr(text)
    for asgn in all_assignments(["a", "b"]):
        assert expr.evaluate(asgn) == reference(asgn["a"], asgn["b"]), text


def test_operator_precedence():
    # NOT > AND > XOR > OR
    expr = parse_expr("a | b & c")
    for asgn in all_assignments(["a", "b", "c"]):
        assert expr.evaluate(asgn) == (asgn["a"] or (asgn["b"] and asgn["c"]))
    expr = parse_expr("a ^ b | c")
    for asgn in all_assignments(["a", "b", "c"]):
        assert expr.evaluate(asgn) == ((asgn["a"] != asgn["b"]) or asgn["c"])
    expr = parse_expr("~a & b")
    for asgn in all_assignments(["a", "b"]):
        assert expr.evaluate(asgn) == ((not asgn["a"]) and asgn["b"])


def test_postfix_complement_stacks():
    expr = parse_expr("a''")
    assert expr.evaluate({"a": True}) is True
    assert expr.evaluate({"a": False}) is False


def test_variables():
    assert parse_expr("(a & b) | ~c").variables() == {"a", "b", "c"}
    assert parse_expr("1").variables() == set()


@pytest.mark.parametrize(
    "bad", ["", "a &", "& a", "(a", "a)", "a b", "a @ b", "~", "()"]
)
def test_syntax_errors(bad):
    with pytest.raises(ExprSyntaxError):
        parse_expr(bad)


def test_evaluate_missing_variable():
    with pytest.raises(ExprSyntaxError):
        parse_expr("a & b").evaluate({"a": True})


def test_to_function_matches_evaluate():
    names = ["a", "b", "c"]
    mgr = BddManager(names)
    expr = parse_expr("(a ^ b) | (b & ~c)")
    fn = expr.to_function(mgr)
    for asgn in all_assignments(names):
        assert fn.evaluate(asgn) == expr.evaluate(asgn)


def test_to_function_with_rename():
    mgr = BddManager(["x", "y"])
    expr = parse_expr("a & ~b")
    fn = expr.to_function(mgr, rename={"a": "x", "b": "y"})
    assert fn == (mgr.var("x") & mgr.nvar("y"))


def test_ast_constructors_and_str_roundtrip():
    a, b = BoolExpr.var("a"), BoolExpr.var("b")
    expr = (a & ~b) | (a ^ b)
    reparsed = parse_expr(str(expr))
    for asgn in all_assignments(["a", "b"]):
        assert reparsed.evaluate(asgn) == expr.evaluate(asgn)

"""Tests for two-level minimization passes."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.logic import Cover, expand, irredundant, minimize, single_cube_containment

NAMES = ("a", "b", "c", "d")


def equivalent(x: Cover, y: Cover) -> bool:
    for bits in itertools.product([False, True], repeat=len(NAMES)):
        asgn = dict(zip(NAMES, bits))
        if x.evaluate(asgn) != y.evaluate(asgn):
            return False
    return True


def test_single_cube_containment_drops_contained():
    cov = Cover.from_strings(NAMES, ["1---", "11--", "110-"])
    out = single_cube_containment(cov)
    assert [str(c) for c in out.cubes] == ["1---"]


def test_single_cube_containment_keeps_overlapping():
    cov = Cover.from_strings(NAMES, ["1---", "-1--"])
    out = single_cube_containment(cov)
    assert out.num_cubes == 2


def test_irredundant_drops_consensus_cube():
    # ab + a'c + bc : bc is redundant (consensus of the other two).
    cov = Cover.from_strings(("a", "b", "c"), ["11-", "0-1", "-11"])
    out = irredundant(cov)
    assert out.num_cubes == 2
    mgr = BddManager(("a", "b", "c"))
    assert out.to_function(mgr) == cov.to_function(mgr)


def test_expand_grows_within_upper_bound():
    mgr = BddManager(NAMES)
    cov = Cover.from_strings(NAMES, ["1100"])
    upper = mgr.var("a")
    out = expand(cov, upper, mgr)
    assert out.num_cubes == 1
    assert out.cubes[0].literal_count() < 4
    assert out.to_function(mgr).is_subset_of(upper)


cover_st = st.lists(
    st.text(alphabet="01-", min_size=4, max_size=4), min_size=1, max_size=6
).map(lambda rows: Cover.from_strings(NAMES, rows))


@given(cover_st)
@settings(max_examples=60, deadline=None)
def test_minimize_preserves_function(cov):
    out = minimize(cov)
    assert equivalent(cov, out)
    assert out.num_cubes <= cov.num_cubes


@given(cover_st)
@settings(max_examples=60, deadline=None)
def test_scc_preserves_function(cov):
    assert equivalent(cov, single_cube_containment(cov))

"""Tests for algebraic factoring."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Cover, factor, literal_kernels, weak_divide
from repro.logic.cube import Cube

NAMES = ("a", "b", "c", "d", "e")


def count_literals(expr) -> int:
    if expr.op == "var":
        return 1
    if expr.op == "const":
        return 0
    return sum(count_literals(a) for a in expr.args)


def test_product_of_sums_recovered():
    # ac + ad + bc + bd == (a|b)(c|d): factoring should halve the literals.
    cov = Cover.from_strings(NAMES, ["1-1--", "1--1-", "-11--", "-1-1-"])
    expr = factor(cov)
    assert count_literals(expr) == 4


def test_single_cube_is_product_term():
    cov = Cover.from_strings(NAMES, ["10-1-"])
    expr = factor(cov)
    assert count_literals(expr) == 3


def test_empty_cover_is_constant_false():
    expr = factor(Cover(NAMES))
    assert expr.op == "const" and expr.value is False


def test_weak_divide_exact_division():
    # F = (a|b) & c  expanded: ac + bc, divisor (a|b)
    cov = Cover.from_strings(NAMES, ["1-1--", "-11--"])
    divisor = Cover.from_strings(NAMES, ["1----", "-1---"])
    quotient, remainder = weak_divide(cov, divisor)
    assert [str(c) for c in quotient.cubes] == ["--1--"]
    assert remainder.num_cubes == 0


def test_weak_divide_with_remainder():
    cov = Cover.from_strings(NAMES, ["1-1--", "-11--", "---11"])
    divisor = Cover.from_strings(NAMES, ["1----", "-1---"])
    quotient, remainder = weak_divide(cov, divisor)
    assert [str(c) for c in quotient.cubes] == ["--1--"]
    assert [str(c) for c in remainder.cubes] == ["---11"]


def test_literal_kernels_found():
    cov = Cover.from_strings(NAMES, ["11---", "1-1--"])
    kernels = literal_kernels(cov)
    assert any(
        {str(c) for c in k.cubes} == {"-1---", "--1--"} for k in kernels
    )


cover_st = st.lists(
    st.text(alphabet="01-", min_size=5, max_size=5), min_size=1, max_size=8
).map(lambda rows: Cover.from_strings(NAMES, sorted(set(rows))))


@given(cover_st)
@settings(max_examples=120, deadline=None)
def test_factor_preserves_function(cov):
    expr = factor(cov)
    for bits in itertools.product([False, True], repeat=len(NAMES)):
        asgn = dict(zip(NAMES, bits))
        assert expr.evaluate(asgn) == cov.evaluate(asgn)


@given(cover_st)
@settings(max_examples=60, deadline=None)
def test_factor_never_increases_literals(cov):
    expr = factor(cov)
    assert count_literals(expr) <= max(cov.literal_count(), 1)

"""Tests for SOP covers."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.errors import LogicError
from repro.logic import Cover, Cube


def test_from_strings_and_evaluate():
    cov = Cover.from_strings(("a", "b", "c"), ["1-0", "01-"])
    assert cov.evaluate({"a": True, "b": False, "c": False})
    assert cov.evaluate({"a": False, "b": True, "c": True})
    assert not cov.evaluate({"a": False, "b": False, "c": True})


def test_width_mismatch_rejected():
    with pytest.raises(LogicError):
        Cover(("a", "b"), (Cube.from_string("1-0"),))


def test_from_cube_dicts():
    cov = Cover.from_cube_dicts(("a", "b"), [{"a": True}, {"b": False}])
    assert cov.num_cubes == 2
    assert cov.evaluate({"a": True, "b": True})
    assert cov.evaluate({"a": False, "b": False})
    assert not cov.evaluate({"a": False, "b": True})
    with pytest.raises(LogicError):
        Cover.from_cube_dicts(("a",), [{"zz": True}])


def test_to_function_matches_evaluate():
    names = ("a", "b", "c")
    cov = Cover.from_strings(names, ["11-", "--0"])
    mgr = BddManager(names)
    fn = cov.to_function(mgr)
    for bits in itertools.product([False, True], repeat=3):
        asgn = dict(zip(names, bits))
        assert fn.evaluate(asgn) == cov.evaluate(asgn)


def test_to_function_rename():
    cov = Cover.from_strings(("a",), ["1"])
    mgr = BddManager(["net7"])
    fn = cov.to_function(mgr, rename={"a": "net7"})
    assert fn == mgr.var("net7")


def test_literal_count_and_sorting():
    cov = Cover.from_strings(("a", "b", "c"), ["111", "1--", "-10"])
    assert cov.literal_count() == 6
    ordered = cov.sorted_by_literal_count()
    assert [c.literal_count() for c in ordered.cubes] == [1, 2, 3]


def test_without_cube():
    cov = Cover.from_strings(("a", "b"), ["1-", "-0"])
    assert cov.without_cube(0).cubes == cov.cubes[1:]


def test_empty_cover_is_false():
    cov = Cover(("a", "b"))
    assert not cov.evaluate({"a": True, "b": True})
    assert cov.to_expr_string() == "0"
    mgr = BddManager(["a", "b"])
    assert cov.to_function(mgr).is_false


def test_expr_string_parses_back():
    from repro.logic import parse_expr

    names = ("a", "b", "c")
    cov = Cover.from_strings(names, ["1-0", "-11"])
    expr = parse_expr(cov.to_expr_string())
    for bits in itertools.product([False, True], repeat=3):
        asgn = dict(zip(names, bits))
        assert expr.evaluate(asgn) == cov.evaluate(asgn)

"""Tests for positional cubes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic import DASH, ONE, ZERO, Cube, merge_adjacent

cubes_st = st.lists(
    st.sampled_from([ZERO, ONE, DASH]), min_size=1, max_size=6
).map(lambda vs: Cube(tuple(vs)))


def test_from_string_roundtrip():
    c = Cube.from_string("1-0")
    assert c.values == (ONE, DASH, ZERO)
    assert str(c) == "1-0"


def test_from_string_rejects_garbage():
    with pytest.raises(LogicError):
        Cube.from_string("1x0")


def test_invalid_value_rejected():
    with pytest.raises(LogicError):
        Cube((0, 1, 7))


def test_full_and_minterm_constructors():
    assert Cube.full(3).values == (DASH, DASH, DASH)
    # variable 0 is the MSB
    assert Cube.from_minterm(4, 3).values == (ONE, ZERO, ZERO)
    assert Cube.from_minterm(1, 3).values == (ZERO, ZERO, ONE)
    with pytest.raises(LogicError):
        Cube.from_minterm(8, 3)


def test_from_literals():
    c = Cube.from_literals({0: True, 2: False}, 3)
    assert str(c) == "1-0"
    with pytest.raises(LogicError):
        Cube.from_literals({5: True}, 3)


def test_literal_count_and_literals():
    c = Cube.from_string("1-0-")
    assert c.literal_count() == 2
    assert c.literals() == {0: True, 2: False}


def test_contains_minterm():
    c = Cube.from_string("1-0")
    assert c.contains_minterm([1, 0, 0])
    assert c.contains_minterm([1, 1, 0])
    assert not c.contains_minterm([0, 1, 0])
    with pytest.raises(LogicError):
        c.contains_minterm([1, 0])


def test_covers():
    big = Cube.from_string("1--")
    small = Cube.from_string("1-0")
    assert big.covers(small)
    assert not small.covers(big)
    assert big.covers(big)


def test_intersect():
    a = Cube.from_string("1--")
    b = Cube.from_string("-01")
    assert str(a.intersect(b)) == "101"
    assert a.intersect(Cube.from_string("0--")) is None


def test_distance():
    assert Cube.from_string("10-").distance(Cube.from_string("01-")) == 2
    assert Cube.from_string("1--").distance(Cube.from_string("-0-")) == 0


def test_cofactor():
    c = Cube.from_string("1-0")
    assert str(c.cofactor(0, True)) == "--0"
    assert c.cofactor(0, False) is None
    assert str(c.cofactor(1, True)) == "1-0"


def test_minterms_enumeration():
    c = Cube.from_string("1-0")
    assert sorted(c.minterms()) == [4, 6]
    assert c.num_minterms() == 2
    assert Cube.full(2).num_minterms() == 4


def test_to_dict_and_expr_string():
    c = Cube.from_string("1-0")
    assert c.to_dict(("a", "b", "c")) == {"a": True, "c": False}
    assert c.to_expr_string(("a", "b", "c")) == "a & ~c"
    assert Cube.full(2).to_expr_string(("a", "b")) == "1"


def test_merge_adjacent():
    a, b = Cube.from_string("101"), Cube.from_string("111")
    assert str(merge_adjacent(a, b)) == "1-1"
    # non-adjacent pairs
    assert merge_adjacent(Cube.from_string("10-"), Cube.from_string("011")) is None
    assert merge_adjacent(Cube.from_string("1--"), Cube.from_string("10-")) is None
    assert merge_adjacent(a, a) is None


@given(cubes_st, cubes_st)
@settings(max_examples=100, deadline=None)
def test_intersect_is_exact(a, b):
    if a.width != b.width:
        return
    inter = a.intersect(b)
    a_min = set(a.minterms())
    b_min = set(b.minterms())
    if inter is None:
        assert not (a_min & b_min)
    else:
        assert set(inter.minterms()) == (a_min & b_min)


@given(cubes_st)
@settings(max_examples=60, deadline=None)
def test_minterm_count_consistent(c):
    assert len(list(c.minterms())) == c.num_minterms()
    for m in c.minterms():
        bits = [(m >> (c.width - 1 - i)) & 1 for i in range(c.width)]
        assert c.contains_minterm(bits)

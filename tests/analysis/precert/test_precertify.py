"""Pre-certification classification: domains, facts, witnesses, budgets."""

import pytest

from repro.analysis.precert import PrecertConfig, precertify
from repro.analysis.precert.precertify import resolve_targets
from repro.benchcircuits import comparator2
from repro.engine import compile_circuit
from repro.errors import PrecertError
from repro.sim.eventsim import two_vector_waveforms
from repro.sta.timing import threshold_target


@pytest.fixture(scope="module")
def compiled():
    return compile_circuit(comparator2())


@pytest.fixture(scope="module")
def certs(compiled):
    return precertify(compiled)


def test_comparator_classification_counts(certs):
    # The paper's Fig. 2 comparator at the default 90% target: 9 obligations,
    # 5 statically discharged, 1 refuted by a replayed witness, 3 left for
    # the BDD plane.
    counts = certs.counts()
    assert len(certs) == 9
    assert counts == {"discharged": 5, "refuted": 1, "required": 3}
    assert certs.discharge_rate() == pytest.approx(5 / 9)


def test_every_obligation_is_covered(certs):
    assert all(c.verdict in ("discharged", "refuted", "required") for c in certs)
    assert all(c.kind in ("on-time", "all-late", "constant", "refuted", "required")
               for c in certs)


def test_on_time_facts_match_arrival(compiled, certs):
    arrival = compiled.arrival()
    seen = 0
    for cert in certs:
        if cert.kind != "on-time":
            continue
        seen += 1
        a = arrival[compiled.net_index[cert.node]]
        assert cert.facts["arrival"] == a
        # The discharge condition the SPCF prune relies on.
        assert cert.time >= a
        assert cert.domain == "arrival-interval"
    assert seen > 0


def test_all_late_facts_match_min_stable(compiled, certs):
    min_stable = compiled.min_stable()
    for cert in certs:
        if cert.kind != "all-late":
            continue
        m = min_stable[compiled.net_index[cert.node]]
        assert cert.facts["min_stable"] == m
        assert cert.time < m
        assert cert.domain == "min-stable"


def test_refuted_witness_replays_late(compiled, certs):
    refuted = [c for c in certs if c.verdict == "refuted"]
    assert len(refuted) == 1
    cert = refuted[0]
    assert cert.domain == "event-sim"
    waves = two_vector_waveforms(
        compiled,
        dict(zip(compiled.inputs, map(bool, cert.facts["v1"]))),
        dict(zip(compiled.inputs, map(bool, cert.facts["v2"]))),
    )
    wave = waves[cert.node]
    assert wave.settle_time == cert.facts["settle_time"]
    assert wave.settle_time > cert.time


def test_zero_refute_budget_disables_refutation(compiled):
    certs = precertify(compiled, config=PrecertConfig(refute_budget=0))
    counts = certs.counts()
    assert counts["refuted"] == 0
    # The would-be-refuted root falls back to required; nothing is lost from
    # the BDD plane's perspective (refuted and required both go there).
    assert counts["required"] == 4
    assert counts["discharged"] == 5


def test_constant_scan_finds_tied_nets(compiled, certs):
    # comparator2 has no constant nets; a circuit with one gets a
    # ternary-allx certificate keyed (net, None).
    assert all(c.kind != "constant" for c in certs)


def test_multi_target_set_shares_obligations(compiled):
    delta = compiled.critical_delay()
    targets = [threshold_target(delta, f) for f in (0.5, 0.9)]
    certs = precertify(compiled, targets=targets)
    assert certs.targets == tuple(sorted(set(targets)))
    single = precertify(compiled, targets=[targets[-1]])
    # Every single-target obligation reappears, same verdict, in the sweep.
    for cert in single:
        merged = certs.lookup(cert.node, cert.time)
        assert merged is not None
        assert merged.verdict == cert.verdict


def test_resolve_targets(compiled):
    assert resolve_targets(compiled, [7, 3, 7, 5], 0.9) == (3, 5, 7)
    default = resolve_targets(compiled, None, 0.9)
    assert default == (threshold_target(compiled.critical_delay(), 0.9),)
    with pytest.raises(PrecertError, match="at least one target"):
        resolve_targets(compiled, [], 0.9)


def test_config_validation():
    with pytest.raises(PrecertError, match="refute_budget"):
        PrecertConfig(refute_budget=-1)


def test_tighten_discharges_via_the_true_arrival_domain():
    from repro.benchcircuits import circuit_by_name

    bypass = circuit_by_name("bypass")
    compiled_bypass = compile_circuit(bypass)
    target = threshold_target(compiled_bypass.critical_delay(), 0.9)
    plain = precertify(bypass, targets=[target])
    tight = precertify(bypass, targets=[target], tighten={"y": target})
    assert tight.counts()["discharged"] == plain.counts()["discharged"] + 1
    cert = tight.lookup("y", target)
    assert cert is not None
    assert cert.verdict == "discharged"
    assert cert.domain == "true-arrival"
    assert cert.facts == {"kind": "on-time", "arrival": target}


def test_tighten_never_overrides_a_cheaper_classification(compiled):
    target = threshold_target(compiled.critical_delay(), 0.9)
    plain = precertify(compiled, targets=[target])
    # A tighten entry for a net the static planes already classified (or
    # one that is not tight enough) must leave every verdict unchanged.
    bound = {name: target + 1 for name in compiled.net_names}
    tight = precertify(compiled, targets=[target], tighten=bound)
    for cert in plain:
        other = tight.lookup(cert.node, cert.time)
        assert other is not None and other.verdict == cert.verdict
        assert other.domain == cert.domain

"""ABS009 audit: refuse tampered evidence, contradict unsound claims."""

import json

import pytest

from repro.analysis.absint import (
    PASS_REGISTRY,
    AbsintConfig,
    AbsintContext,
    analyze_circuit,
)
from repro.analysis.precert import (
    Certificate,
    CertificateSet,
    audit_certificates,
    circuit_fingerprint,
    precertify,
)
from repro.benchcircuits import circuit_by_name, comparator2, comparator_nbit
from repro.engine import compile_circuit


@pytest.fixture(scope="module")
def circuit():
    return comparator2()


@pytest.fixture(scope="module")
def compiled(circuit):
    return compile_circuit(circuit)


def _bogus_set(compiled, certs):
    """A *fresh* in-memory set (no stored fingerprints, so it passes the
    integrity check) whose claims are wrong — exercising the cross-check."""
    return CertificateSet(
        circuit_name=compiled.name,
        circuit_fp=circuit_fingerprint(compiled),
        targets=(0,),
        certificates={c.key: c for c in certs},
    )


@pytest.mark.parametrize(
    "name", ["comparator2", "comparator4", "full_adder", "cla4", "parity8"]
)
def test_genuine_certificates_audit_clean(name, lsi_lib):
    circuit = circuit_by_name(name, lsi_lib)
    certs = precertify(circuit)
    assert audit_certificates(circuit, certs) == []


def test_multi_target_certificates_audit_clean(circuit, compiled):
    delta = compiled.critical_delay()
    certs = precertify(circuit, targets=[delta // 2, delta - 1])
    assert audit_certificates(circuit, certs) == []


def test_bogus_on_time_is_contradicted(circuit, compiled):
    # The output is NOT stable by t=0 for every pattern; an on-time claim
    # there is a lie the exact plane must catch, with a witness pattern.
    y = compiled.outputs[0]
    cert = Certificate(
        y, 0, "discharged", "arrival-interval", {"kind": "on-time", "arrival": 0}
    )
    findings = audit_certificates(circuit, _bogus_set(compiled, [cert]))
    assert len(findings) == 1
    f = findings[0]
    assert f.kind == "contradicted"
    assert f.node == y and f.time == 0
    assert "settles after t" in f.message
    assert "witness" in f.data and f.data["late_count"] > 0


def test_bogus_all_late_is_contradicted(circuit, compiled):
    # At t = critical delay everything has settled; "no pattern can have
    # stabilized" is refutable by any pattern at all.
    y = compiled.outputs[0]
    t = compiled.critical_delay()
    cert = Certificate(
        y, t, "discharged", "min-stable", {"kind": "all-late", "min_stable": t + 1}
    )
    findings = audit_certificates(circuit, _bogus_set(compiled, [cert]))
    assert [f.kind for f in findings] == ["contradicted"]
    assert "settles by t" in findings[0].message


def test_bogus_constant_is_contradicted(circuit, compiled):
    y = compiled.outputs[0]  # the comparator output depends on its inputs
    cert = Certificate(
        y, None, "discharged", "ternary-allx", {"kind": "constant", "value": True}
    )
    findings = audit_certificates(circuit, _bogus_set(compiled, [cert]))
    assert [f.kind for f in findings] == ["contradicted"]
    assert "not the claimed constant" in findings[0].message


def test_malformed_refutation_witness_is_contradicted(circuit, compiled):
    y = compiled.outputs[0]
    cert = Certificate(
        y, 1, "refuted", "event-sim", {"kind": "refuted", "v1": "zz", "v2": None}
    )
    findings = audit_certificates(circuit, _bogus_set(compiled, [cert]))
    assert [f.kind for f in findings] == ["contradicted"]
    assert "malformed" in findings[0].message


def test_on_time_refutation_witness_is_contradicted(circuit, compiled):
    # v1 == v2 means no transition: the waveform settles immediately, so it
    # cannot witness lateness at the critical delay.
    y = compiled.outputs[0]
    n = compiled.n_inputs
    t = compiled.critical_delay()
    cert = Certificate(
        y,
        t,
        "refuted",
        "event-sim",
        {"kind": "refuted", "v1": [0] * n, "v2": [0] * n, "settle_time": t + 1},
    )
    findings = audit_certificates(circuit, _bogus_set(compiled, [cert]))
    assert [f.kind for f in findings] == ["contradicted"]
    assert "settles on time" in findings[0].message


def test_required_carries_no_claim(circuit, compiled):
    cert = Certificate(compiled.outputs[0], 0, "required", "none")
    assert audit_certificates(circuit, _bogus_set(compiled, [cert])) == []


def test_tampered_certificate_is_refused_not_crosschecked(circuit):
    certs = precertify(circuit)
    data = json.loads(certs.to_json())
    entry = next(
        e for e in data["certificates"] if e["facts"]["kind"] == "on-time"
    )
    # Rewrite the fact into an outright lie; with verify=False the set loads,
    # and the audit must refuse (not contradict) the edited entry.
    entry["facts"]["arrival"] = entry["facts"]["arrival"] + 100
    loaded = CertificateSet.from_json(json.dumps(data), verify=False)
    findings = audit_certificates(circuit, loaded)
    assert [f.kind for f in findings] == ["tampered"]
    assert findings[0].node == entry["node"]
    assert "fingerprint verification" in findings[0].message


def test_circuit_binding_mismatch_is_one_tampered_finding(circuit):
    other = comparator_nbit(4)
    certs = precertify(other)
    findings = audit_certificates(circuit, certs)
    assert [f.kind for f in findings] == ["tampered"]
    assert "different circuit" in findings[0].message


# ----------------------------------------------------------- pass integration


def _run_abs009(circuit, certs, config=None):
    cfg = config or AbsintConfig()
    ctx = AbsintContext(circuit, cfg)
    ctx._precert = certs  # pre-seed the lazy property with the set under test
    return list(PASS_REGISTRY["ABS009"].check(ctx, cfg))


def test_abs009_clean_on_genuine_certificates(circuit):
    assert _run_abs009(circuit, precertify(circuit)) == []


def test_abs009_distinct_diagnostics(circuit, compiled):
    certs = precertify(circuit)
    data = json.loads(certs.to_json())
    entry = next(
        e for e in data["certificates"] if e["facts"]["kind"] == "on-time"
    )
    entry["facts"]["arrival"] = entry["facts"]["arrival"] + 100
    tampered = CertificateSet.from_json(json.dumps(data), verify=False)
    findings = _run_abs009(circuit, tampered)
    assert len(findings) == 1
    location, message, hint, _severity, fdata = findings[0]
    assert location == f"{entry['node']}@t={entry['time']}"
    assert fdata["kind"] == "tampered"
    assert "integrity failure" in hint

    y = compiled.outputs[0]
    bogus = _bogus_set(
        compiled,
        [Certificate(y, 0, "discharged", "arrival-interval",
                     {"kind": "on-time", "arrival": 0})],
    )
    findings = _run_abs009(circuit, bogus)
    assert len(findings) == 1
    _, _, hint, _, fdata = findings[0]
    assert fdata["kind"] == "contradicted"
    assert "soundness bug" in hint


def test_abs009_gates_on_input_count(circuit):
    cfg = AbsintConfig(precert_max_inputs=2)  # comparator2 has 4 inputs
    bogus = _bogus_set(
        compile_circuit(circuit),
        [Certificate("y", 0, "discharged", "arrival-interval",
                     {"kind": "on-time", "arrival": 0})],
    )
    assert _run_abs009(circuit, bogus, cfg) == []


def test_abs010_summary_is_opt_in(circuit):
    default = analyze_circuit(circuit)
    assert not [d for d in default.diagnostics if d.rule_id == "ABS010"]
    report = analyze_circuit(circuit, AbsintConfig(report_precert=True))
    summaries = [d for d in report.diagnostics if d.rule_id == "ABS010"]
    assert summaries  # one line per analyzed output
    assert any("discharged statically" in d.message for d in summaries)

"""Certificate model integrity: fingerprints, JSON round-trip, tampering."""

import json

import pytest

from repro.analysis.precert import (
    Certificate,
    CertificateSet,
    circuit_fingerprint,
    precertify,
)
from repro.benchcircuits import comparator2, comparator_nbit
from repro.errors import PrecertError
from repro.netlist import lsi10k_like_library


@pytest.fixture()
def certs():
    return precertify(comparator2())


def test_round_trip_is_lossless(certs):
    text = certs.to_json()
    loaded = CertificateSet.from_json(text)
    assert loaded.circuit_name == certs.circuit_name
    assert loaded.circuit_fp == certs.circuit_fp
    assert loaded.targets == certs.targets
    assert len(loaded) == len(certs)
    for cert in certs:
        other = loaded.lookup(cert.node, cert.time)
        assert other is not None
        assert other.verdict == cert.verdict
        assert other.domain == cert.domain
        assert dict(other.facts) == dict(cert.facts)
    # Serialization is stable: a round-tripped set re-serializes identically.
    assert loaded.to_json() == text


def test_fresh_set_is_never_tampered(certs):
    assert certs.tampered() == []


def test_strict_load_rejects_edited_facts(certs):
    data = json.loads(certs.to_json())
    entry = next(
        e for e in data["certificates"] if e["facts"]["kind"] == "on-time"
    )
    entry["facts"]["arrival"] = entry["facts"]["arrival"] + 1
    with pytest.raises(PrecertError, match="fingerprint verification"):
        CertificateSet.from_json(json.dumps(data))


def test_strict_load_rejects_edited_verdict(certs):
    data = json.loads(certs.to_json())
    entry = next(e for e in data["certificates"] if e["verdict"] == "required")
    entry["verdict"] = "discharged"
    with pytest.raises(PrecertError, match="fingerprint verification"):
        CertificateSet.from_json(json.dumps(data))


def test_strict_load_rejects_edited_fingerprint(certs):
    data = json.loads(certs.to_json())
    fp = data["certificates"][0]["fingerprint"]
    data["certificates"][0]["fingerprint"] = ("0" if fp[0] != "0" else "1") + fp[1:]
    with pytest.raises(PrecertError, match="fingerprint verification"):
        CertificateSet.from_json(json.dumps(data))


def test_strict_load_rejects_rebound_circuit(certs):
    data = json.loads(certs.to_json())
    data["circuit_fingerprint"] = circuit_fingerprint(comparator_nbit(4))
    with pytest.raises(PrecertError, match="fingerprint verification"):
        CertificateSet.from_json(json.dumps(data))


def test_verify_false_load_flags_exactly_the_edit(certs):
    data = json.loads(certs.to_json())
    entry = next(
        e for e in data["certificates"] if e["facts"]["kind"] == "on-time"
    )
    entry["facts"]["arrival"] = 999
    loaded = CertificateSet.from_json(json.dumps(data), verify=False)
    bad = loaded.tampered()
    assert [c.key for c in bad] == [(entry["node"], entry["time"])]


def test_saving_a_tampered_set_does_not_resign_it(certs):
    data = json.loads(certs.to_json())
    entry = next(
        e for e in data["certificates"] if e["facts"]["kind"] == "on-time"
    )
    entry["facts"]["arrival"] = 999
    loaded = CertificateSet.from_json(json.dumps(data), verify=False)
    # Re-serializing keeps the stale stored fingerprint, so a strict load of
    # the re-saved file still rejects: tampering cannot be laundered.
    with pytest.raises(PrecertError, match="fingerprint verification"):
        CertificateSet.from_json(loaded.to_json())


def test_schema_and_shape_validation():
    with pytest.raises(PrecertError, match="schema"):
        CertificateSet.from_dict({"schema": "bogus/9"})
    with pytest.raises(PrecertError, match="malformed"):
        CertificateSet.from_dict({"schema": "repro-precert/1"})
    with pytest.raises(PrecertError, match="unreadable"):
        CertificateSet.from_json("{nope")
    with pytest.raises(PrecertError, match="must be an object"):
        CertificateSet.from_json("[1, 2]")


def test_certificate_field_validation():
    with pytest.raises(PrecertError, match="verdict"):
        Certificate("n", 1, "maybe", "none")
    with pytest.raises(PrecertError, match="domain"):
        Certificate("n", 1, "required", "vibes")


def test_matches_is_exact_structure(certs):
    assert certs.matches(comparator2())
    assert not certs.matches(comparator_nbit(4))


def test_fingerprint_is_deterministic_and_covers_delays():
    assert circuit_fingerprint(comparator2()) == circuit_fingerprint(comparator2())
    # Same topology, different pin delays (another cell library): new hash,
    # so certificates cannot be replayed across a retimed circuit.
    assert circuit_fingerprint(comparator2()) != circuit_fingerprint(
        comparator2(lsi10k_like_library())
    )

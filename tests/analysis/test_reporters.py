"""Text/JSON reporters: stable schema, stable rule ids."""

import json

from repro.analysis import (
    lint_circuit,
    lint_suite,
    render_json,
    render_json_many,
    render_text,
    render_text_many,
)
from repro.netlist import Circuit


def broken_circuit(unit_lib):
    c = Circuit("broken", inputs=["a"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("ghost", "a"))
    return c


def test_render_text_has_summary_line(unit_lib):
    text = render_text(lint_circuit(broken_circuit(unit_lib)))
    assert "LINT002" in text
    assert "broken: 1 finding(s) (1 error, 0 warning, 0 info)" in text


def test_render_json_schema(unit_lib):
    payload = json.loads(render_json(lint_circuit(broken_circuit(unit_lib))))
    assert payload["schema"] == "repro-lint/1"
    assert payload["circuit"] == "broken"
    assert payload["summary"] == {"info": 0, "warning": 0, "error": 1}
    (diag,) = payload["diagnostics"]
    assert diag["rule_id"] == "LINT002"
    assert diag["rule_name"] == "dangling-net"
    assert diag["severity"] == "error"
    assert diag["location"] == "g1"
    assert "ghost" in diag["message"]


def test_render_json_many_aggregates(unit_lib, lsi_lib):
    reports = lint_suite(lsi_lib, names=["cmb", "x2"])
    payload = json.loads(render_json_many(reports))
    assert payload["schema"] == "repro-lint/1"
    assert {c["circuit"] for c in payload["circuits"]} == {"cmb", "x2"}
    assert payload["summary"]["error"] == 0


def test_render_text_many_counts_circuits(lsi_lib):
    reports = lint_suite(lsi_lib, names=["cmb", "x2"])
    assert "linted 2 circuit(s)" in render_text_many(reports)

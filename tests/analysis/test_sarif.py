"""SARIF 2.1.0 reporter: structure, rule metadata, fingerprints."""

from __future__ import annotations

import json

from repro.analysis import Diagnostic, LintReport, Severity, render_sarif, sarif_log
from repro.analysis.absint import PASS_REGISTRY
from repro.analysis.rules import RULE_REGISTRY
from repro.analysis.sarif import FINGERPRINT_KEY, SARIF_SCHEMA_URI, SARIF_VERSION


def diag(severity=Severity.WARNING, data=None):
    return Diagnostic(
        rule_id="ABS005",
        rule_name="confirmed-hazard",
        severity=severity,
        circuit="comparator2",
        location="y",
        message="static-0 hazard",
        hint="mask it",
        data=data,
    )


def one_report(*diags):
    return {
        "comparator2": LintReport(
            circuit_name="comparator2",
            num_gates=7,
            num_inputs=4,
            num_outputs=1,
            diagnostics=tuple(diags),
        )
    }


def test_log_skeleton():
    log = sarif_log(one_report(diag()))
    assert log["version"] == SARIF_VERSION
    assert log["$schema"] == SARIF_SCHEMA_URI
    assert len(log["runs"]) == 1
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    assert driver["version"]


def test_rules_cover_lint_and_absint_registries():
    ids = [r["id"] for r in sarif_log(one_report())["runs"][0]["tool"]["driver"]["rules"]]
    assert ids == sorted(ids)
    assert set(ids) == set(RULE_REGISTRY) | set(PASS_REGISTRY)


def test_result_mapping():
    log = sarif_log(one_report(
        diag(severity=Severity.ERROR, data={"v1": [0, 0, 0, 1]})
    ))
    (result,) = log["runs"][0]["results"]
    assert result["ruleId"] == "ABS005"
    assert result["level"] == "error"
    assert "static-0 hazard" in result["message"]["text"]
    assert "mask it" in result["message"]["text"]
    loc = result["locations"][0]["logicalLocations"][0]
    assert loc["name"] == "y"
    assert loc["fullyQualifiedName"] == "comparator2/y"
    assert result["properties"]["data"] == {"v1": [0, 0, 0, 1]}


def test_severity_levels():
    levels = {
        s: sarif_log(one_report(diag(severity=s)))["runs"][0]["results"][0]["level"]
        for s in (Severity.INFO, Severity.WARNING, Severity.ERROR)
    }
    assert levels == {
        Severity.INFO: "note",
        Severity.WARNING: "warning",
        Severity.ERROR: "error",
    }


def test_partial_fingerprints_match_baseline_machinery():
    d = diag()
    (result,) = sarif_log(one_report(d))["runs"][0]["results"]
    assert result["partialFingerprints"] == {FINGERPRINT_KEY: d.fingerprint()}


def test_render_sarif_is_valid_json_and_multi_report():
    reports = one_report(diag())
    reports["other"] = LintReport(
        circuit_name="other", num_gates=0, num_inputs=0, num_outputs=0
    )
    payload = json.loads(render_sarif(reports))
    # both reports merge into a single run; the clean one adds no results
    assert len(payload["runs"]) == 1
    assert len(payload["runs"][0]["results"]) == 1

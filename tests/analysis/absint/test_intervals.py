"""Arrival-interval domain: lattice laws, fixpoint, and the STA cross-check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    ArrivalIntervalDomain,
    Interval,
    arrival_intervals,
    check_interval_consistency,
    run_fixpoint,
)
from repro.analysis.absint.intervals import BOTTOM
from repro.benchcircuits import circuit_by_name
from repro.engine import compile_circuit
from repro.netlist import lsi10k_like_library, unit_library

from tests.conftest import random_dag_circuit

SUITE = ["comparator2", "cmb", "full_adder", "ripple_adder4", "i1", "cu"]


# ---------------------------------------------------------------------------
# Lattice laws
# ---------------------------------------------------------------------------

intervals_st = st.builds(
    Interval,
    lo=st.integers(min_value=0, max_value=40),
    hi=st.integers(min_value=0, max_value=40),
)


def test_interval_basics():
    iv = Interval(2, 5)
    assert not iv.is_empty
    assert iv.contains(2) and iv.contains(5) and not iv.contains(6)
    assert BOTTOM.is_empty
    assert not BOTTOM.contains(0)


@settings(max_examples=60, deadline=None)
@given(a=intervals_st, b=intervals_st, c=intervals_st)
def test_join_is_least_upper_bound(a, b, c):
    dom = ArrivalIntervalDomain()
    j = dom.join(a, b)
    assert dom.leq(a, j) and dom.leq(b, j)
    # least: any common upper bound dominates the join
    if dom.leq(a, c) and dom.leq(b, c):
        assert dom.leq(j, c)
    assert dom.leq(BOTTOM, a)


@settings(max_examples=40, deadline=None)
@given(a=intervals_st, b=intervals_st)
def test_join_commutative_idempotent(a, b):
    dom = ArrivalIntervalDomain()
    assert dom.join(a, b) == dom.join(b, a)
    assert dom.leq(dom.join(a, a), a) and dom.leq(a, dom.join(a, a))
    if not a.is_empty:
        assert dom.join(a, BOTTOM) == a


# ---------------------------------------------------------------------------
# Fixpoint vs. STA on real circuits
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SUITE)
def test_intervals_consistent_with_sta(name):
    """The acceptance bar: [lo, hi] contains the exact arrival, every net."""
    compiled = compile_circuit(circuit_by_name(name))
    intervals = arrival_intervals(compiled)
    findings = list(
        check_interval_consistency(
            compiled, intervals, compiled.arrival(), compiled.min_stable()
        )
    )
    assert findings == []


@pytest.mark.parametrize("lib_name", ["unit", "lsi"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_intervals_consistent_on_random_dags(lib_name, seed):
    lib = unit_library() if lib_name == "unit" else lsi10k_like_library()
    c = random_dag_circuit(seed=seed, num_inputs=5, num_gates=25, library=lib)
    compiled = compile_circuit(c)
    intervals = arrival_intervals(compiled)
    assert list(
        check_interval_consistency(
            compiled, intervals, compiled.arrival(), compiled.min_stable()
        )
    ) == []


def test_fixpoint_is_deterministic():
    compiled = compile_circuit(circuit_by_name("cmb"))
    assert arrival_intervals(compiled) == arrival_intervals(compiled)
    assert arrival_intervals(compiled) == run_fixpoint(
        compiled, ArrivalIntervalDomain()
    )


# ---------------------------------------------------------------------------
# The audit actually fires on corrupted inputs
# ---------------------------------------------------------------------------


def test_audit_detects_arrival_outside_interval():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = arrival_intervals(compiled)
    bad_arrival = [a + 1000 for a in compiled.arrival()]
    findings = list(
        check_interval_consistency(
            compiled, intervals, bad_arrival, compiled.min_stable()
        )
    )
    assert findings
    assert all("outside certified interval" in msg for _, msg, _ in findings)
    assert all(d["arrival"] == d["hi"] + 1000 for _, _, d in findings)


def test_audit_detects_min_stable_below_lo():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = arrival_intervals(compiled)
    bad_ms = [0] * compiled.n_nets
    findings = list(
        check_interval_consistency(
            compiled, intervals, compiled.arrival(), bad_ms
        )
    )
    # every net with lo > 0 (i.e. every gate net) must be reported
    expected = sum(1 for iv in intervals if iv.lo > 0)
    assert len(findings) == expected > 0


def test_audit_detects_empty_interval():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = list(arrival_intervals(compiled))
    intervals[-1] = BOTTOM
    findings = list(
        check_interval_consistency(
            compiled, intervals, compiled.arrival(), compiled.min_stable()
        )
    )
    assert any("empty" in msg for _, msg, _ in findings)


def test_true_upper_inside_the_interval_is_silent():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = arrival_intervals(compiled)
    out = compiled.net_names[-1]
    idx = compiled.net_names.index(out)
    bound = {out: intervals[idx].hi}
    assert list(
        check_interval_consistency(
            compiled,
            intervals,
            compiled.arrival(),
            compiled.min_stable(),
            true_upper=bound,
        )
    ) == []


def test_audit_detects_true_upper_above_hi():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = arrival_intervals(compiled)
    out = compiled.net_names[-1]
    idx = compiled.net_names.index(out)
    findings = list(
        check_interval_consistency(
            compiled,
            intervals,
            compiled.arrival(),
            compiled.min_stable(),
            true_upper={out: intervals[idx].hi + 1},
        )
    )
    assert len(findings) == 1
    assert "pruning can only tighten" in findings[0][1]
    assert findings[0][2]["true_upper"] == intervals[idx].hi + 1


def test_audit_detects_true_upper_below_min_stable():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    intervals = arrival_intervals(compiled)
    out = compiled.net_names[-1]
    idx = compiled.net_names.index(out)
    ms = compiled.min_stable()[idx]
    findings = list(
        check_interval_consistency(
            compiled,
            intervals,
            compiled.arrival(),
            compiled.min_stable(),
            true_upper={out: ms - 1},
        )
    )
    assert any("undercuts" in msg for _, msg, _ in findings)

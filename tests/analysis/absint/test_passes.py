"""The ABS001-ABS008 pass pipeline end to end."""

from __future__ import annotations

import pytest

from repro.analysis import Severity
from repro.analysis.absint import (
    PASS_REGISTRY,
    AbsintConfig,
    analyze_circuit,
    analyze_suite,
    resolve_pass_ids,
)
from repro.benchcircuits import circuit_by_name
from repro.errors import AbsintError
from repro.netlist import Circuit


def rule_ids(report):
    return sorted({d.rule_id for d in report})


def findings(report, rule_id):
    return [d for d in report if d.rule_id == rule_id]


def test_registry_is_complete_and_stable():
    assert sorted(PASS_REGISTRY) == [
        f"ABS00{k}" for k in range(1, 10)
    ] + ["ABS010", "ABS011", "ABS012", "ABS013"]
    for pid, p in PASS_REGISTRY.items():
        assert p.rule_id == pid
        assert p.name and p.description


def test_resolve_pass_ids_accepts_ids_and_names():
    assert resolve_pass_ids({"ABS005"}) == frozenset({"ABS005"})
    assert resolve_pass_ids({"confirmed-hazard"}) == frozenset({"ABS005"})
    with pytest.raises(AbsintError):
        resolve_pass_ids({"ABS999"})


def test_config_validation():
    with pytest.raises(AbsintError):
        AbsintConfig(threshold=0.0)
    with pytest.raises(AbsintError):
        AbsintConfig(threshold=1.5)
    with pytest.raises(AbsintError):
        AbsintConfig(samples=-1)


def test_comparator2_full_report():
    """The paper's Fig. 2 circuit: confirmed hazards, clean consistency."""
    report = analyze_circuit(circuit_by_name("comparator2"))
    assert report.circuit_name == "comparator2"
    hazards = findings(report, "ABS005")
    assert hazards, "comparator2 must show confirmed hazards"
    assert all(d.location == "y" for d in hazards)
    assert any(d.severity is Severity.WARNING for d in hazards)
    for d in hazards:
        assert d.data is not None
        assert set(d.data) >= {"v1", "v2", "kind", "settle_time", "target"}
        if d.severity is Severity.WARNING:
            assert d.data["endangers_clock"]
            assert d.data["settle_time"] > d.data["target"]
    # internal-consistency audits must be silent on a healthy circuit
    assert not findings(report, "ABS007")
    assert not findings(report, "ABS008")


def test_loop_is_abs001_not_a_crash(unit_lib):
    c = Circuit("loopy", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("g2", "a"))
    c.add_gate("g2", unit_lib.get("OR2"), ("g1", "b"))
    report = analyze_circuit(c)
    hits = findings(report, "ABS001")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert set(hits[0].data["scc"]) == {"g1", "g2"}
    # IR-dependent passes must have been skipped silently
    assert not findings(report, "ABS005")


def test_dangling_netlist_does_not_raise(unit_lib):
    c = Circuit("dangle", inputs=["a"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("ghost", "a"))
    report = analyze_circuit(c)  # compile fails; needs_ir passes skip
    assert not findings(report, "ABS005")


def test_unreachable_gate_is_abs002(unit_lib):
    c = Circuit("dead", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("a", "b"))
    c.add_gate("g2", unit_lib.get("OR2"), ("a", "b"))  # feeds nothing
    report = analyze_circuit(c)
    hits = findings(report, "ABS002")
    assert len(hits) == 1
    assert hits[0].location == "g2"


def test_constant_net_is_abs003(unit_lib):
    c = Circuit("const", inputs=["a"], outputs=["y"])
    c.add_gate("na", unit_lib.get("INV"), ("a",))
    c.add_gate("c1", unit_lib.get("OR2"), ("a", "na"))  # tautology
    c.add_gate("y", unit_lib.get("AND2"), ("c1", "a"))
    report = analyze_circuit(c)
    hits = findings(report, "ABS003")
    assert [d.location for d in hits] == ["c1"]
    assert hits[0].data == {"net": "c1", "value": 1}


def test_fenced_x_is_abs004(unit_lib):
    c = Circuit("fenced", inputs=["a", "b"], outputs=["y"])
    c.add_gate("na", unit_lib.get("INV"), ("a",))
    c.add_gate("c0", unit_lib.get("AND2"), ("a", "na"))
    c.add_gate("g", unit_lib.get("AND2"), ("a", "b"))
    c.add_gate("gm", unit_lib.get("AND2"), ("g", "c0"))
    c.add_gate("y", unit_lib.get("OR2"), ("gm", "b"))
    report = analyze_circuit(c)
    # 'gm' itself is NOT fenced: forcing X there bypasses the constant-0
    # AND, so only the nets upstream of the fence are unobservable.
    assert {d.location for d in findings(report, "ABS004")} == {"na", "c0", "g"}


def test_report_potential_enables_abs006():
    config = AbsintConfig(
        report_potential=True, replay_budget=0, max_candidate_classes=0
    )
    report = analyze_circuit(circuit_by_name("comparator2"), config)
    # with no replay budget every X class stays a candidate
    assert not findings(report, "ABS005")
    assert findings(report, "ABS006")
    # default config never emits ABS006
    default = analyze_circuit(circuit_by_name("comparator2"))
    assert not findings(default, "ABS006")


def test_select_and_ignore():
    circuit = circuit_by_name("comparator2")
    only = analyze_circuit(circuit, AbsintConfig(select=frozenset({"ABS005"})))
    assert rule_ids(only) == ["ABS005"]
    none = analyze_circuit(
        circuit, AbsintConfig(ignore=frozenset({"confirmed-hazard"}))
    )
    assert "ABS005" not in rule_ids(none)


def test_explicit_target_overrides_threshold():
    circuit = circuit_by_name("comparator2")
    lax = analyze_circuit(circuit, AbsintConfig(target=10_000))
    # nothing can endanger a clock that slow: hazards all downgrade to INFO
    assert all(
        d.severity is Severity.INFO for d in findings(lax, "ABS005")
    )


def test_analyze_suite_subset():
    reports = analyze_suite(names=["comparator2", "cmb"])
    assert sorted(reports) == ["cmb", "comparator2"]
    for name, report in reports.items():
        assert report.circuit_name == name
        assert not findings(report, "ABS007")
        assert not findings(report, "ABS008")


def test_paths_passes_are_opt_in():
    default = analyze_circuit(circuit_by_name("bypass"))
    assert not findings(default, "ABS011")
    assert not findings(default, "ABS012")
    report = analyze_circuit(
        circuit_by_name("bypass"), AbsintConfig(report_paths=True)
    )
    hits = findings(report, "ABS011")
    assert len(hits) == 1
    assert hits[0].severity is Severity.INFO
    assert hits[0].location == "y"
    assert hits[0].data["prunable"] is True
    assert "no input vector sensitizes" in hits[0].message


def test_abs012_reports_ranked_true_paths_with_witnesses():
    report = analyze_circuit(
        circuit_by_name("comparator2"), AbsintConfig(report_paths=True)
    )
    hits = findings(report, "ABS012")
    true_hits = [d for d in hits if "rank" in d.data]
    assert [d.data["rank"] for d in true_hits] == [1, 2]
    for d in true_hits:
        assert set(d.data) >= {"nets", "delay", "rank", "settle_time"}
        assert "witness" in d.message
    assert not findings(report, "ABS011")


def test_abs013_is_always_on_and_silent_on_healthy_circuits():
    for name in ("bypass", "comparator2", "full_adder", "cla4"):
        report = analyze_circuit(circuit_by_name(name))
        assert not findings(report, "ABS013")


def test_paths_passes_skip_above_the_input_gate():
    report = analyze_circuit(
        circuit_by_name("comparator2"),
        AbsintConfig(report_paths=True, paths_max_inputs=2),
    )
    assert not findings(report, "ABS011")
    assert not findings(report, "ABS012")
    assert not findings(report, "ABS013")


def test_paths_config_validation():
    with pytest.raises(AbsintError):
        AbsintConfig(paths_max_inputs=-1)
    with pytest.raises(AbsintError):
        AbsintConfig(paths_limit=-1)
    with pytest.raises(AbsintError):
        AbsintConfig(paths_replay_budget=-1)


def test_every_reported_hazard_replays(lsi_lib):
    """Acceptance: each ABS005 diagnostic carries a replayable witness."""
    from repro.engine import compile_circuit
    from repro.sim import two_vector_waveforms

    for name in ("comparator2", "full_adder", "cla4"):
        circuit = circuit_by_name(name)
        compiled = compile_circuit(circuit)
        for d in findings(analyze_circuit(circuit), "ABS005"):
            waves = two_vector_waveforms(
                compiled,
                dict(zip(compiled.inputs, map(bool, d.data["v1"]))),
                dict(zip(compiled.inputs, map(bool, d.data["v2"]))),
            )
            wave = waves[d.data["output"]]
            assert wave.num_transitions == d.data["transitions"] >= 2
            assert wave.settle_time == d.data["settle_time"]

"""The generic fixpoint engine: custom domains, divergence guard."""

from __future__ import annotations

import pytest

from repro.analysis.absint import AbstractDomain, run_fixpoint
from repro.benchcircuits import circuit_by_name
from repro.engine import compile_circuit
from repro.errors import AbsintError


class LevelDomain(AbstractDomain[int]):
    """Longest-path depth in gates — an easy independently checkable domain."""

    name = "level"

    def bottom(self, compiled):
        return -1

    def input_value(self, compiled, index):
        return 0

    def transfer(self, compiled, pos, fanin_values):
        if not fanin_values:
            return 0
        if any(v < 0 for v in fanin_values):
            return -1
        return 1 + max(fanin_values)

    def join(self, a, b):
        return max(a, b)

    def leq(self, a, b):
        return a <= b


def test_custom_domain_computes_levels():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    levels = run_fixpoint(compiled, LevelDomain())
    assert levels[: compiled.n_inputs] == [0] * compiled.n_inputs
    for pos, fanins in enumerate(compiled.gate_fanins):
        out = compiled.n_inputs + pos
        assert levels[out] == 1 + max(levels[f] for f in fanins)


def test_step_guard_raises_and_names_the_domain():
    compiled = compile_circuit(circuit_by_name("comparator2"))
    with pytest.raises(AbsintError, match="level"):
        run_fixpoint(compiled, LevelDomain(), max_steps=2)
    # a generous explicit budget still converges for a monotone domain
    assert run_fixpoint(compiled, LevelDomain(), max_steps=10_000)

"""The machine-checked Eqn. 1 audit: Sigma_y vs. replayed reality."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis.absint import AbsintConfig, analyze_hazards
from repro.analysis.absint.spcfcheck import (
    containment_violations,
    equivalence_violations,
)
from repro.benchcircuits import circuit_by_name
from repro.spcf.shortpath import compute_spcf

MASKED = ["comparator2", "cmb", "full_adder", "mux_tree3", "decoder3"]


def spcf_for(name):
    return compute_spcf(circuit_by_name(name))


@pytest.mark.parametrize("name", MASKED)
def test_spcf_containment_holds_on_suite(name):
    """Every late-settling confirmed hazard lands inside Sigma_y (Eqn. 1)."""
    circuit = circuit_by_name(name)
    spcf = spcf_for(name)
    analysis = analyze_hazards(circuit, AbsintConfig())
    assert list(containment_violations(spcf, analysis.witnesses)) == []


@pytest.mark.parametrize("name", MASKED)
def test_spcf_equivalence_holds_on_suite(name):
    """stab(v) > target  <=>  v in Sigma_y, for every (sampled) vector."""
    spcf = spcf_for(name)
    assert list(equivalence_violations(spcf, AbsintConfig())) == []


class _ConstantSigma:
    """A stand-in Sigma_y with a fixed verdict."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, pattern):
        return self.value


def test_containment_fires_on_a_dropped_pattern():
    """Corrupt Sigma_y to reject everything: every late witness escapes."""
    circuit = circuit_by_name("comparator2")
    spcf = spcf_for("comparator2")
    analysis = analyze_hazards(circuit, AbsintConfig())
    late = [
        w for w in analysis.witnesses if w.settle_time > spcf.target
    ]
    assert late, "comparator2 must have late-settling witnesses"
    corrupted = SimpleNamespace(
        context=SimpleNamespace(circuit=circuit),
        target=spcf.target,
        per_output={"y": _ConstantSigma(False)},
    )
    violations = list(containment_violations(corrupted, analysis.witnesses))
    assert len(violations) == len([w for w in late if w.output == "y"])
    for output, message, data in violations:
        assert output == "y"
        assert "outside Sigma_y" in message
        assert data["settle_time"] > data["target"]


def test_containment_ignores_early_settling_witnesses():
    """A glitch that settles by the target is no Sigma_y obligation."""
    circuit = circuit_by_name("comparator2")
    spcf = spcf_for("comparator2")
    analysis = analyze_hazards(circuit, AbsintConfig())
    early = [w for w in analysis.witnesses if w.settle_time <= spcf.target]
    assert early, "comparator2 has at least one early-settling glitch"
    corrupted = SimpleNamespace(
        context=SimpleNamespace(circuit=circuit),
        target=spcf.target,
        per_output={"y": _ConstantSigma(False)},
    )
    assert list(containment_violations(corrupted, early)) == []


def test_equivalence_fires_both_directions():
    circuit = circuit_by_name("comparator2")
    spcf = spcf_for("comparator2")
    config = AbsintConfig()
    # Sigma_y == always-true: every on-time vector is an over-approximation
    always = SimpleNamespace(
        context=SimpleNamespace(circuit=circuit),
        target=spcf.target,
        per_output={"y": _ConstantSigma(True)},
    )
    over = list(equivalence_violations(always, config))
    assert over and all("over-approximate" in msg for _, msg, _ in over)
    # Sigma_y == always-false: every late vector goes missing (unsound)
    never = SimpleNamespace(
        context=SimpleNamespace(circuit=circuit),
        target=spcf.target,
        per_output={"y": _ConstantSigma(False)},
    )
    under = list(equivalence_violations(never, config))
    assert under and all("unsound" in msg for _, msg, _ in under)

"""Kleene-ternary domain: semantics, backend parity, and the hazard oracle.

The load-bearing test here is ``test_no_false_negatives_vs_eventsim``: for
small circuits we enumerate *every* two-vector transition, replay it on the
event simulator, and require that any glitching pair lives in a transition
class the ternary domain marked X.  That is exactly the soundness claim the
SAFE verdict makes (DESIGN.md §11).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    AbsintConfig,
    X,
    analyze_hazards,
    class_of_pair,
    enumerate_classes,
    inject_x,
    pack_classes,
    ternary_class_values,
)
from repro.engine import compile_circuit, numpy_available, select_backend
from repro.errors import AbsintError
from repro.netlist import Circuit, lsi10k_like_library, unit_library
from repro.sim import two_vector_waveforms

from tests.conftest import random_dag_circuit

LIBRARIES = {"unit": unit_library(), "lsi": lsi10k_like_library()}


def two_input(cell_name, lib):
    c = Circuit(f"t_{cell_name.lower()}", inputs=["a", "b"], outputs=["y"])
    c.add_gate("y", lib.get(cell_name), ("a", "b"))
    return c


# ---------------------------------------------------------------------------
# Kleene truth tables
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "cell,a,b,expected",
    [
        ("AND2", 0, X, 0),   # 0 dominates AND
        ("AND2", 1, X, X),
        ("AND2", X, X, X),
        ("OR2", 1, X, 1),    # 1 dominates OR
        ("OR2", 0, X, X),
        ("NAND2", 0, X, 1),
        ("NOR2", 1, X, 0),
        ("XOR2", 0, X, X),   # XOR never masks
        ("XOR2", 1, X, X),
        ("AND2", 1, 1, 1),
        ("OR2", 0, 0, 0),
    ],
)
def test_kleene_truth_tables(unit_lib, cell, a, b, expected):
    values = ternary_class_values(two_input(cell, unit_lib), (a, b))
    assert values["y"] == expected


def test_inverter_flips_definite_and_keeps_x(unit_lib):
    c = Circuit("t_inv", inputs=["a"], outputs=["y"])
    c.add_gate("y", unit_lib.get("INV"), ("a",))
    assert ternary_class_values(c, (0,))["y"] == 1
    assert ternary_class_values(c, (1,))["y"] == 0
    assert ternary_class_values(c, (X,))["y"] == X


def test_compositionality_loses_correlation(unit_lib):
    """``a AND (NOT a)`` is constant 0 but the ternary domain says X.

    This is the documented over-approximation: the domain tracks rails per
    net, not correlations, so SAFE is a proof while X is only a candidate.
    """
    c = Circuit("t_corr", inputs=["a"], outputs=["y"])
    c.add_gate("na", unit_lib.get("INV"), ("a",))
    c.add_gate("y", unit_lib.get("AND2"), ("a", "na"))
    assert ternary_class_values(c, (X,))["y"] == X


# ---------------------------------------------------------------------------
# Class enumeration / abstraction plumbing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_enumerate_classes_exhaustive_count(n):
    classes, exhaustive = enumerate_classes(n, AbsintConfig())
    assert exhaustive
    assert len(classes) == 3**n - 2**n  # every class with at least one X
    assert len(set(classes)) == len(classes)
    assert all(any(v == X for v in cls) for cls in classes)


def test_enumerate_classes_sampled_is_seeded_and_bounded():
    config = AbsintConfig(exhaustive_inputs=4, samples=50, seed=7)
    classes, exhaustive = enumerate_classes(20, config)
    again, _ = enumerate_classes(20, config)
    assert not exhaustive
    assert classes == again  # deterministic under a fixed seed
    assert len(classes) <= 50
    assert classes[0] == (X,) * 20  # the all-X class is always probed


def test_class_of_pair():
    assert class_of_pair((0, 1, 1), (0, 0, 1)) == (0, X, 1)
    with pytest.raises(AbsintError):
        class_of_pair((0, 1), (0,))


def test_pack_classes_rejects_bad_values(unit_lib):
    compiled = compile_circuit(two_input("AND2", unit_lib))
    with pytest.raises(AbsintError):
        pack_classes(compiled, [(0, 3)])
    with pytest.raises(AbsintError):
        pack_classes(compiled, [(0,)])


# ---------------------------------------------------------------------------
# Backend parity: python big-ints == numpy words, bit for bit
# ---------------------------------------------------------------------------

circuits = st.builds(
    random_dag_circuit,
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=5),
    num_gates=st.integers(min_value=1, max_value=20),
    library=st.sampled_from(sorted(LIBRARIES)).map(LIBRARIES.get),
    num_outputs=st.just(1),
)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(max_examples=40, deadline=None)
@given(circuit=circuits, data=st.data())
def test_ternary_backends_bit_identical(circuit, data):
    compiled = compile_circuit(circuit)
    config = AbsintConfig(exhaustive_inputs=5)
    classes, _ = enumerate_classes(compiled.n_inputs, config)
    classes = data.draw(
        st.lists(st.sampled_from(classes), min_size=1, max_size=80)
    )
    py_hi, py_lo = pack_classes(compiled, classes, backend="python")
    np_hi, np_lo = pack_classes(compiled, classes, backend="numpy")
    assert py_hi == np_hi
    assert py_lo == np_lo


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_ternary_backends_identical_past_grouping_limit(unit_lib):
    """Width > 256 forces the numpy backend onto its multi-lane path."""
    c = random_dag_circuit(seed=5, num_inputs=5, num_gates=15, library=unit_lib)
    compiled = compile_circuit(c)
    classes, _ = enumerate_classes(5, AbsintConfig(exhaustive_inputs=5))
    classes = (classes * 3)[:300]
    py = pack_classes(compiled, classes, backend="python")
    np_ = pack_classes(compiled, classes, backend="numpy")
    assert py == np_


def test_ternary_agrees_with_binary_on_definite_classes(unit_lib):
    """A class with no X input is just a binary vector; rails must agree."""
    c = random_dag_circuit(seed=11, num_inputs=4, num_gates=12, library=unit_lib)
    compiled = compile_circuit(c)
    backend = select_backend("python")
    for code in range(16):
        cls = tuple((code >> i) & 1 for i in range(4))
        values = ternary_class_values(compiled, cls)
        words = backend.eval_words(
            compiled, [(code >> i) & 1 for i in range(4)], 1
        )
        for net, word in zip(compiled.net_names, words):
            assert values[net] == (word & 1)


# ---------------------------------------------------------------------------
# The oracle: no false negatives against exhaustive event simulation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_no_false_negatives_vs_eventsim(seed, lsi_lib):
    """Every glitching vector pair must fall in a ternary-X class.

    Exhaustive over all ``2^n * 2^n`` ordered pairs of a random 4-input
    circuit: if the event simulator shows >= 2 output transitions, the
    abstraction is *obliged* to flag the pair's class (SAFE is a proof).
    """
    circuit = random_dag_circuit(
        seed=seed, num_inputs=4, num_gates=14, library=lsi_lib, num_outputs=2
    )
    compiled = compile_circuit(circuit)
    n = compiled.n_inputs
    cache: dict[tuple[int, ...], dict[str, int]] = {}
    for c1 in range(1 << n):
        v1 = tuple((c1 >> i) & 1 for i in range(n))
        for c2 in range(1 << n):
            if c1 == c2:
                continue
            v2 = tuple((c2 >> i) & 1 for i in range(n))
            waves = two_vector_waveforms(
                compiled,
                dict(zip(compiled.inputs, map(bool, v1))),
                dict(zip(compiled.inputs, map(bool, v2))),
            )
            glitchy = [
                out
                for out in circuit.outputs
                if waves[out].num_transitions >= 2
            ]
            if not glitchy:
                continue
            cls = class_of_pair(v1, v2)
            if cls not in cache:
                cache[cls] = ternary_class_values(compiled, cls)
            for out in glitchy:
                assert cache[cls][out] == X, (
                    f"{circuit.name}: pair {v1}->{v2} glitches {out!r} but "
                    f"its class {cls} was proven SAFE — unsound abstraction"
                )


@pytest.mark.parametrize("name", ["comparator2", "cmb", "mux_tree3"])
def test_witnesses_replay_identically(name):
    """Every confirmed witness re-replays to the recorded waveform facts."""
    from repro.benchcircuits import circuit_by_name

    circuit = circuit_by_name(name)
    analysis = analyze_hazards(circuit, AbsintConfig())
    assert analysis.witnesses, f"expected confirmed hazards on {name}"
    compiled = compile_circuit(circuit)
    for w in analysis.witnesses:
        waves = two_vector_waveforms(
            compiled,
            dict(zip(compiled.inputs, map(bool, w.v1))),
            dict(zip(compiled.inputs, map(bool, w.v2))),
        )
        wave = waves[w.output]
        assert wave.num_transitions == w.num_transitions >= 2
        assert wave.settle_time == w.settle_time
        # the pair really belongs to an X class of that output
        values = ternary_class_values(compiled, class_of_pair(w.v1, w.v2))
        assert values[w.output] == X


def test_hazard_kinds_match_endpoint_values():
    """static-0/static-1/dynamic labels agree with the endpoint evaluation."""
    from repro.benchcircuits import circuit_by_name

    circuit = circuit_by_name("comparator2")
    compiled = compile_circuit(circuit)
    backend = select_backend("python")
    analysis = analyze_hazards(circuit, AbsintConfig())
    for w in analysis.witnesses:
        idx = compiled.net_index[w.output]
        y1 = backend.eval_words(compiled, list(w.v1), 1)[idx] & 1
        y2 = backend.eval_words(compiled, list(w.v2), 1)[idx] & 1
        if w.kind == "static-0":
            assert (y1, y2) == (0, 0)
        elif w.kind == "static-1":
            assert (y1, y2) == (1, 1)
        else:
            assert w.kind == "dynamic" and y1 != y2


def test_analyze_hazards_budget_caps_work():
    from repro.benchcircuits import circuit_by_name

    circuit = circuit_by_name("comparator2")
    tight = AbsintConfig(max_candidate_classes=2, replay_budget=3)
    analysis = analyze_hazards(circuit, tight)
    assert sum(
        oh.analyzed_classes for oh in analysis.per_output.values()
    ) <= 2
    assert analysis.replays <= 3


# ---------------------------------------------------------------------------
# X-injection observability
# ---------------------------------------------------------------------------


def test_inject_x_blocked_by_constant_path(unit_lib):
    """An X fenced off by a constant-0 AND never reaches the output."""
    c = Circuit("fenced", inputs=["a", "b"], outputs=["y"])
    c.add_gate("na", unit_lib.get("INV"), ("a",))
    c.add_gate("c0", unit_lib.get("AND2"), ("a", "na"))   # constant 0
    c.add_gate("g", unit_lib.get("AND2"), ("a", "b"))
    c.add_gate("gm", unit_lib.get("AND2"), ("g", "c0"))   # g observable only here
    c.add_gate("y", unit_lib.get("OR2"), ("gm", "b"))
    obs = inject_x(c, "g")
    assert obs == {"y": False}
    # whereas an X on input b flows straight through the OR
    assert inject_x(c, "b") == {"y": True}


def test_inject_x_on_observable_gate(unit_lib):
    c = two_input("AND2", unit_lib)
    assert inject_x(c, "y") == {"y": True}

"""Formal verification of masking circuits: proofs and counterexamples.

Acceptance-critical: ``verify_mask`` proves ``e=1 ⟹ y~ = y`` and
``Sigma_y ⟹ e`` by BDD equivalence on the Fig. 2 comparator and five
builtin benchmarks, and reports a concrete counterexample pattern when run
on a deliberately corrupted masking circuit.
"""

import pytest

from repro.analysis import assert_verified, verify_mask
from repro.analysis.verify import (
    CHECK_COVERAGE,
    CHECK_EQUIVALENCE,
    CHECK_SOUNDNESS,
)
from repro.benchcircuits import circuit_by_name
from repro.core import build_masked_design, mask_circuit, synthesize_masking
from repro.errors import VerificationError
from repro.netlist.circuit import Gate

#: The Fig. 2 comparator plus five builtin paper benchmarks.
VERIFY_NAMES = ["comparator2", "cmb", "x2", "cu", "i1", "frg1"]


@pytest.mark.parametrize("name", VERIFY_NAMES)
def test_verify_mask_proves_all_three_theorems(name, lsi_lib):
    result = synthesize_masking(circuit_by_name(name, lsi_lib), lsi_lib)
    report = verify_mask(result)
    assert report.ok
    checks = {c.check for c in report.checks}
    assert checks == {CHECK_SOUNDNESS, CHECK_COVERAGE, CHECK_EQUIVALENCE}
    assert len(report.checks) == 3 * len(result.outputs)
    assert all(c.counterexample is None for c in report.checks)


def _corrupt_prediction(result, lib):
    """Invert the gate driving a prediction output of the masking circuit."""
    pred_net, _ = next(iter(result.outputs.values()))
    mc = result.masking_circuit
    gate = mc.gate(pred_net)
    if gate.cell.num_inputs == 1:
        flipped = lib.get("BUF" if gate.cell.name == "INV" else "INV")
        mc.replace_gate(Gate(gate.name, flipped, gate.fanins))
    else:
        mc.replace_gate(Gate(gate.name, lib.get("INV"), gate.fanins[:1]))


def test_corrupted_prediction_yields_soundness_counterexample(lsi_lib):
    result = synthesize_masking(circuit_by_name("comparator2", lsi_lib), lsi_lib)
    _corrupt_prediction(result, lsi_lib)
    report = verify_mask(result)
    assert not report.ok
    failure = next(c for c in report.failures if c.check == CHECK_SOUNDNESS)
    cex = failure.counterexample
    assert cex is not None
    pattern = cex.pattern()
    assert len(pattern) == len(result.circuit.inputs)
    assert set(pattern) <= {"0", "1"}
    # The witness really does exhibit e=1 with y~ != y.
    observed = dict(cex.observed)
    pred_net, ind_net = result.outputs[failure.output]
    assert observed[ind_net] is True
    assert observed[pred_net] != observed[failure.output]


def test_corrupted_indicator_yields_coverage_counterexample(lsi_lib):
    result = synthesize_masking(circuit_by_name("comparator2", lsi_lib), lsi_lib)
    _, ind_net = next(iter(result.outputs.values()))
    mc = result.masking_circuit
    mc.replace_gate(Gate(mc.gate(ind_net).name, lsi_lib.get("ZERO"), ()))
    report = verify_mask(result)
    assert not report.ok
    failure = next(c for c in report.failures if c.check == CHECK_COVERAGE)
    assert failure.counterexample is not None
    # The witness is a speed-path pattern the dead indicator misses.
    sigma = result.spcf.per_output[failure.output]
    assignment = dict(failure.counterexample.assignment)
    assert sigma.evaluate(assignment) is True


def test_assert_verified_raises_with_witness(lsi_lib):
    result = synthesize_masking(circuit_by_name("comparator2", lsi_lib), lsi_lib)
    _corrupt_prediction(result, lsi_lib)
    with pytest.raises(VerificationError, match="pattern="):
        assert_verified(result)


def test_trivial_masking_verifies_vacuously(lsi_lib):
    """threshold=1.0 -> no critical outputs -> nothing to prove."""
    result = synthesize_masking(
        circuit_by_name("comparator2", lsi_lib), lsi_lib, threshold=1.0
    )
    report = verify_mask(result)
    assert report.ok and report.checks == ()


def test_report_to_dict_serializes_counterexample(lsi_lib):
    result = synthesize_masking(circuit_by_name("comparator2", lsi_lib), lsi_lib)
    _corrupt_prediction(result, lsi_lib)
    payload = verify_mask(result).to_dict()
    assert payload["verified"] is False
    failing = [c for c in payload["checks"] if not c["passed"]]
    assert failing and "counterexample" in failing[0]
    cex = failing[0]["counterexample"]
    assert set(cex["pattern"]) <= {"0", "1"}
    assert all(v in (0, 1) for v in cex["assignment"].values())


def test_pipeline_self_verify_attaches_formal_report(lsi_lib):
    result = mask_circuit(
        circuit_by_name("cmb", lsi_lib), lsi_lib, self_verify=True
    )
    assert result.formal is not None
    assert result.formal.ok
    assert result.report.sound


def test_pipeline_without_self_verify_has_no_formal_report(lsi_lib):
    result = mask_circuit(circuit_by_name("cmb", lsi_lib), lsi_lib)
    assert result.formal is None


def test_verify_accepts_prebuilt_design(lsi_lib):
    result = synthesize_masking(circuit_by_name("x2", lsi_lib), lsi_lib)
    design = build_masked_design(result)
    assert verify_mask(result, design=design).ok

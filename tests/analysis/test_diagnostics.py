"""Diagnostic and LintReport value objects."""

import pytest

from repro.analysis import Diagnostic, LintReport, Severity
from repro.errors import LintError


def _diag(rule_id="LINT002", severity=Severity.ERROR, location="g1", hint="fix it"):
    return Diagnostic(
        rule_id=rule_id,
        rule_name="dangling-net",
        severity=severity,
        circuit="c",
        location=location,
        message="net 'foo' undriven",
        hint=hint,
    )


def test_severity_ordering():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert str(Severity.WARNING) == "warning"


def test_severity_from_name():
    assert Severity.from_name("error") is Severity.ERROR
    assert Severity.from_name("INFO") is Severity.INFO
    with pytest.raises(LintError):
        Severity.from_name("fatal")


def test_diagnostic_to_dict_round_trip():
    d = _diag().to_dict()
    assert d["rule_id"] == "LINT002"
    assert d["severity"] == "error"
    assert d["location"] == "g1"
    assert d["hint"] == "fix it"


def test_diagnostic_to_dict_omits_empty_hint():
    assert "hint" not in _diag(hint="").to_dict()


def test_diagnostic_render_mentions_rule_and_location():
    line = _diag().render()
    assert "LINT002" in line and "c:g1" in line and "dangling-net" in line


def test_report_counts_and_max_severity():
    report = LintReport(
        circuit_name="c",
        num_gates=3,
        num_inputs=2,
        num_outputs=1,
        diagnostics=(
            _diag(severity=Severity.ERROR),
            _diag(rule_id="LINT004", severity=Severity.INFO, location="x"),
        ),
    )
    assert report.counts() == {"info": 1, "warning": 0, "error": 1}
    assert report.max_severity() is Severity.ERROR
    assert len(report.at_or_above(Severity.WARNING)) == 1
    assert not report.ok(Severity.ERROR)
    assert report.by_rule() == {"LINT002": 1, "LINT004": 1}


def test_empty_report_is_ok():
    report = LintReport(circuit_name="c", num_gates=0, num_inputs=0, num_outputs=0)
    assert report.max_severity() is None
    assert report.ok(Severity.INFO)
    assert list(report) == []


# ---------------------------------------------------------------------------
# JSON round-trips (the wire format must be lossless)
# ---------------------------------------------------------------------------


def test_diagnostic_from_dict_round_trip_lossless():
    original = _diag()
    assert Diagnostic.from_dict(original.to_dict()) == original


def test_diagnostic_round_trip_preserves_data_payload():
    import json

    original = Diagnostic(
        rule_id="ABS005",
        rule_name="confirmed-hazard",
        severity=Severity.WARNING,
        circuit="comparator2",
        location="y",
        message="glitch",
        hint="",
        data={"v1": [0, 1], "v2": [1, 1], "settle_time": 7},
    )
    # through an actual JSON encode/decode, not just dicts
    decoded = Diagnostic.from_dict(json.loads(json.dumps(original.to_dict())))
    assert decoded == original
    assert decoded.data == {"v1": [0, 1], "v2": [1, 1], "settle_time": 7}


def test_diagnostic_from_dict_rejects_unknown_keys():
    payload = _diag().to_dict()
    payload["surprise"] = 1
    with pytest.raises(LintError, match="surprise"):
        Diagnostic.from_dict(payload)


def test_diagnostic_from_dict_rejects_missing_keys():
    payload = _diag().to_dict()
    del payload["message"]
    with pytest.raises(LintError, match="message"):
        Diagnostic.from_dict(payload)


def test_report_from_dict_round_trip():
    report = LintReport(
        circuit_name="c",
        num_gates=3,
        num_inputs=2,
        num_outputs=1,
        diagnostics=(_diag(), _diag(rule_id="LINT004", severity=Severity.INFO)),
    )
    again = LintReport.from_dict(report.to_dict())
    assert again == report
    assert again.counts() == report.counts()


def test_wire_schema_snapshot():
    """The exact key set of the JSON wire format is a compatibility contract.

    If this test fails you changed the serialized shape: bump the schema
    string in ``repro.analysis.reporters`` and update consumers.
    """
    d = _diag().to_dict()
    assert set(d) == {
        "rule_id", "rule_name", "severity", "circuit", "location",
        "message", "hint",
    }
    with_data = Diagnostic(
        rule_id="ABS005",
        rule_name="n",
        severity=Severity.INFO,
        circuit="c",
        location="l",
        message="m",
        data={"k": 1},
    ).to_dict()
    assert set(with_data) == {
        "rule_id", "rule_name", "severity", "circuit", "location",
        "message", "data",
    }

"""Path-certificate integrity: fingerprints, JSON round-trip, tampering."""

import json

import pytest

from repro.analysis.paths import (
    PathCertificate,
    PathCertificateSet,
    analyze_paths,
)
from repro.benchcircuits import circuit_by_name, comparator2
from repro.errors import PathsError


@pytest.fixture(scope="module")
def certs():
    return analyze_paths(circuit_by_name("bypass")).certificates


def test_round_trip_is_lossless(certs):
    text = certs.to_json()
    loaded = PathCertificateSet.from_json(text)
    assert loaded.circuit_name == certs.circuit_name
    assert loaded.circuit_fp == certs.circuit_fp
    assert loaded.target == certs.target
    assert len(loaded) == len(certs)
    for cert in certs:
        other = loaded.lookup(cert.nets)
        assert other is not None
        assert other.verdict == cert.verdict
        assert other.delay == cert.delay
        assert dict(other.facts) == dict(cert.facts)
    # Serialization is stable: a round-tripped set re-serializes identically.
    assert loaded.to_json() == text


def test_fresh_set_is_never_tampered(certs):
    assert certs.tampered() == []


def test_strict_load_rejects_edited_facts(certs):
    data = json.loads(certs.to_json())
    data["certificates"][0]["facts"]["method"] = "bdd"
    with pytest.raises(PathsError, match="fingerprint verification"):
        PathCertificateSet.from_json(json.dumps(data))


def test_strict_load_rejects_edited_verdict(certs):
    data = json.loads(certs.to_json())
    entry = next(e for e in data["certificates"] if e["verdict"] == "false")
    entry["verdict"] = "true"
    with pytest.raises(PathsError, match="fingerprint verification"):
        PathCertificateSet.from_json(json.dumps(data))


def test_strict_load_rejects_rebound_circuit(certs):
    data = json.loads(certs.to_json())
    other = analyze_paths(comparator2()).certificates
    data["circuit_fingerprint"] = other.circuit_fp
    with pytest.raises(PathsError, match="fingerprint verification"):
        PathCertificateSet.from_json(json.dumps(data))


def test_verify_false_load_flags_exactly_the_edit(certs):
    data = json.loads(certs.to_json())
    entry = data["certificates"][0]
    entry["facts"]["method"] = "bdd"
    loaded = PathCertificateSet.from_json(json.dumps(data), verify=False)
    assert [list(c.nets) for c in loaded.tampered()] == [entry["nets"]]


def test_saving_a_tampered_set_does_not_resign_it(certs):
    data = json.loads(certs.to_json())
    data["certificates"][0]["facts"]["method"] = "bdd"
    loaded = PathCertificateSet.from_json(json.dumps(data), verify=False)
    # Re-serializing keeps the stale stored fingerprint, so a strict load
    # of the re-saved file still rejects: tampering cannot be laundered.
    with pytest.raises(PathsError, match="fingerprint verification"):
        PathCertificateSet.from_json(loaded.to_json())


def test_schema_and_shape_validation():
    with pytest.raises(PathsError, match="schema"):
        PathCertificateSet.from_dict({"schema": "bogus/9"})
    with pytest.raises(PathsError, match="malformed"):
        PathCertificateSet.from_dict({"schema": "repro-paths/1"})
    with pytest.raises(PathsError, match="unreadable"):
        PathCertificateSet.from_json("{nope")
    with pytest.raises(PathsError, match="must be an object"):
        PathCertificateSet.from_json("[1, 2]")


def test_certificate_field_validation():
    with pytest.raises(PathsError, match="verdict"):
        PathCertificate(("a", "y"), 5, 4, "maybe", {})
    with pytest.raises(PathsError, match="at least"):
        PathCertificate(("a",), 5, 4, "false", {})


def test_counts_and_verdict_views(certs):
    counts = certs.counts()
    assert set(counts) == {"false", "true", "unresolved"}
    assert sum(counts.values()) == len(certs)
    assert len(certs.false_paths()) == counts["false"]
    assert len(certs.true_paths()) == counts["true"]
    assert len(certs.unresolved_paths()) == counts["unresolved"]


def test_ranked_true_paths_are_in_masking_order():
    certs = analyze_paths(comparator2()).certificates
    ranked = certs.ranked_true_paths()
    assert [c.rank for c in ranked] == list(range(1, len(ranked) + 1))


def test_matches_is_exact_structure(certs):
    assert certs.matches(circuit_by_name("bypass"))
    assert not certs.matches(comparator2())

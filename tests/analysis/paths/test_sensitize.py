"""Classification of speed-paths: FALSE proofs, TRUE witnesses, tightening."""

from __future__ import annotations

import pytest

from repro.analysis.paths import (
    PathsConfig,
    analyze_paths,
    tightened_arrivals,
)
from repro.analysis.precert import precertify
from repro.benchcircuits import circuit_by_name, comparator2
from repro.engine import compile_circuit
from repro.errors import PathsError, ReproError
from repro.sim import two_vector_waveforms
from repro.spcf import SpcfContext, spcf_shortpath

#: Force every path onto the exact BDD plane: no ternary scan, no words.
BDD_ONLY = PathsConfig(prefilter_max_inputs=0)


@pytest.fixture(scope="module")
def bypass():
    return circuit_by_name("bypass")


def test_bypass_single_path_is_false_and_prunable(bypass):
    analysis = analyze_paths(bypass)
    certs = analysis.certificates
    assert len(certs) == 1
    [cert] = certs.false_paths()
    assert cert.nets[0] == "x" and cert.end == "y"
    assert cert.prunable
    assert cert.method == "exhaustive"
    assert analysis.stats["prefilter_exhaustive"] == 1
    assert analysis.stats["bdd_paths"] == 0


def test_bdd_plane_agrees_with_the_word_plane(bypass):
    analysis = analyze_paths(bypass, config=BDD_ONLY)
    [cert] = analysis.certificates.false_paths()
    assert cert.prunable
    assert cert.method == "bdd"
    assert analysis.stats["bdd_paths"] == 1
    # A bdd-method FALSE certificate cites per-segment condition covers.
    assert all("condition" in seg for seg in cert.facts["segments"])
    assert tightened_arrivals(analysis) == tightened_arrivals(
        analyze_paths(bypass)
    )


def test_tightening_is_sound(bypass):
    """late(y, tight) must be identically false on a cert-free context."""
    analysis = analyze_paths(bypass)
    tighten = tightened_arrivals(analysis)
    assert tighten == {"y": analysis.target}
    for net, tight in tighten.items():
        ctx = SpcfContext(bypass, target=tight)
        s0, s1 = ctx.stable(net, tight)
        assert (~(s0 | s1)).is_false, (
            f"a late transition survives on {net} at the tightened bound"
        )


def test_tightened_spcf_is_bit_identical(bypass):
    analysis = analyze_paths(bypass)
    certs = precertify(
        bypass,
        targets=[analysis.target],
        tighten=tightened_arrivals(analysis),
    )
    base = spcf_shortpath(bypass, target=analysis.target)
    tight = spcf_shortpath(
        bypass, target=analysis.target, certificates=certs
    )
    for y, fn in base.per_output.items():
        assert list(fn.cubes()) == list(tight.per_output[y].cubes())


def test_tightening_improves_precert_discharge(bypass):
    analysis = analyze_paths(bypass)
    plain = precertify(bypass, targets=[analysis.target])
    tight = precertify(
        bypass,
        targets=[analysis.target],
        tighten=tightened_arrivals(analysis),
    )
    assert tight.counts()["discharged"] > plain.counts()["discharged"]
    by_kind = [
        c for c in tight if c.facts.get("kind") == "on-time"
        and c.domain == "true-arrival"
    ]
    assert by_kind, "tightening must discharge via the true-arrival domain"


def test_comparator2_paths_are_true_with_replayable_witnesses():
    circuit = comparator2()
    analysis = analyze_paths(circuit)
    certs = analysis.certificates
    assert not certs.false_paths() and not certs.unresolved_paths()
    compiled = compile_circuit(circuit)
    for cert in certs.ranked_true_paths():
        facts = cert.facts
        waves = two_vector_waveforms(
            compiled,
            dict(zip(compiled.inputs, map(bool, facts["v1"]))),
            dict(zip(compiled.inputs, map(bool, facts["v2"]))),
        )
        wave = waves[cert.end]
        assert wave.settle_time == facts["settle_time"] > analysis.target


def test_true_paths_on_the_bdd_plane_still_replay():
    circuit = comparator2()
    analysis = analyze_paths(circuit, config=BDD_ONLY)
    certs = analysis.certificates
    assert len(certs.true_paths()) == 2
    assert all(c.method == "bdd" for c in certs.true_paths())


def test_exhausted_replay_budget_leaves_paths_unresolved():
    analysis = analyze_paths(
        comparator2(), config=PathsConfig(replay_budget=0)
    )
    unresolved = analysis.certificates.unresolved_paths()
    assert len(unresolved) == len(analysis.certificates)
    for cert in unresolved:
        assert cert.facts["sensitizable"] is True


def test_no_tightening_without_prunable_paths():
    analysis = analyze_paths(comparator2())
    assert tightened_arrivals(analysis) == {}


def test_path_limit_guard(bypass):
    with pytest.raises(ReproError):
        analyze_paths(bypass, config=PathsConfig(limit=0))


def test_config_validation():
    with pytest.raises(PathsError):
        PathsConfig(limit=-1)
    with pytest.raises(PathsError):
        PathsConfig(replay_budget=-1)
    with pytest.raises(PathsError):
        PathsConfig(prefilter_max_inputs=2.5)  # type: ignore[arg-type]


def test_stats_partition_the_paths():
    for name in ("bypass", "comparator2", "parity8", "x2"):
        analysis = analyze_paths(circuit_by_name(name))
        stats = analysis.stats
        assert (
            stats["false"] + stats["true"] + stats["unresolved"]
            == stats["paths"]
            == len(analysis.certificates)
        )

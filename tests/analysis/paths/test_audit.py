"""The ABS013 auditor: re-derivation, replay, and refusal of tampered sets."""

from __future__ import annotations

import json

import pytest

from repro.analysis.paths import (
    PathCertificate,
    PathCertificateSet,
    PathsConfig,
    analyze_paths,
    audit_path_certificates,
)
from repro.benchcircuits import circuit_by_name, comparator2


@pytest.mark.parametrize("name", ["bypass", "comparator2", "full_adder"])
def test_fresh_analysis_audits_clean(name):
    circuit = circuit_by_name(name)
    certs = analyze_paths(circuit).certificates
    assert audit_path_certificates(circuit, certs) == []


def test_bdd_plane_certificates_audit_clean():
    circuit = circuit_by_name("bypass")
    certs = analyze_paths(
        circuit, config=PathsConfig(prefilter_max_inputs=0)
    ).certificates
    assert audit_path_certificates(circuit, certs) == []


def test_wrong_circuit_refuses_every_certificate():
    certs = analyze_paths(circuit_by_name("bypass")).certificates
    findings = audit_path_certificates(comparator2(), certs)
    assert len(findings) == 1
    assert findings[0].kind == "tampered"
    assert "different circuit" in findings[0].message


def test_tampered_certificate_is_refused_not_believed():
    circuit = circuit_by_name("bypass")
    certs = analyze_paths(circuit).certificates
    data = json.loads(certs.to_json())
    data["certificates"][0]["facts"]["method"] = "bdd"
    loaded = PathCertificateSet.from_json(json.dumps(data), verify=False)
    findings = audit_path_certificates(circuit, loaded)
    assert [f.kind for f in findings] == ["tampered"]
    assert "fingerprint verification" in findings[0].message


def _forged_set(certs, forged):
    """A validly-signed set whose content makes a wrong claim."""
    return PathCertificateSet(
        certs.circuit_name,
        certs.circuit_fp,
        certs.threshold,
        certs.target,
        {c.key: c for c in forged},
    )


def test_false_claim_on_a_true_path_is_contradicted():
    circuit = comparator2()
    certs = analyze_paths(circuit).certificates
    victim = certs.ranked_true_paths()[0]
    forged = _forged_set(
        certs,
        [
            PathCertificate(
                victim.nets,
                victim.delay,
                victim.target,
                "false",
                {"kind": "false-path", "method": "ternary", "segments": []},
            )
        ],
    )
    findings = audit_path_certificates(circuit, forged)
    assert [f.kind for f in findings] == ["contradicted"]
    assert "satisfiable" in findings[0].message
    assert findings[0].data["witness"], "contradiction must carry a witness"


def test_true_claim_with_a_broken_witness_is_contradicted():
    circuit = comparator2()
    certs = analyze_paths(circuit).certificates
    victim = certs.ranked_true_paths()[0]
    facts = dict(victim.facts)
    # A witness pair that cannot exercise the path: both vectors equal.
    facts["v1"] = facts["v2"]
    forged = _forged_set(
        certs,
        [
            PathCertificate(
                victim.nets, victim.delay, victim.target, "true", facts
            )
        ],
    )
    findings = audit_path_certificates(circuit, forged)
    assert findings and all(f.kind == "contradicted" for f in findings)
    assert any("settles" in f.message for f in findings)


def test_true_claim_with_a_wrong_settle_time_is_contradicted():
    circuit = comparator2()
    certs = analyze_paths(circuit).certificates
    victim = certs.ranked_true_paths()[0]
    facts = dict(victim.facts)
    facts["settle_time"] = facts["settle_time"] + 1
    forged = _forged_set(
        certs,
        [
            PathCertificate(
                victim.nets, victim.delay, victim.target, "true", facts
            )
        ],
    )
    findings = audit_path_certificates(circuit, forged)
    assert any(
        f.kind == "contradicted" and "differs from the cited" in f.message
        for f in findings
    )


def test_bdd_certificate_with_wrong_cover_is_contradicted():
    circuit = circuit_by_name("bypass")
    certs = analyze_paths(
        circuit, config=PathsConfig(prefilter_max_inputs=0)
    ).certificates
    [victim] = certs.false_paths()
    facts = json.loads(json.dumps(victim.facts))
    # An empty cover is the constant-false condition: provably not what
    # the fresh re-derivation computes for a segment on a real cell.
    facts["segments"][0]["condition"] = []
    forged = _forged_set(
        certs,
        [
            PathCertificate(
                victim.nets, victim.delay, victim.target, "false", facts
            )
        ],
    )
    findings = audit_path_certificates(circuit, forged)
    assert any(
        f.kind == "contradicted" and "cited condition cover" in f.message
        for f in findings
    )


def test_unresolved_certificates_make_no_claim():
    circuit = comparator2()
    analysis = analyze_paths(circuit, config=PathsConfig(replay_budget=0))
    certs = analysis.certificates
    assert certs.unresolved_paths()
    assert audit_path_certificates(circuit, certs) == []

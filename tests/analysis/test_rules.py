"""Each builtin lint rule against a circuit with that defect injected."""

import pytest

from repro.analysis import LintConfig, Severity, lint_circuit
from repro.errors import LintError
from repro.netlist import Cell, Circuit


def rule_ids(report):
    return sorted({d.rule_id for d in report})


def findings(report, rule_id):
    return [d for d in report if d.rule_id == rule_id]


def test_clean_circuit_is_clean(unit_lib):
    c = Circuit("clean", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("a", "b"))
    report = lint_circuit(c)
    assert rule_ids(report) == []
    assert report.ok(Severity.INFO)


def test_combinational_loop_detected(unit_lib):
    c = Circuit("loopy", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("g2", "a"))
    c.add_gate("g2", unit_lib.get("OR2"), ("g1", "b"))
    report = lint_circuit(c)
    hits = findings(report, "LINT001")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert "g1" in hits[0].message and "g2" in hits[0].message


def test_self_loop_detected(unit_lib):
    c = Circuit("selfy", inputs=["a"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("g1", "a"))
    assert len(findings(lint_circuit(c), "LINT001")) == 1


def test_two_independent_loops_are_two_findings(unit_lib):
    c = Circuit("loops2", inputs=["a"], outputs=["g1", "g3"])
    c.add_gate("g1", unit_lib.get("AND2"), ("g2", "a"))
    c.add_gate("g2", unit_lib.get("INV"), ("g1",))
    c.add_gate("g3", unit_lib.get("OR2"), ("g4", "a"))
    c.add_gate("g4", unit_lib.get("INV"), ("g3",))
    assert len(findings(lint_circuit(c), "LINT001")) == 2


def test_dangling_fanin_detected(unit_lib):
    c = Circuit("dangle", inputs=["a"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("AND2"), ("ghost", "a"))
    hits = findings(lint_circuit(c), "LINT002")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert "ghost" in hits[0].message


def test_undriven_output_detected(unit_lib):
    c = Circuit("noout", inputs=["a"], outputs=["nowhere", "g1"])
    c.add_gate("g1", unit_lib.get("INV"), ("a",))
    hits = findings(lint_circuit(c), "LINT002")
    assert len(hits) == 1
    assert "nowhere" in hits[0].message


def test_broken_circuit_lints_instead_of_raising(unit_lib):
    """A looped *and* dangling netlist yields diagnostics, not an exception."""
    c = Circuit("wreck", inputs=["a"], outputs=["g1", "ghost_out"])
    c.add_gate("g1", unit_lib.get("AND2"), ("g2", "ghost"))
    c.add_gate("g2", unit_lib.get("INV"), ("g1",))
    report = lint_circuit(c)
    assert "LINT001" in rule_ids(report)
    assert "LINT002" in rule_ids(report)


def test_unreachable_node_detected(unit_lib):
    c = Circuit("dead", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("INV"), ("a",))
    c.add_gate("g2", unit_lib.get("AND2"), ("a", "b"))  # feeds nothing
    hits = findings(lint_circuit(c), "LINT003")
    assert [d.location for d in hits] == ["g2"]
    assert hits[0].severity is Severity.WARNING


def test_unused_pi_detected(unit_lib):
    c = Circuit("unused", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("INV"), ("a",))
    hits = findings(lint_circuit(c), "LINT004")
    assert [d.location for d in hits] == ["b"]


def test_pi_passed_through_as_output_is_used(unit_lib):
    c = Circuit("thru", inputs=["a", "b"], outputs=["g1", "b"])
    c.add_gate("g1", unit_lib.get("INV"), ("a",))
    assert not findings(lint_circuit(c), "LINT004")


def test_fanout_threshold(unit_lib):
    c = Circuit("fan", inputs=["a"], outputs=["g0", "g1", "g2"])
    for i in range(3):
        c.add_gate(f"g{i}", unit_lib.get("INV"), ("a",))
    assert not findings(lint_circuit(c), "LINT005")
    config = LintConfig(fanout_threshold=2)
    hits = findings(lint_circuit(c, config), "LINT005")
    assert [d.location for d in hits] == ["a"]
    assert "3" in hits[0].message


def test_non_monotone_arc_delay(unit_lib):
    zero_buf = Cell("BUF0", ("a",), "a", 1.0, (0,))
    c = Circuit("zerod", inputs=["a"], outputs=["g1"])
    c.add_gate("g0", zero_buf, ("a",))
    c.add_gate("g1", unit_lib.get("INV"), ("g0",))
    hits = findings(lint_circuit(c), "LINT006")
    assert [d.location for d in hits] == ["g0"]
    assert hits[0].severity is Severity.WARNING


def test_constant_cells_are_not_flagged_by_lint006(unit_lib):
    c = Circuit("tie", inputs=["a"], outputs=["g1"])
    c.add_gate("k1", unit_lib.get("ONE"), ())
    c.add_gate("g1", unit_lib.get("AND2"), ("a", "k1"))
    assert not findings(lint_circuit(c), "LINT006")


def test_constant_output_by_tie_cell(unit_lib):
    c = Circuit("tieout", inputs=["a"], outputs=["k1"])
    c.add_gate("k1", unit_lib.get("ONE"), ())
    hits = findings(lint_circuit(c), "LINT007")
    assert [d.location for d in hits] == ["k1"]
    assert hits[0].severity is Severity.INFO


def test_constant_output_by_collapsing_cone(unit_lib):
    c = Circuit("const", inputs=["a"], outputs=["g1"])
    c.add_gate("n", unit_lib.get("INV"), ("a",))
    c.add_gate("g1", unit_lib.get("AND2"), ("a", "n"))  # a & ~a == 0
    hits = findings(lint_circuit(c), "LINT007")
    assert [d.location for d in hits] == ["g1"]


def test_constant_output_skips_wide_cones(unit_lib):
    c = Circuit("wide", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("n", unit_lib.get("INV"), ("a",))
    c.add_gate("g1", unit_lib.get("AND2"), ("a", "n"))
    config = LintConfig(max_function_inputs=0)
    assert not findings(lint_circuit(c, config), "LINT007")


def test_non_constant_output_not_flagged(unit_lib):
    c = Circuit("var", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("XOR2"), ("a", "b"))
    assert not findings(lint_circuit(c), "LINT007")


def test_select_and_ignore_by_id_and_name(unit_lib):
    c = Circuit("pick", inputs=["a", "b"], outputs=["g1"])
    c.add_gate("g1", unit_lib.get("INV"), ("a",))
    all_ids = rule_ids(lint_circuit(c))
    assert all_ids == ["LINT004"]
    assert not lint_circuit(c, LintConfig(ignore=frozenset({"unused-pi"}))).diagnostics
    assert not lint_circuit(c, LintConfig(select=frozenset({"LINT001"}))).diagnostics


def test_unknown_rule_raises_lint_error(unit_lib):
    c = Circuit("bad", inputs=["a"], outputs=["a"])
    with pytest.raises(LintError):
        lint_circuit(c, LintConfig(select=frozenset({"LINT999"})))
    with pytest.raises(LintError):
        LintConfig(fanout_threshold=0)

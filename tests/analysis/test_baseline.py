"""Baseline files: fingerprinting, write/load round-trip, suppression."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BASELINE_SCHEMA,
    Diagnostic,
    LintReport,
    Severity,
    apply_baseline,
    apply_baseline_many,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.errors import BaselineError


def diag(rule_id="LINT004", location="g1", message="m", severity=Severity.INFO,
         hint="", circuit="c"):
    return Diagnostic(
        rule_id=rule_id,
        rule_name="some-rule",
        severity=severity,
        circuit=circuit,
        location=location,
        message=message,
        hint=hint,
    )


def report(*diags, circuit="c"):
    return LintReport(
        circuit_name=circuit,
        num_gates=1,
        num_inputs=1,
        num_outputs=1,
        diagnostics=tuple(diags),
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable_and_content_addressed():
    a = diag()
    assert a.fingerprint() == diag().fingerprint()
    assert a.fingerprint() != diag(location="g2").fingerprint()
    assert a.fingerprint() != diag(message="other").fingerprint()
    assert a.fingerprint() != diag(rule_id="LINT005").fingerprint()
    assert a.fingerprint() != diag(circuit="d").fingerprint()


def test_fingerprint_ignores_severity_and_hint():
    """Re-grading or re-wording a hint must not invalidate baselines."""
    a = diag(severity=Severity.INFO, hint="old advice")
    b = diag(severity=Severity.ERROR, hint="new advice")
    assert a.fingerprint() == b.fingerprint()


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


def test_write_load_apply_round_trip(tmp_path):
    d1, d2 = diag(location="g1"), diag(location="g2")
    path = tmp_path / "base.json"
    count = write_baseline(path, {"c": report(d1, d2)})
    assert count == 2

    fingerprints = load_baseline(path)
    assert fingerprints == {d1.fingerprint(), d2.fingerprint()}

    filtered, suppressed = apply_baseline(report(d1, d2), fingerprints)
    assert suppressed == 2
    assert list(filtered) == []
    assert filtered.circuit_name == "c"

    # a new finding survives the baseline
    d3 = diag(location="g3")
    filtered, suppressed = apply_baseline(report(d1, d3), fingerprints)
    assert suppressed == 1
    assert [d.location for d in filtered] == ["g3"]


def test_apply_baseline_many(tmp_path):
    reports = {"a": report(diag(circuit="a"), circuit="a"),
               "b": report(diag(circuit="b"), circuit="b")}
    path = tmp_path / "base.json"
    write_baseline(path, reports)
    filtered, suppressed = apply_baseline_many(reports, load_baseline(path))
    assert suppressed == 2
    assert all(len(list(r)) == 0 for r in filtered.values())
    assert sorted(filtered) == ["a", "b"]


def test_baseline_file_is_reviewable_json(tmp_path):
    """Entries keep the human-facing context next to each fingerprint."""
    payload = json.loads(render_baseline({"c": report(diag())}))
    assert payload["schema"] == BASELINE_SCHEMA
    entry = payload["entries"][0]
    assert entry["fingerprint"] == diag().fingerprint()
    assert entry["rule_id"] == "LINT004"
    assert entry["circuit"] == "c"
    assert entry["location"] == "g1"


def test_baseline_is_sorted_deterministically():
    reports = {"z": report(diag(circuit="z"), circuit="z"),
               "a": report(diag(circuit="a"), circuit="a")}
    payload = json.loads(render_baseline(reports))
    assert [e["circuit"] for e in payload["entries"]] == ["a", "z"]


# ---------------------------------------------------------------------------
# Error handling
# ---------------------------------------------------------------------------


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(BaselineError, match="no.such.baseline"):
        load_baseline(tmp_path / "no.such.baseline")


def test_load_unparseable_json_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_load_wrong_schema_raises(tmp_path):
    path = tmp_path / "wrong.json"
    path.write_text(json.dumps({"schema": "bogus/9", "entries": []}))
    with pytest.raises(BaselineError, match="bogus/9"):
        load_baseline(path)


def test_load_malformed_entries_raises(tmp_path):
    path = tmp_path / "mangled.json"
    path.write_text(json.dumps(
        {"schema": BASELINE_SCHEMA, "entries": [{"no_fingerprint": True}]}
    ))
    with pytest.raises(BaselineError):
        load_baseline(path)

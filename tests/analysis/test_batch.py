"""Suite-wide lint sweep: every builtin benchmark stays warning-clean.

This is the regression net behind ``make check`` — structural drift in the
generators or the mapping layer (dangling nets, loops, zero-delay arcs,
runaway fanout) turns this red before any table does.
"""

from repro.analysis import Severity, lint_suite, suite_ok
from repro.benchcircuits import all_circuit_names


def test_every_builtin_benchmark_is_warning_clean(lsi_lib):
    reports = lint_suite(lsi_lib)
    assert set(reports) == set(all_circuit_names())
    noisy = {
        name: [d.render() for d in report.at_or_above(Severity.WARNING)]
        for name, report in reports.items()
        if not report.ok(Severity.WARNING)
    }
    assert not noisy, noisy
    assert suite_ok(reports, Severity.WARNING)


def test_lint_suite_subset_and_unit_library(unit_lib):
    reports = lint_suite(unit_lib, names=["comparator2", "full_adder"])
    assert set(reports) == {"comparator2", "full_adder"}
    assert suite_ok(reports, Severity.WARNING)

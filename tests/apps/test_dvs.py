"""Tests for DVS-with-masking (the paper's future-work extension)."""

import pytest

from repro.apps import DvsResult, dvs_sweep
from repro.apps.dvs import DvsPoint
from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit
from repro.errors import SimulationError
from repro.netlist import lsi10k_like_library


@pytest.fixture(scope="module")
def masked():
    lib = lsi10k_like_library()
    circuit = make_benchmark("cmb", lib)
    return mask_circuit(circuit, lib)


@pytest.fixture(scope="module")
def sweep(masked):
    return dvs_sweep(masked.masking, masked.design, cycles=80, seed=5)


def test_nominal_period_is_safe(sweep):
    nominal = [p for p in sweep.points if p.period == sweep.nominal_period]
    assert nominal and nominal[0].is_safe
    assert nominal[0].raw_error_rate == 0.0


def test_masking_unlocks_overclocking(sweep):
    """Some period below nominal must be safe (that is the whole point)."""
    assert sweep.min_safe_period() < sweep.nominal_period
    assert sweep.speedup_percent > 0.0


def test_residual_errors_stay_zero_in_protected_band(sweep):
    """Down to 90% of nominal the masked design never escapes an error."""
    floor = int(0.9 * sweep.nominal_period)
    for p in sweep.points:
        if p.period >= floor:
            assert p.residual_error_rate == 0.0, p


def test_raw_errors_grow_as_period_shrinks(sweep):
    by_period = sorted(sweep.points, key=lambda p: -p.period)
    rates = [p.raw_error_rate for p in by_period]
    assert rates[-1] >= rates[0]
    assert any(r > 0 for r in rates)  # overclocking does cause raw errors


def test_masked_events_track_raw_errors(sweep):
    for p in sweep.points:
        if p.residual_error_rate == 0.0:
            # every raw error in a safe point was caught by an indicator
            assert p.masked_error_rate >= p.raw_error_rate - 1e-9


def test_explicit_period_list(masked):
    res = dvs_sweep(
        masked.masking, masked.design, periods=[masked.design.clock_period],
        cycles=20,
    )
    assert len(res.points) == 1
    assert res.points[0].is_safe


def test_empty_sweep_rejected(masked):
    with pytest.raises(SimulationError):
        dvs_sweep(masked.masking, masked.design, periods=[], cycles=10)


def test_no_safe_period_raises():
    res = DvsResult(
        nominal_period=100,
        points=(DvsPoint(period=80, raw_error_rate=1.0,
                         masked_error_rate=1.0, residual_error_rate=0.5),),
    )
    with pytest.raises(SimulationError):
        res.min_safe_period()

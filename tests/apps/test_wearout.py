"""Tests for wearout prediction from masked-error statistics."""

import pytest

from repro.apps import (
    ErrorLogger,
    WearoutMonitor,
    predict_onset,
    wearout_experiment,
)
from repro.apps.wearout import WearoutEpoch
from repro.benchcircuits import comparator_nbit
from repro.core import build_masked_design, synthesize_masking
from repro.errors import SimulationError
from repro.netlist import unit_library
from repro.sim import LinearAging


def test_error_logger_windows():
    log = ErrorLogger(window_size=4)
    for flag in [True, False, False, True, False, False, False, False]:
        log.record(flag)
    assert log.windows == [0.5, 0.0]
    assert log.latest_rate == 0.0


def test_error_logger_guard():
    with pytest.raises(SimulationError):
        ErrorLogger(window_size=0).record(True)


def test_monitor_threshold_trigger():
    mon = WearoutMonitor(rate_threshold=0.1, trend_windows=99)
    assert mon.onset_window([0.0, 0.05, 0.2, 0.3]) == 2
    assert mon.onset_window([0.0, 0.05]) is None


def test_monitor_trend_trigger():
    mon = WearoutMonitor(rate_threshold=9.9, trend_windows=3)
    assert mon.onset_window([0.01, 0.02, 0.03, 0.04]) == 3
    assert mon.onset_window([0.01, 0.02, 0.01, 0.02]) is None


def test_wearout_experiment_masks_errors():
    c = comparator_nbit(4)
    lib = unit_library()
    masking = synthesize_masking(c, lib, max_support=8)
    design = build_masked_design(masking)
    epochs = wearout_experiment(
        masking,
        design,
        aging=LinearAging(rate=0.12),
        epochs=6,
        cycles_per_epoch=120,
        seed=4,
    )
    assert len(epochs) == 6
    # no degradation at epoch 0
    assert epochs[0].unmasked_error_rate == 0.0
    assert epochs[0].residual_error_rate == 0.0
    # aging eventually produces raw timing errors...
    assert any(e.unmasked_error_rate > 0 for e in epochs)
    # ...which the masking hides: masked events track raw errors and the
    # residual (escaped) error rate stays zero while slack remains.
    for e in epochs:
        if e.unmasked_error_rate > 0:
            assert e.masked_error_rate > 0
    first_err = next(e for e in epochs if e.unmasked_error_rate > 0)
    assert first_err.residual_error_rate == 0.0
    # scales are monotone in stress time
    scales = [e.delay_scale for e in epochs]
    assert scales == sorted(scales)


def test_predict_onset_pipeline():
    epochs = [
        WearoutEpoch(0, 1.0, 0.0, 0.0, 0.0),
        WearoutEpoch(1, 1.1, 0.0, 0.0, 0.0),
        WearoutEpoch(2, 1.2, 0.08, 0.08, 0.0),
    ]
    assert predict_onset(epochs, WearoutMonitor(rate_threshold=0.05)) == 2
    assert predict_onset(epochs[:2], WearoutMonitor(rate_threshold=0.05)) is None

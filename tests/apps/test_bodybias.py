"""Tests for adaptive body-bias planning."""

import pytest

from repro.apps import critical_gate_ranking, plan_body_bias
from repro.benchcircuits import make_benchmark
from repro.errors import SimulationError
from repro.netlist import lsi10k_like_library
from repro.sim import aged_copy
from repro.sta import analyze


@pytest.fixture(scope="module")
def aged():
    lib = lsi10k_like_library()
    circuit = make_benchmark("cmb", lib)
    nominal = analyze(circuit, target=0).critical_delay
    return circuit, aged_copy(circuit, 1.3), nominal


def test_ranking_orders_by_negative_slack(aged):
    circuit, slow, nominal = aged
    ranked = critical_gate_ranking(slow, target=nominal)
    assert ranked, "aging past the clock must create critical gates"
    report = analyze(slow, target=nominal)
    slacks = [report.slack(g) for g in ranked]
    assert slacks == sorted(slacks)
    assert all(s < 0 for s in slacks)


def test_full_recovery_meets_target(aged):
    circuit, slow, nominal = aged
    plan = plan_body_bias(slow, target=nominal, recovery=1.0)
    assert plan.meets_target
    assert plan.delay_after <= nominal < plan.delay_before
    assert 0 < plan.area_fraction < 1
    assert plan.biased_gates  # something was actually biased


def test_partial_recovery_converges_or_reports(aged):
    circuit, slow, nominal = aged
    plan = plan_body_bias(slow, target=nominal, recovery=0.5)
    # with 30% aging and 50% recovery the best achievable scale is 1.15,
    # so the plan cannot reach the unaged delay — and must say so.
    assert plan.delay_after < plan.delay_before
    assert not plan.meets_target


def test_gate_cap_respected(aged):
    circuit, slow, nominal = aged
    plan = plan_body_bias(slow, target=nominal, recovery=1.0, max_gates=2)
    assert len(plan.biased_gates) <= 2


def test_greedy_biases_only_aged_gates(aged):
    circuit, slow, nominal = aged
    plan = plan_body_bias(slow, target=nominal, recovery=1.0)
    for g in plan.biased_gates:
        assert slow.gates[g].delay_scale > 1.0


def test_invalid_recovery_rejected(aged):
    circuit, slow, nominal = aged
    with pytest.raises(SimulationError):
        plan_body_bias(slow, target=nominal, recovery=0.0)
    with pytest.raises(SimulationError):
        plan_body_bias(slow, target=nominal, recovery=1.5)


def test_already_fast_circuit_needs_no_bias(aged):
    circuit, slow, nominal = aged
    plan = plan_body_bias(circuit, target=nominal, recovery=1.0)
    assert plan.biased_gates == ()
    assert plan.meets_target

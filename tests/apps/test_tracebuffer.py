"""Tests for trace-buffer selective capture."""

import pytest

from repro.apps import TraceBuffer, capture_experiment
from repro.benchcircuits import comparator_nbit
from repro.core import build_masked_design, synthesize_masking
from repro.errors import SimulationError
from repro.netlist import unit_library


def test_trace_buffer_fills_and_stops():
    buf = TraceBuffer(depth=2)
    assert buf.capture(0, [True])
    assert buf.capture(5, [False])
    assert buf.full
    assert not buf.capture(9, [True])
    assert buf.window == 6
    assert len(buf.entries) == 2


def test_trace_buffer_guard():
    with pytest.raises(SimulationError):
        TraceBuffer(depth=0).capture(0, [True])


def test_empty_buffer_window():
    assert TraceBuffer(depth=4).window == 0


@pytest.fixture(scope="module")
def masked_design():
    c = comparator_nbit(4)
    masking = synthesize_masking(c, unit_library(), max_support=8)
    return build_masked_design(masking)


def test_capture_experiment_expands_window(masked_design):
    report = capture_experiment(
        masked_design, buffer_depth=16, cycles=2048, seed=9
    )
    assert report.always_window == 16  # capture-every-cycle fills instantly
    assert 0 < report.indicator_rate < 1
    # Selective capture skips non-suspect cycles, so the observed window
    # must expand by roughly 1/indicator_rate.
    assert report.selective_window > report.always_window
    assert report.expansion_factor > 1.0
    assert report.selective_captures <= 16


def test_capture_experiment_traced_nets_validated(masked_design):
    with pytest.raises(SimulationError):
        capture_experiment(masked_design, traced_nets=("ghost",))


def test_capture_requires_indicators():
    c = comparator_nbit(3)
    masking = synthesize_masking(c, unit_library(), target=10**6)
    design = build_masked_design(masking)
    with pytest.raises(SimulationError):
        capture_experiment(design)

"""Exact computed-table (op cache) accounting and its obs publication."""

from repro import obs
from repro.bdd.manager import BddManager
from repro.benchcircuits import circuit_by_name
from repro.spcf import SpcfContext, _obs, spcf_shortpath


def _table(mgr):
    return mgr.stats()["computed_table"]


def test_counting_off_by_default():
    mgr = BddManager(["a", "b"])
    a, b = mgr.var("a"), mgr.var("b")
    _ = a & b
    stats = mgr.stats()
    assert "computed_table" not in stats
    assert "cache_hit_rate" not in stats


def test_and_hit_miss_exact():
    mgr = BddManager(["a", "b"])
    mgr.enable_op_counting()
    a, b = mgr.var("a"), mgr.var("b")
    before = _table(mgr)["and"]
    _ = a & b  # first conjunction of these operands: one miss
    mid = _table(mgr)["and"]
    assert mid["misses"] == before["misses"] + 1
    assert mid["hits"] == before["hits"]
    _ = a & b  # identical query: served from the computed table
    after = _table(mgr)["and"]
    assert after["hits"] == mid["hits"] + 1
    assert after["misses"] == mid["misses"]
    # Commuted operands normalize to the same key: still a hit.
    _ = b & a
    assert _table(mgr)["and"]["hits"] == after["hits"] + 1


def test_terminal_rules_touch_no_bucket():
    mgr = BddManager(["a"])
    mgr.enable_op_counting()
    a = mgr.var("a")
    _ = a & mgr.true
    _ = a & mgr.false
    _ = a & a
    t = _table(mgr)["and"]
    assert t == {"hits": 0, "misses": 0}
    assert mgr.stats()["op_calls"]["and"] == 3


def test_not_cache_counted():
    mgr = BddManager(["a"])
    mgr.enable_op_counting()
    a = mgr.var("a")
    _ = ~a
    _ = ~a
    t = _table(mgr)["not"]
    assert t["misses"] >= 1 and t["hits"] >= 1


def test_cache_hit_rate_derived_exactly():
    mgr = BddManager(["a", "b"])
    mgr.enable_op_counting()
    a, b = mgr.var("a"), mgr.var("b")
    _ = a & b
    _ = a & b
    stats = mgr.stats()
    t = stats["computed_table"]["and"]
    assert stats["cache_hit_rate"]["and"] == round(
        t["hits"] / (t["hits"] + t["misses"]), 4
    )


def test_op_cache_shared_across_spcf_contexts(lsi_lib):
    """The regression the multi-root compile depends on: a second SPCF query
    on a shared manager re-enters the computed table populated by the first
    (across S0/S1 roots and thresholds), instead of recomputing cold."""
    circuit = circuit_by_name("comparator4", lsi_lib)
    mgr = BddManager()
    mgr.enable_op_counting()

    ctx1 = SpcfContext(circuit, threshold=0.9, manager=mgr)
    spcf_shortpath(circuit, context=ctx1)
    after_first = {op: dict(c) for op, c in _table(mgr).items()}

    ctx2 = SpcfContext(circuit, threshold=0.5, manager=mgr)
    spcf_shortpath(circuit, context=ctx2)
    after_second = _table(mgr)

    hits_gained = sum(
        after_second[op]["hits"] - after_first[op]["hits"] for op in after_first
    )
    assert hits_gained > 0, (
        "second threshold query never hit the shared computed table"
    )


def test_publish_computed_table_deltas(lsi_lib):
    mgr = BddManager(["a", "b", "c"])
    mgr.enable_op_counting()
    a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
    _ = (a & b) | (b & c)
    _ = a & b

    obs.configure(enabled=True)
    try:
        _obs.publish_computed_table(mgr)
        snap1 = obs.metrics_snapshot()["metrics"]
        hits1 = sum(
            snap1["repro_bdd_computed_hits_total"]["series"].values()
        )
        misses1 = sum(
            snap1["repro_bdd_computed_misses_total"]["series"].values()
        )
        t = _table(mgr)
        assert hits1 == sum(c["hits"] for c in t.values())
        assert misses1 == sum(c["misses"] for c in t.values())

        # No new work: re-publishing adds nothing (deltas, not totals).
        _obs.publish_computed_table(mgr)
        snap2 = obs.metrics_snapshot()["metrics"]
        assert (
            sum(snap2["repro_bdd_computed_hits_total"]["series"].values())
            == hits1
        )

        # New work publishes only the increment.
        _ = b & c
        _obs.publish_computed_table(mgr)
        snap3 = obs.metrics_snapshot()["metrics"]
        assert (
            sum(snap3["repro_bdd_computed_hits_total"]["series"].values())
            == hits1 + 1
        )
    finally:
        obs.configure(enabled=False)
        obs.reset()


def test_publish_without_counting_is_a_noop():
    mgr = BddManager()
    obs.configure(enabled=True)
    try:
        _obs.publish_computed_table(mgr)
        metrics = obs.metrics_snapshot()["metrics"]
        assert not metrics.get("repro_bdd_computed_hits_total", {}).get(
            "series"
        )
    finally:
        obs.configure(enabled=False)
        obs.reset()


def test_counting_preserves_results(lsi_lib):
    circuit = circuit_by_name("comparator2", lsi_lib)
    plain = spcf_shortpath(circuit)
    mgr = BddManager()
    mgr.enable_op_counting()
    ctx = SpcfContext(circuit, manager=mgr)
    counted = spcf_shortpath(circuit, context=ctx)
    assert {y: list(f.cubes()) for y, f in plain.per_output.items()} == {
        y: list(f.cubes()) for y, f in counted.per_output.items()
    }

"""Tests for Minato–Morreale ISOP extraction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, cover_to_function, isop, isop_function
from repro.errors import BddError

VARS = [f"v{i}" for i in range(5)]


def random_function(mgr, rng_bits):
    """Build a function from a list of minterm indices."""
    f = mgr.false
    for idx in rng_bits:
        cube = mgr.true
        for i, name in enumerate(VARS):
            bit = (idx >> i) & 1
            cube = cube & (mgr.var(name) if bit else mgr.nvar(name))
        f = f | cube
    return f


def test_isop_of_constants():
    mgr = BddManager(VARS)
    assert isop_function(mgr.false) == []
    assert isop_function(mgr.true) == [{}]


def test_isop_single_variable():
    mgr = BddManager(VARS)
    assert isop_function(mgr.var("v0")) == [{"v0": True}]
    assert isop_function(mgr.nvar("v0")) == [{"v0": False}]


def test_isop_requires_containment():
    mgr = BddManager(VARS)
    with pytest.raises(BddError):
        isop(mgr.true, mgr.var("v0"))


def test_isop_cross_manager_rejected():
    a, b = BddManager(VARS), BddManager(VARS)
    with pytest.raises(BddError):
        isop(a.var("v0"), b.var("v0"))


def test_isop_exploits_dont_cares():
    """With a generous upper bound the cover can be much smaller."""
    mgr = BddManager(VARS)
    lower = mgr.var("v0") & mgr.var("v1") & mgr.var("v2")
    upper = mgr.var("v0")
    cover = isop(lower, upper)
    fn = cover_to_function(mgr, cover)
    assert lower.is_subset_of(fn)
    assert fn.is_subset_of(upper)
    assert cover == [{"v0": True}]


@given(st.sets(st.integers(min_value=0, max_value=31), max_size=20))
@settings(max_examples=80, deadline=None)
def test_isop_exactly_covers_function(minterms):
    mgr = BddManager(VARS)
    f = random_function(mgr, minterms)
    cover = cover_to_function(mgr, isop_function(f))
    assert cover == f


@given(
    st.sets(st.integers(min_value=0, max_value=31), max_size=12),
    st.sets(st.integers(min_value=0, max_value=31), max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_isop_between_bounds(lower_minterms, extra):
    mgr = BddManager(VARS)
    lower = random_function(mgr, lower_minterms)
    upper = lower | random_function(mgr, extra)
    fn = cover_to_function(mgr, isop(lower, upper))
    assert lower.is_subset_of(fn)
    assert fn.is_subset_of(upper)


@given(st.sets(st.integers(min_value=0, max_value=31), max_size=16))
@settings(max_examples=40, deadline=None)
def test_isop_cover_is_irredundant(minterms):
    """Dropping any single cube must uncover part of the function."""
    mgr = BddManager(VARS)
    f = random_function(mgr, minterms)
    cover = isop_function(f)
    if len(cover) <= 1:
        return
    for k in range(len(cover)):
        rest = cover[:k] + cover[k + 1 :]
        assert cover_to_function(mgr, rest) != f

"""BDD DAG serialization: canonical rebuild, terminals, error paths."""

from __future__ import annotations

import json

import pytest

from repro.bdd import (
    BDD_SCHEMA,
    BddManager,
    function_from_json,
    function_to_json,
)
from repro.errors import BddError

VARS = ["a", "b", "c", "d"]


def build(mgr):
    a, b, c, d = (mgr.var(v) for v in VARS)
    return [
        mgr.true,
        mgr.false,
        a,
        ~a,
        (a & b) | (~c & d),
        a ^ b ^ c ^ d,
        (a | b) & (c | d) & ~(a & d),
    ]


def test_same_manager_round_trip_is_the_same_node():
    mgr = BddManager(VARS)
    for fn in build(mgr):
        doc = function_to_json(fn)
        assert function_from_json(mgr, doc).node == fn.node


def test_cross_manager_round_trip_is_canonical():
    src = BddManager(VARS)
    dst = BddManager(VARS)
    for fn in build(src):
        rebuilt = function_from_json(dst, function_to_json(fn))
        # Same variable order + reduced construction => identical structure.
        assert rebuilt.count(len(VARS)) == fn.count(len(VARS))
        assert function_to_json(rebuilt) == function_to_json(fn)


def test_terminals_serialize_without_nodes():
    mgr = BddManager(VARS)
    assert function_to_json(mgr.false) == {
        "schema": BDD_SCHEMA, "root": 0, "nodes": [],
    }
    assert function_to_json(mgr.true) == {
        "schema": BDD_SCHEMA, "root": 1, "nodes": [],
    }


def test_document_is_json_and_linear_in_dag_size():
    mgr = BddManager(VARS)
    a, b, c, d = (mgr.var(v) for v in VARS)
    fn = a ^ b ^ c ^ d  # XOR: exponential cubes, linear DAG
    doc = json.loads(json.dumps(function_to_json(fn)))
    assert len(doc["nodes"]) == fn.dag_size()
    assert function_from_json(mgr, doc).node == fn.node


def test_shared_subgraphs_serialized_once():
    mgr = BddManager(VARS)
    a, b, c, d = (mgr.var(v) for v in VARS)
    shared = c & d
    fn = (a & shared) | (b & shared) | shared
    doc = function_to_json(fn)
    names = [entry[0] for entry in doc["nodes"]]
    # Each variable level of this function appears exactly once per node,
    # not once per path.
    assert len(names) == fn.dag_size()


class TestErrors:
    def test_bad_schema(self):
        mgr = BddManager(VARS)
        with pytest.raises(BddError, match="unsupported BDD document schema"):
            function_from_json(mgr, {"schema": 2, "root": 0, "nodes": []})

    def test_missing_nodes(self):
        mgr = BddManager(VARS)
        with pytest.raises(BddError, match="no node list"):
            function_from_json(mgr, {"schema": BDD_SCHEMA, "root": 0})

    def test_forward_reference_rejected(self):
        mgr = BddManager(VARS)
        doc = {
            "schema": BDD_SCHEMA,
            "root": 2,
            "nodes": [["a", 0, 3], ["b", 0, 1]],  # node 0 points at node 1
        }
        with pytest.raises(BddError, match="not in postorder"):
            function_from_json(mgr, doc)

    def test_malformed_reference(self):
        mgr = BddManager(VARS)
        doc = {
            "schema": BDD_SCHEMA,
            "root": 2,
            "nodes": [["a", 0, "one"]],
        }
        with pytest.raises(BddError, match="malformed BDD node reference"):
            function_from_json(mgr, doc)

    def test_malformed_entry(self):
        mgr = BddManager(VARS)
        doc = {"schema": BDD_SCHEMA, "root": 2, "nodes": [["a", 0]]}
        with pytest.raises(BddError, match="malformed BDD node entry"):
            function_from_json(mgr, doc)

    def test_unknown_variable(self):
        mgr = BddManager(["a"])
        src = BddManager(["a", "zz"])
        doc = function_to_json(src.var("zz"))
        with pytest.raises(BddError):
            function_from_json(mgr, doc)

"""Unit and property tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, conjunction, cube_function, disjunction
from repro.errors import BddError

VARS = [f"x{i}" for i in range(6)]


def brute_count(fn, names):
    return sum(
        fn.evaluate(dict(zip(names, bits)))
        for bits in itertools.product([False, True], repeat=len(names))
    )


@pytest.fixture()
def mgr():
    return BddManager(VARS)


# --------------------------------------------------------------------- basics


def test_constants(mgr):
    assert mgr.true.is_true
    assert mgr.false.is_false
    assert (~mgr.true).is_false
    assert (mgr.true & mgr.false).is_false
    assert (mgr.true | mgr.false).is_true


def test_var_and_nvar_are_complements(mgr):
    a = mgr.var("x0")
    assert ~a == mgr.nvar("x0")
    assert (a & mgr.nvar("x0")).is_false


def test_duplicate_variable_rejected(mgr):
    with pytest.raises(BddError):
        mgr.add_var("x0")


def test_unknown_variable_rejected(mgr):
    with pytest.raises(BddError):
        mgr.var("nope")


def test_ensure_var_registers_once(mgr):
    f = mgr.ensure_var("fresh")
    g = mgr.ensure_var("fresh")
    assert f == g


def test_hash_consing_dedupes_nodes(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    n_before = mgr.num_nodes
    f1 = a & b
    f2 = mgr.var("x0") & mgr.var("x1")
    assert f1 == f2
    assert mgr.num_nodes == n_before + (mgr.num_nodes - n_before)  # no error


def test_bool_of_function_raises(mgr):
    with pytest.raises(BddError):
        bool(mgr.var("x0"))


def test_cross_manager_mixing_rejected(mgr):
    other = BddManager(["x0"])
    with pytest.raises(BddError):
        mgr.var("x0") & other.var("x0")


# ----------------------------------------------------------------- operations


def test_basic_identities(mgr):
    a, b, c = (mgr.var(v) for v in ("x0", "x1", "x2"))
    assert (a ^ b) == ((a & ~b) | (~a & b))
    assert a.ite(b, c) == ((a & b) | (~a & c))
    assert (a - b) == (a & ~b)
    assert a.iff(b) == ~(a ^ b)
    assert a.implies(b) == (~a | b)


def test_de_morgan(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


def test_evaluate_requires_full_assignment(mgr):
    f = mgr.var("x0") & mgr.var("x1")
    with pytest.raises(BddError):
        f.evaluate({"x0": True})


# ------------------------------------------------------------------- counting


def test_count_simple(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    n = mgr.num_vars
    assert (a & b).count() == 1 << (n - 2)
    assert (a | b).count() == 3 << (n - 2)
    assert mgr.true.count() == 1 << n
    assert mgr.false.count() == 0


def test_count_with_explicit_nvars(mgr):
    a = mgr.var("x0")
    assert a.count(1) == 1
    assert a.count(3) == 4


def test_count_rejects_too_small_nvars(mgr):
    f = mgr.var("x3")
    with pytest.raises(BddError):
        f.count(2)


def test_fraction(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    assert float((a & b).fraction()) == 0.25
    assert float((a | b).fraction()) == 0.75


# ------------------------------------------------------------------ transforms


def test_restrict_both_polarities(mgr):
    a, b, c = (mgr.var(v) for v in ("x0", "x1", "x2"))
    f = (a & b) | c
    assert f.restrict({"x0": True}) == (b | c)
    assert f.restrict({"x1": False}) == c
    assert f.restrict({"x0": True, "x1": True}).is_true or True
    assert f.restrict({"x0": True, "x1": True}) == mgr.true | c  # b=1,a=1 -> 1


def test_compose_matches_substitution(mgr):
    a, b, c = (mgr.var(v) for v in ("x0", "x1", "x2"))
    f = a & b
    g = f.compose({"x1": b | c})
    assert g == (a & (b | c))


def test_exists_forall(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    f = a & b
    assert f.exists(["x0"]) == b
    assert f.forall(["x0"]).is_false
    assert (a | b).forall(["x0"]) == b
    assert f.exists([]) == f


def test_support(mgr):
    a, c = mgr.var("x0"), mgr.var("x2")
    assert (a & c).support() == {"x0", "x2"}
    assert mgr.true.support() == set()


def test_cubes_and_pick_one(mgr):
    a, b = mgr.var("x0"), mgr.var("x1")
    f = a & ~b
    cube = f.pick_one()
    assert cube is not None
    assert f.evaluate({**{v: False for v in VARS}, **cube})
    assert mgr.false.pick_one() is None


def test_dag_size(mgr):
    a = mgr.var("x0")
    assert a.dag_size() == 1
    assert mgr.true.dag_size() == 0


def test_helpers_conjunction_disjunction_cube(mgr):
    fns = [mgr.var(v) for v in ("x0", "x1", "x2")]
    assert conjunction(mgr, fns) == (fns[0] & fns[1] & fns[2])
    assert disjunction(mgr, fns) == (fns[0] | fns[1] | fns[2])
    assert conjunction(mgr, []).is_true
    assert disjunction(mgr, []).is_false
    f = cube_function(mgr, {"x0": True, "x1": False})
    assert f == (fns[0] & ~fns[1])


# ------------------------------------------------------------ property tests


@st.composite
def exprs(draw, depth=0):
    """Random (python-lambda, bdd-builder) expression pairs."""
    if depth > 4 or draw(st.booleans()):
        idx = draw(st.integers(min_value=0, max_value=5))
        return ("var", idx)
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return ("not", draw(exprs(depth=depth + 1)))
    return (op, draw(exprs(depth=depth + 1)), draw(exprs(depth=depth + 1)))


def build_fn(tree, mgr):
    if tree[0] == "var":
        return mgr.var(VARS[tree[1]])
    if tree[0] == "not":
        return ~build_fn(tree[1], mgr)
    left, right = build_fn(tree[1], mgr), build_fn(tree[2], mgr)
    return {"and": left & right, "or": left | right, "xor": left ^ right}[tree[0]]


def eval_tree(tree, assignment):
    if tree[0] == "var":
        return assignment[VARS[tree[1]]]
    if tree[0] == "not":
        return not eval_tree(tree[1], assignment)
    left, right = eval_tree(tree[1], assignment), eval_tree(tree[2], assignment)
    return {
        "and": left and right,
        "or": left or right,
        "xor": left != right,
    }[tree[0]]


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_bdd_semantics_match_direct_evaluation(tree):
    mgr = BddManager(VARS)
    fn = build_fn(tree, mgr)
    for bits in itertools.product([False, True], repeat=len(VARS)):
        assignment = dict(zip(VARS, bits))
        assert fn.evaluate(assignment) == eval_tree(tree, assignment)


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_count_matches_brute_force(tree):
    mgr = BddManager(VARS)
    fn = build_fn(tree, mgr)
    assert fn.count() == brute_count(fn, VARS)


@given(exprs(), st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_shannon_expansion(tree, idx):
    mgr = BddManager(VARS)
    fn = build_fn(tree, mgr)
    v = mgr.var(VARS[idx])
    expansion = (v & fn.restrict({VARS[idx]: True})) | (
        ~v & fn.restrict({VARS[idx]: False})
    )
    assert expansion == fn


@given(exprs(), st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_quantification_bounds(tree, idx):
    mgr = BddManager(VARS)
    fn = build_fn(tree, mgr)
    name = VARS[idx]
    assert fn.forall([name]).is_subset_of(fn)
    assert fn.is_subset_of(fn.exists([name]))

"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


def test_hierarchy():
    subclasses = [
        errors.BddError,
        errors.LogicError,
        errors.ExprSyntaxError,
        errors.NetlistError,
        errors.LibraryError,
        errors.BlifError,
        errors.TimingError,
        errors.SimulationError,
        errors.SpcfError,
        errors.SynthesisError,
        errors.MaskingError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError), cls


def test_specializations():
    assert issubclass(errors.ExprSyntaxError, errors.LogicError)
    assert issubclass(errors.LibraryError, errors.NetlistError)
    assert issubclass(errors.BlifError, errors.NetlistError)


def test_single_catch_point():
    """Any library failure is catchable as ReproError."""
    from repro.netlist import unit_library

    with pytest.raises(errors.ReproError):
        unit_library().get("NOT_A_CELL")
    from repro.logic import parse_expr

    with pytest.raises(errors.ReproError):
        parse_expr("a &")

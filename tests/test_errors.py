"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


def test_hierarchy():
    subclasses = [
        errors.BddError,
        errors.LogicError,
        errors.ExprSyntaxError,
        errors.NetlistError,
        errors.LibraryError,
        errors.BlifError,
        errors.TimingError,
        errors.SimulationError,
        errors.SpcfError,
        errors.SynthesisError,
        errors.MaskingError,
        errors.AnalysisError,
        errors.LintError,
        errors.VerificationError,
        errors.ExecError,
        errors.CampaignError,
        errors.CheckpointError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError), cls


def test_specializations():
    assert issubclass(errors.ExprSyntaxError, errors.LogicError)
    assert issubclass(errors.LibraryError, errors.NetlistError)
    assert issubclass(errors.BlifError, errors.NetlistError)
    assert issubclass(errors.LintError, errors.AnalysisError)
    assert issubclass(errors.VerificationError, errors.AnalysisError)
    assert issubclass(errors.CheckpointError, errors.CampaignError)


def _netlist_cycle():
    from repro.netlist import Circuit, unit_library

    lib = unit_library()
    c = Circuit("loop", inputs=["a"], outputs=["g1"])
    c.add_gate("g1", lib.get("AND2"), ("g2", "a"))
    c.add_gate("g2", lib.get("INV"), ("g1",))
    c.validate()


def _netlist_arity():
    from repro.netlist import Circuit, unit_library

    Circuit("arity", inputs=["a"]).add_gate(
        "g", unit_library().get("AND2"), ("a",)
    )


def _netlist_blif():
    from repro.netlist import read_blif

    read_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end")


def _logic_expr():
    from repro.logic import parse_expr

    parse_expr("a & (b |")


def _logic_cube():
    from repro.logic.cube import Cube

    Cube.from_string("01x?")


def _bdd_unknown_var():
    from repro.bdd import BddManager

    BddManager(["a"]).var("zz")


def _bdd_mixed_managers():
    from repro.bdd import BddManager

    BddManager(["a"]).var("a") & BddManager(["a"]).var("a")


def _spcf_threshold():
    from repro.benchcircuits import circuit_by_name
    from repro.spcf import SpcfContext

    SpcfContext(circuit_by_name("comparator2"), threshold=2.0)


def _spcf_unbound_name():
    from repro.bdd import BddManager
    from repro.logic import parse_expr
    from repro.spcf.timedfunc import expr_to_function

    expr_to_function(parse_expr("a & b"), {}, BddManager(["a", "b"]))


def _masking_bad_pool():
    from repro.benchcircuits import circuit_by_name
    from repro.core import synthesize_masking
    from repro.netlist import lsi10k_like_library

    lib = lsi10k_like_library()
    synthesize_masking(circuit_by_name("comparator2", lib), lib, cube_pool="bogus")


def _exec_bad_jobs():
    from repro.exec import validated_jobs

    validated_jobs(-1)


def _exec_unknown_kind():
    from repro.exec import resolve

    resolve("no.such.kind")


def _campaign_bad_mode():
    from repro.campaign import CampaignSpec

    CampaignSpec(circuits=("cmb",), modes=({"kind": "meteor"},))


def _campaign_missing_checkpoint():
    from repro.campaign import load_journal

    load_journal("/no/such/campaign.ckpt.jsonl")


def _analysis_unknown_rule():
    from repro.analysis import LintConfig

    LintConfig(select=frozenset({"LINT999"})).active_rules()


def _analysis_bad_severity():
    from repro.analysis import Severity

    Severity.from_name("fatal")


@pytest.mark.parametrize(
    "trigger",
    [
        _netlist_cycle,
        _netlist_arity,
        _netlist_blif,
        _logic_expr,
        _logic_cube,
        _bdd_unknown_var,
        _bdd_mixed_managers,
        _spcf_threshold,
        _spcf_unbound_name,
        _masking_bad_pool,
        _exec_bad_jobs,
        _exec_unknown_kind,
        _campaign_bad_mode,
        _campaign_missing_checkpoint,
        _analysis_unknown_rule,
        _analysis_bad_severity,
    ],
    ids=lambda fn: fn.__name__.lstrip("_"),
)
def test_bad_inputs_raise_repro_errors(trigger):
    """Driving bad inputs through any subsystem raises a ReproError subclass."""
    with pytest.raises(errors.ReproError) as excinfo:
        trigger()
    assert type(excinfo.value) is not errors.ReproError  # a specific subclass


def test_single_catch_point():
    """Any library failure is catchable as ReproError."""
    from repro.netlist import unit_library

    with pytest.raises(errors.ReproError):
        unit_library().get("NOT_A_CELL")
    from repro.logic import parse_expr

    with pytest.raises(errors.ReproError):
        parse_expr("a &")

"""The executor backends: retry loop, drills, breaker, pool reuse, obs.

Process-pool cases spawn real worker subprocesses; the drills SIGKILL,
hang, and exit them for real — the suite is the executor's crash-isolation
contract, mirroring what the campaign resilience tests prove end-to-end.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.errors import ExecError
from repro.exec import (
    BreakerPolicy,
    InlineExecutor,
    ProcessPoolExecutor,
    RetryPolicy,
    Task,
    ThreadExecutor,
    available_backends,
    default_worker_count,
    make_executor,
    validated_jobs,
)

NO_BACKOFF = RetryPolicy(max_retries=3, backoff_base=0.0, backoff_jitter=0.0)


def probe(key, **payload) -> Task:
    return Task(kind="exec.probe", payload=payload, key=key)


@pytest.fixture
def pool():
    executor = ProcessPoolExecutor(
        workers=1, retry=NO_BACKOFF, task_timeout=60.0
    )
    yield executor
    executor.close()


class TestConfiguration:
    def test_available_backends(self):
        assert available_backends() == ("inline", "thread", "process", "queue")

    def test_default_worker_count_positive_and_capped(self):
        assert 1 <= default_worker_count() <= 8

    def test_validated_jobs(self):
        assert validated_jobs(0) == 0
        assert validated_jobs(3) == 3
        with pytest.raises(ExecError, match="must be >= 0"):
            validated_jobs(-1)
        with pytest.raises(ExecError, match="must be an integer"):
            validated_jobs("many")

    def test_make_executor_mapping(self, tmp_path):
        with make_executor(0) as ex:
            assert isinstance(ex, InlineExecutor)
        with make_executor(2) as ex:
            assert isinstance(ex, ProcessPoolExecutor)
            assert ex.workers == 2
        with make_executor(1, backend="thread") as ex:
            assert isinstance(ex, ThreadExecutor)
        with make_executor(
            1, backend="queue", queue_dir=tmp_path / "q"
        ) as ex:
            from repro.exec import QueueExecutor

            assert isinstance(ex, QueueExecutor)
        with pytest.raises(ExecError):
            make_executor(-2)
        with pytest.raises(ExecError, match="queue_dir"):
            make_executor(1, backend="queue")
        with pytest.raises(ExecError, match="backend"):
            make_executor(1, backend="carrier-pigeon")

    def test_bad_worker_counts(self):
        with pytest.raises(ExecError):
            ThreadExecutor(workers=0)
        with pytest.raises(ExecError):
            ProcessPoolExecutor(workers=0)

    def test_bad_timeout(self):
        with pytest.raises(ExecError, match="must be positive"):
            InlineExecutor(task_timeout=0.0)


class TestInline:
    def test_runs_in_this_process(self):
        with InlineExecutor() as ex:
            report = ex.run([probe("a", value=1), probe("b", value=2)])
        assert report.complete
        assert report.results["a"].value["value"] == 1
        assert report.results["a"].value["pid"] == os.getpid()
        assert report.attempts == 2

    def test_duplicate_keys_rejected(self):
        with InlineExecutor() as ex:
            with pytest.raises(ExecError, match="unique"):
                ex.run([probe("a"), probe("a")])

    def test_sabotage_rejected(self):
        with InlineExecutor() as ex:
            with pytest.raises(ExecError, match="process backend"):
                ex.run([probe("a")], sabotage={"a": {"mode": "kill"}})

    def test_deterministic_error_quarantines_without_retry(self):
        settled = []
        with InlineExecutor(retry=NO_BACKOFF) as ex:
            report = ex.run(
                [probe("bad", **{"raise": "boom"}), probe("good", value=7)],
                on_result=settled.append,
            )
        bad = report.results["bad"]
        assert bad.outcome == "quarantined"
        assert bad.attempts == 1
        assert "ExecError: boom" in bad.error
        assert report.results["good"].ok
        assert not report.complete
        assert report.quarantined.keys() == {"bad"}
        assert [r.task.key for r in settled] == ["bad", "good"]

    def test_breaker_stops_dispatch(self):
        events = []
        ex = InlineExecutor(
            retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(max_consecutive_failures=2),
            events=lambda ev, task, msg, info: events.append((ev, task.key)),
        )
        tasks = [probe(i, **{"raise": "bad env"}) for i in range(4)]
        report = ex.run(tasks)
        assert report.breaker_reason is not None
        assert "2 consecutive" in report.breaker_reason
        # The first two tasks fail and quarantine; the trip stops dispatch
        # before tasks 2 and 3 ever start.
        assert report.results[0].outcome == "quarantined"
        assert report.results[1].outcome == "quarantined"
        assert 2 not in report.results and 3 not in report.results
        assert ("breaker", 1) in events

    def test_success_resets_breaker_streak(self):
        ex = InlineExecutor(
            retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(max_consecutive_failures=2),
        )
        tasks = [
            probe("f1", **{"raise": "x"}),
            probe("ok", value=1),
            probe("f2", **{"raise": "x"}),
            probe("tail", value=2),
        ]
        report = ex.run(tasks)
        assert report.breaker_reason is None
        assert report.results["tail"].ok


class TestThread:
    def test_parallel_dispatch_in_process(self):
        with ThreadExecutor(workers=3) as ex:
            report = ex.run([probe(i, value=i, sleep=0.05) for i in range(6)])
        assert report.complete
        assert all(
            r.value["pid"] == os.getpid() for r in report.results.values()
        )

    def test_sabotage_rejected(self):
        with ThreadExecutor(workers=2) as ex:
            with pytest.raises(ExecError, match="process backend"):
                ex.run([probe("a")], sabotage={"a": {"mode": "hang"}})


class TestProcessPool:
    def test_worker_reused_across_tasks(self, pool):
        report = pool.run([probe(i, value=i) for i in range(4)])
        assert report.complete
        pids = {r.value["pid"] for r in report.results.values()}
        assert len(pids) == 1
        assert os.getpid() not in pids

    def test_kill_drill_retries_then_succeeds(self, pool):
        events = []
        pool.events = lambda ev, task, msg, info: events.append(ev)
        report = pool.run(
            [probe("a", value=1)],
            sabotage={"a": {"mode": "kill", "attempts": 1}},
        )
        result = report.results["a"]
        assert result.ok
        assert result.attempts == 2
        assert "killed by signal 9" in result.failures[0]
        assert events == [
            "attempt-started", "attempt-failed", "retry",
            "attempt-started", "task-done",
        ]

    def test_exit_drill_reports_code(self, pool):
        report = pool.run(
            [probe("a", value=1)],
            sabotage={"a": {"mode": "exit", "code": 7, "attempts": 1}},
        )
        result = report.results["a"]
        assert result.ok and result.attempts == 2
        assert "exited 7" in result.failures[0]

    def test_hang_drill_times_out_then_succeeds(self, pool):
        pool.task_timeout = 0.5
        report = pool.run(
            [probe("a", value=1)],
            sabotage={"a": {"mode": "hang", "seconds": 60, "attempts": 1}},
        )
        result = report.results["a"]
        assert result.ok and result.attempts == 2
        assert "timed out after 0.5s" in result.failures[0]

    def test_unrelenting_failure_quarantines(self, pool):
        pool.retry = RetryPolicy(
            max_retries=1, backoff_base=0.0, backoff_jitter=0.0
        )
        report = pool.run(
            [probe("a", value=1)], sabotage={"a": {"mode": "kill"}}
        )
        result = report.results["a"]
        assert result.outcome == "quarantined"
        assert result.attempts == 2
        assert "killed by signal 9" in result.error

    def test_deterministic_error_keeps_worker_alive(self, pool):
        first = pool.run([probe("warm", value=0)])
        pid = first.results["warm"].value["pid"]
        report = pool.run([probe("bad", **{"raise": "nope"})])
        bad = report.results["bad"]
        assert bad.outcome == "quarantined"
        assert bad.attempts == 1
        assert "ExecError: nope" in bad.error
        again = pool.run([probe("after", value=1)])
        assert again.results["after"].value["pid"] == pid

    def test_closed_pool_rejected(self):
        ex = ProcessPoolExecutor(workers=1)
        ex.close()
        with pytest.raises(ExecError, match="closed"):
            ex.run([probe("a")])
        ex.close()  # idempotent


class TestRespawnBackoff:
    """Worker respawns back off exponentially and are metered."""

    def test_delay_schedule_follows_retry_policy(self):
        retry = RetryPolicy(
            max_retries=3, backoff_base=0.1, backoff_cap=0.4,
            backoff_jitter=0.0,
        )
        ex = ProcessPoolExecutor(workers=1, retry=retry)
        try:
            delays = []
            for n in range(5):
                ex._respawns[0] = n
                delays.append(ex._respawn_delay(0))
        finally:
            ex.close()
        # First spawn free, then base * 2^(n-1) capped at backoff_cap.
        assert delays == [0.0, 0.1, 0.2, 0.4, 0.4]

    def test_spawn_failure_is_a_metered_retryable_attempt(self, monkeypatch):
        obs.configure(enabled=True)

        def exploding_handle(*args, **kwargs):
            raise OSError("out of file descriptors")

        monkeypatch.setattr(
            "repro.exec.executors._WorkerHandle", exploding_handle
        )
        with ProcessPoolExecutor(
            workers=1, retry=NO_BACKOFF, task_timeout=10.0
        ) as ex:
            report = ex.run([probe("a", value=1)])
        result = report.results["a"]
        assert result.outcome == "quarantined"
        assert "worker spawn failed" in result.error
        assert result.attempts == NO_BACKOFF.max_retries + 1
        snap = obs.metrics_snapshot()
        respawns = snap["metrics"]["repro_exec_respawns_total"]["series"]
        assert respawns["backend=process,outcome=spawn-failed"] == (
            NO_BACKOFF.max_retries + 1
        )

    def test_respawn_after_kill_is_metered_and_resets(self, pool):
        obs.configure(enabled=True)
        report = pool.run(
            [probe("a", value=1)],
            sabotage={"a": {"mode": "kill", "attempts": 1}},
        )
        assert report.results["a"].ok
        snap = obs.metrics_snapshot()
        respawns = snap["metrics"]["repro_exec_respawns_total"]["series"]
        assert respawns["backend=process,outcome=respawned"] == 1
        # A healthy attempt resets the backoff streak.
        assert pool._respawns == [0]


class TestObservability:
    def _series(self, snapshot, name):
        return snapshot["metrics"][name]["series"]

    def test_inline_counters_and_histogram(self):
        obs.configure(enabled=True)
        with InlineExecutor(retry=NO_BACKOFF) as ex:
            ex.run([probe("a", value=1), probe("bad", **{"raise": "x"})])
        snap = obs.metrics_snapshot()
        tasks = self._series(snap, "repro_exec_tasks_total")
        assert tasks["backend=inline,outcome=done"] == 1
        assert tasks["backend=inline,outcome=quarantined"] == 1
        wall = self._series(snap, "repro_exec_task_wall_seconds")
        assert wall["backend=inline"]["count"] == 2

    def test_process_pool_merges_worker_telemetry(self):
        obs.configure(enabled=True)
        with ProcessPoolExecutor(
            workers=1, retry=NO_BACKOFF, task_timeout=60.0
        ) as ex:
            report = ex.run([probe("a", value=1)])
        result = report.results["a"]
        assert result.worker_obs is not None
        assert "metrics" in result.worker_obs
        snap = obs.metrics_snapshot()
        tasks = self._series(snap, "repro_exec_tasks_total")
        assert tasks["backend=process,outcome=done"] == 1

    def test_malformed_worker_telemetry_never_fails_the_task(self):
        obs.configure(enabled=True)
        events = []
        with InlineExecutor(retry=NO_BACKOFF) as ex:
            ex.events = lambda *a: events.append(a)
            # Spans that are not a list and metrics whose series are not
            # mappings: both must be swallowed, counted, and surfaced as
            # a telemetry-drop event — never raised.
            ex._ingest_worker_obs(probe("a"), {"spans": 42})
            ex._ingest_worker_obs(
                probe("b"), {"metrics": {"bogus": 7}}
            )
        snap = obs.metrics_snapshot()
        drops = self._series(snap, "repro_exec_telemetry_drops_total")
        assert drops["backend=inline"] == 2
        assert [e[0] for e in events] == ["telemetry-drop", "telemetry-drop"]

    def test_task_spans_record_outcome(self):
        obs.configure(enabled=True)
        with InlineExecutor(retry=NO_BACKOFF) as ex:
            ex.run([
                Task(
                    kind="exec.probe",
                    payload={"value": 1},
                    key="a",
                    span_name="test.task",
                    span_attrs={"flavor": "plain"},
                )
            ])
        spans = [
            r for r in obs.span_records() if r["name"] == "test.task"
        ]
        assert len(spans) == 1
        assert spans[0]["args"]["outcome"] == "done"
        assert spans[0]["args"]["attempts"] == 1
        assert spans[0]["args"]["flavor"] == "plain"

"""The shared-directory work queue: protocol unit tests + chaos drills.

The protocol tests exercise :class:`WorkQueue` primitives directly —
atomic claims, lease expiry (including the skewed-clock mtime cap),
stealing, quarantine budgets, first-write-wins result dedup, torn files.
The executor tests run :class:`QueueExecutor` end-to-end with real
subprocess workers and real SIGKILL/hang sabotage.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ExecError
from repro.exec import (
    QueueExecutor,
    QueuePolicy,
    QueueWorker,
    RetryPolicy,
    Task,
    WorkQueue,
    worker_identity,
)
from repro.exec.queue_worker import EXIT_BREAKER, EXIT_DONE
from repro.exec.queuedir import iter_chunks
from tests.exec.queue_helpers import ENVFAIL_KIND, register_envfail_kind

register_envfail_kind()

NO_BACKOFF = RetryPolicy(max_retries=3, backoff_base=0.0, backoff_jitter=0.0)

#: Tight timing for single-core CI: drills resolve in ~a second.
FAST = QueuePolicy(
    lease_ttl=0.5, clock_skew_grace=0.1, max_lease_factor=4.0,
    poll_interval=0.02, max_attempts=3,
)


def probe(key, **payload) -> Task:
    return Task(kind="exec.probe", payload=payload, key=key)


def backdate(path, seconds: float) -> None:
    """Age a queue file: the expiry rules trust mtimes, not sleeps."""
    past = time.time() - seconds
    os.utime(path, (past, past))


@pytest.fixture
def queue(tmp_path):
    return WorkQueue.create(tmp_path / "q", FAST)


class TestQueuePolicy:
    def test_derived_intervals(self):
        policy = QueuePolicy(lease_ttl=9.0, max_lease_factor=4.0)
        assert policy.heartbeat_interval == pytest.approx(3.0)
        assert policy.max_lease_age == pytest.approx(36.0)

    def test_json_round_trip(self):
        policy = QueuePolicy(lease_ttl=2.0, clock_skew_grace=0.3,
                             poll_interval=0.05, max_attempts=7)
        assert QueuePolicy.from_json(policy.to_json()) == policy

    @pytest.mark.parametrize("kwargs", [
        {"lease_ttl": 0.0},
        {"clock_skew_grace": -1.0},
        {"max_lease_factor": 0.5},
        {"poll_interval": 0.0},
        {"max_attempts": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ExecError):
            QueuePolicy(**kwargs)

    def test_worker_identity_is_label_safe_and_unique(self):
        a, b = worker_identity(), worker_identity()
        assert a != b
        assert str(os.getpid()) in a
        assert "=" not in a and "," not in a


class TestLifecycle:
    def test_create_persists_policy_for_other_hosts(self, tmp_path):
        WorkQueue.create(tmp_path / "q", FAST)
        # A worker on another host opens with no policy argument and must
        # recover the coordinator's timing knobs from the manifest.
        adopted = WorkQueue.open(tmp_path / "q")
        assert adopted.policy == FAST

    def test_open_rejects_non_queue_directories(self, tmp_path):
        with pytest.raises(ExecError, match="not a work-queue"):
            WorkQueue.open(tmp_path)

    def test_open_rejects_foreign_schema(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", FAST)
        queue._write_json("queue.json", {"schema": 99})
        with pytest.raises(ExecError, match="schema"):
            WorkQueue.open(tmp_path / "q")

    def test_stop_marker(self, queue):
        assert not queue.stopped()
        queue.stop()
        assert queue.stopped()

    def test_create_adopts_existing_queue(self, tmp_path):
        first = WorkQueue.create(tmp_path / "q", FAST)
        first.publish_task(probe("a"))
        again = WorkQueue.create(tmp_path / "q")
        assert again.policy == FAST
        assert len(again.todo_fingerprints()) == 1


class TestClaiming:
    def test_publish_is_idempotent_and_content_addressed(self, queue):
        t = probe("a", value=1)
        fp1 = queue.publish_task(t)
        fp2 = queue.publish_task(probe("other-key", value=1))
        assert fp1 == fp2  # same content, key does not matter
        assert queue.todo_fingerprints() == [fp1]

    def test_exactly_one_claimant_wins(self, queue):
        fp = queue.publish_task(probe("a"))
        first = queue.try_claim(fp, "w1", 0)
        second = queue.try_claim(fp, "w2", 0)
        assert first is not None and first["kind"] == "exec.probe"
        assert second is None
        lease = queue.read_lease(fp)
        assert lease["worker"] == "w1"

    def test_renew_and_release_are_owner_only(self, queue):
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        assert queue.renew_lease(fp, "w1")
        assert not queue.renew_lease(fp, "thief")
        queue.release(fp, "thief")  # no-op: not the owner
        assert queue.read_lease(fp) is not None
        queue.release(fp, "w1")
        assert queue.read_lease(fp) is None
        assert queue.claimed_fingerprints() == []


class TestLeaseExpiry:
    def test_fresh_lease_is_live(self, queue):
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        assert queue.lease_expiry_reason(fp) is None

    def test_stale_deadline_expires(self, queue):
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        future = time.time() + FAST.lease_ttl + FAST.clock_skew_grace + 1.0
        reason = queue.lease_expiry_reason(fp, now=future)
        assert "stopped renewing" in reason

    def test_far_future_deadline_is_capped_by_mtime(self, queue):
        # A claimant with a fast-skewed clock writes a deadline hours
        # ahead; the mtime cap must still expire the lease.
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        lease = queue.read_lease(fp)
        lease["deadline"] = time.time() + 3600.0
        queue._write_json(f"leases/{fp}.json", lease)
        backdate(queue.root / "leases" / f"{fp}.json",
                 FAST.max_lease_age + 1.0)
        reason = queue.lease_expiry_reason(fp)
        assert "untrusted" in reason

    def test_leaseless_claim_expires_by_claim_mtime(self, queue):
        # Simulate a claimant dying between the rename and the lease
        # write: claimed/ entry exists, leases/ entry does not.
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        (queue.root / "leases" / f"{fp}.json").unlink()
        assert queue.lease_expiry_reason(fp) is None  # still fresh
        backdate(queue.root / "claimed" / f"{fp}.json",
                 FAST.lease_ttl + FAST.clock_skew_grace + 1.0)
        assert "died mid-claim" in queue.lease_expiry_reason(fp)

    def test_torn_lease_trusts_only_mtime(self, queue):
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        path = queue.root / "leases" / f"{fp}.json"
        path.write_text("{torn", encoding="ascii")
        assert queue.lease_expiry_reason(fp) is None
        backdate(path, FAST.lease_ttl + FAST.clock_skew_grace + 1.0)
        assert "unreadable lease" in queue.lease_expiry_reason(fp)


class TestStealing:
    def _expire(self, queue, fp):
        backdate(queue.root / "leases" / f"{fp}.json",
                 FAST.max_lease_age + 1.0)
        lease = queue.read_lease(fp)
        lease["deadline"] = 0.0
        queue._write_json(f"leases/{fp}.json", lease)
        backdate(queue.root / "leases" / f"{fp}.json",
                 FAST.max_lease_age + 1.0)

    def test_reclaim_requeues_and_bumps_attempts(self, queue):
        fp = queue.publish_task(probe("a"))
        queue.try_claim(fp, "w1", 0)
        self._expire(queue, fp)
        action = queue.reclaim(fp, "thief", FAST.max_attempts, "w1 died")
        assert action == "requeued"
        assert queue.todo_fingerprints() == [fp]
        assert queue.read_lease(fp) is None
        record = queue.attempts(fp)
        assert record["attempts"] == 1
        assert record["failures"] == ["w1 died"]

    def test_reclaim_quarantines_over_budget(self, queue):
        fp = queue.publish_task(probe("a"))
        for n in range(FAST.max_attempts - 1):
            queue.try_claim(fp, f"w{n}", n)
            self._expire(queue, fp)
            assert queue.reclaim(
                fp, "thief", FAST.max_attempts, f"death {n}"
            ) == "requeued"
        queue.try_claim(fp, "last", FAST.max_attempts - 1)
        self._expire(queue, fp)
        action = queue.reclaim(fp, "thief", FAST.max_attempts, "final death")
        assert action == "quarantined"
        result = queue.read_result(fp)
        assert result["quarantine"] is True
        assert "final death" in result["error"]
        assert len(result["failures"]) == FAST.max_attempts
        # The queue never stalls: nothing left to claim or steal.
        assert queue.todo_fingerprints() == []
        assert queue.claimed_fingerprints() == []

    def test_reclaim_expired_skips_live_and_cleans_completed(self, queue):
        live = queue.publish_task(probe("live", value=1))
        dead = queue.publish_task(probe("dead", value=2))
        done = queue.publish_task(probe("done", value=3))
        queue.try_claim(live, "w1", 0)
        queue.try_claim(dead, "w2", 0)
        queue.try_claim(done, "w3", 0)
        self._expire(queue, dead)
        # w3 published its result but died before releasing the claim.
        queue.publish_result(done, {"fingerprint": done, "result": 1})
        won = queue.reclaim_expired("thief")
        assert [(fp, action) for fp, action, _ in won] == [(dead, "requeued")]
        assert queue.claimed_fingerprints() == [live]
        assert queue.read_lease(done) is None


class TestResults:
    def test_first_write_wins_and_duplicates_dedup(self, queue):
        fp = "f" * 64
        doc = {"fingerprint": fp, "worker": "w1", "result": {"v": 1}}
        assert queue.publish_result(fp, doc) == "published"
        # A stolen-but-slow worker publishes the same deterministic
        # payload with different envelope fields: dedup.
        dup = {"fingerprint": fp, "worker": "w2", "attempt": 3,
               "result": {"v": 1}}
        assert queue.publish_result(fp, dup) == "duplicate"
        assert queue.read_result(fp)["worker"] == "w1"  # first is canonical

    def test_divergent_duplicate_is_flagged_not_overwritten(self, queue):
        fp = "e" * 64
        queue.publish_result(fp, {"fingerprint": fp, "result": {"v": 1}})
        state = queue.publish_result(fp, {"fingerprint": fp, "result": {"v": 2}})
        assert state == "divergent"
        assert queue.read_result(fp)["result"] == {"v": 1}

    def test_error_results_always_dedup(self, queue):
        fp = "d" * 64
        queue.publish_result(fp, {"fingerprint": fp, "error": "boom on w1"})
        state = queue.publish_result(
            fp, {"fingerprint": fp, "error": "different text on w2"}
        )
        assert state == "duplicate"

    def test_torn_result_reads_as_missing(self, queue):
        fp = "c" * 64
        (queue.root / "results" / f"{fp}.json").write_text(
            '{"half a doc', encoding="ascii"
        )
        assert queue.read_result(fp) is None
        # ... and a publisher treats it as absent, claiming authorship.
        assert queue.publish_result(
            fp, {"fingerprint": fp, "result": 1}
        ) == "published"
        assert queue.read_result(fp)["result"] == 1


class TestEventsAndScan:
    def test_events_merge_sorted_and_skip_torn_tails(self, queue):
        queue.log_event("w1", "claimed", fingerprint="a" * 64)
        queue.log_event("w2", "done", fingerprint="a" * 64)
        with open(queue.root / "events" / "w1.jsonl", "a") as handle:
            handle.write('{"torn":')  # killed mid-append
        events = queue.events()
        assert [e["event"] for e in events] == ["claimed", "done"]
        assert events[0]["ts"] <= events[1]["ts"]

    def test_scan_counts_and_worker_ages(self, queue):
        fp = queue.publish_task(probe("a", value=1))
        queue.publish_task(probe("b", value=2))
        queue.try_claim(fp, "w1", 0)
        queue.log_event("w1", "claimed", fingerprint=fp)
        queue.write_heartbeat("w1", "busy", tasks_done=2, current=fp)
        snapshot = queue.scan()
        assert (snapshot.todo, snapshot.claimed, snapshot.done) == (1, 1, 0)
        assert snapshot.total == 2
        assert snapshot.counters["claims"] == 1
        assert snapshot.leases[0]["worker"] == "w1"
        assert snapshot.workers["w1"]["tasks_done"] == 2
        assert snapshot.worker_ages()["w1"] < 5.0

    def test_iter_chunks(self):
        assert list(iter_chunks(range(5), 2)) == [[0, 1], [2, 3], [4]]


class TestQueueWorkerInline:
    """The worker loop run in-process against a private queue."""

    def test_drains_queue_then_idles_out(self, queue):
        fps = [queue.publish_task(probe(k, value=k)) for k in range(3)]
        worker = QueueWorker(queue, worker_id="w1", idle_exit=0.1)
        assert worker.run() == EXIT_DONE
        assert worker.tasks_done == 3
        for k, fp in enumerate(fps):
            assert queue.read_result(fp)["result"]["value"] == k
        assert queue.claimed_fingerprints() == []
        events = [e["event"] for e in queue.events()]
        assert events.count("claimed") == 3
        assert events.count("done") == 3
        assert events[-1] == "worker-exit"
        assert queue.workers()["w1"]["state"] == "exited"

    def test_stop_marker_takes_precedence(self, queue):
        queue.publish_task(probe("a"))
        queue.stop()
        worker = QueueWorker(queue, worker_id="w1", idle_exit=5.0)
        assert worker.run() == EXIT_DONE
        assert worker.tasks_done == 0

    def test_deterministic_error_publishes_quarantine_result(self, queue):
        fp = queue.publish_task(probe("bad", **{"raise": "boom"}))
        worker = QueueWorker(queue, worker_id="w1", idle_exit=0.1)
        worker.run()
        result = queue.read_result(fp)
        assert result["quarantine"] is True
        assert "boom" in result["error"]
        # Deterministic errors cost no environmental-attempt budget.
        assert queue.attempts(fp)["attempts"] == 0

    def test_environmental_failure_requeues_then_quarantines(self, queue):
        task = Task(kind=ENVFAIL_KIND, payload={}, key="a")
        fp = queue.publish_task(task)
        worker = QueueWorker(
            queue, worker_id="w1", idle_exit=0.3,
            max_consecutive_failures=FAST.max_attempts + 1,
        )
        worker.run()
        record = queue.attempts(fp)
        assert record["attempts"] >= FAST.max_attempts - 1
        result = queue.read_result(fp)
        assert result is not None and result["quarantine"] is True

    def test_breaker_removes_sick_worker(self, queue):
        for k in range(4):
            queue.publish_task(
                Task(kind=ENVFAIL_KIND, payload={"k": k}, key=k)
            )
        worker = QueueWorker(
            queue, worker_id="sick", idle_exit=2.0,
            max_consecutive_failures=2,
        )
        assert worker.run() == EXIT_BREAKER
        assert any(e["event"] == "breaker" for e in queue.events())


class TestQueueExecutor:
    """End-to-end runs through the executor, including real chaos."""

    def _executor(self, tmp_path, workers, **kwargs):
        kwargs.setdefault("retry", NO_BACKOFF)
        kwargs.setdefault("task_timeout", 10.0)
        kwargs.setdefault("lease_ttl", 1.0)
        return QueueExecutor(tmp_path / "q", workers=workers, **kwargs)

    def test_coordinator_inline_run(self, tmp_path):
        settled = []
        with self._executor(tmp_path, workers=0) as ex:
            report = ex.run(
                [probe("a", value=1), probe("b", value=2)],
                on_result=settled.append,
            )
        assert report.complete
        assert report.results["a"].value["value"] == 1
        assert report.results["b"].value["value"] == 2
        assert {r.task.key for r in settled} == {"a", "b"}

    def test_content_identical_tasks_execute_once(self, tmp_path):
        with self._executor(tmp_path, workers=0) as ex:
            report = ex.run([probe("a", value=7), probe("b", value=7)])
        assert report.complete
        assert report.results["a"].value == report.results["b"].value
        # One claim served both keys: content-addressed dedup.
        assert report.attempts == 1

    def test_deterministic_error_quarantines(self, tmp_path):
        with self._executor(tmp_path, workers=0) as ex:
            report = ex.run(
                [probe("bad", **{"raise": "boom"}), probe("ok", value=1)]
            )
        assert not report.complete
        bad = report.results["bad"]
        assert bad.outcome == "quarantined"
        assert "boom" in bad.error
        assert report.results["ok"].ok

    def test_sabotage_requires_isolated_workers(self, tmp_path):
        with self._executor(tmp_path, workers=0) as ex:
            with pytest.raises(ExecError, match="workers"):
                ex.run([probe("a")], sabotage={"a": {"mode": "kill"}})

    def test_closed_executor_rejected(self, tmp_path):
        ex = self._executor(tmp_path, workers=0)
        ex.close()
        with pytest.raises(ExecError, match="closed"):
            ex.run([probe("a")])
        ex.close()  # idempotent

    def test_duplicate_keys_rejected(self, tmp_path):
        with self._executor(tmp_path, workers=0) as ex:
            with pytest.raises(ExecError, match="unique"):
                ex.run([probe("a"), probe("a")])

    @pytest.mark.slow
    def test_worker_killed_mid_lease_is_stolen_and_finished(self, tmp_path):
        with self._executor(
            tmp_path, workers=2, task_timeout=5.0, lease_ttl=1.0,
        ) as ex:
            report = ex.run(
                [probe(k, value=k) for k in range(4)],
                sabotage={2: {"mode": "kill", "attempts": 1}},
            )
        assert report.complete
        assert report.results[2].value["value"] == 2
        assert report.results[2].attempts >= 2  # the kill cost an attempt
        queue = WorkQueue.open(tmp_path / "q")
        assert queue.scan().counters["steals"] >= 1

    @pytest.mark.slow
    def test_wedged_worker_loses_lease_but_campaign_completes(self, tmp_path):
        # hang >> task_timeout: the victim stays alive (heartbeating) but
        # its renewal thread gives up, the lease expires, a peer steals.
        with self._executor(
            tmp_path, workers=2, task_timeout=1.0, lease_ttl=0.8,
        ) as ex:
            report = ex.run(
                [probe(k, value=k) for k in range(3)],
                sabotage={1: {"mode": "hang", "seconds": 60.0,
                              "attempts": 1}},
            )
        assert report.complete
        assert report.results[1].value["value"] == 1

"""Tasks, fingerprints, policies, and the kind registry."""

from __future__ import annotations

import pytest

from repro.errors import ExecError
from repro.exec import (
    BreakerPolicy,
    RetryPolicy,
    Task,
    canonical_json,
    register_task_kind,
    registered_kinds,
    resolve,
    resolve_span,
)


def probe(value=None, **extra) -> Task:
    payload = {"value": value, **extra}
    return Task(kind="exec.probe", payload=payload, key=str(value))


class TestFingerprint:
    def test_content_addressed(self):
        a = Task(kind="exec.probe", payload={"value": 1}, key="a")
        b = Task(kind="exec.probe", payload={"value": 1}, key="b")
        assert a.fingerprint() == b.fingerprint()

    def test_payload_changes_it(self):
        a = Task(kind="exec.probe", payload={"value": 1}, key="a")
        b = Task(kind="exec.probe", payload={"value": 2}, key="a")
        assert a.fingerprint() != b.fingerprint()

    def test_kind_changes_it(self):
        a = Task(kind="exec.probe", payload={}, key="a")
        b = Task(kind="campaign.shard", payload={}, key="a")
        assert a.fingerprint() != b.fingerprint()

    def test_display_hints_excluded(self):
        plain = Task(kind="exec.probe", payload={"value": 1}, key="a")
        traced = Task(
            kind="exec.probe",
            payload={"value": 1},
            key="a",
            span_name="fancy",
            span_category="spcf",
            span_attrs={"output": "y"},
            attempt_attrs={"shard": 3},
        )
        assert plain.fingerprint() == traced.fingerprint()

    def test_key_order_irrelevant(self):
        a = Task(kind="exec.probe", payload={"a": 1, "b": 2}, key="k")
        b = Task(kind="exec.probe", payload={"b": 2, "a": 1}, key="k")
        assert a.fingerprint() == b.fingerprint()

    def test_unserializable_payload_rejected(self):
        task = Task(kind="exec.probe", payload={"bad": object()}, key="k")
        with pytest.raises(ExecError, match="JSON-serializable"):
            task.fingerprint()

    def test_empty_kind_rejected(self):
        with pytest.raises(ExecError, match="non-empty"):
            Task(kind="", payload={}, key="k")


def test_canonical_json_is_stable():
    assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ExecError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ExecError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ExecError):
            RetryPolicy(backoff_jitter=-1.0)

    def test_delay_deterministic(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_jitter=0.25)
        task = probe(1)
        assert policy.delay(task, 0) == policy.delay(task, 0)

    def test_delay_bounds_and_growth(self):
        policy = RetryPolicy(
            backoff_base=0.5, backoff_cap=2.0, backoff_jitter=0.25
        )
        task = probe(1)
        for attempt, base in enumerate((0.5, 1.0, 2.0, 2.0)):
            delay = policy.delay(task, attempt)
            assert base <= delay <= base * 1.25

    def test_zero_base_means_no_sleep(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.delay(probe(1), 3) == 0.0


class TestBreakerPolicy:
    def test_validation(self):
        with pytest.raises(ExecError):
            BreakerPolicy(max_consecutive_failures=0)

    def test_trip_threshold(self):
        policy = BreakerPolicy(max_consecutive_failures=3)
        assert policy.trip_reason(2, "boom") is None
        reason = policy.trip_reason(3, "boom")
        assert reason is not None
        assert "3 consecutive" in reason and "boom" in reason


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        assert "exec.probe" in kinds
        assert "campaign.shard" in kinds
        assert "spcf.output" in kinds
        assert list(kinds) == sorted(kinds)

    def test_resolve_runner_and_span(self):
        assert callable(resolve("exec.probe"))
        assert resolve_span("exec.probe") is None
        assert callable(resolve_span("campaign.shard"))

    def test_unknown_kind(self):
        with pytest.raises(ExecError, match="unknown task kind"):
            resolve("no.such.kind")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExecError, match="already registered"):
            register_task_kind("exec.probe", "repro.exec.drills:run_probe")

    def test_bad_import_reference_rejected(self):
        with pytest.raises(ExecError, match="module:attr"):
            register_task_kind("test.bad", "not-an-import-string")

    def test_register_and_replace(self):
        register_task_kind(
            "test.echo", "repro.exec.drills:run_probe", replace=True
        )
        assert callable(resolve("test.echo"))
        register_task_kind(
            "test.echo", "repro.exec.drills:run_probe", replace=True
        )

    def test_unloadable_reference_reported(self):
        register_task_kind(
            "test.ghost", "repro.no_such_module:fn", replace=True
        )
        with pytest.raises(ExecError, match="unloadable"):
            resolve("test.ghost")

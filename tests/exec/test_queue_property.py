"""Property tests of the queue protocol's two core invariants.

1. **No double execution**: however many workers race to claim, each
   published task is claimed by exactly one of them.
2. **Crash-tolerant completeness**: for *any* schedule of mid-lease
   worker deaths, reclaiming and re-running always converges to a
   complete result set whose canonical payloads are byte-identical to an
   undisturbed run's.

Deaths are simulated at the protocol level (a claim whose lease is never
renewed and whose files are backdated past expiry) so hypothesis can
explore many schedules without paying real process spawns or sleeps.
"""

from __future__ import annotations

import os
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import QueuePolicy, QueueWorker, Task, WorkQueue
from repro.exec.task import canonical_json

FAST = QueuePolicy(
    lease_ttl=0.5, clock_skew_grace=0.1, max_lease_factor=4.0,
    poll_interval=0.01, max_attempts=6,
)


def probe(k: int) -> Task:
    return Task(kind="exec.probe", payload={"value": k}, key=k)


def expire_lease(queue: WorkQueue, fp: str) -> None:
    """Backdate one claim's lease so every expiry rule sees it as dead."""
    lease = queue.read_lease(fp)
    if lease is not None:
        lease["deadline"] = 0.0
        queue._write_json(f"leases/{fp}.json", lease)
    past = time.time() - FAST.max_lease_age - 1.0
    for sub in ("leases", "claimed"):
        path = queue.root / sub / f"{fp}.json"
        if path.exists():
            os.utime(path, (past, past))


@settings(max_examples=12, deadline=None)
@given(
    n_tasks=st.integers(min_value=1, max_value=5),
    n_workers=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_racing_claims_never_double_execute(tmp_path_factory, n_tasks,
                                            n_workers, seed):
    queue = WorkQueue.create(
        tmp_path_factory.mktemp("race") / "q", FAST
    )
    fps = [queue.publish_task(probe(k)) for k in range(n_tasks)]
    wins: list[tuple[str, str]] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_workers)

    def claimant(wid: str) -> None:
        barrier.wait()  # maximize contention on the renames
        for fp in fps:
            if queue.try_claim(fp, wid, 0) is not None:
                with lock:
                    wins.append((fp, wid))

    threads = [
        threading.Thread(target=claimant, args=(f"w{i}",))
        for i in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    claimed_fps = [fp for fp, _ in wins]
    assert sorted(claimed_fps) == sorted(set(fps)), (
        "every task claimed exactly once regardless of contention"
    )


@settings(max_examples=10, deadline=None)
@given(
    n_tasks=st.integers(min_value=2, max_value=5),
    data=st.data(),
)
def test_any_kill_schedule_converges_byte_identical(tmp_path_factory,
                                                    n_tasks, data):
    # Which tasks are claimed by workers that then die mid-lease — any
    # subset, including all of them — and how many times each dies
    # before a survivor gets through (must stay under the budget).
    deaths = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_tasks - 1),
            max_size=2 * n_tasks,
        ),
        label="death schedule (task indices, in order)",
    )
    death_budget = {k: deaths.count(k) for k in set(deaths)}
    for k, n in death_budget.items():
        if n >= FAST.max_attempts:
            deaths = [d for d in deaths if d != k]  # keep it completable

    # Reference: an undisturbed single-worker run.
    clean = WorkQueue.create(tmp_path_factory.mktemp("clean") / "q", FAST)
    for k in range(n_tasks):
        clean.publish_task(probe(k))
    QueueWorker(clean, worker_id="ref", idle_exit=0.05).run()
    expected = {
        fp: canonical_json(clean.read_result(fp).get("result"))
        for fp in clean.result_fingerprints()
    }
    assert len(expected) == n_tasks

    # Chaos: workers claim and die mid-lease per the drawn schedule ...
    queue = WorkQueue.create(tmp_path_factory.mktemp("chaos") / "q", FAST)
    fps = [queue.publish_task(probe(k)) for k in range(n_tasks)]
    for i, k in enumerate(deaths):
        fp = fps[k]
        if queue.read_result(fp) is not None:
            continue
        if queue.try_claim(fp, f"victim{i}", 0) is None:
            continue
        expire_lease(queue, fp)
        # An idle peer (or the coordinator) steals the expired lease.
        won = queue.reclaim_expired(f"thief{i}")
        assert any(w[0] == fp for w in won)

    # ... and one survivor drains whatever is left.
    QueueWorker(queue, worker_id="survivor", idle_exit=0.05).run()

    got = {
        fp: canonical_json(queue.read_result(fp).get("result"))
        for fp in queue.result_fingerprints()
    }
    assert got == expected, (
        "complete and byte-identical to the undisturbed run, for any "
        "schedule of mid-lease deaths"
    )
    assert queue.claimed_fingerprints() == []
    assert queue.todo_fingerprints() == []

"""Kill drill: a SIGKILLed worker's flight dump survives and joins up.

The acceptance test for the flight recorder: run a real worker
subprocess with ``REPRO_OBS`` on, let it get mid-task (span open, log
line emitted, metric bumped), SIGKILL it, and verify the
``telemetry/<worker>.flight.json`` it left behind round-trips and
carries the spans / logs / metric deltas of the in-flight task, all
joined on the task-fingerprint correlation id.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.exec import QueueExecutor, QueuePolicy, RetryPolicy, Task, WorkQueue
from repro.obs.flight import load_flight
from repro.obs.timeseries import FLIGHT_SUFFIX
from tests.exec.queue_helpers import SPANNED_KIND, register_spanned_kind

register_spanned_kind()

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Worker bootstrap: the drill kind lives in the test tree, so the
#: subprocess must put the repo root on its path before the registry's
#: lazy ``module:attr`` reference resolves.
_WORKER_CODE = """
import sys
sys.path.insert(0, {root!r})
from tests.exec.queue_helpers import register_spanned_kind
register_spanned_kind()
from repro.exec.queue_worker import main
sys.exit(main([{queue!r}, "--worker-id", "victim", "--quiet"]))
"""


def _worker_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    env[obs.ENV_VAR] = "1"
    return env


def _wait_for(predicate, timeout: float = 20.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached before the drill timeout")


@pytest.mark.slow
class TestKillDrill:
    def test_sigkilled_worker_leaves_a_joined_flight_dump(self, tmp_path):
        queue = WorkQueue.create(
            tmp_path / "q", QueuePolicy(lease_ttl=0.9, poll_interval=0.05)
        )
        fp = queue.publish_task(
            Task(kind=SPANNED_KIND, payload={"sleep": 120.0}, key="victim")
        )
        dump_path = queue.root / "telemetry" / f"victim{FLIGHT_SUFFIX}"
        proc = subprocess.Popen(
            [sys.executable, "-c", _WORKER_CODE.format(
                root=str(REPO_ROOT), queue=str(queue.root)
            )],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            def drill_captured():
                if not dump_path.exists():
                    return None
                try:
                    doc = load_flight(dump_path)
                except ValueError:
                    return None  # mid-rename; retry
                kinds = {e["kind"] for e in doc["entries"]}
                if {"span-open", "log", "metrics"} <= kinds:
                    return doc
                return None

            _wait_for(drill_captured)
            # The task is provably in flight: kill the worker for real.
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        doc = load_flight(dump_path)  # round-trips after the kill
        assert doc["schema"] == 1
        assert doc["worker"] == "victim"
        entries = doc["entries"]

        opens = [e for e in entries if e["kind"] == "span-open"]
        assert any(
            e["name"] == "spanned.run" and e.get("corr") == fp for e in opens
        )
        logs = [e for e in entries if e["kind"] == "log"]
        events = {e["event"] for e in logs}
        assert {"task.claimed", "spanned.working"} <= events
        assert all(
            e.get("corr") == fp for e in logs
            if e["event"] in ("task.claimed", "spanned.working")
        )
        metric_seqs = {e["seq"] for e in entries if e["kind"] == "metrics"}
        assert metric_seqs
        merged = {}
        for e in entries:
            if e["kind"] == "metrics":
                merged.update(e["delta"]["metrics"])
        assert "repro_test_spanned_total" in merged

        # The metric deltas join the same task through the telemetry
        # stream: the flush records carrying those seqs name fp as the
        # in-flight fingerprint.
        stream = [
            json.loads(line)
            for line in (queue.root / "telemetry" / "victim.jsonl")
            .read_text().splitlines()
        ]
        by_seq = {rec["seq"]: rec for rec in stream}
        assert any(
            by_seq[seq]["current"] == fp
            for seq in metric_seqs if seq in by_seq
        )

    def test_inline_run_harvests_flight_dumps(self, tmp_path):
        # The coordinator-side half: after a run, every worker's on-disk
        # flight dump is validated and collected into ``flight_dir``.
        obs.configure(enabled=True)
        flights = tmp_path / "flights"
        with QueueExecutor(
            tmp_path / "q",
            workers=0,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0,
                              backoff_jitter=0.0),
            task_timeout=30.0,
            lease_ttl=1.0,
            flight_dir=flights,
        ) as ex:
            report = ex.run([
                Task(kind="exec.probe", payload={"value": 1}, key="a")
            ])
        assert report.complete
        assert ex.fleet is not None and ex.fleet.workers()
        dumps = list(flights.glob(f"*{FLIGHT_SUFFIX}"))
        assert len(dumps) == 1
        doc = load_flight(dumps[0])
        assert doc["worker"].startswith("inline-")

    def test_harvest_skips_invalid_dumps(self, tmp_path):
        from repro.obs.flight import FlightRecorder

        queue = WorkQueue.create(tmp_path / "q", QueuePolicy(lease_ttl=1.0))
        tdir = queue.root / "telemetry"
        tdir.mkdir(exist_ok=True)
        FlightRecorder(worker="good").dump_to(
            tdir / f"good{FLIGHT_SUFFIX}", trigger="exit"
        )
        (tdir / f"torn{FLIGHT_SUFFIX}").write_text('{"schema": 1, "en')
        flights = tmp_path / "flights"
        ex = QueueExecutor(
            tmp_path / "q", workers=0, flight_dir=flights
        )
        try:
            ex._harvest_flight_dumps(queue)
        finally:
            ex.close()
        assert [p.name for p in flights.iterdir()] \
            == [f"good{FLIGHT_SUFFIX}"]

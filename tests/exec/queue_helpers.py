"""Task runners the queue tests register for failure injection.

Lives outside ``test_*.py`` so the registry's lazy ``module:attr``
references can import it from any process that has the repo root on its
path (the inline queue worker runs in the test process itself).
"""

from __future__ import annotations

from repro.exec.registry import register_task_kind

#: Kind name for a task whose runner fails *environmentally*.
ENVFAIL_KIND = "exec.test-envfail"


def raise_runtime(payload: dict) -> dict:
    """An environmental failure: RuntimeError is not a deterministic
    error, so the worker must requeue the claim and bump the shared
    attempt budget rather than quarantine."""
    raise RuntimeError(f"environment down (task {payload.get('k')})")


def register_envfail_kind() -> None:
    register_task_kind(
        ENVFAIL_KIND, "tests.exec.queue_helpers:raise_runtime", replace=True
    )

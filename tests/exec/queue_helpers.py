"""Task runners the queue tests register for failure injection.

Lives outside ``test_*.py`` so the registry's lazy ``module:attr``
references can import it from any process that has the repo root on its
path (the inline queue worker runs in the test process itself).
"""

from __future__ import annotations

import time

from repro.exec.registry import register_task_kind

#: Kind name for a task whose runner fails *environmentally*.
ENVFAIL_KIND = "exec.test-envfail"

#: Kind name for the flight-recorder drill: span + log + metric, then sleep.
SPANNED_KIND = "exec.test-spanned"


def raise_runtime(payload: dict) -> dict:
    """An environmental failure: RuntimeError is not a deterministic
    error, so the worker must requeue the claim and bump the shared
    attempt budget rather than quarantine."""
    raise RuntimeError(f"environment down (task {payload.get('k')})")


def register_envfail_kind() -> None:
    register_task_kind(
        ENVFAIL_KIND, "tests.exec.queue_helpers:raise_runtime", replace=True
    )


def run_spanned(payload: dict) -> dict:
    """Record one of everything the flight ring captures — a metric
    increment and a log line, under the span the registry opened — then
    sleep so a kill drill catches the task in flight."""
    from repro import obs

    obs.get_meter().counter(
        "repro_test_spanned_total", "flight-drill task executions"
    ).add(1)
    obs.get_logger("exec.test-spanned").info("spanned.working")
    time.sleep(float(payload.get("sleep", 0.0)))
    return {"ok": True}


def spanned_span(payload: dict, attempt: int):
    return ("test", "spanned.run", (("attempt", attempt),))


def register_spanned_kind() -> None:
    register_task_kind(
        SPANNED_KIND,
        "tests.exec.queue_helpers:run_spanned",
        span="tests.exec.queue_helpers:spanned_span",
        replace=True,
    )

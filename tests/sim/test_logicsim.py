"""Tests for zero-delay logic simulation."""

import pytest

from repro.benchcircuits import comparator2, comparator2_reference
from repro.errors import SimulationError
from repro.sim import (
    exhaustive_patterns,
    pack_patterns,
    random_patterns,
    simulate,
    simulate_words,
)
from tests.conftest import random_dag_circuit


def test_comparator_against_reference():
    c = comparator2()
    for pat in exhaustive_patterns(c.inputs):
        got = simulate(c, pat)["y"]
        assert got == comparator2_reference(
            pat["a0"], pat["a1"], pat["b0"], pat["b1"]
        )


def test_missing_input_rejected():
    with pytest.raises(SimulationError):
        simulate(comparator2(), {"a0": True})


def test_exhaustive_guard():
    with pytest.raises(SimulationError):
        list(exhaustive_patterns([f"x{i}" for i in range(30)]))


def test_random_patterns_deterministic():
    ins = ("a", "b", "c")
    a = list(random_patterns(ins, 20, seed=5))
    b = list(random_patterns(ins, 20, seed=5))
    assert a == b
    assert a != list(random_patterns(ins, 20, seed=6))


def test_word_simulation_matches_scalar():
    for seed in range(5):
        c = random_dag_circuit(seed, num_inputs=6, num_gates=15)
        pats = list(random_patterns(c.inputs, 64, seed=seed))
        words, width = pack_patterns(c.inputs, pats)
        word_vals = simulate_words(c, words, width)
        for i, pat in enumerate(pats):
            ref = simulate(c, pat)
            for net in c.nets():
                assert bool((word_vals[net] >> i) & 1) == ref[net], (seed, net)


def test_word_simulation_missing_input():
    with pytest.raises(SimulationError):
        simulate_words(comparator2(), {"a0": 1}, 1)


def test_pack_patterns_layout():
    words, width = pack_patterns(
        ("a", "b"), [{"a": True, "b": False}, {"a": False, "b": True}]
    )
    assert width == 2
    assert words["a"] == 0b01
    assert words["b"] == 0b10

"""Tests for clocked sampling and timing-error injection."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SimulationError
from repro.sim import (
    exhaustive_patterns,
    random_patterns,
    sample_at_clock,
    timing_errors,
)
from repro.sta import analyze


def test_sampling_at_full_period_is_error_free():
    c = comparator2()
    delta = analyze(c).critical_delay
    pats = list(exhaustive_patterns(c.inputs))
    assert timing_errors(c, zip(pats, pats[1:]), clock=delta) == []


def test_aged_circuit_shows_errors_only_when_late():
    c = comparator2()
    delta = analyze(c).critical_delay
    slow = c.with_delay_scales({"t4": 3.0})
    pats = list(exhaustive_patterns(c.inputs))
    failures = timing_errors(slow, zip(pats, pats[1:]), clock=delta)
    assert failures  # slowing the speed-path past the clock must fail
    # and each reported failure is a genuine sample/settle mismatch
    for idx, errs in failures:
        result = sample_at_clock(slow, pats[idx], pats[idx + 1], delta)
        assert result.has_error
        assert errs == result.errors()


def test_sample_result_fields():
    c = comparator2()
    v1 = dict.fromkeys(c.inputs, False)
    v2 = dict.fromkeys(c.inputs, True)
    res = sample_at_clock(c, v1, v2, clock=7)
    assert set(res.sampled) == {"y"}
    assert res.settle_time["y"] <= 7
    assert not res.has_error


def test_negative_clock_rejected():
    c = comparator2()
    v = dict.fromkeys(c.inputs, False)
    with pytest.raises(SimulationError):
        sample_at_clock(c, v, v, clock=-1)


def test_error_rate_grows_with_aging():
    c = comparator2()
    delta = analyze(c).critical_delay
    pats = list(random_patterns(c.inputs, 120, seed=3))
    pairs = list(zip(pats, pats[1:]))
    rates = []
    for scale in (1.0, 1.5, 2.5):
        slow = c.with_delay_scales(
            {g: scale for g in ("t4", "y", "nb0", "nb1")}
        )
        rates.append(len(timing_errors(slow, pairs, clock=delta)))
    assert rates[0] == 0
    assert rates[0] <= rates[1] <= rates[2]
    assert rates[2] > 0

"""Tests for clocked sampling and timing-error injection."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SimulationError
from repro.sim import (
    eval_with_faults,
    exhaustive_patterns,
    random_patterns,
    sample_at_clock,
    sample_many,
    simulate,
    timing_errors,
)
from repro.sta import analyze


def test_sampling_at_full_period_is_error_free():
    c = comparator2()
    delta = analyze(c).critical_delay
    pats = list(exhaustive_patterns(c.inputs))
    assert timing_errors(c, zip(pats, pats[1:]), clock=delta) == []


def test_aged_circuit_shows_errors_only_when_late():
    c = comparator2()
    delta = analyze(c).critical_delay
    slow = c.with_delay_scales({"t4": 3.0})
    pats = list(exhaustive_patterns(c.inputs))
    failures = timing_errors(slow, zip(pats, pats[1:]), clock=delta)
    assert failures  # slowing the speed-path past the clock must fail
    # and each reported failure is a genuine sample/settle mismatch
    for idx, errs in failures:
        result = sample_at_clock(slow, pats[idx], pats[idx + 1], delta)
        assert result.has_error
        assert errs == result.errors()


def test_sample_result_fields():
    c = comparator2()
    v1 = dict.fromkeys(c.inputs, False)
    v2 = dict.fromkeys(c.inputs, True)
    res = sample_at_clock(c, v1, v2, clock=7)
    assert set(res.sampled) == {"y"}
    assert res.settle_time["y"] <= 7
    assert not res.has_error


def test_negative_clock_rejected():
    c = comparator2()
    v = dict.fromkeys(c.inputs, False)
    with pytest.raises(SimulationError):
        sample_at_clock(c, v, v, clock=-1)


def test_sample_many_empty_batch_is_legal():
    """An n=0 workload yields nothing instead of erroring in the backend."""
    c = comparator2()
    assert list(sample_many(c, [], clock=7)) == []


def test_sample_many_validates_clock_before_iterating():
    """A bad period is reported at the call, even for an empty batch."""
    c = comparator2()
    with pytest.raises(SimulationError, match="clock period"):
        sample_many(c, [], clock=-1)


def test_sample_many_matches_sample_at_clock():
    c = comparator2()
    pats = list(exhaustive_patterns(c.inputs))[:5]
    pairs = list(zip(pats, pats[1:]))
    many = list(sample_many(c, pairs, clock=7))
    assert len(many) == len(pairs)
    for (v1, v2), res in zip(pairs, many):
        assert res == sample_at_clock(c, v1, v2, clock=7)


def test_eval_with_faults_no_faults_matches_simulate():
    c = comparator2()
    for pattern in list(exhaustive_patterns(c.inputs))[:8]:
        assert eval_with_faults(c, pattern) == simulate(c, pattern)


def test_eval_with_faults_flip_propagates_to_output():
    c = comparator2()
    pattern = dict.fromkeys(c.inputs, False)
    clean = simulate(c, pattern)
    flipped = eval_with_faults(c, pattern, flips=["y"])
    assert flipped["y"] != clean["y"]


def test_eval_with_faults_stuck_pins_net():
    c = comparator2()
    for pattern in list(exhaustive_patterns(c.inputs))[:8]:
        out = eval_with_faults(c, pattern, stuck={"y": True})
        assert out["y"] is True


def test_eval_with_faults_unknown_net():
    c = comparator2()
    pattern = dict.fromkeys(c.inputs, False)
    with pytest.raises(SimulationError, match="unknown net"):
        eval_with_faults(c, pattern, flips=["zz9"])


def test_error_rate_grows_with_aging():
    c = comparator2()
    delta = analyze(c).critical_delay
    pats = list(random_patterns(c.inputs, 120, seed=3))
    pairs = list(zip(pats, pats[1:]))
    rates = []
    for scale in (1.0, 1.5, 2.5):
        slow = c.with_delay_scales(
            {g: scale for g in ("t4", "y", "nb0", "nb1")}
        )
        rates.append(len(timing_errors(slow, pairs, clock=delta)))
    assert rates[0] == 0
    assert rates[0] <= rates[1] <= rates[2]
    assert rates[2] > 0

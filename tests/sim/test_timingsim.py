"""Tests for the floating-mode stabilization oracle."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SimulationError
from repro.netlist import Circuit, unit_library
from repro.sim import (
    exhaustive_patterns,
    is_speed_path_pattern,
    output_stabilization,
    simulate,
    stabilization_times,
)
from repro.sta import analyze
from tests.conftest import random_dag_circuit

LIB = unit_library()


def test_inputs_stabilize_at_zero():
    c = comparator2()
    st = stabilization_times(c, dict.fromkeys(c.inputs, False))
    for net in c.inputs:
        assert st[net] == 0


def test_controlling_input_stabilizes_early():
    # AND2(a, slow): a=0 determines the output at time 2 regardless of the
    # slow side; a=1 forces waiting for the inverter chain.
    c = Circuit("t", inputs=("a", "b"), outputs=("g",))
    c.add_gate("i1", LIB.get("INV"), ("b",))
    c.add_gate("i2", LIB.get("INV"), ("i1",))
    c.add_gate("i3", LIB.get("INV"), ("i2",))
    c.add_gate("g", LIB.get("AND2"), ("a", "i3"))
    st0 = stabilization_times(c, {"a": False, "b": False})
    assert st0["g"] == 2  # prime {a=0} satisfied immediately
    st1 = stabilization_times(c, {"a": True, "b": False})
    assert st1["g"] == 5  # must wait for the 3-inverter chain


def test_xor_always_waits_for_both():
    c = Circuit("t", inputs=("a", "b"), outputs=("g",))
    c.add_gate("i1", LIB.get("INV"), ("b",))
    c.add_gate("g", LIB.get("XOR2"), ("a", "i1"))
    for pat in exhaustive_patterns(("a", "b")):
        st = stabilization_times(c, pat)
        assert st["g"] == 3  # max(0, 1) + 2 for every pattern


def test_bounded_by_sta_and_consistent_with_values():
    for seed in range(8):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=12)
        rep = analyze(c)
        for pat in exhaustive_patterns(c.inputs):
            st = stabilization_times(c, pat)
            vals = simulate(c, pat)
            for net in c.nets():
                assert rep.min_stable[net] <= st[net] <= rep.arrival[net]
            assert set(vals) == set(st)


def test_comparator_spcf_from_oracle():
    """Patterns late past 0.9*Delta form the paper's Sigma = a1' + a0' b1."""
    c = comparator2()
    rep = analyze(c)
    late = {
        tuple(sorted(p.items()))
        for p in exhaustive_patterns(c.inputs)
        if stabilization_times(c, p)["y"] > rep.target
    }
    expected = {
        tuple(sorted(p.items()))
        for p in exhaustive_patterns(c.inputs)
        if (not p["a1"]) or (not p["a0"] and p["b1"])
    }
    assert late == expected


def test_output_helpers():
    c = comparator2()
    pat = dict.fromkeys(c.inputs, False)
    outs = output_stabilization(c, pat)
    assert set(outs) == {"y"}
    assert is_speed_path_pattern(c, pat, "y", target=6) == (outs["y"] > 6)
    with pytest.raises(SimulationError):
        is_speed_path_pattern(c, pat, "t4", target=6)

"""Tests for the two-vector event-driven timing simulator."""

import pytest

from repro.benchcircuits import comparator2
from repro.netlist import Circuit, unit_library
from repro.sim import (
    Waveform,
    exhaustive_patterns,
    settle_times,
    simulate,
    stabilization_times,
    two_vector_waveforms,
)
from tests.conftest import random_dag_circuit

LIB = unit_library()


def test_waveform_basics():
    w = Waveform.step(False, True, at=5)
    assert w.initial is False and w.final is True
    assert w.value_at(4) is False and w.value_at(5) is True
    assert w.settle_time == 5
    const = Waveform.constant(True)
    assert const.final is True and const.settle_time == 0
    assert Waveform.step(True, True).num_transitions == 0


def test_waveform_shift():
    w = Waveform.step(False, True, at=3).shifted(4)
    assert w.value_at(6) is False and w.value_at(7) is True


def test_inverter_chain_propagation():
    c = Circuit("t", inputs=("a",), outputs=("g3",))
    for i in range(3):
        c.add_gate(f"g{i + 1}", LIB.get("INV"), (f"g{i}" if i else "a",))
    waves = two_vector_waveforms(c, {"a": False}, {"a": True})
    assert waves["g3"].transitions == ((3, False),)
    assert waves["g3"].initial is True


def test_static_pair_produces_no_transitions():
    c = comparator2()
    v = dict.fromkeys(c.inputs, True)
    waves = two_vector_waveforms(c, v, v)
    for net in c.nets():
        assert waves[net].num_transitions == 0


def test_final_values_match_zero_delay_sim():
    for seed in range(6):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=12)
        pats = list(exhaustive_patterns(c.inputs))
        for v1, v2 in zip(pats[::3], pats[1::3]):
            waves = two_vector_waveforms(c, v1, v2)
            ref = simulate(c, v2)
            for net in c.nets():
                assert waves[net].final == ref[net], (seed, net)


def test_settle_bounded_by_floating_mode():
    """Two-vector settle time never exceeds the floating-mode bound of v2."""
    for seed in range(6):
        c = random_dag_circuit(seed, num_inputs=5, num_gates=12)
        pats = list(exhaustive_patterns(c.inputs))
        for v1, v2 in zip(pats[::2], pats[1::2]):
            settles = settle_times(c, v1, v2)
            oracle = stabilization_times(c, v2)
            for y in c.outputs:
                assert settles[y] <= oracle[y], (seed, y)


def test_glitch_visible_in_waveform():
    # XOR of a fast and a slow copy of the same input glitches.
    c = Circuit("t", inputs=("a",), outputs=("g",))
    c.add_gate("s1", LIB.get("INV"), ("a",))
    c.add_gate("s2", LIB.get("INV"), ("s1",))
    c.add_gate("g", LIB.get("XOR2"), ("a", "s2"))
    waves = two_vector_waveforms(c, {"a": False}, {"a": True})
    # a arrives at the XOR at t=2; s2 at t=4: a 1-glitch in between.
    assert waves["g"].num_transitions == 2
    assert waves["g"].value_at(3) is True
    assert waves["g"].final is False


def test_missing_input_rejected():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        two_vector_waveforms(comparator2(), {}, {})

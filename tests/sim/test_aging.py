"""Tests for aging/degradation models."""

import pytest

from repro.benchcircuits import comparator2
from repro.errors import SimulationError
from repro.sim import LinearAging, SaturatingAging, aged_copy, speed_path_gates
from repro.sta import analyze


def test_linear_aging_monotone():
    model = LinearAging(rate=0.1)
    assert model.scale_at(0) == 1.0
    assert model.scale_at(10) == pytest.approx(2.0)
    with pytest.raises(SimulationError):
        model.scale_at(-1)


def test_saturating_aging_bounded():
    model = SaturatingAging(amplitude=0.5, tau=5.0)
    assert model.scale_at(0) == 1.0
    assert model.scale_at(5) == pytest.approx(1.25)
    assert model.scale_at(1e9) == pytest.approx(1.5, rel=1e-3)
    prev = 0.0
    for t in range(0, 50, 5):
        s = model.scale_at(t)
        assert s >= prev
        prev = s


def test_speed_path_gates_are_critical():
    c = comparator2()
    gates = speed_path_gates(c)
    rep = analyze(c)
    assert gates == rep.critical_gates(c)
    assert "t4" in gates


def test_aged_copy_slows_only_speed_paths():
    c = comparator2()
    aged = aged_copy(c, 1.5)
    for name, gate in aged.gates.items():
        if name in speed_path_gates(c):
            assert gate.delay_scale == 1.5
        else:
            assert gate.delay_scale == 1.0
    assert analyze(aged).critical_delay > analyze(c).critical_delay


def test_aged_copy_explicit_gates_and_guard():
    c = comparator2()
    aged = aged_copy(c, 2.0, gates=["t1"])
    assert aged.gate("t1").delay_scale == 2.0
    with pytest.raises(SimulationError):
        aged_copy(c, 0.9)

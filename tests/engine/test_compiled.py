"""Unit tests for the compiled circuit IR and backend selection."""

from __future__ import annotations

from itertools import product

import pytest

from repro.engine import (
    BACKEND_ENV_VAR,
    CompiledCircuit,
    PythonWordBackend,
    available_backends,
    cell_prime_tables,
    cell_word_function,
    compile_circuit,
    compile_program,
    evaluate_words,
    numpy_available,
    pack_input_words,
    run_program,
    select_backend,
    validated_backend_name,
)
from repro.errors import EngineError, SimulationError
from repro.netlist import lsi10k_like_library, unit_library
from repro.sim import simulate
from repro.sta import analyze

from tests.conftest import random_dag_circuit


# ----------------------------------------------------------------- lowering


def test_net_indexing_convention(unit_lib):
    c = random_dag_circuit(1, num_inputs=4, num_gates=9, library=unit_lib)
    cc = compile_circuit(c)
    assert cc.net_names[: cc.n_inputs] == c.inputs
    assert cc.net_names[cc.n_inputs :] == tuple(c.topo_order())
    for name, pos in cc.gate_position.items():
        assert cc.net_index[name] == cc.n_inputs + pos
    assert tuple(cc.net_names[i] for i in cc.output_index) == c.outputs


def test_levels_respect_topology(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(2, num_inputs=3, num_gates=15, library=unit_lib)
    )
    for i in range(cc.n_inputs):
        assert cc.levels[i] == 0
    for pos, fanins in enumerate(cc.gate_fanins):
        out = cc.n_inputs + pos
        assert all(cc.levels[out] > cc.levels[f] for f in fanins)


def test_fanouts_invert_fanins(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(3, num_inputs=4, num_gates=12, library=unit_lib)
    )
    fo = cc.fanouts()
    for pos, fanins in enumerate(cc.gate_fanins):
        for pin, net in enumerate(fanins):
            assert (pos, pin) in fo[net]


def test_compile_is_cached_until_structural_edit(unit_lib):
    c = random_dag_circuit(4, num_inputs=3, num_gates=6, library=unit_lib)
    first = compile_circuit(c)
    assert compile_circuit(c) is first
    assert compile_circuit(first) is first
    c.add_gate("extra", unit_lib.get("INV"), ["g0"])
    second = compile_circuit(c)
    assert second is not first
    assert "extra" in second.gate_names
    c.add_output("extra")
    third = compile_circuit(c)
    assert third is not second
    assert "extra" in third.outputs


def test_undriven_output_is_an_engine_error(unit_lib):
    from repro.netlist import Circuit

    c = Circuit("broken", inputs=("a",))
    c.add_gate("g", unit_lib.get("INV"), ["a"])
    c.add_output("g")
    c._outputs.append("ghost")
    c._version += 1
    with pytest.raises(EngineError, match="ghost"):
        compile_circuit(c)


# -------------------------------------------------- cell programs/functions


@pytest.mark.parametrize("libname", ["unit", "lsi"])
def test_programs_and_word_functions_agree_with_cell_evaluate(libname):
    lib = unit_library() if libname == "unit" else lsi10k_like_library()
    for cell in lib:
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        prog = compile_program(cell.expr, pin_index)
        func = cell_word_function(cell)
        for bits in product([0, 1], repeat=cell.num_inputs):
            expected = int(
                cell.evaluate(dict(zip(cell.inputs, map(bool, bits))))
            )
            assert run_program(prog, 1, bits) == expected
            assert func(1, *bits) == expected


@pytest.mark.parametrize("libname", ["unit", "lsi"])
def test_prime_tables_characterize_cell_onset(libname):
    lib = unit_library() if libname == "unit" else lsi10k_like_library()
    for cell in lib:
        on, off = cell_prime_tables(cell)
        for bits in product([False, True], repeat=cell.num_inputs):
            out = cell.evaluate(dict(zip(cell.inputs, bits)))
            on_hit = any(
                all(bits[p] == pol for p, pol in zip(pins, pols))
                for pins, pols in on
            )
            off_hit = any(
                all(bits[p] == pol for p, pol in zip(pins, pols))
                for pins, pols in off
            )
            assert on_hit == out and off_hit == (not out), cell.name


# ------------------------------------------------------------------- timing


def test_arrival_and_critical_delay_match_sta(lsi_lib):
    c = random_dag_circuit(5, num_inputs=5, num_gates=20, library=lsi_lib)
    cc = compile_circuit(c)
    report = analyze(c, target=0)
    for net, t in report.arrival.items():
        assert cc.arrival()[cc.net_index[net]] == t
    assert cc.critical_delay() == report.critical_delay


def test_with_delay_scales_matches_circuit_rebuild(lsi_lib):
    c = random_dag_circuit(6, num_inputs=4, num_gates=14, library=lsi_lib)
    scales = {"g3": 1.7, "g9": 2.2}
    slow_compiled = compile_circuit(c).with_delay_scales(scales)
    slow_circuit = c.with_delay_scales(scales)
    assert analyze(slow_compiled, target=0).arrival == analyze(
        slow_circuit, target=0
    ).arrival


def test_with_delay_scales_rejects_bad_input(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(7, num_inputs=3, num_gates=5, library=unit_lib)
    )
    with pytest.raises(EngineError, match="no gate"):
        cc.with_delay_scales({"nope": 2.0})
    with pytest.raises(EngineError, match="slow gates down"):
        cc.with_delay_scales({"g1": 0.5})


def test_critical_output_indices_threshold_validation(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(8, num_inputs=3, num_gates=5, library=unit_lib)
    )
    with pytest.raises(EngineError, match="threshold"):
        cc.critical_output_indices(threshold=0.0)
    assert cc.critical_output_indices(target=-1)  # everything is critical


# --------------------------------------------------------------- evaluation


def test_eval_pattern_matches_simulate(lsi_lib):
    c = random_dag_circuit(9, num_inputs=5, num_gates=16, library=lsi_lib)
    cc = compile_circuit(c)
    pattern = {net: i % 2 == 0 for i, net in enumerate(c.inputs)}
    expected = simulate(c, pattern)
    values = cc.eval_pattern(pattern)
    assert {n: bool(values[i]) for n, i in cc.net_index.items()} == expected


def test_eval_pattern_missing_input(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(10, num_inputs=3, num_gates=4, library=unit_lib)
    )
    with pytest.raises(SimulationError, match="missing input 'x2'"):
        cc.eval_pattern({"x0": True, "x1": False})


def test_word_interface_errors(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(11, num_inputs=3, num_gates=4, library=unit_lib)
    )
    with pytest.raises(SimulationError, match="missing input"):
        pack_input_words(cc, {"x0": 1}, 4)
    with pytest.raises(EngineError, match="input words"):
        PythonWordBackend().eval_words(cc, [1, 2], 4)
    with pytest.raises(EngineError, match="input bits"):
        cc.eval_bits([1])


def test_evaluate_words_accepts_circuit_or_compiled(unit_lib):
    c = random_dag_circuit(12, num_inputs=3, num_gates=6, library=unit_lib)
    words = {net: 0b1010 for net in c.inputs}
    assert evaluate_words(c, words, 4) == evaluate_words(
        compile_circuit(c), words, 4
    )


# ---------------------------------------------------------------- backends


def test_select_backend_rules(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert select_backend().name == "python"
    assert select_backend("python").name == "python"
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(EngineError, match="unknown engine backend"):
        select_backend()
    with pytest.raises(EngineError, match="unknown engine backend"):
        select_backend("vhdl")
    assert "python" in available_backends()


def test_validated_backend_name_normalizes(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert validated_backend_name("  PYTHON ") == "python"
    assert validated_backend_name(None) == "python"  # unset env -> default
    monkeypatch.setenv(BACKEND_ENV_VAR, "   ")
    assert validated_backend_name(None) == "python"  # blank env -> default
    with pytest.raises(EngineError, match=r"choose from \('python', 'numpy'\)"):
        validated_backend_name("fpga")


def test_bogus_env_backend_rejected_on_every_compile(monkeypatch, unit_lib):
    """A typo'd REPRO_ENGINE_BACKEND must fail loudly at the engine's
    front door — even on paths that never touch a word backend, and even
    when the compile itself is a cache hit."""
    c = random_dag_circuit(14, num_inputs=3, num_gates=4, library=unit_lib)
    compile_circuit(c)  # populate the cache
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(EngineError, match=r"\$REPRO_ENGINE_BACKEND"):
        compile_circuit(c)
    with pytest.raises(EngineError, match="unknown engine backend"):
        simulate(c, {net: False for net in c.inputs})


def test_negative_width_is_engine_error(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(15, num_inputs=3, num_gates=4, library=unit_lib)
    )
    words = {net: 0 for net in cc.inputs}
    with pytest.raises(EngineError, match="width"):
        PythonWordBackend().eval_words(cc, pack_input_words(cc, words, 1), -1)


def test_zero_width_empty_batch_is_legal(unit_lib):
    cc = compile_circuit(
        random_dag_circuit(16, num_inputs=3, num_gates=4, library=unit_lib)
    )
    words = {net: 0 for net in cc.inputs}
    out = evaluate_words(cc, words, 0)
    assert set(out) == set(cc.net_names)
    assert all(word == 0 for word in out.values())


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_numpy_backend_listed_and_selectable(monkeypatch):
    assert available_backends() == ("python", "numpy")
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert select_backend().name == "numpy"


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_lane_roundtrip_and_shape_check(unit_lib):
    from repro.engine import lanes_to_words, words_to_lanes

    words = [(1 << 130) - 7, 0, 12345]
    lanes = words_to_lanes(words, 130)
    assert lanes.shape == (3, 3)
    assert lanes_to_words(lanes, 130) == [w & ((1 << 130) - 1) for w in words]

    cc = compile_circuit(
        random_dag_circuit(13, num_inputs=3, num_gates=4, library=unit_lib)
    )
    with pytest.raises(EngineError, match="lane matrix"):
        select_backend("numpy").eval_lanes(cc, words_to_lanes([1, 2], 8))


# --------------------------------------------- netlist caching (satellites)


def test_circuit_gates_is_cached_live_readonly_view(unit_lib):
    c = random_dag_circuit(14, num_inputs=3, num_gates=4, library=unit_lib)
    view = c.gates
    assert c.gates is view  # no per-access copy
    with pytest.raises(TypeError):
        view["hack"] = view["g0"]
    c.add_gate("late", unit_lib.get("INV"), ["g0"])
    assert "late" in view  # live view sees later edits


def test_gate_pin_delays_memoized(unit_lib):
    c = random_dag_circuit(15, num_inputs=3, num_gates=4, library=unit_lib)
    gate = c.gates["g0"]
    first = gate.pin_delays()
    assert gate.pin_delays() is first
    assert gate.pin_delay(0) == first[0]

"""Property tests: compiled-engine evaluation == the naive reference walk.

The oracle here is deliberately *independent* of the engine: a per-pattern
dict-based topological walk through ``Cell.evaluate``, the semantics the
seed repo shipped with.  Hypothesis drives random DAG circuits (arbitrary
reconvergence and fanout) and random pattern batches; every backend must
reproduce the oracle bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    compile_circuit,
    numpy_available,
    pack_input_words,
    select_backend,
    words_to_lanes,
)
from repro.netlist import lsi10k_like_library, unit_library
from repro.sim import pack_patterns, random_patterns, simulate_words

from tests.conftest import random_dag_circuit

LIBRARIES = {"unit": unit_library(), "lsi": lsi10k_like_library()}

circuits = st.builds(
    random_dag_circuit,
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=6),
    num_gates=st.integers(min_value=1, max_value=24),
    library=st.sampled_from(sorted(LIBRARIES)).map(LIBRARIES.get),
    num_outputs=st.just(1),
)


def naive_simulate(circuit, pattern):
    """Independent oracle: the seed repo's per-pattern dict walk."""
    values = {net: bool(pattern[net]) for net in circuit.inputs}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = gate.cell.evaluate(
            {pin: values[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        )
    return values


@settings(max_examples=60, deadline=None)
@given(circuit=circuits, width=st.integers(min_value=1, max_value=150))
def test_python_backend_matches_naive_walk(circuit, width):
    patterns = list(random_patterns(circuit.inputs, width, seed=99))
    words, width = pack_patterns(circuit.inputs, patterns)
    result = simulate_words(circuit, words, width, backend="python")
    for i, pattern in enumerate(patterns):
        expected = naive_simulate(circuit, pattern)
        for net, word in result.items():
            assert bool((word >> i) & 1) == expected[net], (
                f"net {net} pattern {i}"
            )


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
@settings(max_examples=60, deadline=None)
@given(circuit=circuits, width=st.integers(min_value=1, max_value=150))
def test_numpy_backend_matches_python_backend(circuit, width):
    patterns = list(random_patterns(circuit.inputs, width, seed=7))
    words, width = pack_patterns(circuit.inputs, patterns)
    via_python = simulate_words(circuit, words, width, backend="python")
    via_numpy = simulate_words(circuit, words, width, backend="numpy")
    assert via_python == via_numpy


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
@settings(max_examples=30, deadline=None)
@given(circuit=circuits, width=st.integers(min_value=1, max_value=300))
def test_numpy_native_lanes_match_python_words(circuit, width):
    """The lane-matrix path agrees with big-int words lane by lane."""
    patterns = list(random_patterns(circuit.inputs, width, seed=3))
    words, width = pack_patterns(circuit.inputs, patterns)
    compiled = compile_circuit(circuit)
    packed = pack_input_words(compiled, words, width)
    expected = select_backend("python").eval_words(compiled, packed, width)
    lanes = select_backend("numpy").eval_lanes(
        compiled, words_to_lanes(packed, width)
    )
    mask = (1 << width) - 1
    for i in range(compiled.n_nets):
        got = int.from_bytes(lanes[i].tobytes(), "little") & mask
        assert got == expected[i], f"net {compiled.net_names[i]}"


@settings(max_examples=40, deadline=None)
@given(circuit=circuits)
def test_eval_pattern_matches_naive_walk(circuit):
    compiled = compile_circuit(circuit)
    for pattern in random_patterns(circuit.inputs, 8, seed=17):
        expected = naive_simulate(circuit, pattern)
        values = compiled.eval_pattern(pattern)
        for i, net in enumerate(compiled.net_names):
            assert values[i] == expected[net], f"net {net}"

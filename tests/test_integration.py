"""End-to-end integration tests across subsystems."""

import pytest

from repro import (
    analyze,
    circuit_by_name,
    compare_algorithms,
    lsi10k_like_library,
    mask_circuit,
    make_benchmark,
    read_blif,
    write_blif,
)
from repro.apps import capture_experiment, predict_onset, wearout_experiment
from repro.benchcircuits import PAPER_SPECS
from repro.sim import LinearAging, random_patterns, sample_at_clock, simulate

LSI = lsi10k_like_library()

#: Small representative circuits for full-pipeline integration runs.
NAMES = ("cmb", "x2", "C432", "sparc_ifu_dec")


@pytest.mark.parametrize("name", NAMES)
def test_full_pipeline_on_paper_benchmark(name):
    c = make_benchmark(name)
    res = mask_circuit(c, LSI)
    r = res.report
    assert r.sound
    assert r.coverage_percent == 100.0
    assert r.critical_outputs == PAPER_SPECS[name].deep_outputs
    assert r.masking_delay < r.original_delay
    assert r.area_overhead_percent < 200.0  # far below duplication
    # the masked design still computes the original functions
    for pat in random_patterns(c.inputs, 50, seed=13):
        ref = simulate(c, pat)
        got = simulate(res.design.circuit, pat)
        for y in c.outputs:
            assert got[res.design.output_map[y]] == ref[y]


def test_spcf_algorithms_agree_on_benchmark():
    row = compare_algorithms(make_benchmark("C432"))
    assert row.path_based_count == row.short_path_count
    assert row.node_based_count >= row.short_path_count
    assert row.over_approximation_factor >= 1.0


def test_masked_design_survives_blif_roundtrip():
    c = make_benchmark("cmb")
    res = mask_circuit(c, LSI)
    text = write_blif(res.design.circuit)
    back = read_blif(text, library=LSI)
    for pat in random_patterns(c.inputs, 30, seed=2):
        a = simulate(res.design.circuit, pat)
        b = simulate(back, pat)
        for net in res.design.output_map.values():
            assert a[net] == b[net]


def test_timing_error_injection_is_masked_end_to_end():
    """The headline claim: inject slow speed-paths, sample at the clock,
    and observe that masked outputs stay correct while raw outputs fail."""
    c = make_benchmark("cmb")
    res = mask_circuit(c, LSI)
    design = res.design
    clock = design.clock_period
    from repro.sim import speed_path_gates

    slow_gates = {g: 1.6 for g in speed_path_gates(c) & set(c.gates)}
    aged = design.circuit.with_delay_scales(slow_gates)
    raw_aged = c.with_delay_scales(slow_gates)

    pats = list(random_patterns(c.inputs, 300, seed=21))
    raw_errors = masked_errors = 0
    for v1, v2 in zip(pats, pats[1:]):
        raw = sample_at_clock(raw_aged, v1, v2, clock)
        if raw.has_error:
            raw_errors += 1
        masked = sample_at_clock(aged, v1, v2, clock)
        for y, net in design.output_map.items():
            correct = simulate(c, v2)[y]
            if masked.sampled[net] != correct:
                masked_errors += 1
    assert masked_errors == 0  # 100% masking of injected timing errors
    # (raw errors may be rare under random vectors; the guard cubes make
    # speed-path activation a low-probability event by design)


def test_wearout_and_debug_applications_integrate():
    c = make_benchmark("cmb")
    res = mask_circuit(c, LSI)
    epochs = wearout_experiment(
        res.masking,
        res.design,
        aging=LinearAging(rate=0.2),
        epochs=4,
        cycles_per_epoch=60,
        seed=3,
    )
    assert len(epochs) == 4
    assert all(e.residual_error_rate == 0.0 for e in epochs)
    predict_onset(epochs)  # must not raise

    report = capture_experiment(res.design, buffer_depth=8, cycles=512)
    assert report.buffer_depth == 8
    assert report.expansion_factor >= 1.0


def test_public_api_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__ == "1.0.0"
    rep = analyze(circuit_by_name("comparator2"))
    assert rep.critical_delay == 7

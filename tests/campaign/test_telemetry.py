"""Campaign telemetry: journaled obs records, the aggregate's telemetry
section, and the byte-identity guarantee with observability on and off.

The headline case mirrors the resilience suite's kill/resume drill but
with recording enabled: real SIGKILLed workers must surface as retry and
quarantine events in the metrics snapshot, and the journaled per-shard
telemetry must survive a resume.
"""

from __future__ import annotations

import json

from repro import obs
from repro.campaign import (
    CampaignSpec,
    RunnerConfig,
    aggregate_results,
    load_journal,
    plan_campaign,
    render_campaign_json,
    render_campaign_text,
    resume_campaign,
    run_campaign,
)

FAST = RunnerConfig(
    workers=1,
    task_timeout=60.0,
    max_retries=2,
    backoff_base=0.01,
    backoff_cap=0.05,
)
INLINE = RunnerConfig(workers=0, max_retries=0)


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        circuits=("comparator2",),
        modes=({"kind": "seu"},),
        shards_per_cell=2,
        vectors_per_shard=6,
        seed=13,
        clock_fraction=0.9,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _journal_obs(path) -> dict[int, dict]:
    state = load_journal(path)
    return {
        i: r["obs"] for i, r in state.results.items()
        if isinstance(r.get("obs"), dict)
    }


def test_obs_off_journal_and_aggregate_have_no_telemetry(tmp_path):
    outcome = run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    assert "telemetry" not in outcome.aggregate
    assert _journal_obs(tmp_path / "c.jsonl") == {}
    for line in (tmp_path / "c.jsonl").read_text().splitlines():
        assert "obs" not in json.loads(line)


def test_obs_on_aggregate_matches_obs_off_minus_telemetry(tmp_path):
    spec = tiny_spec()
    baseline = run_campaign(spec, tmp_path / "off.jsonl", INLINE)
    obs.configure(enabled=True)
    traced = run_campaign(spec, tmp_path / "on.jsonl", INLINE)
    assert traced.complete
    telemetry = traced.aggregate.pop("telemetry")
    assert telemetry["shards_with_telemetry"] == 2
    assert render_campaign_json(traced.aggregate) == render_campaign_json(
        baseline.aggregate
    )


def test_inline_run_journals_telemetry_and_percentiles(tmp_path):
    obs.configure(enabled=True)
    outcome = run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    telemetry = outcome.aggregate["telemetry"]
    wall = telemetry["wall_seconds"]
    assert wall["count"] == 2
    assert 0 < wall["p50"] <= wall["p90"] <= wall["p99"] <= wall["max"]
    assert wall["total"] >= wall["max"]
    assert telemetry["retries"] == 0 and telemetry["quarantined"] == 0
    # the text renderer shows the footer
    assert "telemetry: 2 shards" in render_campaign_text(outcome.aggregate)
    # and the journal carries a per-shard record for each shard
    journal_obs = _journal_obs(tmp_path / "c.jsonl")
    assert sorted(journal_obs) == [0, 1]
    for record in journal_obs.values():
        assert record["attempts"] == 1 and record["wall_seconds"] > 0


def test_kill_and_resume_surfaces_retry_and_quarantine_in_metrics(tmp_path):
    """ISSUE acceptance: SIGKILL drills with recording on must show up as
    retry and quarantine events in the metrics snapshot, and the resumed
    campaign completes with its journaled telemetry intact."""
    obs.configure(enabled=True)
    spec = tiny_spec()
    wounded = run_campaign(
        spec, tmp_path / "c.jsonl",
        RunnerConfig(workers=1, max_retries=1, backoff_base=0.01,
                     backoff_cap=0.02),
        # shard 0: killed once, then succeeds (a retry); shard 1: killed
        # until the budget is gone (a quarantine)
        sabotage={0: {"mode": "kill", "attempts": 1}, 1: {"mode": "kill"}},
    )
    assert not wounded.complete

    snap = obs.metrics_snapshot()["metrics"]
    assert snap["repro_campaign_retries_total"]["series"][""] >= 1
    assert snap["repro_campaign_quarantined_total"]["series"][""] == 1
    failures = snap["repro_campaign_attempt_failures_total"]["series"]
    assert failures.get("retryable=true", 0) >= 3  # 1 on shard 0 + 2 on shard 1

    telemetry = wounded.aggregate["telemetry"]
    assert telemetry["retries"] >= 1
    assert telemetry["quarantined"] == 1
    # the surviving shard journaled its retry count
    journal_obs = _journal_obs(tmp_path / "c.jsonl")
    assert journal_obs[0]["attempts"] == 2

    healed = resume_campaign(tmp_path / "c.jsonl", FAST)
    assert healed.complete
    telemetry = healed.aggregate["telemetry"]
    assert telemetry["shards_with_telemetry"] == 2
    assert telemetry["quarantined"] == 0
    # shard 0 was not re-run: its journaled telemetry (2 attempts) survived
    assert telemetry["retries"] >= 1


def test_worker_metrics_merge_into_telemetry_counters(tmp_path):
    obs.configure(enabled=True)
    outcome = run_campaign(tiny_spec(), tmp_path / "c.jsonl", FAST)
    assert outcome.complete
    counters = outcome.aggregate["telemetry"]["counters"]
    # the workers' engine counters crossed the stdio protocol and merged
    assert sum(counters["repro_engine_compile_cache_misses_total"].values()) > 0
    assert sum(counters["repro_spcf_outputs_total"].values()) > 0


def test_report_from_same_journal_is_byte_identical(tmp_path):
    obs.configure(enabled=True)
    run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    obs.configure(enabled=False)

    def report() -> str:
        state = load_journal(tmp_path / "c.jsonl")
        results = {i: r["result"] for i, r in state.results.items()}
        aggregate = aggregate_results(
            state.spec, plan_campaign(state.spec), results,
            state.quarantined, shard_obs=_journal_obs(tmp_path / "c.jsonl"),
        )
        return render_campaign_json(aggregate)

    assert report() == report()  # telemetry is a pure function of the journal


def test_resume_of_complete_campaign_keeps_telemetry(tmp_path):
    obs.configure(enabled=True)
    first = run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    again = resume_campaign(tmp_path / "c.jsonl", INLINE)
    assert again.stats["shards_run"] == 0
    assert render_campaign_json(again.aggregate) == render_campaign_json(
        first.aggregate
    )

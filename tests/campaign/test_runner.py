"""The resilient runner: isolation, retries, quarantine, crash recovery.

Subprocess tests use the real worker (`python -m repro.campaign.worker`)
and real SIGKILLs via the runner's sabotage drills, but keep specs tiny so
each worker attempt is cheap.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.campaign import (
    CampaignSpec,
    RunnerConfig,
    load_journal,
    render_campaign_json,
    resume_campaign,
    run_campaign,
)
from repro.errors import CampaignError, CheckpointError

FAST = RunnerConfig(
    workers=1,
    task_timeout=60.0,
    max_retries=2,
    backoff_base=0.01,
    backoff_cap=0.05,
)
INLINE = RunnerConfig(workers=0, max_retries=0)


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        circuits=("comparator2",),
        modes=({"kind": "seu"},),
        shards_per_cell=2,
        vectors_per_shard=6,
        seed=13,
        clock_fraction=0.9,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def test_inline_run_completes(tmp_path):
    outcome = run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    assert outcome.complete
    assert outcome.aggregate["shards_done"] == 2
    assert outcome.aggregate["incomplete_shards"] == []
    assert outcome.stats["attempts"] == 2
    assert outcome.stats["aborted"] is None


def test_subprocess_matches_inline_bit_for_bit(tmp_path):
    spec = tiny_spec()
    inline = run_campaign(spec, tmp_path / "inline.jsonl", INLINE)
    isolated = run_campaign(spec, tmp_path / "isolated.jsonl", FAST)
    assert isolated.complete
    assert render_campaign_json(isolated.aggregate) == render_campaign_json(
        inline.aggregate
    )


def test_run_refuses_existing_checkpoint(tmp_path):
    path = tmp_path / "c.jsonl"
    run_campaign(tiny_spec(), path, INLINE)
    with pytest.raises(CheckpointError, match="already exists"):
        run_campaign(tiny_spec(), path, INLINE)


def test_sabotage_requires_isolation(tmp_path):
    with pytest.raises(CampaignError, match="isolated workers"):
        run_campaign(
            tiny_spec(), tmp_path / "c.jsonl", INLINE,
            sabotage={0: {"mode": "kill"}},
        )


def test_retry_absorbs_one_worker_sigkill(tmp_path):
    outcome = run_campaign(
        tiny_spec(), tmp_path / "c.jsonl", FAST,
        sabotage={0: {"mode": "kill", "attempts": 1}},
    )
    assert outcome.complete
    assert outcome.stats["attempts"] == 3  # one killed + two clean


def test_persistent_crash_quarantines_not_fails(tmp_path):
    outcome = run_campaign(
        tiny_spec(), tmp_path / "c.jsonl",
        RunnerConfig(workers=1, max_retries=1, backoff_base=0.01,
                     backoff_cap=0.02),
        sabotage={1: {"mode": "kill"}},
    )
    assert not outcome.complete
    assert outcome.stats["shards_quarantined"] == 1
    (entry,) = outcome.aggregate["incomplete_shards"]
    assert entry["shard"] == 1
    assert entry["status"] == "quarantined"
    assert entry["attempts"] == 2  # initial try + one retry
    assert "signal 9" in entry["error"]
    # The journal remembers the quarantine across processes.
    state = load_journal(tmp_path / "c.jsonl")
    assert 1 in state.quarantined


def test_timeout_kills_hung_worker(tmp_path):
    outcome = run_campaign(
        tiny_spec(), tmp_path / "c.jsonl",
        RunnerConfig(workers=1, task_timeout=1.5, max_retries=0),
        sabotage={0: {"mode": "hang"}},
    )
    assert not outcome.complete
    (entry,) = outcome.aggregate["incomplete_shards"]
    assert "timed out" in entry["error"]


def test_deterministic_shard_error_skips_retries(tmp_path):
    spec = tiny_spec(circuits=("comparator2", "no-such-circuit"))
    outcome = run_campaign(
        spec, tmp_path / "c.jsonl",
        RunnerConfig(workers=1, max_retries=3, backoff_base=0.01,
                     backoff_cap=0.02),
    )
    assert not outcome.complete
    bad = [e for e in outcome.aggregate["incomplete_shards"]
           if e["circuit"] == "no-such-circuit"]
    assert len(bad) == 2
    for entry in bad:
        assert entry["attempts"] == 1  # no retry budget burned on determinism
        assert "no-such-circuit" in entry["error"]


def test_circuit_breaker_aborts_broken_environment(tmp_path):
    outcome = run_campaign(
        tiny_spec(shards_per_cell=4), tmp_path / "c.jsonl",
        RunnerConfig(workers=1, max_retries=3, backoff_base=0.01,
                     backoff_cap=0.02, max_consecutive_failures=3),
        sabotage={i: {"mode": "kill"} for i in range(4)},
    )
    assert not outcome.complete
    assert outcome.stats["aborted"] is not None
    assert "circuit breaker" in outcome.stats["aborted"]
    assert outcome.stats["attempts"] <= 4  # breaker stopped the spin


def test_resume_after_worker_sigkill_is_bit_identical(tmp_path):
    """The headline guarantee: quarantine a SIGKILLed shard, resume, and
    the aggregate matches an uninterrupted campaign byte for byte."""
    spec = tiny_spec()
    baseline = run_campaign(spec, tmp_path / "baseline.jsonl", FAST)
    assert baseline.complete

    wounded = run_campaign(
        spec, tmp_path / "wounded.jsonl",
        RunnerConfig(workers=1, max_retries=0),
        sabotage={1: {"mode": "kill"}},
    )
    assert not wounded.complete

    healed = resume_campaign(tmp_path / "wounded.jsonl", FAST)
    assert healed.complete
    assert healed.stats["shards_previously_done"] == 1
    assert healed.stats["shards_run"] == 1
    assert render_campaign_json(healed.aggregate) == render_campaign_json(
        baseline.aggregate
    )


def test_resume_of_complete_campaign_runs_nothing(tmp_path):
    path = tmp_path / "c.jsonl"
    first = run_campaign(tiny_spec(), path, INLINE)
    again = resume_campaign(path, INLINE)
    assert again.complete
    assert again.stats["shards_run"] == 0
    assert render_campaign_json(again.aggregate) == render_campaign_json(
        first.aggregate
    )


_DRIVER = """
import sys
from repro.campaign import CampaignSpec, RunnerConfig, run_campaign

spec = CampaignSpec(**{spec!r})
run_campaign(
    spec,
    {checkpoint!r},
    RunnerConfig(workers=1, max_retries=0, task_timeout=120.0),
    sabotage={{2: {{"mode": "hang", "seconds": 60.0}}}},
)
"""


def test_resume_after_whole_process_sigkill_is_bit_identical(tmp_path):
    """SIGKILL the *campaign process* mid-run (not just a worker); the
    fsync'd journal must carry the finished shards into a resumed run whose
    aggregate is byte-identical to an uninterrupted one."""
    spec = tiny_spec(shards_per_cell=3)
    baseline = run_campaign(spec, tmp_path / "baseline.jsonl", FAST)
    assert baseline.complete

    checkpoint = tmp_path / "killed.jsonl"
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    driver = subprocess.Popen(
        [sys.executable, "-c",
         _DRIVER.format(spec=spec.to_json(), checkpoint=str(checkpoint))],
        env=env,
    )
    try:
        # Shards 0 and 1 complete; the drill hangs the worker on shard 2,
        # pinning the driver mid-campaign with real progress journaled.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if checkpoint.exists():
                done = sum(
                    1 for line in checkpoint.read_text().splitlines()
                    if '"kind":"shard"' in line
                )
                if done >= 2:
                    break
            time.sleep(0.05)
        else:
            pytest.fail("driver never journaled the first two shards")
        driver.send_signal(signal.SIGKILL)
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:
            driver.kill()
            driver.wait(timeout=30)

    state = load_journal(checkpoint)
    assert len(state.results) >= 2

    healed = resume_campaign(checkpoint, FAST)
    assert healed.complete
    assert render_campaign_json(healed.aggregate) == render_campaign_json(
        baseline.aggregate
    )


def test_aggregate_json_is_canonical(tmp_path):
    outcome = run_campaign(tiny_spec(), tmp_path / "c.jsonl", INLINE)
    text = render_campaign_json(outcome.aggregate)
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

"""Shard execution: determinism, empty batches, every fault mode."""

import pytest

from repro.campaign import FAULT_KINDS, ShardSpec, derive_seed, run_shard
from repro.campaign.spec import normalize_mode
from repro.errors import CampaignError


def shard_for(kind: str, vectors: int = 8, seed: int = 5, **params) -> ShardSpec:
    return ShardSpec(
        index=0,
        circuit="comparator2",
        mode=normalize_mode({"kind": kind, **params}),
        vectors=vectors,
        seed=derive_seed(seed, "comparator2", kind),
        clock_fraction=0.9,
    )


def check_wellformed(result: dict, shard: ShardSpec) -> None:
    assert result["shard"] == shard.index
    assert result["circuit"] == shard.circuit
    assert result["mode_key"] == shard.mode_key
    assert result["vectors"] == shard.vectors
    assert 0 <= result["pairs_masked_errors"] <= shard.vectors
    assert 0 <= result["pairs_unmasked_errors"] <= shard.vectors
    for row in result["outputs"].values():
        assert row["recovered"] <= row["unmasked"]
        assert row["unmasked"] - row["masked"] <= row["recovered"]
        for value in row.values():
            assert value >= 0


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_every_mode_runs_and_is_deterministic(kind):
    shard = shard_for(kind)
    first = run_shard(shard)
    check_wellformed(first, shard)
    assert first == run_shard(shard)  # pure function of the spec


def test_injection_actually_produces_errors():
    """The default severities must inject observable errors (else the
    campaign measures nothing)."""
    total = sum(
        run_shard(shard_for(kind, vectors=24))["pairs_unmasked_errors"]
        for kind in FAULT_KINDS
    )
    assert total > 0


def test_masking_recovers_errors():
    """Across modes, the mux patch must repair a nontrivial share."""
    un = mk = 0
    for kind in FAULT_KINDS:
        result = run_shard(shard_for(kind, vectors=24))
        un += result["pairs_unmasked_errors"]
        mk += result["pairs_masked_errors"]
    assert mk < un


def test_empty_batch_is_wellformed():
    shard = shard_for("seu", vectors=0)
    result = run_shard(shard)
    check_wellformed(result, shard)
    assert result["vectors"] == 0
    assert result["pairs_unmasked_errors"] == 0
    assert result["pairs_masked_errors"] == 0
    assert all(
        value == 0 for row in result["outputs"].values() for value in row.values()
    )


def test_unknown_circuit_raises_campaign_error():
    shard = ShardSpec(
        index=0, circuit="no-such-circuit", mode=normalize_mode("seu"),
        vectors=4, seed=1,
    )
    with pytest.raises(CampaignError, match="no-such-circuit"):
        run_shard(shard)


def test_distinct_seeds_distinct_streams():
    a = run_shard(shard_for("seu", seed=1))
    b = run_shard(shard_for("seu", seed=2))
    assert a != b

"""Distributed campaigns: queue backend, live status, adaptive sizing.

The invariant under test throughout: however the fleet behaves —
coordinator-inline, subprocess workers, workers SIGKILLed mid-lease —
the campaign aggregate is byte-identical to a plain single-host run.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro import obs
from repro.campaign import (
    CAMPAIGN_BACKENDS,
    CampaignSpec,
    RunnerConfig,
    ShardTiming,
    autoshard_spec,
    campaign_status,
    render_campaign_json,
    render_status_text,
    run_campaign,
    shard_timing,
    suggest_spec,
    watch_status,
)
from repro.campaign.checkpoint import load_journal
from repro.errors import CampaignError
from repro.exec import WorkQueue


def tiny_spec(**overrides) -> CampaignSpec:
    base = dict(
        circuits=("comparator2",),
        modes=({"kind": "delay"},),
        shards_per_cell=2,
        vectors_per_shard=8,
        seed=3,
        clock_fraction=0.9,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def queue_config(queue_dir, workers=0, **overrides) -> RunnerConfig:
    base = dict(
        workers=workers,
        task_timeout=30.0,
        max_retries=3,
        backoff_base=0.05,
        backoff_cap=0.2,
        backend="queue",
        queue_dir=str(queue_dir),
        lease_ttl=1.0,
    )
    base.update(overrides)
    return RunnerConfig(**base)


class TestRunnerConfigValidation:
    def test_queue_backend_requires_queue_dir(self):
        with pytest.raises(CampaignError, match="queue_dir"):
            RunnerConfig(backend="queue")

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError, match="backend"):
            RunnerConfig(backend="smoke-signals")

    def test_bad_lease_ttl_rejected(self):
        with pytest.raises(CampaignError, match="lease_ttl"):
            RunnerConfig(backend="queue", queue_dir="/q", lease_ttl=0.0)

    def test_backend_catalog(self):
        assert CAMPAIGN_BACKENDS == (
            "auto", "inline", "thread", "process", "queue"
        )


class TestQueueBackendCampaign:
    def test_coordinator_inline_matches_plain_inline(self, tmp_path):
        spec = tiny_spec()
        inline = run_campaign(
            spec, tmp_path / "inline.ckpt.jsonl", RunnerConfig(workers=0)
        )
        queued = run_campaign(
            spec, tmp_path / "queued.ckpt.jsonl",
            queue_config(tmp_path / "q"),
        )
        assert inline.complete and queued.complete
        assert render_campaign_json(queued.aggregate) == render_campaign_json(
            inline.aggregate
        )
        assert queued.stats["backend"] == "queue"

    @pytest.mark.slow
    def test_mid_run_kill_still_byte_identical(self, tmp_path):
        spec = tiny_spec(shards_per_cell=3)
        inline = run_campaign(
            spec, tmp_path / "inline.ckpt.jsonl", RunnerConfig(workers=0)
        )
        chaotic = run_campaign(
            spec, tmp_path / "chaos.ckpt.jsonl",
            queue_config(tmp_path / "q", workers=2, task_timeout=10.0),
            sabotage={1: {"mode": "kill", "attempts": 1}},
        )
        assert chaotic.complete
        assert chaotic.aggregate["incomplete_shards"] == []
        assert render_campaign_json(
            chaotic.aggregate
        ) == render_campaign_json(inline.aggregate)
        counters = WorkQueue.open(tmp_path / "q").scan().counters
        assert counters["steals"] >= 1

    def test_sabotage_still_requires_isolated_workers(self, tmp_path):
        with pytest.raises(CampaignError, match="workers"):
            run_campaign(
                tiny_spec(), tmp_path / "c.ckpt.jsonl",
                queue_config(tmp_path / "q", workers=0),
                sabotage={0: {"mode": "kill"}},
            )


class TestCampaignStatus:
    def test_journal_only_status(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "c.ckpt.jsonl", RunnerConfig(workers=0))
        status = campaign_status(tmp_path / "c.ckpt.jsonl")
        assert status["shards_done"] == status["shards_total"] == 2
        assert status["percent"] == 100.0
        assert status["queue"] is None
        text = render_status_text(status)
        assert "2/2 shards done" in text
        assert "no queue directory" in text

    def test_queue_status_after_distributed_run(self, tmp_path):
        run_campaign(
            tiny_spec(), tmp_path / "c.ckpt.jsonl",
            queue_config(tmp_path / "q"),
        )
        status = campaign_status(tmp_path / "c.ckpt.jsonl", tmp_path / "q")
        queue = status["queue"]
        assert queue["results"] == 2
        assert queue["stopped"] is True
        assert queue["counters"]["claims"] >= 2
        # The coordinator-inline participant heartbeats like any worker.
        assert all(
            info["state"] in ("live", "exited")
            for info in queue["workers"].values()
        )
        text = render_status_text(status)
        assert "[stopped]" in text
        assert "counters:" in text

    def test_shard_indices_resolved_from_fingerprints(self, tmp_path):
        # Claim a shard by hand and check status names it by index.
        from repro.campaign.runner import _shard_task
        from repro.campaign.spec import plan_campaign
        from repro.exec.queuedir import QueuePolicy

        spec = tiny_spec()
        run_campaign(spec, tmp_path / "c.ckpt.jsonl", RunnerConfig(workers=0))
        queue = WorkQueue.create(tmp_path / "q", QueuePolicy(lease_ttl=5.0))
        shard = plan_campaign(spec)[1]
        fp = queue.publish_task(_shard_task(shard))
        queue.try_claim(fp, "w1", 0)
        queue.write_heartbeat("w1", "busy", current=fp)
        status = campaign_status(tmp_path / "c.ckpt.jsonl", tmp_path / "q")
        assert status["queue"]["leases"][0]["shard"] == 1
        assert status["queue"]["workers"]["w1"]["current_shard"] == 1
        assert "shard 1" in render_status_text(status)

    def test_watch_status_returns_when_settled(self, tmp_path, capsys):
        run_campaign(
            tiny_spec(), tmp_path / "c.ckpt.jsonl", RunnerConfig(workers=0)
        )
        assert watch_status(
            tmp_path / "c.ckpt.jsonl", None, interval=0.01, max_rounds=3
        ) == 0
        assert "2/2 shards done" in capsys.readouterr().out

    def test_watch_rejects_bad_interval(self, tmp_path):
        with pytest.raises(CampaignError, match="interval"):
            watch_status(tmp_path / "c.ckpt.jsonl", None, interval=0.0)

    # -- live telemetry and worker classification -------------------------

    def _telemetry_line(self, worker, seq, ts, done, walls=(), current=None):
        return json.dumps({
            "schema": 1, "ts": ts, "worker": worker, "seq": seq,
            "tasks_done": done, "walls": list(walls), "current": current,
            "delta": {"schema": 1, "metrics": {}},
        }) + "\n"

    def _crafted_queue(self, tmp_path):
        """Journal plus a hand-built queue: one claimed shard and two
        telemetry streams — w1 fast and steady, w2 slow (a straggler)."""
        from repro.campaign.runner import _shard_task
        from repro.campaign.spec import plan_campaign
        from repro.exec.queuedir import QueuePolicy

        spec = tiny_spec()
        ckpt = tmp_path / "c.ckpt.jsonl"
        run_campaign(spec, ckpt, RunnerConfig(workers=0))
        queue = WorkQueue.create(tmp_path / "q", QueuePolicy(lease_ttl=5.0))
        fp = queue.publish_task(_shard_task(plan_campaign(spec)[0]))
        queue.try_claim(fp, "w1", 0)
        queue.write_heartbeat("w1", "busy", tasks_done=40, current=fp)
        queue.write_heartbeat("w2", "idle", tasks_done=3)
        now = time.time()
        tdir = queue.root / "telemetry"
        tdir.mkdir(exist_ok=True)
        (tdir / "w1.jsonl").write_text(
            self._telemetry_line("w1", 1, now - 20.0, 0)
            + self._telemetry_line("w1", 2, now - 10.0, 20, walls=[1.0] * 20)
            + self._telemetry_line("w1", 3, now, 40, walls=[1.0] * 20,
                                   current=fp)
        )
        (tdir / "w2.jsonl").write_text(
            self._telemetry_line("w2", 1, now - 20.0, 0)
            + self._telemetry_line("w2", 2, now, 3, walls=[30.0] * 3)
        )
        return ckpt, queue

    def test_status_folds_live_telemetry(self, tmp_path):
        ckpt, queue = self._crafted_queue(tmp_path)
        status = campaign_status(ckpt, queue.root)
        telemetry = status["queue"]["telemetry"]
        # w1: 40 tasks over the 20s of samples; w2: 3 over the same span.
        assert telemetry["workers"]["w1"]["rate_per_second"] \
            == pytest.approx(2.0, rel=0.05)
        assert telemetry["workers"]["w1"]["straggler"] is False
        assert telemetry["workers"]["w2"]["straggler"] is True
        assert telemetry["fleet"]["stragglers"] == ["w2"]
        assert telemetry["fleet"]["remaining"] == 1  # the claimed shard
        assert telemetry["fleet"]["eta_seconds"] == pytest.approx(
            1 / telemetry["fleet"]["rate_per_second"], rel=1e-3
        )
        # Per-worker rows inherit rate and straggler flags.
        assert status["queue"]["workers"]["w1"]["rate_per_second"] \
            == telemetry["workers"]["w1"]["rate_per_second"]
        assert status["queue"]["workers"]["w2"]["straggler"] is True

    def test_status_text_renders_rate_eta_and_straggler_columns(
        self, tmp_path
    ):
        ckpt, queue = self._crafted_queue(tmp_path)
        text = render_status_text(campaign_status(ckpt, queue.root))
        assert "telemetry: throughput 2.15/s" in text
        assert ", eta " in text
        assert "stragglers: w2" in text
        w1_row = next(ln for ln in text.splitlines() if ln.strip()
                      .startswith("w1"))
        w2_row = next(ln for ln in text.splitlines() if ln.strip()
                      .startswith("w2"))
        assert "rate  2.00/s" in w1_row
        assert "STRAGGLER" not in w1_row
        assert "rate  0.15/s" in w2_row
        assert w2_row.rstrip().endswith("STRAGGLER")

    def test_status_without_telemetry_has_no_section(self, tmp_path):
        # REPRO_OBS off: no telemetry files, no telemetry line.
        run_campaign(
            tiny_spec(), tmp_path / "c.ckpt.jsonl",
            queue_config(tmp_path / "q"),
        )
        status = campaign_status(tmp_path / "c.ckpt.jsonl", tmp_path / "q")
        assert status["queue"]["telemetry"] is None
        assert "telemetry:" not in render_status_text(status)

    def test_watch_status_shows_telemetry(self, tmp_path, capsys):
        ckpt, queue = self._crafted_queue(tmp_path)
        assert watch_status(
            ckpt, queue.root, interval=0.01, max_rounds=1
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry: throughput" in out
        assert "STRAGGLER" in out

    def test_worker_classification_golden_text(self, tmp_path):
        from repro.campaign.runner import _shard_task
        from repro.campaign.spec import plan_campaign
        from repro.exec.queuedir import QueuePolicy

        spec = tiny_spec()
        ckpt = tmp_path / "c.ckpt.jsonl"
        run_campaign(spec, ckpt, RunnerConfig(workers=0))
        queue = WorkQueue.create(
            tmp_path / "q",
            QueuePolicy(lease_ttl=5.0, clock_skew_grace=0.5),
        )
        fp = queue.publish_task(_shard_task(plan_campaign(spec)[0]))
        queue.try_claim(fp, "live-w", 0)
        queue.write_heartbeat("live-w", "busy", current=fp)
        # Heartbeating, thinks it runs fp — but live-w holds the lease.
        queue.write_heartbeat("wedged-w", "busy", current=fp)
        # Heartbeat older than ttl+grace but younger than max_lease_age.
        queue.write_heartbeat("stale-w", "idle")
        hb = queue.root / "workers" / "stale-w.json"
        doc = json.loads(hb.read_text())
        doc["time"] = time.time() - 10.0
        hb.write_text(json.dumps(doc))

        status = campaign_status(ckpt, queue.root)
        workers = status["queue"]["workers"]
        assert workers["live-w"]["state"] == "live"
        assert workers["wedged-w"]["state"] == "wedged"
        assert workers["stale-w"]["state"] == "stale"
        text = render_status_text(status)
        lines = text.splitlines()
        start = next(i for i, ln in enumerate(lines)
                     if ln.startswith("workers ("))
        rows = [ln for ln in lines[start + 1:start + 4]]
        # Healthiest first, and each row names its classification.
        assert [row.split()[0] for row in rows] == [
            "live-w", "wedged-w", "stale-w"
        ]
        assert "live" in rows[0] and "wedged" in rows[1] \
            and "stale" in rows[2]


class TestAdaptiveSizing:
    def _timing(self, p50=1.0, p90=2.0, vectors=16) -> ShardTiming:
        return ShardTiming(
            samples=10, vectors_per_shard=vectors,
            p50_seconds=p50, p90_seconds=p90,
        )

    def test_journal_without_telemetry_is_an_error(self, tmp_path):
        run_campaign(
            tiny_spec(), tmp_path / "c.ckpt.jsonl", RunnerConfig(workers=0)
        )
        with pytest.raises(CampaignError, match="telemetry"):
            shard_timing(load_journal(tmp_path / "c.ckpt.jsonl"))

    def test_resize_preserves_total_work_exactly(self):
        spec = tiny_spec(shards_per_cell=4, vectors_per_shard=24)
        timing = self._timing(p90=4.8, vectors=24)  # p90 rate 0.2 s/vector
        resized = suggest_spec(spec, timing, target_shard_seconds=1.2)
        assert (
            resized.shards_per_cell * resized.vectors_per_shard
            == spec.shards_per_cell * spec.vectors_per_shard
        )
        # Ideal is 6 vectors/shard (1.2s / 0.2 s-per-vector); 6 divides
        # the 96-vector total exactly.
        assert resized.vectors_per_shard == 6
        assert resized.shards_per_cell == 16

    def test_resize_picks_nearest_divisor(self):
        spec = tiny_spec(shards_per_cell=2, vectors_per_shard=10)
        timing = self._timing(p90=10.0, vectors=10)  # 1 s/vector
        # Ideal 7 vectors is not a divisor of 20; nearest by log distance
        # among {1,2,4,5,10,20} is 5 (7/5 = 1.4 < 10/7 = 1.43).
        resized = suggest_spec(spec, timing, target_shard_seconds=7.0)
        assert resized.vectors_per_shard == 5

    def test_bad_target_rejected(self):
        with pytest.raises(CampaignError, match="positive"):
            suggest_spec(tiny_spec(), self._timing(), 0.0)

    def test_autoshard_from_obs_enabled_donor(self, tmp_path):
        obs.configure(enabled=True)
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "donor.ckpt.jsonl",
                     RunnerConfig(workers=0))
        # A huge target coalesces every cell into one maximal shard.
        resized, timing = autoshard_spec(
            spec, tmp_path / "donor.ckpt.jsonl",
            target_shard_seconds=3600.0,
        )
        assert timing.samples == 2
        assert timing.p90_seconds >= timing.p50_seconds > 0
        assert resized.vectors_per_shard == 16
        assert resized.shards_per_cell == 1
        # The resized spec is a valid spec (frozen dataclass round trip).
        assert dataclasses.replace(resized).fingerprint() == resized.fingerprint()

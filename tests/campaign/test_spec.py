"""Campaign specs: normalization, seeds, planning, round-trips."""

import pytest

from repro.campaign import (
    DEFAULT_MODE_PARAMS,
    FAULT_KINDS,
    CampaignSpec,
    ShardSpec,
    derive_seed,
    mode_key,
    plan_campaign,
)
from repro.campaign.spec import normalize_mode
from repro.errors import CampaignError


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        circuits=("comparator2",),
        modes=({"kind": "seu"}, {"kind": "delay"}),
        shards_per_cell=2,
        vectors_per_shard=8,
        seed=11,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def test_normalize_fills_defaults():
    mode = normalize_mode("delay")
    assert mode["kind"] == "delay"
    for key, value in DEFAULT_MODE_PARAMS["delay"].items():
        assert mode[key] == value


def test_normalize_accepts_overrides():
    mode = normalize_mode({"kind": "delay", "scale": 9.0})
    assert mode["scale"] == 9.0
    assert mode["arcs"] == DEFAULT_MODE_PARAMS["delay"]["arcs"]


def test_normalize_rejects_unknown_kind_and_param():
    with pytest.raises(CampaignError, match="unknown fault mode"):
        normalize_mode("meteor")
    with pytest.raises(CampaignError, match="no parameter"):
        normalize_mode({"kind": "seu", "wings": 3})


def test_mode_key_is_stable():
    assert mode_key(normalize_mode("seu")) == "seu(flips=1)"
    a = mode_key(normalize_mode({"kind": "delay", "scale": 2.0, "arcs": 1}))
    assert a == "delay(arcs=1,scale=2.0)"


def test_derive_seed_stable_and_distinct():
    assert derive_seed(7, "a", 0) == derive_seed(7, "a", 0)
    assert derive_seed(7, "a", 0) != derive_seed(7, "a", 1)
    assert derive_seed(7, "a", 0) != derive_seed(8, "a", 0)
    assert 0 <= derive_seed(7, "a", 0) < 2**63


def test_spec_validation():
    with pytest.raises(CampaignError, match="at least one circuit"):
        tiny_spec(circuits=())
    with pytest.raises(CampaignError, match="at least one fault mode"):
        tiny_spec(modes=())
    with pytest.raises(CampaignError, match="shards_per_cell"):
        tiny_spec(shards_per_cell=0)
    with pytest.raises(CampaignError, match="vectors_per_shard"):
        tiny_spec(vectors_per_shard=-1)
    with pytest.raises(CampaignError, match="clock_fraction"):
        tiny_spec(clock_fraction=0.0)


def test_spec_json_roundtrip_preserves_fingerprint():
    spec = tiny_spec()
    again = CampaignSpec.from_json(spec.to_json())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()


def test_spec_from_json_missing_field():
    data = tiny_spec().to_json()
    del data["seed"]
    with pytest.raises(CampaignError, match="missing field 'seed'"):
        CampaignSpec.from_json(data)


def test_plan_is_deterministic_and_indexed():
    spec = tiny_spec()
    plan = plan_campaign(spec)
    assert plan == plan_campaign(spec)
    assert len(plan) == 4  # 1 circuit x 2 modes x 2 shards
    assert [s.index for s in plan] == list(range(4))
    assert len({s.seed for s in plan}) == len(plan)
    for shard in plan:
        assert ShardSpec.from_json(shard.to_json()) == shard


def test_every_fault_kind_has_defaults():
    for kind in FAULT_KINDS:
        assert kind in DEFAULT_MODE_PARAMS
        normalize_mode(kind)

"""Checkpoint journal: durability, crash tolerance, corruption refusal."""

import pytest

from repro.campaign import CampaignSpec, CheckpointWriter, load_journal
from repro.errors import CheckpointError


def spec() -> CampaignSpec:
    return CampaignSpec(
        circuits=("comparator2",),
        modes=({"kind": "seu"},),
        shards_per_cell=2,
        vectors_per_shard=4,
        seed=3,
    )


def fake_result(index: int) -> dict:
    return {"shard": index, "vectors": 4, "pairs_unmasked_errors": 1,
            "pairs_masked_errors": 0, "outputs": {}}


def test_roundtrip(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    writer = CheckpointWriter.create(path, spec(), 2)
    writer.shard_done(0, 1, fake_result(0))
    writer.quarantine(1, 3, "worker killed by signal 9")

    state = load_journal(path)
    assert state.fingerprint == spec().fingerprint()
    assert state.n_shards == 2
    assert state.spec == spec()
    assert state.results[0]["result"] == fake_result(0)
    assert state.quarantined[1]["error"] == "worker killed by signal 9"
    assert state.done_indices == frozenset({0})
    assert not state.dropped_tail


def test_later_shard_record_supersedes_quarantine(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    writer = CheckpointWriter.create(path, spec(), 2)
    writer.quarantine(0, 2, "flaky")
    writer.shard_done(0, 1, fake_result(0))
    state = load_journal(path)
    assert 0 in state.results
    assert 0 not in state.quarantined


def test_create_refuses_to_clobber(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    CheckpointWriter.create(path, spec(), 2)
    with pytest.raises(CheckpointError, match="already exists"):
        CheckpointWriter.create(path, spec(), 2)


def test_torn_tail_is_dropped(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    writer = CheckpointWriter.create(path, spec(), 2)
    writer.shard_done(0, 1, fake_result(0))
    with open(path, "a") as handle:
        handle.write('{"kind": "shard", "shard": 1, "resu')  # kill mid-write
    state = load_journal(path)
    assert state.dropped_tail
    assert state.done_indices == frozenset({0})


def test_torn_header_alone_is_unusable(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    path.write_text('{"kind": "header", "schema"')
    with pytest.raises(CheckpointError, match="torn header"):
        load_journal(path)


def test_midfile_corruption_raises(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    writer = CheckpointWriter.create(path, spec(), 2)
    with open(path, "a") as handle:
        handle.write("!!not json!!\n")
    writer.shard_done(0, 1, fake_result(0))
    with pytest.raises(CheckpointError, match="not JSON"):
        load_journal(path)


def test_missing_and_empty_files(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_journal(tmp_path / "nope.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(CheckpointError, match="empty checkpoint"):
        load_journal(empty)


def test_wrong_first_record(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    path.write_text('{"kind": "shard", "shard": 0}\n')
    with pytest.raises(CheckpointError, match="not a campaign header"):
        load_journal(path)


def test_schema_mismatch(tmp_path):
    import json

    path = tmp_path / "c.ckpt.jsonl"
    CheckpointWriter.create(path, spec(), 2)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema"] = 999
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(CheckpointError, match="schema 999"):
        load_journal(path)


def test_fingerprint_spec_mismatch(tmp_path):
    import json

    path = tmp_path / "c.ckpt.jsonl"
    CheckpointWriter.create(path, spec(), 2)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["fingerprint"] = "0" * 64
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(CheckpointError, match="does not match"):
        load_journal(path)


def test_unknown_record_kind(tmp_path):
    path = tmp_path / "c.ckpt.jsonl"
    CheckpointWriter.create(path, spec(), 2)
    with open(path, "a") as handle:
        handle.write('{"kind": "gremlin"}\n')
    with pytest.raises(CheckpointError, match="unknown record kind"):
        load_journal(path)

"""repro.exec — the generic execution substrate.

Everything that used to be campaign-only resilience machinery, factored
into reusable pieces:

* :class:`Task` / :class:`TaskResult` — content-addressed units of work,
* :class:`RetryPolicy` / :class:`BreakerPolicy` — composable resilience
  policy objects,
* :class:`Executor` backends — ``inline`` (calling thread), ``thread``
  (in-process pool), ``process`` (persistent worker subprocesses with
  timeouts, crash isolation, and sabotage drills), and ``queue`` (a
  shared-directory work queue served by elastic, multi-host
  ``repro worker`` processes with atomic-rename claims, heartbeat-renewed
  leases, work stealing, and first-write-wins result dedup),
* the task-kind registry mapping kind strings to runner functions on both
  sides of the process boundary.

The campaign runner and the parallel SPCF driver are both thin clients of
this package.
"""

from repro.exec.executors import (
    EventFn,
    ExecReport,
    Executor,
    InlineExecutor,
    ProcessPoolExecutor,
    ResultFn,
    TaskAttemptError,
    ThreadExecutor,
    available_backends,
    default_worker_count,
    make_executor,
    validated_jobs,
)
from repro.exec.policy import BreakerPolicy, RetryPolicy
from repro.exec.queue_executor import QueueExecutor
from repro.exec.queue_worker import QueueWorker
from repro.exec.queuedir import (
    QueuePolicy,
    QueueSnapshot,
    WorkQueue,
    worker_identity,
)
from repro.exec.registry import (
    register_task_kind,
    registered_kinds,
    resolve,
    resolve_span,
)
from repro.exec.protocol import (
    DETERMINISTIC_ERRORS,
    EXEC_SCHEMA,
    SABOTAGE_MODES,
    apply_sabotage,
)
from repro.exec.task import Task, TaskResult, canonical_json

__all__ = [
    "Task",
    "TaskResult",
    "canonical_json",
    "RetryPolicy",
    "BreakerPolicy",
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessPoolExecutor",
    "QueueExecutor",
    "QueuePolicy",
    "QueueSnapshot",
    "QueueWorker",
    "WorkQueue",
    "worker_identity",
    "ExecReport",
    "TaskAttemptError",
    "EventFn",
    "ResultFn",
    "available_backends",
    "default_worker_count",
    "make_executor",
    "validated_jobs",
    "register_task_kind",
    "registered_kinds",
    "resolve",
    "resolve_span",
    "DETERMINISTIC_ERRORS",
    "EXEC_SCHEMA",
    "SABOTAGE_MODES",
    "apply_sabotage",
]

"""Persistent generic task worker: line-delimited JSON over stdio.

Runs as ``python -m repro.exec.worker``.  Unlike the original single-shot
campaign worker (one process per shard attempt), this worker stays alive
and serves one request line after another — the process pool reuses it
across tasks, amortizing interpreter/import startup (~0.3 s) and letting
per-process caches (compiled circuits, masked designs, SPCF contexts)
survive between tasks of the same run.

Protocol, one JSON document per line in each direction::

    -> {"schema": 1, "kind": "...", "payload": {...}, "key": ...,
        "attempt": 0, "sabotage": null, "corr": "<fingerprint>"?}
    <- {"schema": 1, "key": ..., "result": ..., "wall_seconds": ...,
        "obs": {...}?}              # success
    <- {"schema": 1, "key": ..., "error": "SpcfError: ..."}  # deterministic

Deterministic failures (a :class:`~repro.errors.ReproError` or common
programming error inside the runner) come back as *data* and keep the
worker alive; anything else — a crash, an OOM kill, sabotage — costs the
whole process, which the executor observes as EOF and treats as a
retryable environmental failure.

Observability crosses the protocol with **delta semantics**: when
``REPRO_OBS`` is on, each response carries the spans and metric increments
recorded *since the previous response* (the registry is reset after every
reply), so the parent can merge snapshots commutatively without
double-counting a long-lived worker.

The ``sabotage`` directive is the built-in fault drill (SIGKILL self,
hang, exit nonzero), applied per attempt before the task runs.  It is an
executor option, never part of the task payload, so fingerprints and
journals are untouched by drills.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO

from repro import obs
from repro.errors import ExecError
from repro.exec.protocol import (
    DETERMINISTIC_ERRORS,
    EXEC_SCHEMA,
    SABOTAGE_MODES,
    apply_sabotage,
)
from repro.exec.registry import resolve, resolve_span

__all__ = [
    "EXEC_SCHEMA",
    "SABOTAGE_MODES",
    "DETERMINISTIC_ERRORS",
    "apply_sabotage",
    "serve_request",
    "serve",
    "main",
]


def _respond(out: IO[str], response: dict) -> None:
    out.write(json.dumps(response) + "\n")
    out.flush()


def serve_request(request: dict) -> dict:
    """Run one request to a response document (no I/O; testable inline)."""
    key = request.get("key")
    attempt = int(request.get("attempt", 0))
    kind = request.get("kind")
    payload = request.get("payload")
    started = time.perf_counter()
    try:
        if not isinstance(kind, str):
            raise ExecError(f"request kind must be a string, got {kind!r}")
        if not isinstance(payload, dict):
            raise ExecError("request payload must be a JSON object")
        runner = resolve(kind)
        span_fn = resolve_span(kind)
        if span_fn is not None:
            category, name, attrs = span_fn(payload, attempt)
            with obs.get_tracer(category).span(name, **dict(attrs)):
                result = runner(payload)
        else:
            result = runner(payload)
    except DETERMINISTIC_ERRORS as exc:
        return {
            "schema": EXEC_SCHEMA,
            "key": key,
            "error": f"{type(exc).__name__}: {exc}",
        }
    wall = time.perf_counter() - started
    response: dict = {
        "schema": EXEC_SCHEMA,
        "key": key,
        "result": result,
        "wall_seconds": round(wall, 6),
    }
    if obs.enabled():
        response["obs"] = {
            "wall_seconds": round(wall, 6),
            "spans": obs.span_records(),
            "metrics": obs.metrics_snapshot(),
        }
    return response


def serve(stdin: IO[str], stdout: IO[str]) -> int:
    """Serve requests until EOF on stdin.  Returns the exit code."""
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            _respond(stdout, {
                "schema": EXEC_SCHEMA,
                "key": None,
                "error": "worker request is not valid JSON",
            })
            continue
        apply_sabotage(request.get("sabotage"), int(request.get("attempt", 0)))
        # The parent's correlation id (task fingerprint) crosses the
        # protocol in the request so this worker's spans and log records
        # join the fleet-wide telemetry on the same key.
        corr = request.get("corr")
        with obs.correlation(corr if isinstance(corr, str) else None):
            _respond(stdout, serve_request(request))
        if obs.enabled():
            # Delta semantics: the next response must carry only what the
            # next task records.
            obs.reset()
            obs.configure(enabled=True)
    return 0


def main() -> int:
    return serve(sys.stdin, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())

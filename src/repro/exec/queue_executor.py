"""The ``queue`` backend: elastic, multi-host, lease-based execution.

:class:`QueueExecutor` is the coordinator side of the shared-directory
work queue (:mod:`repro.exec.queuedir`).  Where the other backends *own*
their attempt loop, this one publishes content-addressed task documents
and lets an **elastic fleet** of :mod:`repro.exec.queue_worker`
processes — local children it spawns, plus any ``repro worker`` started
by hand on this or another host — race to claim, execute, and publish.

What replaces the in-process retry loop:

* **retries** are lease steals: a worker that dies or wedges mid-task
  stops renewing its lease; the coordinator (or any idle worker) reclaims
  the claim and requeues it, bumping the shared attempt budget
  (``retry.max_retries + 1`` attempts total, like every other backend);
* **quarantine** is a published error result: deterministic runner
  errors quarantine immediately, environmental failures quarantine when
  the attempt budget is spent — either way the queue never stalls;
* **dedup**: tasks are content-addressed, so two tasks with identical
  ``(kind, payload)`` fingerprints execute once, and a stolen-but-slow
  worker's duplicate completion is absorbed first-write-wins with the
  canonical result payloads byte-compared (divergence is surfaced as an
  event, never silently overwritten);
* the **coordinator is a reaper, not a dispatcher**: its poll loop
  reclaims expired leases, tails the queue's event logs into executor
  events/metrics, ingests worker telemetry, and settles results.

``workers=0`` makes the coordinator *participate inline* (an in-process
worker thread serving the same claim protocol), so a queue run always
makes progress even before any external worker joins.  With
``workers>=1`` it spawns that many local worker subprocesses; killed
ones are respawned with exponential backoff while work remains (disable
with ``respawn=False`` to drill true host loss).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro import obs
from repro.errors import ExecError
from repro.exec import _obs
from repro.obs.flight import load_flight
from repro.obs.timeseries import FLIGHT_SUFFIX, FleetSeries, TelemetryTail
from repro.exec.executors import (
    ExecReport,
    Executor,
    ResultFn,
    _child_env,
)
from repro.exec.queuedir import QueuePolicy, WorkQueue, worker_identity
from repro.exec.queue_worker import QueueWorker
from repro.exec.task import Task, TaskResult


class _EventTail:
    """Incremental reader of the queue's per-writer event logs."""

    def __init__(self, queue: WorkQueue):
        self.queue = queue
        self._offsets: dict[Path, int] = {}

    def new_events(self) -> list[dict]:
        records: list[dict] = []
        for path in sorted((self.queue.root / "events").glob("*.jsonl")):
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            # Only consume complete lines; a torn tail is re-read later.
            complete, _, _ = chunk.rpartition(b"\n")
            if not complete:
                continue
            self._offsets[path] = offset + len(complete) + 1
            for raw in complete.split(b"\n"):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("worker", "")))
        return records


class QueueExecutor(Executor):
    """Coordinator of one shared work-queue directory.

    Parameters beyond the :class:`Executor` base:

    ``queue_dir``
        The rendezvous directory (local or NFS).  Created if missing;
        its manifest persists the queue policy for joining workers.
    ``workers``
        Local worker subprocesses to spawn per run; ``0`` = participate
        inline (plus any external workers that join either way).
    ``lease_ttl`` / ``policy``
        Lease time-to-live in seconds, or a full :class:`QueuePolicy`
        (which wins if given).  The policy's attempt budget defaults to
        ``retry.max_retries + 1`` to match the other backends.
    ``respawn``
        Respawn locally-spawned workers that die while work remains
        (exponential backoff from the retry policy's base/cap).
    ``flight_dir``
        Where to harvest the workers' flight-recorder dumps
        (``telemetry/*.flight.json``) after the run — the post-mortem
        record of whatever each worker had in flight at its last flush.
        ``None`` leaves the dumps in the queue directory only.
    """

    backend = "queue"

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        workers: int = 1,
        policy: QueuePolicy | None = None,
        lease_ttl: float = 15.0,
        respawn: bool = True,
        flight_dir: str | os.PathLike | None = None,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        if workers < 0:
            raise ExecError(f"queue executor needs workers >= 0, got {workers}")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.respawn = respawn
        if policy is None:
            # Grace and poll cadence scale with the ttl so short-lease
            # configurations (tests, chaos drills) stay responsive while
            # long-lease production queues stay skew-tolerant.
            policy = QueuePolicy(
                lease_ttl=lease_ttl,
                clock_skew_grace=min(5.0, lease_ttl / 3.0),
                poll_interval=min(0.2, max(0.02, lease_ttl / 10.0)),
                max_attempts=self.retry.max_retries + 1,
            )
        self.policy = policy
        self.flight_dir = Path(flight_dir) if flight_dir is not None else None
        #: Live fleet view of the current/last run (telemetry tailing is
        #: active only while ``REPRO_OBS`` is on).
        self.fleet: FleetSeries | None = None
        self.coordinator_id = f"coord-{worker_identity()}"
        self._queue: WorkQueue | None = None
        self._spawned: list[subprocess.Popen] = []
        self._inline_worker: QueueWorker | None = None
        self._inline_thread: threading.Thread | None = None
        self._closed = False

    @property
    def parallelism(self) -> int:
        return max(self.workers, 1)

    # ----------------------------------------------------------- local fleet

    def _spawn_worker(self) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.exec.queue_worker",
                str(self.queue_dir),
                "--timeout", str(self.task_timeout),
                "--max-failures",
                str(self.breaker.max_consecutive_failures),
                "--quiet",
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_child_env(),
        )

    def _start_inline_worker(self, queue: WorkQueue) -> None:
        self._inline_worker = QueueWorker(
            queue,
            worker_id=f"inline-{worker_identity()}",
            task_timeout=self.task_timeout,
            max_consecutive_failures=self.breaker.max_consecutive_failures,
        )
        self._inline_thread = threading.Thread(
            target=self._inline_worker.run,
            name="queue-inline-worker",
            daemon=True,
        )
        self._inline_thread.start()

    def _reap_fleet(self, unresolved: int, respawns: int) -> int:
        """Respawn dead local workers while work remains; returns the
        updated consecutive-respawn count."""
        alive: list[subprocess.Popen] = []
        dead = 0
        for proc in self._spawned:
            if proc.poll() is None:
                alive.append(proc)
            else:
                dead += 1
        self._spawned = alive
        if dead and self.respawn and unresolved:
            for _ in range(dead):
                if respawns > 0:
                    delay = min(
                        self.retry.backoff_cap,
                        self.retry.backoff_base * (2.0 ** (respawns - 1)),
                    )
                    if delay > 0:
                        time.sleep(delay)
                self._spawned.append(self._spawn_worker())
                respawns += 1
                if _obs.METER.enabled:
                    _obs.RESPAWNS.add(
                        1, backend=self.backend, outcome="respawned"
                    )
        return respawns

    def _stop_fleet(self, queue: WorkQueue | None) -> None:
        if queue is not None:
            queue.stop()
        for proc in self._spawned:
            # Workers exit on the stop marker within one poll interval;
            # anything still alive after a grace period (a wedged drill
            # victim sleeping in sabotage) is killed outright.
            try:
                proc.wait(timeout=2.0 * self.policy.poll_interval + 1.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        self._spawned = []
        if self._inline_thread is not None:
            self._inline_thread.join(
                timeout=4.0 * self.policy.poll_interval + 2.0
            )
            self._inline_thread = None
            self._inline_worker = None

    # -------------------------------------------------------------- the run

    def run(
        self,
        tasks: Sequence[Task],
        on_result: ResultFn | None = None,
        sabotage: Mapping[Any, dict] | None = None,
    ) -> ExecReport:
        if self._closed:
            raise ExecError("executor is closed")
        tasks = list(tasks)
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            raise ExecError("task keys must be unique within one run")
        if sabotage and self.workers == 0:
            raise ExecError(
                "sabotage drills need spawned queue workers (workers >= 1); "
                "the inline participant shares the coordinator process"
            )
        started = time.monotonic()
        state = _QueueRunState(tasks)
        if not tasks:
            return ExecReport()

        (self.queue_dir / "stop").unlink(missing_ok=True)
        queue = WorkQueue.create(self.queue_dir, self.policy)
        self._queue = queue
        sabotage = dict(sabotage or {})
        for task in tasks:
            fp = task.fingerprint()
            directive = sabotage.get(task.key)
            if directive:
                # Directive lands before the task so no worker can claim
                # the task un-drilled.
                queue.publish_sabotage(fp, directive)
            state.map_task(fp, task)
            queue.publish_task(task)
        queue.log_event(
            self.coordinator_id, "published",
            tasks=len(tasks), fingerprints=len(state.fp_tasks),
        )

        tail = _EventTail(queue)
        telemetry_tail: TelemetryTail | None = None
        self.fleet = None
        if obs.enabled():
            telemetry_tail = TelemetryTail(queue.root / "telemetry")
            self.fleet = FleetSeries()
        try:
            if self.workers == 0:
                self._start_inline_worker(queue)
            else:
                self._spawned = [
                    self._spawn_worker() for _ in range(self.workers)
                ]
            respawns = 0
            last_progress = time.monotonic()
            stall_after = (
                self.task_timeout
                + self.policy.max_lease_age
                + self.policy.clock_skew_grace
                + 4.0 * self.policy.poll_interval
            )
            with _obs.TRACER.span(
                "exec.queue_run",
                parent_id=self.parent_span_id,
                tasks=len(tasks),
                workers=self.workers,
                queue=str(self.queue_dir),
            ):
                while state.unresolved:
                    # Reaper duty: steal from the dead and the wedged.
                    for fp, action, reason in queue.reclaim_expired(
                        self.coordinator_id
                    ):
                        queue.log_event(
                            self.coordinator_id, "stolen", fingerprint=fp,
                            action=action, reason=reason,
                        )
                    progressed = self._drain_events(state, tail)
                    progressed |= self._drain_results(
                        state, queue, on_result
                    )
                    self._publish_heartbeat_ages(queue)
                    self._drain_telemetry(
                        telemetry_tail, len(state.unresolved)
                    )
                    respawns = self._reap_fleet(
                        len(state.unresolved), respawns
                    )
                    if state.took_result:
                        respawns = 0
                        state.took_result = False
                    now = time.monotonic()
                    if progressed or self._live_leases(queue):
                        last_progress = now
                    elif now - last_progress > stall_after:
                        state.breaker_reason = (
                            f"queue stalled: {len(state.unresolved)} "
                            f"task(s) unclaimed for {stall_after:.1f}s "
                            "with no live worker lease"
                        )
                        break
                    if state.unresolved:
                        time.sleep(self.policy.poll_interval)
        finally:
            self._stop_fleet(queue)
            # Settle the tail end: results published between the last
            # poll and the fleet stop.
            self._drain_events(state, tail)
            self._drain_results(state, queue, on_result)
            self._drain_telemetry(telemetry_tail, len(state.unresolved))
            self._harvest_flight_dumps(queue)

        state.settle_stopped()
        return ExecReport(
            results=state.results,
            attempts=state.claims,
            wall_seconds=time.monotonic() - started,
            breaker_reason=state.breaker_reason,
        )

    # ------------------------------------------------------------- plumbing

    def _live_leases(self, queue: WorkQueue) -> bool:
        for fp in queue.claimed_fingerprints():
            if queue.lease_expiry_reason(fp) is None:
                return True
        return False

    def _publish_heartbeat_ages(self, queue: WorkQueue) -> None:
        if not _obs.METER.enabled:
            return
        now = time.time()
        for wid, doc in queue.workers().items():
            age = max(0.0, now - float(doc.get("time", now)))
            _obs.QUEUE_HEARTBEAT_AGE.set(round(age, 3), worker=wid)

    def _drain_telemetry(
        self, tail: TelemetryTail | None, remaining: int
    ) -> None:
        """Fold new worker telemetry into the fleet series and republish
        the digest (rate/ETA/straggler) as coordinator gauges."""
        fleet = self.fleet
        if fleet is None or tail is None:
            return
        fleet.ingest(tail.new_records())
        if not _obs.METER.enabled or not fleet.workers():
            return
        now = time.time()
        _obs.FLEET_RATE.set(round(fleet.fleet_rate(now), 4))
        stragglers = set(fleet.stragglers())
        for worker in fleet.workers():
            _obs.FLEET_RATE.set(round(fleet.rate(worker, now), 4),
                                worker=worker)
            _obs.FLEET_STRAGGLER.set(1 if worker in stragglers else 0,
                                     worker=worker)
        eta = fleet.eta_seconds(remaining, now)
        if eta is not None:
            _obs.FLEET_ETA.set(round(eta, 3))

    def _harvest_flight_dumps(self, queue: WorkQueue) -> list[Path]:
        """Copy the workers' flight dumps into ``flight_dir`` post-run.

        Dumps are validated before copying (a torn rename cannot happen —
        writes are atomic — but a foreign file with the suffix could);
        invalid files are skipped, never fatal.
        """
        if self.flight_dir is None:
            return []
        telemetry = queue.root / "telemetry"
        if not telemetry.is_dir():
            return []
        harvested: list[Path] = []
        for path in sorted(telemetry.glob(f"*{FLIGHT_SUFFIX}")):
            try:
                doc = load_flight(path)
                payload = path.read_text(encoding="utf-8")
            except (OSError, ValueError):
                continue
            self.flight_dir.mkdir(parents=True, exist_ok=True)
            target = self.flight_dir / path.name
            target.write_text(payload, encoding="utf-8")
            harvested.append(target)
            if _obs.METER.enabled:
                _obs.FLIGHT_DUMPS.add(
                    1, trigger=str(doc.get("trigger", "unknown"))
                )
        return harvested

    def _drain_events(self, state: "_QueueRunState", tail: _EventTail) -> bool:
        """Tail queue events into executor events and metrics."""
        progressed = False
        for record in tail.new_events():
            event = record.get("event")
            fp = record.get("fingerprint")
            task = state.fp_tasks.get(fp, [None])[0] if fp else None
            progressed = True
            if event == "claimed":
                state.claims += 1
                if _obs.METER.enabled:
                    _obs.QUEUE_CLAIMS.add()
                if task is not None:
                    self._emit(
                        "attempt-started", task,
                        f"claimed by {record.get('worker')}",
                    )
            elif event == "attempt-failed" and task is not None:
                self._emit(
                    "attempt-failed", task,
                    str(record.get("reason", "environmental failure")),
                    retryable=True,
                )
            elif event == "stolen":
                if _obs.METER.enabled:
                    _obs.QUEUE_STEALS.add(
                        1, action=str(record.get("action", "requeued"))
                    )
                if task is not None:
                    self._emit(
                        "attempt-failed", task,
                        f"lease stolen: {record.get('reason')}",
                        retryable=True,
                    )
                    if record.get("action") == "requeued":
                        self._emit("retry", task, "requeued after steal")
            elif event == "dedup":
                if _obs.METER.enabled:
                    _obs.QUEUE_DEDUPS.add()
            elif event == "result-divergence":
                if _obs.METER.enabled:
                    _obs.QUEUE_DIVERGENCES.add()
                if task is not None:
                    self._emit(
                        "divergence", task,
                        "duplicate completion diverged from the first "
                        "published result",
                    )
        return progressed

    def _drain_results(
        self,
        state: "_QueueRunState",
        queue: WorkQueue,
        on_result: ResultFn | None,
    ) -> bool:
        progressed = False
        for fp in list(state.unresolved):
            doc = queue.read_result(fp)
            if doc is None:
                continue
            progressed = True
            state.unresolved.discard(fp)
            state.took_result = True
            attempts_doc = queue.attempts(fp)
            prior_failures = tuple(
                str(f) for f in attempts_doc.get("failures", ())
            )
            base_attempts = int(attempts_doc.get("attempts", 0))
            tasks = state.fp_tasks.get(fp, [])
            worker_obs = (
                doc.get("obs") if isinstance(doc.get("obs"), dict) else None
            )
            # Stamp the executing worker's identity onto its spans before
            # ingest so a multi-host Chrome trace can map each worker to
            # its own pid/tid row (see obs.export.chrome_trace).
            wid = doc.get("worker")
            if (
                worker_obs
                and isinstance(wid, str) and wid
                and isinstance(worker_obs.get("spans"), list)
            ):
                for span in worker_obs["spans"]:
                    if isinstance(span, dict):
                        span.setdefault("worker", wid)
            self._ingest_worker_obs(
                tasks[0] if tasks else None,  # type: ignore[arg-type]
                worker_obs,
            )
            for task in tasks:
                result = self._settle(
                    task, doc, base_attempts, prior_failures
                )
                state.results[task.key] = result
                if on_result is not None:
                    on_result(result)
                if result.outcome == "done":
                    self._emit(
                        "task-done", task,
                        f"attempts={result.attempts}",
                        attempts=result.attempts,
                        wall_seconds=result.wall_seconds,
                    )
                else:
                    self._emit(
                        "quarantined", task, result.error or "",
                        attempts=result.attempts,
                    )
                if _obs.METER.enabled:
                    _obs.TASKS.add(
                        1, backend=self.backend, outcome=result.outcome
                    )
                    _obs.TASK_SECONDS.observe(
                        result.wall_seconds, backend=self.backend
                    )
        return progressed

    def _settle(
        self,
        task: Task,
        doc: dict,
        base_attempts: int,
        failures: tuple[str, ...],
    ) -> TaskResult:
        wall = doc.get("wall_seconds")
        wall = float(wall) if isinstance(wall, (int, float)) else 0.0
        if "error" in doc:
            doc_failures = doc.get("failures")
            if isinstance(doc_failures, list) and doc_failures:
                failures = tuple(str(f) for f in doc_failures)
            else:
                failures = failures + (str(doc["error"]),)
            return TaskResult(
                task=task,
                outcome="quarantined",
                attempts=max(base_attempts, 1),
                error=str(doc["error"]),
                failures=failures,
                wall_seconds=wall,
            )
        worker_obs = doc.get("obs")
        return TaskResult(
            task=task,
            outcome="done",
            value=doc.get("result"),
            attempts=base_attempts + 1,
            failures=failures,
            wall_seconds=wall,
            worker_obs=worker_obs if isinstance(worker_obs, dict) else None,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_fleet(self._queue)
        self._queue = None


class _QueueRunState:
    """Mutable bookkeeping of one queue run."""

    def __init__(self, tasks: Sequence[Task]):
        self.fp_tasks: dict[str, list[Task]] = {}
        self.unresolved: set[str] = set()
        self.results: dict[Any, TaskResult] = {}
        self.claims = 0
        self.took_result = False
        self.breaker_reason: str | None = None
        self._stopped_tasks = list(tasks)

    def map_task(self, fp: str, task: Task) -> None:
        # Content-addressed dedup inside one run: identical (kind,
        # payload) under different keys executes once, every key gets
        # the result.
        self.fp_tasks.setdefault(fp, []).append(task)
        self.unresolved.add(fp)

    def settle_stopped(self) -> None:
        """Tasks still unresolved when the run stops end as ``stopped``."""
        for fp in self.unresolved:
            for task in self.fp_tasks.get(fp, []):
                if task.key not in self.results:
                    self.results[task.key] = TaskResult(
                        task=task, outcome="stopped"
                    )


__all__ = ["QueueExecutor"]

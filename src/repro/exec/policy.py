"""Composable resilience policies for the execution substrate.

:class:`RetryPolicy` and :class:`BreakerPolicy` are the retry/backoff and
circuit-breaker knobs that used to live inside ``campaign/runner.py``,
lifted out so any executor consumer (campaigns, parallel SPCF, future
distributed runs) shares one implementation.

Backoff jitter is **deterministic per (task, attempt)**: the RNG is seeded
from the task's content-addressed fingerprint, so a resumed or re-driven
run sleeps the same schedule without any shared mutable state.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ExecError
from repro.exec.task import Task


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded retries and deterministic jitter.

    ``max_retries`` is the number of *re*-tries after the first attempt;
    ``max_retries=0`` means exactly one attempt.  Delay before retry
    ``n`` (0-based) is ``min(cap, base * 2**n)`` stretched by up to
    ``jitter`` (a fraction) of itself.
    """

    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ExecError(f"max_retries {self.max_retries} must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ExecError("backoff base/cap must be >= 0")
        if self.backoff_jitter < 0:
            raise ExecError("backoff jitter must be >= 0")

    def delay(self, task: Task, attempt: int) -> float:
        """Seconds to sleep before re-running ``task`` after failed
        attempt number ``attempt`` (0-based)."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        seed_text = f"{task.fingerprint()}:backoff:{attempt}"
        seed = int.from_bytes(
            hashlib.sha256(seed_text.encode()).digest()[:8], "big"
        )
        rng = random.Random(seed)
        return delay * (1.0 + self.backoff_jitter * rng.random())


@dataclass(frozen=True)
class BreakerPolicy:
    """Abort dispatch after too many *consecutive* failed attempts.

    A long failure streak across tasks is the signature of a broken
    environment (full disk, missing interpreter, dead pool) rather than a
    run of individually-bad tasks; the breaker stops the spin instead of
    burning every task's retry budget.
    """

    max_consecutive_failures: int = 16

    def __post_init__(self) -> None:
        if self.max_consecutive_failures <= 0:
            raise ExecError("max_consecutive_failures must be positive")

    def trip_reason(self, consecutive: int, last_message: str) -> str | None:
        """The abort reason once the streak crosses the limit, else None."""
        if consecutive >= self.max_consecutive_failures:
            return (
                f"circuit breaker: {consecutive} consecutive "
                f"failed attempts (last: {last_message})"
            )
        return None


__all__ = ["RetryPolicy", "BreakerPolicy"]

"""Observability handles for the execution substrate.

One module owns the tracer and instruments so every backend agrees on
names and labels:

* ``repro_exec_tasks_total{backend, outcome}`` — tasks finished, by
  terminal outcome (``done`` / ``quarantined`` / ``stopped``),
* ``repro_exec_task_wall_seconds{backend}`` — wall seconds per finished
  task, including retries and backoff sleeps,
* ``repro_exec_respawns_total{backend, outcome}`` — worker subprocess
  respawns (``respawned``) and failed spawn attempts (``spawn-failed``),
* ``repro_exec_telemetry_drops_total{backend}`` — worker telemetry
  payloads dropped because they would not ingest (the task result is
  kept; only the spans/metrics are lost),
* the queue backend's protocol counters
  (``repro_exec_queue_{claims,steals,dedups,divergences}_total``) and the
  per-worker ``repro_exec_queue_heartbeat_age_seconds{worker}`` gauge,
* the live-telemetry digest the queue coordinator republishes from the
  tailed worker streams: ``repro_fleet_rate_tasks_per_second{worker}``,
  ``repro_fleet_eta_seconds``, ``repro_fleet_worker_straggler{worker}``,
  and ``repro_exec_flight_dumps_total{trigger}``.

All are published by the executor on the parent side regardless of
backend, so worker metric snapshots merge commutatively on top without
double-counting (workers never run an executor themselves).
"""

from __future__ import annotations

from repro import obs

TRACER = obs.get_tracer("exec")
METER = obs.get_meter()

TASKS = METER.counter(
    "repro_exec_tasks_total",
    "tasks finished by the execution substrate (labels: backend, outcome)",
)
TASK_SECONDS = METER.histogram(
    "repro_exec_task_wall_seconds",
    "wall seconds per finished task, retries and backoff included",
)
RESPAWNS = METER.counter(
    "repro_exec_respawns_total",
    "worker subprocess respawns (labels: backend, outcome = "
    "respawned / spawn-failed)",
)
TELEMETRY_DROPS = METER.counter(
    "repro_exec_telemetry_drops_total",
    "worker telemetry payloads that failed to ingest and were dropped "
    "(label: backend); the task result is unaffected",
)
QUEUE_CLAIMS = METER.counter(
    "repro_exec_queue_claims_total",
    "work-queue tasks claimed via atomic rename",
)
QUEUE_STEALS = METER.counter(
    "repro_exec_queue_steals_total",
    "expired leases reclaimed from dead or wedged workers "
    "(label: action = requeued / quarantined)",
)
QUEUE_DEDUPS = METER.counter(
    "repro_exec_queue_dedups_total",
    "duplicate completions absorbed by first-write-wins result dedup",
)
QUEUE_DIVERGENCES = METER.counter(
    "repro_exec_queue_divergences_total",
    "duplicate completions whose canonical result payload differed "
    "(determinism bug, surfaced not overwritten)",
)
QUEUE_HEARTBEAT_AGE = METER.gauge(
    "repro_exec_queue_heartbeat_age_seconds",
    "seconds since each queue worker's last heartbeat (label: worker)",
)
FLEET_RATE = METER.gauge(
    "repro_fleet_rate_tasks_per_second",
    "trailing-window task throughput (label: worker; unlabelled = fleet)",
)
FLEET_ETA = METER.gauge(
    "repro_fleet_eta_seconds",
    "estimated seconds to drain the queue at the current fleet rate",
)
FLEET_STRAGGLER = METER.gauge(
    "repro_fleet_worker_straggler",
    "1 when the worker's p90 wall exceeds 2x the fleet p90 (label: worker)",
)
FLIGHT_DUMPS = METER.counter(
    "repro_exec_flight_dumps_total",
    "flight-recorder dumps written (label: trigger = quarantine / "
    "breaker / crash)",
)

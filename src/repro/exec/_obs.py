"""Observability handles for the execution substrate.

One module owns the tracer and instruments so every backend agrees on
names and labels:

* ``repro_exec_tasks_total{backend, outcome}`` — tasks finished, by
  terminal outcome (``done`` / ``quarantined`` / ``stopped``),
* ``repro_exec_task_wall_seconds{backend}`` — wall seconds per finished
  task, including retries and backoff sleeps.

Both are published by the executor on the parent side regardless of
backend, so worker metric snapshots merge commutatively on top without
double-counting (workers never run an executor themselves).
"""

from __future__ import annotations

from repro import obs

TRACER = obs.get_tracer("exec")
METER = obs.get_meter()

TASKS = METER.counter(
    "repro_exec_tasks_total",
    "tasks finished by the execution substrate (labels: backend, outcome)",
)
TASK_SECONDS = METER.histogram(
    "repro_exec_task_wall_seconds",
    "wall seconds per finished task, retries and backoff included",
)

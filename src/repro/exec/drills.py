"""Built-in drill tasks for exercising the substrate.

``exec.probe`` is the test/CI workhorse: it can sleep, report its pid (so
tests can prove process isolation or worker reuse), echo a value, or raise
a deterministic error on demand.  Real failure injection — SIGKILL, hangs,
nonzero exits — goes through the worker protocol's ``sabotage`` directive
instead (see :mod:`repro.exec.worker`), because those must kill a *real*
process, not simulate one.
"""

from __future__ import annotations

import os
import time

from repro.errors import ExecError


def run_probe(payload: dict) -> dict:
    """Echo task: optional sleep, optional deterministic failure.

    Payload keys (all optional):

    * ``value`` — echoed back in the result,
    * ``sleep`` — seconds to sleep before answering,
    * ``raise`` — message; raises :class:`ExecError` (a deterministic,
      non-retryable failure) instead of answering.
    """
    if payload.get("raise"):
        raise ExecError(str(payload["raise"]))
    sleep = float(payload.get("sleep", 0.0))
    if sleep > 0:
        time.sleep(sleep)
    return {"value": payload.get("value"), "pid": os.getpid()}


__all__ = ["run_probe"]

"""Task-kind registry: the name -> runner-function indirection.

Tasks cross process boundaries as JSON, so a task cannot carry its code;
it carries a *kind* string that both sides resolve through this registry.
Entries are lazy ``"module:attr"`` references — registering a kind costs
nothing until a task of that kind actually runs, and the worker subprocess
imports only what its tasks need.

A kind may also name a *worker-span factory*: a function that, given the
payload and attempt number, returns ``(category, name, attrs)`` for the
span the subprocess worker opens around the runner call (e.g. the
campaign's ``campaign.worker_shard``).  Inline and thread backends do not
open worker spans — there is no worker process whose timeline needs
stitching.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Mapping

from repro.errors import ExecError

#: Runner signature: JSON payload in, JSON-serializable result out.
TaskFn = Callable[[dict], Any]
#: Worker-span factory: ``(payload, attempt) -> (category, name, attrs)``.
SpanFn = Callable[[dict, int], tuple[str, str, Mapping[str, Any]]]


@dataclass(frozen=True)
class TaskKind:
    """One registry entry: lazy references to runner and span factory."""

    runner: str
    span: str | None = None


_KINDS: dict[str, TaskKind] = {
    # Built-in kinds.  Values are import strings so this module stays free
    # of heavyweight imports; consumers register their own kinds at import
    # time via register_task_kind().
    "exec.probe": TaskKind(runner="repro.exec.drills:run_probe"),
    "campaign.shard": TaskKind(
        runner="repro.campaign.worker:run_shard_task",
        span="repro.campaign.worker:shard_task_span",
    ),
    "spcf.output": TaskKind(
        runner="repro.spcf.parallel:run_output_task",
        span="repro.spcf.parallel:output_task_span",
    ),
}


def register_task_kind(
    kind: str, runner: str, span: str | None = None, replace: bool = False
) -> None:
    """Register (or with ``replace=True`` override) a task kind.

    ``runner`` and ``span`` are ``"module:attr"`` import strings resolved
    on first use in whichever process runs the task.
    """
    if not kind:
        raise ExecError("task kind must be a non-empty string")
    if kind in _KINDS and not replace:
        raise ExecError(f"task kind {kind!r} is already registered")
    for ref in (runner, span):
        if ref is not None and ":" not in ref:
            raise ExecError(
                f"import reference {ref!r} must look like 'module:attr'"
            )
    _KINDS[kind] = TaskKind(runner=runner, span=span)


def registered_kinds() -> tuple[str, ...]:
    """All registered kind names, sorted."""
    return tuple(sorted(_KINDS))


def _import_ref(ref: str, kind: str) -> Any:
    module_name, _, attr = ref.partition(":")
    try:
        module = import_module(module_name)
        return getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ExecError(
            f"task kind {kind!r} resolves to unloadable {ref!r}: {exc}"
        ) from exc


def resolve(kind: str) -> TaskFn:
    """The runner function for ``kind`` (imports it on first use)."""
    entry = _KINDS.get(kind)
    if entry is None:
        raise ExecError(
            f"unknown task kind {kind!r}; registered: "
            f"{', '.join(registered_kinds())}"
        )
    fn = _import_ref(entry.runner, kind)
    if not callable(fn):
        raise ExecError(f"runner for task kind {kind!r} is not callable")
    return fn


def resolve_span(kind: str) -> SpanFn | None:
    """The worker-span factory for ``kind``, or None if it has none."""
    entry = _KINDS.get(kind)
    if entry is None or entry.span is None:
        return None
    fn = _import_ref(entry.span, kind)
    return fn if callable(fn) else None


__all__ = [
    "TaskKind",
    "TaskFn",
    "SpanFn",
    "register_task_kind",
    "registered_kinds",
    "resolve",
    "resolve_span",
]

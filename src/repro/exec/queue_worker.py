"""Elastic queue worker: ``python -m repro.exec.queue_worker QUEUE_DIR``.

Any number of these processes — started before, during, or after the
coordinator, on any host that mounts the queue directory — cooperate on
one :class:`~repro.exec.queuedir.WorkQueue`:

* **claim** a task by atomic rename, write a lease, and run it through
  the shared task-kind registry;
* **renew** the lease from a renewal thread while the task runs — but
  only up to ``task_timeout``, so a wedged runner's lease *must* expire
  and be stolen (the worker process itself keeps heartbeating: a wedged
  worker is alive-but-leaseless, a dead one goes silent);
* **publish** the result first-write-wins (a stolen-but-slow worker's
  duplicate completion deduplicates by fingerprint);
* **steal** expired leases from dead or wedged peers while otherwise
  idle, requeueing (or quarantining, over budget) their tasks;
* **stop** on the queue's stop marker, on an idle timeout, or when its
  own consecutive-failure breaker trips (a worker whose environment
  keeps breaking takes itself out rather than eat the queue).

Deterministic runner errors (:data:`~repro.exec.protocol
.DETERMINISTIC_ERRORS`) are *results*: published as an error document
that quarantines the task everywhere at once, costing no retry budget.
Unexpected exceptions are environmental: the worker requeues its own
claim (bumping the shared attempt budget) and counts a breaker strike.

Observability crosses the queue with the same **delta semantics** as the
stdio worker protocol: when ``REPRO_OBS`` is on, each result document
carries the spans and metric increments recorded since the previous
publication, and the registry is reset after every publish.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Any, Callable

from repro import obs
from repro.obs.timeseries import FLIGHT_SUFFIX
from repro.exec.protocol import DETERMINISTIC_ERRORS, apply_sabotage
from repro.exec.queuedir import (
    QUEUE_SCHEMA,
    QueuePolicy,
    WorkQueue,
    worker_identity,
)
from repro.exec.registry import resolve, resolve_span

#: Exit codes of the worker process.
EXIT_DONE = 0        #: stop marker seen or idle timeout reached
EXIT_BREAKER = 3     #: the worker's own consecutive-failure breaker tripped


class QueueWorker:
    """One worker's claim/execute/publish loop over a shared queue."""

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: str | None = None,
        task_timeout: float = 300.0,
        max_consecutive_failures: int = 16,
        idle_exit: float | None = None,
        echo: Callable[[str], None] | None = None,
    ):
        self.queue = queue
        self.worker_id = worker_id or worker_identity()
        self.task_timeout = task_timeout
        self.max_consecutive_failures = max_consecutive_failures
        self.idle_exit = idle_exit
        self.echo = echo
        self.tasks_done = 0
        self.failures = 0
        self._consecutive = 0
        self._current: str | None = None
        self._stopping = threading.Event()
        self._log = obs.get_logger("exec.queue_worker")
        # Live telemetry plane (only when REPRO_OBS is on): delta-encoded
        # metric flushes on the heartbeat cadence, plus a flight-recorder
        # ring persisted alongside them so a SIGKILLed worker's last
        # in-flight task survives for the post-mortem.
        self._telemetry: obs.TelemetryWriter | None = None
        self._flight: obs.FlightRecorder | None = None
        if obs.enabled():
            self._telemetry = obs.TelemetryWriter(
                queue.root / "telemetry", self.worker_id
            )
            self._flight = obs.install_flight_recorder(
                obs.FlightRecorder(worker=self.worker_id)
            )
            self._telemetry.flight = self._flight

    # -------------------------------------------------------------- logging

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(f"[{self.worker_id}] {message}")

    def _heartbeat(self, state: str) -> None:
        self.queue.write_heartbeat(
            self.worker_id,
            state,
            tasks_done=self.tasks_done,
            failures=self.failures,
            current=self._current,
        )

    def _heartbeat_loop(self) -> None:
        interval = self.queue.policy.heartbeat_interval
        while not self._stopping.wait(interval):
            self._heartbeat("busy" if self._current else "idle")
            self._flush_telemetry()

    # ----------------------------------------------------------- telemetry

    def _dump_flight(self, trigger: str) -> None:
        """Persist the flight ring next to the telemetry stream."""
        if self._flight is None:
            return
        try:
            self._flight.dump_to(
                self.queue.root / "telemetry"
                / f"{self.worker_id}{FLIGHT_SUFFIX}",
                trigger=trigger,
            )
        except OSError:  # telemetry must never kill the worker
            pass

    def _flush_telemetry(self, trigger: str = "heartbeat") -> None:
        """Append a delta record and refresh the on-disk flight dump."""
        if self._telemetry is None:
            return
        try:
            self._telemetry.flush()
        except OSError:
            return
        self._dump_flight(trigger)

    # ------------------------------------------------------------ execution

    def _renewal_loop(self, fp: str, started: float) -> None:
        """Renew the task's lease until it finishes or times out.

        Stopping renewal at ``task_timeout`` is the wedge detector: a
        runner stuck past its budget loses the lease to a thief while
        this process (and its heartbeat) stay alive.
        """
        interval = self.queue.policy.heartbeat_interval
        while not self._stopping.wait(interval):
            if self._current != fp:
                return
            if time.monotonic() - started > self.task_timeout:
                self._say(f"task {fp[:12]} past {self.task_timeout:g}s; "
                          "ceasing lease renewal (lease will be stolen)")
                return
            if not self.queue.renew_lease(fp, self.worker_id):
                return  # stolen: finish anyway, dedup absorbs the result

    def _run_claimed(self, fp: str, doc: dict) -> None:
        queue = self.queue
        self._current = fp
        self._heartbeat("busy")
        queue.log_event(self.worker_id, "claimed", fingerprint=fp,
                        attempt=queue.attempts(fp).get("attempts", 0))
        if self._telemetry is not None:
            self._telemetry.set_current(fp)
            self._log.info("task.claimed", fingerprint=fp,
                           task_kind=doc.get("kind"))
            # Flush now so the claim (and its correlation id) is already
            # on disk if this task kills the process.
            self._flush_telemetry()
        started = time.monotonic()
        renewer = threading.Thread(
            target=self._renewal_loop, args=(fp, started),
            name=f"lease-renew-{fp[:8]}", daemon=True,
        )
        renewer.start()
        try:
            # Fault drill (testing only): may SIGKILL this process
            # mid-lease, wedge it in a sleep while the lease is renewed,
            # or exit nonzero — exactly the failure modes the protocol
            # must absorb.
            attempt = queue.attempts(fp).get("attempts", 0)
            apply_sabotage(queue.sabotage_for(fp), attempt)
            result_doc = self._execute(fp, doc, attempt)
        except DETERMINISTIC_ERRORS as exc:
            # The *task* is broken, not the environment: a quarantine
            # result settles it everywhere at once.
            result_doc = {
                "schema": QUEUE_SCHEMA,
                "fingerprint": fp,
                "kind": doc.get("kind"),
                "worker": self.worker_id,
                "attempt": queue.attempts(fp).get("attempts", 0),
                "error": f"{type(exc).__name__}: {exc}",
                "quarantine": True,
            }
        except Exception as exc:  # noqa: BLE001 - environmental failure
            self.failures += 1
            self._consecutive += 1
            reason = f"{type(exc).__name__}: {exc} (worker {self.worker_id})"
            action = queue.reclaim(
                fp, self.worker_id, queue.policy.max_attempts, reason
            )
            queue.log_event(
                self.worker_id, "attempt-failed", fingerprint=fp,
                reason=reason, action=action or "lost-race",
            )
            self._log.warning("task.attempt_failed", fingerprint=fp,
                              reason=reason, action=action or "lost-race")
            self._say(f"task {fp[:12]} failed: {reason} -> {action}")
            self._current = None
            if self._telemetry is not None:
                self._telemetry.set_current(None)
            self._heartbeat("idle")
            return
        state = queue.publish_result(fp, result_doc)
        queue.release(fp, self.worker_id)
        if "error" in result_doc:
            queue.log_event(self.worker_id, "quarantined", fingerprint=fp,
                            error=result_doc["error"])
            self._log.error("task.quarantined", fingerprint=fp,
                            error=result_doc["error"])
            self._dump_flight("quarantine")
        elif state == "published":
            self.tasks_done += 1
            queue.log_event(
                self.worker_id, "done", fingerprint=fp,
                wall_seconds=result_doc.get("wall_seconds", 0.0),
            )
            self._log.info("task.done", fingerprint=fp,
                           wall_seconds=result_doc.get("wall_seconds", 0.0))
        elif state == "duplicate":
            queue.log_event(self.worker_id, "dedup", fingerprint=fp)
        else:  # divergent: surfaced loudly, first result stays canonical
            queue.log_event(self.worker_id, "result-divergence",
                            fingerprint=fp)
            self._say(f"task {fp[:12]} produced a DIVERGENT duplicate "
                      "result; keeping the first publication")
        self._consecutive = 0
        self._current = None
        if self._telemetry is not None:
            self._telemetry.set_current(None)
        # Immediate heartbeat so status views never mistake a finished
        # worker (current task settled, lease released) for a wedged one.
        self._heartbeat("idle")

    def _execute(self, fp: str, doc: dict, attempt: int) -> dict:
        kind = doc.get("kind")
        payload = doc.get("payload")
        if not isinstance(kind, str) or not isinstance(payload, dict):
            raise ValueError(f"task document {fp[:12]} is malformed")
        runner = resolve(kind)
        span_fn = resolve_span(kind)
        started = time.perf_counter()
        if span_fn is not None:
            category, name, attrs = span_fn(payload, attempt)
            with obs.get_tracer(category).span(name, **dict(attrs)):
                result = runner(payload)
        else:
            result = runner(payload)
        wall = time.perf_counter() - started
        result_doc: dict[str, Any] = {
            "schema": QUEUE_SCHEMA,
            "fingerprint": fp,
            "kind": kind,
            "worker": self.worker_id,
            "attempt": attempt,
            "result": result,
            "wall_seconds": round(wall, 6),
        }
        if obs.enabled():
            result_doc["obs"] = {
                "wall_seconds": round(wall, 6),
                "spans": obs.span_records(),
                "metrics": obs.metrics_snapshot(),
            }
            # Flush the telemetry stream *before* the reset so the delta
            # record carries this task's increments, then re-base the
            # writer so nothing is counted twice.
            if self._telemetry is not None:
                self._telemetry.note_task(wall)
                self._flush_telemetry()
            # Delta semantics: the next publication must carry only what
            # the next task records.
            obs.reset()
            obs.configure(enabled=True)
            if self._telemetry is not None:
                self._telemetry.mark_reset()
        return result_doc

    # ------------------------------------------------------------- main loop

    def run(self) -> int:
        """Serve the queue until stop/idle/breaker; returns the exit code."""
        queue = self.queue
        self._heartbeat("idle")
        heart = threading.Thread(
            target=self._heartbeat_loop, name="queue-heartbeat", daemon=True
        )
        heart.start()
        self._say(f"joined queue {queue.root}")
        idle_since = time.monotonic()
        exit_code = EXIT_DONE
        try:
            while True:
                if queue.stopped():
                    self._say("stop marker seen; leaving")
                    break
                if self._consecutive >= self.max_consecutive_failures:
                    queue.log_event(
                        self.worker_id, "breaker",
                        consecutive=self._consecutive,
                    )
                    self._log.error("worker.breaker",
                                    consecutive=self._consecutive)
                    self._dump_flight("breaker")
                    self._say(
                        f"breaker tripped after {self._consecutive} "
                        "consecutive failures; leaving"
                    )
                    exit_code = EXIT_BREAKER
                    break
                claimed = False
                for fp in queue.todo_fingerprints():
                    got = queue.try_claim(
                        fp, self.worker_id,
                        queue.attempts(fp).get("attempts", 0),
                    )
                    if got is not None:
                        # The task fingerprint is the correlation id:
                        # every span, log record, and metric delta of
                        # this claim joins on it.
                        with obs.correlation(fp):
                            self._run_claimed(fp, got)
                        claimed = True
                        break  # re-check stop/breaker between tasks
                if claimed:
                    idle_since = time.monotonic()
                    continue
                # Idle: play reaper for dead/wedged peers.
                for fp, action, reason in queue.reclaim_expired(
                    self.worker_id
                ):
                    queue.log_event(
                        self.worker_id, "stolen", fingerprint=fp,
                        action=action, reason=reason,
                    )
                    self._say(f"stole {fp[:12]} ({action}): {reason}")
                    idle_since = time.monotonic()
                if (
                    self.idle_exit is not None
                    and time.monotonic() - idle_since > self.idle_exit
                ):
                    self._say(f"idle for {self.idle_exit:g}s; leaving")
                    break
                time.sleep(queue.policy.poll_interval)
        finally:
            self._stopping.set()
            self._log.info("worker.exit", tasks_done=self.tasks_done,
                           failures=self.failures, code=exit_code)
            self._flush_telemetry("exit")
            self._heartbeat("exited")
            self.queue.log_event(
                self.worker_id, "worker-exit",
                tasks_done=self.tasks_done, failures=self.failures,
                code=exit_code,
            )
        return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exec.queue_worker",
        description="elastic work-queue worker (join/leave at any time)",
    )
    parser.add_argument("queue_dir", help="shared work-queue directory")
    parser.add_argument("--worker-id", default=None,
                        help="override the generated worker identity")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-task wall budget before lease renewal "
                        "stops (wedge detector)")
    parser.add_argument("--max-failures", type=int, default=16,
                        help="consecutive environmental failures before "
                        "this worker removes itself")
    parser.add_argument("--idle-exit", type=float, default=None,
                        help="exit after this many idle seconds "
                        "(default: wait for the stop marker)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-task log lines on stderr")
    args = parser.parse_args(argv)
    queue = WorkQueue.open(args.queue_dir)
    worker = QueueWorker(
        queue,
        worker_id=args.worker_id,
        task_timeout=args.timeout,
        max_consecutive_failures=args.max_failures,
        idle_exit=args.idle_exit,
        echo=None if args.quiet else (
            lambda line: print(line, file=sys.stderr, flush=True)
        ),
    )
    return worker.run()


__all__ = [
    "EXIT_BREAKER",
    "EXIT_DONE",
    "QueuePolicy",
    "QueueWorker",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())

"""Work units of the execution substrate.

A :class:`Task` is a self-describing, JSON-serializable unit of work: a
registered *kind* (see :mod:`repro.exec.registry`) plus the payload its
runner function receives.  Because the payload must survive the
JSON-over-stdio worker protocol unchanged, a task is also
**content-addressed**: :meth:`Task.fingerprint` hashes the canonical JSON
of ``(kind, payload)``, so two tasks with equal fingerprints are the same
computation — the identity that deterministic retry jitter, journals, and
caches key on.

Display/telemetry hints (``span_name`` and friends) are deliberately
*excluded* from the fingerprint: how a task is traced must never change
what it is.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

from repro.errors import ExecError


def canonical_json(data: Any) -> str:
    """Stable JSON rendering (sorted keys, no whitespace) for hashing."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Task:
    """One unit of work for an :class:`~repro.exec.Executor`.

    Parameters
    ----------
    kind:
        Registered task kind; resolves to a runner function on whichever
        side (inline, thread, or worker subprocess) executes the task.
    payload:
        JSON-serializable mapping handed to the runner function.
    key:
        Caller-chosen identifier, unique within one ``Executor.run`` call;
        results are reported back under it.
    span_name / span_category / span_attrs:
        Optional tracing hints: when set, the executor wraps the task's
        whole retry loop in a span of this name (category = tracer
        subsystem), with ``outcome``/``attempts`` set at completion.
    attempt_attrs:
        Extra attributes for the per-attempt spans (e.g. ``{"shard": 3}``).
    """

    kind: str
    payload: Mapping[str, Any]
    key: int | str
    span_name: str | None = None
    span_category: str = "exec"
    span_attrs: Mapping[str, Any] = field(default_factory=dict)
    attempt_attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ExecError("task kind must be a non-empty string")

    def fingerprint(self) -> str:
        """SHA-256 of the canonical ``(kind, payload)`` JSON."""
        try:
            text = canonical_json([self.kind, dict(self.payload)])
        except (TypeError, ValueError) as exc:
            raise ExecError(
                f"task payload for kind {self.kind!r} is not "
                f"JSON-serializable: {exc}"
            ) from exc
        return hashlib.sha256(text.encode()).hexdigest()

    @cached_property
    def payload_json(self) -> str:
        """The payload's wire encoding, computed once per task.

        Large payloads (a circuit document per SPCF output task) are sent
        on every attempt; caching the encoding turns the per-attempt cost
        into a string splice.
        """
        try:
            return json.dumps(dict(self.payload))
        except (TypeError, ValueError) as exc:
            raise ExecError(
                f"task payload for kind {self.kind!r} is not "
                f"JSON-serializable: {exc}"
            ) from exc


@dataclass
class TaskResult:
    """Terminal state of one task after its retry loop.

    ``outcome`` is one of

    * ``"done"`` — the runner returned; ``value`` holds its result,
    * ``"quarantined"`` — every attempt failed (or the failure was
      deterministic); ``error`` holds the last failure message,
    * ``"stopped"`` — the executor's circuit breaker tripped before the
      task could finish; the task was *not* run to completion and is
      neither a success nor a quarantine.

    ``attempts`` counts attempts actually started; ``wall_seconds`` spans
    the whole retry loop including backoff sleeps.  ``worker_obs`` is the
    raw telemetry payload shipped back by a subprocess worker (``None``
    for inline/thread execution or when observability is off).
    """

    task: Task
    outcome: str
    value: Any = None
    attempts: int = 0
    error: str | None = None
    failures: tuple[str, ...] = ()
    wall_seconds: float = 0.0
    worker_obs: dict | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == "done"


__all__ = ["Task", "TaskResult", "canonical_json"]

"""Pluggable executors: one retry/quarantine/breaker loop, three backends.

:class:`Executor` owns the whole resilience story that used to be welded
into the campaign runner — per-task retry with deterministic backoff
(:class:`~repro.exec.policy.RetryPolicy`), quarantine of tasks that
exhaust their budget, and a run-wide circuit breaker
(:class:`~repro.exec.policy.BreakerPolicy`).  Backends differ only in how
one *attempt* runs:

========== ===================== ========== ======== =================
backend    attempt runs in       isolation  timeout  sabotage drills
========== ===================== ========== ======== =================
inline     the calling thread    none       no       no
thread     a dispatch thread     none       no       no
process    a persistent worker   full       yes      yes
           subprocess
queue      any elastic worker    full +     yes      yes
           on the shared queue   multi-host (lease)
========== ===================== ========== ======== =================

The queue backend (:class:`~repro.exec.queue_executor.QueueExecutor`)
lives in its own module: it replaces the in-process retry loop with the
shared-directory lease/steal protocol of :mod:`repro.exec.queuedir`.

The process backend generalizes the campaign's single-shot JSON-over-stdio
worker into a **persistent pool**: each dispatch thread owns one
``python -m repro.exec.worker`` subprocess and feeds it request lines,
so interpreter startup is paid once per worker, not once per task, and
worker-side caches survive across tasks.  A worker that crashes, hangs
past ``task_timeout``, or is sabotaged is killed and respawned; the
failure costs one attempt, never the run.

Worker telemetry (spans + metric deltas) is ingested/merged into the
parent's registry here, at attempt completion — consumers receive the raw
payload on :attr:`TaskResult.worker_obs` for journaling but must not merge
it again.
"""

from __future__ import annotations

import json
import os
import queue
import select
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import repro
from repro import obs
from repro.errors import ExecError
from repro.exec import _obs
from repro.exec.policy import BreakerPolicy, RetryPolicy
from repro.exec.registry import resolve
from repro.exec.protocol import DETERMINISTIC_ERRORS, EXEC_SCHEMA
from repro.exec.task import Task, TaskResult

#: Event callback: ``events(event, task, message, info)`` with events
#: ``attempt-started`` / ``attempt-failed`` / ``retry`` / ``task-done`` /
#: ``quarantined`` / ``breaker``.
EventFn = Callable[[str, Task, str, dict], None]

#: Result callback, invoked once per *settled* task (done or quarantined),
#: in completion order, from dispatch threads.
ResultFn = Callable[[TaskResult], None]


def available_backends() -> tuple[str, ...]:
    """Names of the executor backends this build offers."""
    return ("inline", "thread", "process", "queue")


def default_worker_count() -> int:
    """Default process-pool size: the machine's cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def validated_jobs(jobs: int) -> int:
    """Eager validation of a ``--jobs``/worker count.

    Rejects negatives up front (instead of failing deep inside pool
    startup); ``0`` uniformly selects the inline backend.
    """
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ExecError(f"worker count {jobs!r} must be an integer") from None
    if jobs < 0:
        raise ExecError(f"worker count {jobs} must be >= 0 (0 = inline)")
    return jobs


class TaskAttemptError(Exception):
    """One attempt failed.  ``retryable`` marks environmental causes."""

    def __init__(self, message: str, retryable: bool = True):
        super().__init__(message)
        self.retryable = retryable


@dataclass
class ExecReport:
    """What one :meth:`Executor.run` call produced."""

    results: dict[Any, TaskResult] = field(default_factory=dict)
    attempts: int = 0
    wall_seconds: float = 0.0
    breaker_reason: str | None = None

    @property
    def done(self) -> dict[Any, TaskResult]:
        return {k: r for k, r in self.results.items() if r.outcome == "done"}

    @property
    def quarantined(self) -> dict[Any, TaskResult]:
        return {
            k: r for k, r in self.results.items()
            if r.outcome == "quarantined"
        }

    @property
    def complete(self) -> bool:
        return all(r.outcome == "done" for r in self.results.values())


class _RunState:
    """Mutable state shared by the dispatch threads of one run."""

    def __init__(self, breaker: BreakerPolicy):
        self.breaker = breaker
        self.stop = threading.Event()
        self.breaker_reason: str | None = None
        self.attempts = 0
        self.results: dict[Any, TaskResult] = {}
        self.lock = threading.Lock()
        self._consecutive = 0

    def note_failure(self, message: str) -> bool:
        """Record a failed attempt; True if this one tripped the breaker."""
        with self.lock:
            self.attempts += 1
            self._consecutive += 1
            if not self.stop.is_set():
                reason = self.breaker.trip_reason(self._consecutive, message)
                if reason is not None:
                    self.breaker_reason = reason
                    self.stop.set()
                    return True
        return False

    def note_success(self) -> None:
        with self.lock:
            self.attempts += 1
            self._consecutive = 0


class Executor:
    """Base class: the retry/quarantine/breaker loop over abstract attempts.

    Subclasses implement :meth:`_attempt` (run one attempt, return
    ``(value, worker_obs)`` or raise :class:`TaskAttemptError`) and declare
    their ``backend`` name and parallelism.
    """

    backend = "abstract"

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        task_timeout: float = 300.0,
        events: EventFn | None = None,
        parent_span_id: int | None = None,
    ):
        if task_timeout <= 0:
            raise ExecError(f"task_timeout {task_timeout} must be positive")
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or BreakerPolicy()
        self.task_timeout = task_timeout
        self.events = events
        #: Parent span id for per-task spans (dispatch threads cannot rely
        #: on implicit nesting).  Settable between runs.
        self.parent_span_id = parent_span_id

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release backend resources (worker subprocesses)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- plumbing

    @property
    def parallelism(self) -> int:
        return 1

    def _emit(self, event: str, task: Task, message: str, **info: Any) -> None:
        if self.events is not None:
            self.events(event, task, message, info)

    def _sabotage_for(self, task: Task) -> dict | None:
        return None

    def _ingest_worker_obs(self, task: Task, worker_obs: dict | None) -> None:
        """Merge a worker's telemetry payload into the parent registry.

        Degrades gracefully: a worker emitting malformed spans or metrics
        must never fail a task that computed fine, so *any* ingest error
        is swallowed, counted (``repro_exec_telemetry_drops_total``), and
        surfaced as a ``telemetry-drop`` event instead.
        """
        if not worker_obs:
            return
        try:
            spans = worker_obs.get("spans")
            if spans:
                obs.ingest_spans(spans)
            metrics = worker_obs.get("metrics")
            if metrics:
                obs.merge_metrics(metrics)
        except Exception as exc:  # noqa: BLE001 - telemetry is best-effort
            if _obs.METER.enabled:
                _obs.TELEMETRY_DROPS.add(1, backend=self.backend)
            self._emit(
                "telemetry-drop", task,
                f"worker telemetry dropped: {type(exc).__name__}: {exc}",
            )

    def _attempt(
        self, slot: int, task: Task, attempt: int
    ) -> tuple[Any, dict | None]:
        raise NotImplementedError

    def _run_inline_attempt(self, task: Task) -> Any:
        """Shared inline/thread attempt: resolve and call the runner."""
        runner = resolve(task.kind)
        try:
            return runner(dict(task.payload))
        except DETERMINISTIC_ERRORS as exc:
            raise TaskAttemptError(
                f"{type(exc).__name__}: {exc}", retryable=False
            ) from exc

    # ------------------------------------------------------------- the loop

    def _run_task(
        self,
        slot: int,
        task: Task,
        state: _RunState,
        on_result: ResultFn | None,
    ) -> None:
        tracer = obs.get_tracer(task.span_category)
        span_name = task.span_name or "exec.task"
        with tracer.span(
            span_name, parent_id=self.parent_span_id, **dict(task.span_attrs)
        ) as task_span:
            started = time.perf_counter()
            failures: list[str] = []
            attempt = 0
            worker_obs: dict | None = None
            while attempt <= self.retry.max_retries:
                if state.stop.is_set():
                    task_span.set(outcome="stopped")
                    result = TaskResult(
                        task=task,
                        outcome="stopped",
                        attempts=len(failures),
                        failures=tuple(failures),
                        wall_seconds=time.perf_counter() - started,
                    )
                    with state.lock:
                        state.results[task.key] = result
                    if _obs.METER.enabled:
                        _obs.TASKS.add(1, backend=self.backend, outcome="stopped")
                    return
                self._emit("attempt-started", task, f"attempt {attempt + 1}")
                try:
                    with _obs.TRACER.span(
                        "exec.attempt",
                        kind=task.kind,
                        attempt=attempt,
                        **dict(task.attempt_attrs),
                    ):
                        value, worker_obs = self._attempt(slot, task, attempt)
                except TaskAttemptError as exc:
                    failures.append(str(exc))
                    tripped = state.note_failure(str(exc))
                    if tripped:
                        self._emit(
                            "breaker", task, state.breaker_reason or str(exc)
                        )
                    self._emit(
                        "attempt-failed", task,
                        f"attempt {attempt + 1}: {exc}",
                        retryable=exc.retryable, attempt=attempt,
                    )
                    if not exc.retryable:
                        break
                    attempt += 1
                    if attempt <= self.retry.max_retries and not state.stop.is_set():
                        self._emit("retry", task, f"attempt {attempt + 1} next")
                        time.sleep(self.retry.delay(task, attempt - 1))
                    continue
                state.note_success()
                wall = time.perf_counter() - started
                result = TaskResult(
                    task=task,
                    outcome="done",
                    value=value,
                    attempts=attempt + 1,
                    failures=tuple(failures),
                    wall_seconds=wall,
                    worker_obs=worker_obs,
                )
                with state.lock:
                    state.results[task.key] = result
                if on_result is not None:
                    on_result(result)
                self._emit(
                    "task-done", task, f"attempts={attempt + 1}",
                    attempts=attempt + 1, wall_seconds=wall,
                )
                if _obs.METER.enabled:
                    _obs.TASKS.add(1, backend=self.backend, outcome="done")
                    _obs.TASK_SECONDS.observe(wall, backend=self.backend)
                task_span.set(outcome="done", attempts=attempt + 1)
                return
            error = failures[-1] if failures else "no attempt made"
            wall = time.perf_counter() - started
            result = TaskResult(
                task=task,
                outcome="quarantined",
                attempts=len(failures),
                error=error,
                failures=tuple(failures),
                wall_seconds=wall,
            )
            with state.lock:
                state.results[task.key] = result
            if on_result is not None:
                on_result(result)
            self._emit("quarantined", task, error, attempts=len(failures))
            if _obs.METER.enabled:
                _obs.TASKS.add(1, backend=self.backend, outcome="quarantined")
                _obs.TASK_SECONDS.observe(wall, backend=self.backend)
            task_span.set(outcome="quarantined", attempts=len(failures))

    def run(
        self,
        tasks: Sequence[Task],
        on_result: ResultFn | None = None,
        sabotage: Mapping[Any, dict] | None = None,
    ) -> ExecReport:
        """Run every task to a terminal outcome; never raises for task
        failures (only for misuse/misconfiguration)."""
        if sabotage:
            raise ExecError(
                f"sabotage drills require the process backend, "
                f"not {self.backend!r}"
            )
        return self._run(list(tasks), on_result)

    def _run(self, tasks: list[Task], on_result: ResultFn | None) -> ExecReport:
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            raise ExecError("task keys must be unique within one run")
        state = _RunState(self.breaker)
        started = time.monotonic()
        width = min(self.parallelism, len(tasks))
        if width <= 1:
            for task in tasks:
                if state.stop.is_set():
                    break
                self._run_task(0, task, state, on_result)
        else:
            work: queue.SimpleQueue[Task] = queue.SimpleQueue()
            for task in tasks:
                work.put(task)

            def loop(slot: int) -> None:
                while not state.stop.is_set():
                    try:
                        task = work.get_nowait()
                    except queue.Empty:
                        return
                    self._run_task(slot, task, state, on_result)

            threads = [
                threading.Thread(
                    target=loop, args=(i,), name=f"exec-{self.backend}-{i}"
                )
                for i in range(width)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return ExecReport(
            results=state.results,
            attempts=state.attempts,
            wall_seconds=time.monotonic() - started,
            breaker_reason=state.breaker_reason,
        )


class InlineExecutor(Executor):
    """Run tasks in the calling thread: no isolation, no timeout, fastest.

    The uniform meaning of ``workers=0``/``--jobs 0`` everywhere.
    """

    backend = "inline"

    def _attempt(
        self, slot: int, task: Task, attempt: int
    ) -> tuple[Any, dict | None]:
        return self._run_inline_attempt(task), None


class ThreadExecutor(Executor):
    """Run tasks on a small thread pool (in-process, GIL-bound).

    Useful for I/O-heavy runners and for exercising the dispatch machinery
    without subprocess cost; CPU-bound BDD work should use the process
    backend.
    """

    backend = "thread"

    def __init__(self, workers: int = 2, **kwargs: Any):
        super().__init__(**kwargs)
        if workers < 1:
            raise ExecError(f"thread executor needs workers >= 1, got {workers}")
        self.workers = workers

    @property
    def parallelism(self) -> int:
        return self.workers

    def _attempt(
        self, slot: int, task: Task, attempt: int
    ) -> tuple[Any, dict | None]:
        return self._run_inline_attempt(task), None


def _child_env() -> dict[str, str]:
    """Environment for worker subprocesses; guarantees ``repro`` imports
    and propagates the parent's observability state."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    if obs.enabled():
        env[obs.ENV_VAR] = "1"
    else:
        env.pop(obs.ENV_VAR, None)
    return env


class _WorkerHandle:
    """One persistent worker subprocess with line-based request/response."""

    def __init__(self) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=_child_env(),
        )
        self._buf = b""
        self._stderr_tail: deque[str] = deque(maxlen=50)
        self._drain = threading.Thread(
            target=self._drain_stderr, daemon=True,
            name=f"exec-stderr-{self.proc.pid}",
        )
        self._drain.start()

    def _drain_stderr(self) -> None:
        stream = self.proc.stderr
        assert stream is not None
        for raw in stream:
            try:
                self._stderr_tail.append(raw.decode("utf-8", "replace"))
            except Exception:  # pragma: no cover - drain must never raise
                return

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stderr_tail(self) -> str:
        for line in reversed(self._stderr_tail):
            if line.strip():
                return line.strip()
        return ""

    def send(self, request: dict) -> None:
        self.send_line(json.dumps(request) + "\n")

    def send_line(self, line: str) -> None:
        assert self.proc.stdin is not None
        self.proc.stdin.write(line.encode())
        self.proc.stdin.flush()

    def read_line(self, timeout: float) -> bytes | None:
        """One response line within ``timeout`` seconds.

        Returns ``None`` on EOF (worker died); raises
        :class:`TimeoutError` when the deadline expires.
        """
        stdout = self.proc.stdout
        assert stdout is not None
        fd = stdout.fileno()
        deadline = time.monotonic() + timeout
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = self._buf[:newline]
                self._buf = self._buf[newline + 1:]
                return line
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError
            ready, _, _ = select.select([fd], [], [], min(remaining, 0.5))
            if not ready:
                continue
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                return None
            self._buf += chunk

    def kill(self) -> int:
        """Kill the worker (if alive) and reap it; returns the exit code."""
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass
        self._close_pipes()
        return self.proc.returncode if self.proc.returncode is not None else 0

    def shutdown(self, grace: float = 1.0) -> None:
        """Polite close: EOF on stdin, brief wait, then kill."""
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)
        self._close_pipes()

    def _close_pipes(self) -> None:
        for stream in (self.proc.stdin, self.proc.stdout, self.proc.stderr):
            try:
                if stream is not None:
                    stream.close()
            except OSError:  # pragma: no cover - defensive
                pass


class ProcessPoolExecutor(Executor):
    """A pool of persistent worker subprocesses, one per dispatch thread.

    Full crash isolation with per-attempt timeouts: a worker that dies,
    wedges, or answers garbage is killed and respawned, costing one
    attempt.  Sabotage drills are supported (and only here — they must
    kill a real process).
    """

    backend = "process"

    def __init__(self, workers: int = 2, **kwargs: Any):
        super().__init__(**kwargs)
        if workers < 1:
            raise ExecError(
                f"process executor needs workers >= 1, got {workers}; "
                "use InlineExecutor for in-process runs"
            )
        self.workers = workers
        self._handles: list[_WorkerHandle | None] = [None] * workers
        # Consecutive respawns per slot since the last healthy attempt;
        # drives the exponential respawn backoff and resets on success.
        self._respawns: list[int] = [0] * workers
        # Slots whose worker was discarded mid-attempt and needs a
        # (metered, backed-off) respawn on next use.
        self._respawn_pending: list[bool] = [False] * workers
        self._sabotage: dict[Any, dict] = {}
        self._closed = False

    @property
    def parallelism(self) -> int:
        return self.workers

    def run(
        self,
        tasks: Sequence[Task],
        on_result: ResultFn | None = None,
        sabotage: Mapping[Any, dict] | None = None,
    ) -> ExecReport:
        if self._closed:
            raise ExecError("executor is closed")
        self._sabotage = dict(sabotage or {})
        try:
            return self._run(list(tasks), on_result)
        finally:
            self._sabotage = {}

    def _sabotage_for(self, task: Task) -> dict | None:
        return self._sabotage.get(task.key)

    def _respawn_delay(self, slot: int) -> float:
        """Exponential backoff before respawn attempt N on this slot.

        Reuses the retry policy's base/cap so tests with zero-backoff
        policies stay fast; without it, a persistently failing spawn
        (bad interpreter, ENOMEM) would burn the whole retry budget in a
        tight loop.
        """
        n = self._respawns[slot]
        if n <= 0:
            return 0.0
        return min(
            self.retry.backoff_cap,
            self.retry.backoff_base * (2.0 ** (n - 1)),
        )

    def _worker(self, slot: int) -> _WorkerHandle:
        handle = self._handles[slot]
        if handle is not None and handle.alive():
            return handle
        # Respawning covers both a corpse discovered here and a worker
        # already discarded mid-attempt (crash, timeout, garbled pipe).
        respawning = handle is not None or self._respawn_pending[slot]
        self._respawn_pending[slot] = False
        if handle is not None:
            handle.kill()
            self._handles[slot] = None
        if respawning or self._respawns[slot]:
            delay = self._respawn_delay(slot)
            if delay > 0:
                time.sleep(delay)
        try:
            handle = _WorkerHandle()
        except OSError as exc:
            # Spawning itself failed (exec error, fd/memory exhaustion).
            # Costs one attempt like any environmental failure — with the
            # backoff above between attempts — instead of killing the
            # dispatch thread.
            self._respawns[slot] += 1
            if _obs.METER.enabled:
                _obs.RESPAWNS.add(
                    1, backend=self.backend, outcome="spawn-failed"
                )
            raise TaskAttemptError(f"worker spawn failed: {exc}") from exc
        if respawning or self._respawns[slot]:
            self._respawns[slot] += 1
            if _obs.METER.enabled:
                _obs.RESPAWNS.add(
                    1, backend=self.backend, outcome="respawned"
                )
        self._handles[slot] = handle
        return handle

    def _discard_worker(self, slot: int) -> int:
        handle = self._handles[slot]
        self._handles[slot] = None
        self._respawn_pending[slot] = True
        return handle.kill() if handle is not None else 0

    def _attempt(
        self, slot: int, task: Task, attempt: int
    ) -> tuple[Any, dict | None]:
        handle = self._worker(slot)
        envelope = json.dumps({
            "schema": EXEC_SCHEMA,
            "kind": task.kind,
            "key": task.key,
            "attempt": attempt,
            "sabotage": self._sabotage_for(task),
            "corr": task.fingerprint(),
        })
        # Splice the task's cached payload encoding into the request line:
        # large payloads (circuit documents) are then serialized once per
        # task instead of once per attempt.
        line = f'{envelope[:-1]},"payload":{task.payload_json}}}\n'
        try:
            handle.send_line(line)
        except (BrokenPipeError, OSError):
            rc = self._discard_worker(slot)
            raise TaskAttemptError(self._death_message(rc, handle)) from None
        try:
            line = handle.read_line(self.task_timeout)
        except TimeoutError:
            self._discard_worker(slot)
            raise TaskAttemptError(
                f"worker timed out after {self.task_timeout:g}s"
            ) from None
        if line is None:
            rc = self._discard_worker(slot)
            raise TaskAttemptError(self._death_message(rc, handle)) from None
        try:
            payload = json.loads(line)
        except ValueError:
            payload = None
        if not isinstance(payload, dict) or (
            "result" not in payload and "error" not in payload
        ):
            # The worker's stdout is out of protocol; its state is unknown.
            self._discard_worker(slot)
            raise TaskAttemptError("worker produced no parseable result")
        if "error" in payload:
            # The worker ran the task and reported a deterministic error;
            # it stays alive for the next task.
            raise TaskAttemptError(str(payload["error"]), retryable=False)
        if payload.get("key") != task.key:
            self._discard_worker(slot)
            raise TaskAttemptError(
                f"worker answered for key {payload.get('key')!r}, "
                f"expected {task.key!r}", retryable=False,
            )
        self._respawns[slot] = 0
        worker_obs = payload.get("obs")
        worker_obs = worker_obs if isinstance(worker_obs, dict) else None
        self._ingest_worker_obs(task, worker_obs)
        return payload["result"], worker_obs

    @staticmethod
    def _death_message(rc: int, handle: _WorkerHandle) -> str:
        cause = f"killed by signal {-rc}" if rc < 0 else f"exited {rc}"
        tail = handle.stderr_tail()
        return f"worker {cause}" + (f" ({tail})" if tail else "")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot, handle in enumerate(self._handles):
            if handle is not None:
                handle.shutdown()
            self._handles[slot] = None


def make_executor(
    workers: int,
    retry: RetryPolicy | None = None,
    breaker: BreakerPolicy | None = None,
    task_timeout: float = 300.0,
    events: EventFn | None = None,
    backend: str = "auto",
    queue_dir: str | os.PathLike | None = None,
    lease_ttl: float = 15.0,
    respawn: bool = True,
    flight_dir: str | os.PathLike | None = None,
) -> Executor:
    """Build an executor by backend name.

    ``backend="auto"`` keeps the historical ``workers`` convention:
    ``0`` -> inline, ``N >= 1`` -> a process pool of N persistent
    workers.  Explicit names select a backend directly; ``"queue"``
    additionally needs ``queue_dir`` (the shared work-queue directory)
    and accepts ``lease_ttl``.  Negative counts are rejected eagerly.
    """
    workers = validated_jobs(workers)
    kwargs: dict[str, Any] = dict(
        retry=retry, breaker=breaker, task_timeout=task_timeout, events=events
    )
    if backend == "auto":
        backend = "inline" if workers == 0 else "process"
    if backend == "inline":
        return InlineExecutor(**kwargs)
    if backend == "thread":
        return ThreadExecutor(workers=max(workers, 1), **kwargs)
    if backend == "process":
        return ProcessPoolExecutor(workers=max(workers, 1), **kwargs)
    if backend == "queue":
        from repro.exec.queue_executor import QueueExecutor

        if queue_dir is None:
            raise ExecError(
                "backend 'queue' needs queue_dir (the shared work-queue "
                "directory coordinator and workers rendezvous on)"
            )
        return QueueExecutor(
            queue_dir, workers=workers, lease_ttl=lease_ttl,
            respawn=respawn, flight_dir=flight_dir, **kwargs
        )
    raise ExecError(
        f"unknown executor backend {backend!r}; "
        f"choose from {('auto',) + available_backends()}"
    )


__all__ = [
    "EventFn",
    "ResultFn",
    "ExecReport",
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessPoolExecutor",
    "TaskAttemptError",
    "available_backends",
    "default_worker_count",
    "validated_jobs",
    "make_executor",
]

"""Shared-directory work queue: the on-disk protocol behind ``backend=queue``.

A :class:`WorkQueue` is a directory (local or NFS-mounted) that a
coordinator and any number of elastic **queue workers** — joinable and
killable at any time, on any host — cooperate through.  Every mutation
uses one of two primitives that are atomic on POSIX filesystems and safe
on NFS:

* **write-temp-then-rename** — documents (tasks, leases, results,
  heartbeats) are staged under ``tmp/`` and renamed into place, so a
  reader never observes a torn file;
* **atomic rename as a lock** — claiming a task renames its file from
  ``todo/`` into ``claimed/``; exactly one renamer wins, the losers get
  ``FileNotFoundError`` and move on.  Stealing renames it back.

Directory layout (all children of the queue root)::

    queue.json        manifest: schema + creator
    todo/<fp>.json    published tasks, content-addressed by fingerprint
    claimed/<fp>.json the same document after a successful claim
    leases/<fp>.json  who holds the claim and until when (renewed)
    results/<fp>.json terminal outcome: result or deterministic error
    attempts/<fp>.json environmental-failure count + reasons (reclaims)
    sabotage/<fp>.json optional fault-drill directives (testing only)
    workers/<id>.json  per-worker heartbeat documents
    events/<id>.jsonl  single-writer append-only event logs
    tmp/               staging area for atomic writes
    stop               cooperative shutdown marker

**Lease protocol.**  A claimant writes ``leases/<fp>.json`` with an
absolute ``deadline`` and renews it while the task runs — but only up to
its task timeout, so a wedged task's lease *must* expire.  A lease is
expired when its deadline (plus a clock-skew grace) has passed, **or**
when the lease file's mtime is older than ``max_lease_age`` — the mtime
cap means a claimant with a fast-skewed clock cannot write a far-future
deadline and wedge the queue.  A ``claimed/`` entry with no lease at all
(crash between rename and lease write) expires by claim-file mtime.

**Stealing.**  Any reclaimer (idle worker or coordinator) may requeue an
expired claim: rename ``claimed/<fp>.json`` back to ``todo/<fp>.json``
(one winner), drop the stale lease, and bump ``attempts/<fp>.json``.
Once attempts exhaust the budget the reclaimer publishes a quarantine
result instead, so a poisoned task can never stall the queue.

**Results.**  Terminal outcomes are content-addressed too: the first
published ``results/<fp>.json`` wins; a duplicate completion (a stolen
task whose original owner was merely slow) is byte-compared against the
winner on the canonical ``result`` payload and dropped — identical by
determinism, and a mismatch is logged as a ``result-divergence`` event
rather than silently overwritten.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ExecError
from repro.exec.task import Task, canonical_json

#: Protocol version of every document written into a queue directory.
QUEUE_SCHEMA = 1

#: Subdirectories a queue root contains.
QUEUE_DIRS = (
    "todo",
    "claimed",
    "leases",
    "results",
    "attempts",
    "sabotage",
    "workers",
    "events",
    "telemetry",
    "tmp",
)

_STOP_MARKER = "stop"
_MANIFEST = "queue.json"


@dataclass(frozen=True)
class QueuePolicy:
    """Timing and budget knobs of the queue protocol.

    ``lease_ttl`` bounds how long a dead claimant can hold a task;
    ``clock_skew_grace`` is added before any reclaim so modestly skewed
    clocks never steal live work; ``max_lease_factor`` caps how far in
    the future a (possibly skewed) deadline is trusted, measured from the
    lease file's last renewal mtime; ``max_attempts`` is the total
    environmental-failure budget before a task is quarantined.
    """

    lease_ttl: float = 15.0
    clock_skew_grace: float = 5.0
    max_lease_factor: float = 4.0
    poll_interval: float = 0.2
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ExecError(f"lease_ttl {self.lease_ttl} must be positive")
        if self.clock_skew_grace < 0:
            raise ExecError("clock_skew_grace must be >= 0")
        if self.max_lease_factor < 1.0:
            raise ExecError("max_lease_factor must be >= 1")
        if self.poll_interval <= 0:
            raise ExecError("poll_interval must be positive")
        if self.max_attempts < 1:
            raise ExecError("max_attempts must be >= 1")

    @property
    def heartbeat_interval(self) -> float:
        """How often workers renew leases and heartbeats."""
        return self.lease_ttl / 3.0

    @property
    def max_lease_age(self) -> float:
        """Seconds after the last renewal at which any lease is dead."""
        return self.lease_ttl * self.max_lease_factor

    def to_json(self) -> dict:
        return {
            "lease_ttl": self.lease_ttl,
            "clock_skew_grace": self.clock_skew_grace,
            "max_lease_factor": self.max_lease_factor,
            "poll_interval": self.poll_interval,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "QueuePolicy":
        defaults = cls()
        return cls(
            lease_ttl=float(doc.get("lease_ttl", defaults.lease_ttl)),
            clock_skew_grace=float(
                doc.get("clock_skew_grace", defaults.clock_skew_grace)
            ),
            max_lease_factor=float(
                doc.get("max_lease_factor", defaults.max_lease_factor)
            ),
            poll_interval=float(
                doc.get("poll_interval", defaults.poll_interval)
            ),
            max_attempts=int(doc.get("max_attempts", defaults.max_attempts)),
        )


def worker_identity() -> str:
    """A queue-unique worker id: ``<host>-<pid>-<nonce>``."""
    host = socket.gethostname().split(".")[0] or "host"
    # Labels travel through obs metric label keys: strip the separators.
    host = host.replace("=", "_").replace(",", "_")
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class WorkQueue:
    """One queue directory: every protocol operation, no policy loops.

    All methods are safe to call concurrently from any number of
    processes on any number of hosts sharing the directory.
    """

    def __init__(
        self, root: str | os.PathLike, policy: QueuePolicy | None = None
    ):
        self.root = Path(root)
        self.policy = policy or QueuePolicy()

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(
        cls, root: str | os.PathLike, policy: QueuePolicy | None = None
    ) -> "WorkQueue":
        """Initialise (or adopt) a queue directory structure.

        The policy is persisted in the manifest so every joining worker
        and every ``campaign status`` reader — possibly on another host —
        recovers the same timing knobs.  Adopting an existing queue with
        ``policy=None`` restores the stored policy.
        """
        queue = cls(root, policy)
        queue.root.mkdir(parents=True, exist_ok=True)
        for name in QUEUE_DIRS:
            (queue.root / name).mkdir(exist_ok=True)
        manifest = queue._read_json(_MANIFEST)
        if manifest is None:
            queue.policy = policy or QueuePolicy()
            queue._write_json(
                _MANIFEST,
                {
                    "schema": QUEUE_SCHEMA,
                    "created_by": worker_identity(),
                    "policy": queue.policy.to_json(),
                },
            )
        elif policy is None and isinstance(manifest.get("policy"), dict):
            queue.policy = QueuePolicy.from_json(manifest["policy"])
        return queue

    @classmethod
    def open(cls, root: str | os.PathLike, policy: QueuePolicy | None = None
             ) -> "WorkQueue":
        """Open an existing queue directory; raises if it is not one."""
        queue = cls(root, policy)
        manifest = queue._read_json(_MANIFEST)
        if manifest is None:
            raise ExecError(f"{queue.root} is not a work-queue directory")
        if manifest.get("schema") != QUEUE_SCHEMA:
            raise ExecError(
                f"{queue.root}: queue schema {manifest.get('schema')!r} "
                f"not supported (this build speaks {QUEUE_SCHEMA})"
            )
        if policy is None and isinstance(manifest.get("policy"), dict):
            queue.policy = QueuePolicy.from_json(manifest["policy"])
        return queue

    def stop(self) -> None:
        """Publish the cooperative shutdown marker."""
        self._write_json(_STOP_MARKER, {"schema": QUEUE_SCHEMA})

    def stopped(self) -> bool:
        return (self.root / _STOP_MARKER).exists()

    # ------------------------------------------------------- atomic plumbing

    def _write_json(self, relpath: str, doc: dict) -> Path:
        """Write-temp-then-rename; readers never see a torn document."""
        target = self.root / relpath
        staging = self.root / "tmp"
        staging.mkdir(exist_ok=True)
        tmp = staging / f"{uuid.uuid4().hex}.tmp"
        tmp.write_text(canonical_json(doc) + "\n", encoding="ascii")
        os.replace(tmp, target)
        return target

    def _write_json_exclusive(self, relpath: str, doc: dict) -> bool:
        """Atomically publish ``doc`` only if ``relpath`` does not exist.

        Uses ``os.link`` of a fully-written staging file: the link either
        creates the target (this caller won) or fails with EEXIST (a
        racing publisher won first) — true first-write-wins, where a
        plain rename would silently make the *last* writer win.
        """
        target = self.root / relpath
        staging = self.root / "tmp"
        staging.mkdir(exist_ok=True)
        tmp = staging / f"{uuid.uuid4().hex}.tmp"
        tmp.write_text(canonical_json(doc) + "\n", encoding="ascii")
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def _read_json(self, relpath: str) -> dict | None:
        """Read a document; ``None`` for missing, torn, or non-dict files."""
        try:
            text = (self.root / relpath).read_text(encoding="ascii")
        except (OSError, UnicodeDecodeError):
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    @staticmethod
    def _mtime(path: Path) -> float | None:
        try:
            return path.stat().st_mtime
        except OSError:
            return None

    # ------------------------------------------------------------ publishing

    def publish_task(self, task: Task) -> str:
        """Publish a task into ``todo/``; returns its fingerprint.

        Idempotent: a fingerprint already present anywhere in the queue
        (todo, claimed, or results) is not re-published, which is what
        makes coordinator crash/rerun and content-level dedup free.
        """
        fp = task.fingerprint()
        if (
            (self.root / "results" / f"{fp}.json").exists()
            or (self.root / "claimed" / f"{fp}.json").exists()
            or (self.root / "todo" / f"{fp}.json").exists()
        ):
            return fp
        self._write_json(
            f"todo/{fp}.json",
            {
                "schema": QUEUE_SCHEMA,
                "kind": task.kind,
                "payload": dict(task.payload),
                "fingerprint": fp,
            },
        )
        return fp

    def publish_sabotage(self, fp: str, directive: dict) -> None:
        """Attach a fault-drill directive to a task fingerprint."""
        self._write_json(f"sabotage/{fp}.json", dict(directive))

    def sabotage_for(self, fp: str) -> dict | None:
        return self._read_json(f"sabotage/{fp}.json")

    # -------------------------------------------------------------- claiming

    def todo_fingerprints(self) -> list[str]:
        """Fingerprints currently waiting in ``todo/`` (sorted)."""
        return sorted(
            p.stem for p in (self.root / "todo").glob("*.json")
        )

    def try_claim(self, fp: str, worker: str, attempt: int) -> dict | None:
        """Claim one task by atomic rename; the task document on success.

        Exactly one concurrent claimant wins the rename.  The winner
        immediately writes the lease; a crash in between leaves a
        lease-less claim that expires by file mtime.
        """
        src = self.root / "todo" / f"{fp}.json"
        dst = self.root / "claimed" / f"{fp}.json"
        try:
            os.rename(src, dst)
        except OSError:
            return None
        self.write_lease(fp, worker, attempt)
        doc = self._read_json(f"claimed/{fp}.json")
        if doc is None:  # stolen back and completed impossibly fast / torn
            return None
        return doc

    def write_lease(self, fp: str, worker: str, attempt: int) -> None:
        now = time.time()
        self._write_json(
            f"leases/{fp}.json",
            {
                "schema": QUEUE_SCHEMA,
                "fingerprint": fp,
                "worker": worker,
                "attempt": attempt,
                "claimed_at": round(now, 3),
                "deadline": round(now + self.policy.lease_ttl, 3),
            },
        )

    def read_lease(self, fp: str) -> dict | None:
        return self._read_json(f"leases/{fp}.json")

    def renew_lease(self, fp: str, worker: str) -> bool:
        """Push the deadline forward; False when the lease was stolen."""
        lease = self.read_lease(fp)
        if lease is None or lease.get("worker") != worker:
            return False
        lease["deadline"] = round(time.time() + self.policy.lease_ttl, 3)
        self._write_json(f"leases/{fp}.json", lease)
        return True

    def release(self, fp: str, worker: str) -> None:
        """Drop the lease and claim file after publishing a result.

        Only the current lease owner releases; a slow ex-owner whose task
        was stolen must leave the thief's lease alone.
        """
        lease = self.read_lease(fp)
        if lease is not None and lease.get("worker") == worker:
            (self.root / "leases" / f"{fp}.json").unlink(missing_ok=True)
            (self.root / "claimed" / f"{fp}.json").unlink(missing_ok=True)

    # ------------------------------------------------------ expiry + stealing

    def lease_expiry_reason(self, fp: str, now: float | None = None
                            ) -> str | None:
        """Why this claim's lease counts as expired, or None if live."""
        now = time.time() if now is None else now
        policy = self.policy
        claim_path = self.root / "claimed" / f"{fp}.json"
        lease = self.read_lease(fp)
        lease_path = self.root / "leases" / f"{fp}.json"
        if lease is None:
            mtime = self._mtime(lease_path)
            if mtime is None:
                # No lease document at all: expire by claim-file age.
                mtime = self._mtime(claim_path)
                if mtime is None:
                    return None  # claim vanished (completed or stolen)
                if now - mtime > policy.lease_ttl + policy.clock_skew_grace:
                    return "claimed without a lease (claimant died mid-claim)"
                return None
            # Torn/unreadable lease: trust only its mtime.
            if now - mtime > policy.lease_ttl + policy.clock_skew_grace:
                return "unreadable lease past its ttl"
            return None
        age = None
        mtime = self._mtime(lease_path)
        if mtime is not None:
            age = now - mtime
        deadline = lease.get("deadline")
        if not isinstance(deadline, (int, float)):
            deadline = 0.0
        if now > deadline + policy.clock_skew_grace:
            worker = lease.get("worker", "?")
            return f"lease expired (worker {worker} stopped renewing)"
        # The mtime cap defeats fast-skewed claimant clocks: however far
        # in the future the written deadline claims to be, a lease not
        # renewed for max_lease_age is dead.
        if age is not None and age > policy.max_lease_age:
            worker = lease.get("worker", "?")
            return (
                f"lease deadline untrusted (worker {worker} last renewed "
                f"{age:.1f}s ago, cap {policy.max_lease_age:.1f}s)"
            )
        return None

    def claimed_fingerprints(self) -> list[str]:
        return sorted(
            p.stem for p in (self.root / "claimed").glob("*.json")
        )

    def reclaim(
        self, fp: str, by: str, max_attempts: int, reason: str
    ) -> str | None:
        """Steal one expired claim: requeue it, or quarantine over budget.

        Returns ``"requeued"`` or ``"quarantined"`` for the winning
        reclaimer, ``None`` for losers of the rename race.
        """
        src = self.root / "claimed" / f"{fp}.json"
        attempts = self.attempts(fp)
        used = attempts.get("attempts", 0) + 1  # the failed claim itself
        if used >= max_attempts:
            # Budget exhausted: publish a quarantine result so the queue
            # never stalls on a poisoned task.  Publishing is idempotent.
            doc = self._read_json(f"claimed/{fp}.json") or {}
            failures = list(attempts.get("failures", ())) + [reason]
            state = self.publish_result(
                fp,
                {
                    "schema": QUEUE_SCHEMA,
                    "fingerprint": fp,
                    "kind": doc.get("kind"),
                    "worker": by,
                    "attempt": used - 1,
                    "error": (
                        f"quarantined after {used} environmental "
                        f"failures (last: {reason})"
                    ),
                    "quarantine": True,
                    "failures": failures,
                },
            )
            if state == "published":
                self._bump_attempts(fp, reason)
                (self.root / "leases" / f"{fp}.json").unlink(missing_ok=True)
                src.unlink(missing_ok=True)
                return "quarantined"
            return None
        dst = self.root / "todo" / f"{fp}.json"
        try:
            os.rename(src, dst)
        except OSError:
            return None  # someone else won the steal (or it completed)
        (self.root / "leases" / f"{fp}.json").unlink(missing_ok=True)
        self._bump_attempts(fp, reason)
        return "requeued"

    def reclaim_expired(
        self, by: str, max_attempts: int | None = None
    ) -> list[tuple[str, str, str]]:
        """Scan every claim and reclaim the expired ones.

        Returns ``[(fingerprint, action, reason), ...]`` for the claims
        this caller actually won; racing reclaimers partition the wins.
        """
        budget = max_attempts or self.policy.max_attempts
        won: list[tuple[str, str, str]] = []
        for fp in self.claimed_fingerprints():
            if (self.root / "results" / f"{fp}.json").exists():
                # Completed but not cleaned up (publisher died right
                # after rename): drop the leftovers.
                (self.root / "leases" / f"{fp}.json").unlink(missing_ok=True)
                (self.root / "claimed" / f"{fp}.json").unlink(missing_ok=True)
                continue
            reason = self.lease_expiry_reason(fp)
            if reason is None:
                continue
            action = self.reclaim(fp, by, budget, reason)
            if action is not None:
                won.append((fp, action, reason))
        return won

    # --------------------------------------------------------------- attempts

    def attempts(self, fp: str) -> dict:
        doc = self._read_json(f"attempts/{fp}.json")
        if doc is None:
            return {"attempts": 0, "failures": []}
        return doc

    def _bump_attempts(self, fp: str, reason: str) -> None:
        doc = self.attempts(fp)
        self._write_json(
            f"attempts/{fp}.json",
            {
                "schema": QUEUE_SCHEMA,
                "fingerprint": fp,
                "attempts": int(doc.get("attempts", 0)) + 1,
                "failures": list(doc.get("failures", ()))[-9:] + [reason],
            },
        )

    # ---------------------------------------------------------------- results

    def publish_result(self, fp: str, doc: dict) -> str:
        """First-write-wins result publication with byte-identity audit.

        Returns ``"published"``, ``"duplicate"`` (identical payload
        already there — the idempotent path a stolen-but-slow worker
        hits), or ``"divergent"`` when an existing result's canonical
        ``result`` payload differs — a determinism bug that is surfaced,
        never silently overwritten (the first write stays authoritative).
        """
        if self._write_json_exclusive(f"results/{fp}.json", doc):
            return "published"
        existing = self._read_json(f"results/{fp}.json")
        if existing is None:
            # The winner's document vanished or is torn mid-write on a
            # non-atomic filesystem: keep ours as the authoritative copy.
            self._write_json(f"results/{fp}.json", doc)
            return "published"
        return self._compare_results(existing, doc)

    @staticmethod
    def _compare_results(existing: dict, doc: dict) -> str:
        if "error" in existing or "error" in doc:
            # Error texts legitimately differ between workers (pids,
            # hosts); any terminal error outcome deduplicates.
            return "duplicate"
        same = canonical_json(existing.get("result")) == canonical_json(
            doc.get("result")
        )
        return "duplicate" if same else "divergent"

    def read_result(self, fp: str) -> dict | None:
        return self._read_json(f"results/{fp}.json")

    def result_fingerprints(self) -> list[str]:
        return sorted(
            p.stem for p in (self.root / "results").glob("*.json")
        )

    # ------------------------------------------------------------- heartbeats

    def write_heartbeat(
        self,
        worker: str,
        state: str,
        tasks_done: int = 0,
        failures: int = 0,
        current: str | None = None,
    ) -> None:
        doc: dict[str, Any] = {
            "schema": QUEUE_SCHEMA,
            "worker": worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "time": round(time.time(), 3),
            "state": state,
            "tasks_done": tasks_done,
            "failures": failures,
        }
        if current is not None:
            doc["current"] = current
        self._write_json(f"workers/{worker}.json", doc)

    def workers(self) -> dict[str, dict]:
        """All worker heartbeat documents, keyed by worker id."""
        out: dict[str, dict] = {}
        for path in sorted((self.root / "workers").glob("*.json")):
            doc = self._read_json(f"workers/{path.name}")
            if doc is not None:
                out[path.stem] = doc
        return out

    # ----------------------------------------------------------------- events

    def log_event(self, writer: str, event: str, **fields: Any) -> None:
        """Append one event to the writer's private log.

        Single-writer append-only files are the one safe way to journal
        from many hosts onto a shared directory; readers merge the logs.
        """
        record = {"ts": round(time.time(), 3), "worker": writer,
                  "event": event, **fields}
        path = self.root / "events" / f"{writer}.jsonl"
        with open(path, "a", encoding="ascii") as handle:
            handle.write(canonical_json(record) + "\n")
            handle.flush()

    def events(self) -> list[dict]:
        """All events from every writer, merged and time-ordered."""
        records: list[dict] = []
        for path in sorted((self.root / "events").glob("*.jsonl")):
            try:
                text = path.read_text(encoding="ascii")
            except OSError:
                continue
            for line in text.split("\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed writer
                if isinstance(record, dict):
                    records.append(record)
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("worker", "")))
        return records

    # ------------------------------------------------------------------- scan

    def scan(self) -> "QueueSnapshot":
        """One consistent-enough view of the whole queue for status/UI."""
        now = time.time()
        leases = []
        for fp in self.claimed_fingerprints():
            lease = self.read_lease(fp)
            entry: dict[str, Any] = {"fingerprint": fp}
            if lease is not None:
                deadline = lease.get("deadline", 0.0)
                entry.update(
                    worker=lease.get("worker"),
                    attempt=lease.get("attempt", 0),
                    age_seconds=round(
                        max(0.0, now - lease.get("claimed_at", now)), 3
                    ),
                    expires_in_seconds=round(deadline - now, 3),
                )
            entry["expired"] = self.lease_expiry_reason(fp, now)
            leases.append(entry)
        results = quarantined = 0
        for fp in self.result_fingerprints():
            doc = self.read_result(fp)
            if doc is not None and "error" in doc:
                quarantined += 1
            else:
                results += 1
        counters = {"claims": 0, "steals": 0, "dedups": 0,
                    "divergences": 0, "quarantines": 0}
        for record in self.events():
            event = record.get("event")
            if event == "claimed":
                counters["claims"] += 1
            elif event == "stolen":
                counters["steals"] += 1
            elif event == "dedup":
                counters["dedups"] += 1
            elif event == "result-divergence":
                counters["divergences"] += 1
            elif event == "quarantined":
                counters["quarantines"] += 1
        return QueueSnapshot(
            root=str(self.root),
            time=now,
            todo=len(self.todo_fingerprints()),
            claimed=len(leases),
            done=results,
            quarantined=quarantined,
            leases=leases,
            workers=self.workers(),
            counters=counters,
            stopped=self.stopped(),
        )


@dataclass
class QueueSnapshot:
    """Point-in-time view of a queue directory (pure data)."""

    root: str
    time: float
    todo: int
    claimed: int
    done: int
    quarantined: int
    leases: list[dict] = field(default_factory=list)
    workers: dict[str, dict] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    stopped: bool = False

    @property
    def total(self) -> int:
        return self.todo + self.claimed + self.done + self.quarantined

    def worker_ages(self) -> dict[str, float]:
        """Seconds since each worker's last heartbeat."""
        return {
            wid: round(max(0.0, self.time - doc.get("time", 0.0)), 3)
            for wid, doc in self.workers.items()
        }


def iter_chunks(items: Iterable[Any], size: int) -> Iterable[list[Any]]:
    """Deterministic fixed-size chunking helper for fan-out callers."""
    chunk: list[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


__all__ = [
    "QUEUE_SCHEMA",
    "QUEUE_DIRS",
    "QueuePolicy",
    "QueueSnapshot",
    "WorkQueue",
    "worker_identity",
    "iter_chunks",
]

"""Wire-protocol constants and the sabotage drill.

Kept out of :mod:`repro.exec.worker` so that importing the package (which
happens inside every worker subprocess) never imports the module that
``python -m repro.exec.worker`` is about to execute — runpy would warn
about the double life otherwise.
"""

from __future__ import annotations

import os
import signal
import sys
import time

from repro.errors import ReproError

#: Protocol version of the request/response documents.
EXEC_SCHEMA = 1

#: Sabotage directives the drill understands.
SABOTAGE_MODES = ("kill", "hang", "exit")

#: Exceptions a runner can raise that mark the *task* (not the
#: environment) as broken: reported as data, never retried.
DETERMINISTIC_ERRORS = (ReproError, KeyError, TypeError, ValueError)


def apply_sabotage(directive: dict | None, attempt: int) -> None:
    """Carry out a fault drill if it applies to this attempt."""
    if not directive:
        return
    if attempt >= int(directive.get("attempts", 1 << 30)):
        return
    mode = directive.get("mode")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(float(directive.get("seconds", 3600.0)))
    elif mode == "exit":
        sys.exit(int(directive.get("code", 3)))
    else:
        raise ValueError(
            f"unknown sabotage mode {mode!r}; choose from {SABOTAGE_MODES}"
        )


__all__ = [
    "EXEC_SCHEMA",
    "SABOTAGE_MODES",
    "DETERMINISTIC_ERRORS",
    "apply_sabotage",
]

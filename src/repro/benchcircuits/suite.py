"""Convenience access to every circuit shipped with the reproduction."""

from __future__ import annotations

from typing import Callable

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library
from repro.benchcircuits import comparator, handmade
from repro.benchcircuits.generators import (
    PAPER_SPECS,
    TABLE1_NAMES,
    make_benchmark,
    table1_circuits,
    table2_circuits,
)

#: Hand-written circuits by name (all take an optional library).
HANDMADE: dict[str, Callable[..., Circuit]] = {
    "comparator2": comparator.comparator2,
    "comparator4": lambda lib=None: comparator.comparator_nbit(4, lib),
    "comparator6": lambda lib=None: comparator.comparator_nbit(6, lib),
    "full_adder": handmade.full_adder,
    "ripple_adder4": lambda lib=None: handmade.ripple_adder(4, lib),
    "ripple_adder8": lambda lib=None: handmade.ripple_adder(8, lib),
    "cla4": handmade.carry_lookahead4,
    "alu_slice": handmade.alu_slice,
    "decoder3": lambda lib=None: handmade.decoder(3, lib),
    "priority_encoder8": lambda lib=None: handmade.priority_encoder(8, lib),
    "parity8": lambda lib=None: handmade.parity_tree(8, lib),
    "mux_tree3": lambda lib=None: handmade.mux_tree(3, lib),
    "bypass": handmade.speculative_bypass,
}


def circuit_by_name(name: str, library: Library | None = None) -> Circuit:
    """Fetch any named circuit: hand-made or a paper benchmark."""
    if name in HANDMADE:
        return HANDMADE[name](library)
    if name in PAPER_SPECS:
        return make_benchmark(name, library)
    raise NetlistError(
        f"unknown circuit {name!r}; choose from "
        f"{sorted(HANDMADE) + sorted(PAPER_SPECS)}"
    )


def all_circuit_names() -> tuple[str, ...]:
    """Every circuit name known to the suite."""
    return tuple(sorted(HANDMADE)) + tuple(PAPER_SPECS)


__all__ = [
    "HANDMADE",
    "PAPER_SPECS",
    "TABLE1_NAMES",
    "circuit_by_name",
    "all_circuit_names",
    "make_benchmark",
    "table1_circuits",
    "table2_circuits",
]

"""Deterministic synthetic stand-ins for the paper's named benchmarks.

The paper evaluates on MCNC/ISCAS benchmarks and OpenSPARC T1 modules that we
do not have (see the substitution table in DESIGN.md).  For every circuit
named in Tables 1 and 2 we generate a deterministic synthetic circuit with

* the paper's input/output counts and approximately its gate count,
* the paper's number of *critical* primary outputs: deep output cones whose
  delays land inside the top-10% band,
* carry-skip-style speed-paths: a shared *backbone* (sensitizable reduction
  tree + XOR-joined bushes + inverter delay line) feeds clusters of deep
  outputs, each gated by low-probability *guard* conditions over disjoint
  primary inputs — so every speed-path is a true (sensitizable) path and the
  SPCF shrinks like ``2^-(guard literals)``, the signature of real
  rarely-sensitized critical paths,
* block-structured cones over contiguous primary-input windows, keeping BDD
  sizes small (the locality real decode/control logic has), with backbone
  sharing providing the multi-fanout critical gates that make the node-based
  SPCF over-approximate.

Everything is seeded: ``make_benchmark("C432")`` always returns the same
netlist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library, lsi10k_like_library

#: Cells drawn for random tree logic (arity 2 and 3).
_TREE_CELLS_2 = ("NAND2", "NOR2", "AND2", "OR2", "XOR2")
_TREE_CELLS_3 = ("NAND3", "NOR3", "AND3", "OR3", "AOI21", "OAI21")


@dataclass(frozen=True)
class BenchSpec:
    """Recipe for one named synthetic benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    deep_outputs: int
    window: int
    seed: int

    def __post_init__(self) -> None:
        if self.num_inputs < 2:
            raise NetlistError(f"{self.name}: need at least 2 inputs")
        if self.deep_outputs > self.num_outputs:
            raise NetlistError(f"{self.name}: more deep outputs than outputs")


#: Table 2 of the paper: name, I/O, gates, and critical-PO counts.  Gate
#: counts for two rows are mangled in the source scan and estimated.  The
#: ``sparc_ifu_invctl`` I/O differs between Tables 1 and 2 in the paper; we
#: use the Table 2 values.
PAPER_SPECS: dict[str, BenchSpec] = {
    spec.name: spec
    for spec in [
        BenchSpec("i1", 25, 16, 33, 3, 6, 101),
        BenchSpec("cmb", 16, 4, 13, 1, 8, 102),
        BenchSpec("x2", 10, 7, 26, 1, 6, 103),
        BenchSpec("cu", 14, 11, 26, 4, 6, 104),
        BenchSpec("too_large", 38, 3, 230, 2, 18, 105),
        BenchSpec("k2", 45, 45, 649, 8, 12, 106),
        BenchSpec("alu2", 10, 6, 190, 2, 10, 107),
        BenchSpec("alu4", 14, 8, 355, 3, 12, 108),
        BenchSpec("apex4", 9, 19, 973, 13, 9, 109),
        BenchSpec("apex6", 135, 99, 392, 4, 8, 110),
        BenchSpec("frg1", 28, 3, 56, 3, 12, 111),
        BenchSpec("C432", 36, 7, 95, 4, 14, 112),
        BenchSpec("C880", 60, 26, 180, 3, 10, 113),
        BenchSpec("C2670", 233, 140, 369, 1, 8, 114),
        BenchSpec("sparc_ifu_dec", 131, 146, 556, 3, 8, 115),
        BenchSpec("sparc_ifu_invctl", 212, 72, 312, 22, 8, 116),
        BenchSpec("sparc_ifu_ifqdp", 882, 987, 1974, 165, 6, 117),
        BenchSpec("sparc_ifu_dcl", 136, 94, 315, 6, 8, 118),
        BenchSpec("lsu_stb_ctl", 182, 169, 810, 5, 8, 119),
        BenchSpec("sparc_exu_ecl", 572, 634, 1515, 211, 6, 120),
    ]
}

#: The five circuits of Table 1 (SPCF accuracy vs runtime).
TABLE1_NAMES = (
    "C432",
    "C2670",
    "sparc_ifu_dec",
    "sparc_ifu_invctl",
    "lsu_stb_ctl",
)

#: Deep outputs per shared backbone.
_CLUSTER_SIZE = 8


class _Grower:
    """Gate factory that tracks structural arrival times as it builds."""

    def __init__(self, circuit: Circuit, library: Library, rng: random.Random):
        self.circuit = circuit
        self.library = library
        self.rng = rng
        self._counter = 0
        self.arr: dict[str, int] = {net: 0 for net in circuit.inputs}

    def fresh(self) -> str:
        self._counter += 1
        return f"n{self._counter}"

    def add(self, cell_name: str, fanins: list[str], name: str | None = None) -> str:
        cell = self.library.get(cell_name)
        net = name or self.fresh()
        self.circuit.add_gate(net, cell, tuple(fanins))
        self.arr[net] = max(
            self.arr[f] + d for f, d in zip(fanins, cell.pin_delays)
        )
        return net

    def tree(self, nets: list[str], cells2=_TREE_CELLS_2, cells3=_TREE_CELLS_3) -> str:
        """Sensitizable balanced reduction tree over *distinct* nets."""
        level = list(nets)
        while len(level) > 1:
            nxt = []
            i = 0
            while i < len(level):
                take = 3 if (len(level) - i == 3 and cells3) else 2
                group = level[i : i + take]
                i += take
                if len(group) == 1:
                    nxt.append(group[0])
                elif len(group) == 3:
                    nxt.append(self.add(self.rng.choice(cells3), group))
                else:
                    nxt.append(self.add(self.rng.choice(cells2), group))
            level = nxt
        return level[0]

    def mono_tree(self, nets: list[str], polarity: bool) -> str:
        """AND-tree (polarity True) or OR-tree: a 2^-k-probability guard."""
        cell = "AND2" if polarity else "OR2"
        level = list(nets)
        while len(level) > 1:
            nxt = [
                self.add(cell, [level[i], level[i + 1]])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def delay_line(self, head: str, count: int) -> list[str]:
        """Serial inverter line; returns every net on it (last = output)."""
        nets = []
        for _ in range(count):
            head = self.add("INV", [head])
            nets.append(head)
        return nets


def generate_control_circuit(
    spec: BenchSpec, library: Library | None = None
) -> Circuit:
    """Generate the synthetic benchmark described by ``spec``."""
    lib = library or lsi10k_like_library()
    rng = random.Random(spec.seed)
    inputs = [f"x{i}" for i in range(spec.num_inputs)]
    outputs = [f"y{i}" for i in range(spec.num_outputs)]
    circuit = Circuit(spec.name, inputs=inputs)
    grow = _Grower(circuit, lib, rng)

    n_in, n_out = spec.num_inputs, spec.num_outputs
    stride = max(1, n_in // max(1, n_out))
    window = max(2, min(spec.window, n_in))

    def window_of(idx: int, size: int) -> list[str]:
        start = (idx * stride) % n_in
        return [inputs[(start + k) % n_in] for k in range(min(size, n_in))]

    def outside_of(idx: int, size: int, exclude: set[str]) -> list[str]:
        start = (idx * stride + window) % n_in
        picks = [inputs[(start + k) % n_in] for k in range(min(size, n_in))]
        return [p for p in dict.fromkeys(picks) if p not in exclude]

    deep: list[int] = []
    if spec.deep_outputs:
        step = n_out / spec.deep_outputs
        deep = sorted({int(i * step) for i in range(spec.deep_outputs)})
    deep_set = set(deep)
    shallow = [i for i in range(n_out) if i not in deep_set]

    # ---------------------------------------------------------- deep cones
    # Clusters of deep outputs share a backbone: tree + XOR bush + delay
    # line.  Each output adds its own guards and merge suffix.  The delay
    # line is ~2.5x the predicted (tree + guard) logic, so the masking
    # circuit's relative depth and area land in the paper's regime.
    w_deep = max(3, min(window, 8))
    n_clusters = max(1, -(-len(deep) // _CLUSTER_SIZE)) if deep else 1
    line_length = max(
        14,
        min(40, spec.num_gates // (2 * n_clusters), int(2.5 * (w_deep + 4))),
    )
    guards_per_out = 2
    for cluster_start in range(0, len(deep), _CLUSTER_SIZE):
        cluster = deep[cluster_start : cluster_start + _CLUSTER_SIZE]
        base_idx = cluster[0]
        wnets = window_of(base_idx, w_deep)
        head = grow.tree(wnets)
        # One XOR-joined bush thickens the backbone function.
        if len(wnets) >= 2:
            bush = grow.tree(rng.sample(wnets, max(2, len(wnets) // 2)))
            head = grow.add("XOR2", [head, bush])
        line = grow.delay_line(head, line_length)
        head = line[-1]
        tap = line[-2] if len(line) >= 2 else line[-1]
        used = set(wnets)
        for pos, out_idx in enumerate(cluster):
            tip = head
            for g in range(guards_per_out):
                pool = outside_of(out_idx, 10 + 2 * g, used | set(wnets))
                if not pool:
                    pool = [rng.choice(wnets)]
                k = min(len(pool), rng.randrange(2, 5))
                picks = pool[:k]
                used.update(picks)
                polarity = rng.random() < 0.7
                if g == 0 and (pos % 2 == 1 or len(cluster) == 1):
                    # Reconvergent guard: the enable cube is AND-ed with a
                    # late *tap* from the cluster's own backbone.  The guard
                    # gate is statically critical, so the node-based pass
                    # cannot use the cube condition to rule lateness out —
                    # the over-approximation source of Table 1.
                    wide = pool[: min(len(pool), 6)] or picks
                    used.update(wide)
                    cube_root = (
                        grow.mono_tree(wide, True) if len(wide) > 1 else wide[0]
                    )
                    guard = grow.add("AND2", [tap, cube_root])
                    cells = ("AND2", "NAND2")
                else:
                    guard = (
                        grow.mono_tree(picks, polarity)
                        if len(picks) > 1
                        else picks[0]
                    )
                    cells = ("AND2", "NAND2") if polarity else ("OR2", "NOR2")
                name = outputs[out_idx] if g == guards_per_out - 1 else None
                tip = grow.add(rng.choice(cells), [tip, guard], name=name)
            circuit.add_output(outputs[out_idx])

    # -------------------------------------------------------- shallow cones
    deep_arrival = max(
        (grow.arr[outputs[i]] for i in deep), default=40
    )
    cap = int(0.72 * deep_arrival)
    spent = circuit.num_gates
    remaining = max(0, spec.num_gates - spent)
    budget_each = max(1, remaining // max(1, len(shallow))) if shallow else 0
    prev_shared: str | None = None
    for out_idx in shallow:
        wnets = window_of(out_idx, max(2, min(window, budget_each + 1)))
        head = grow.tree(wnets)
        used = budget_each - (len(wnets) - 1)
        if prev_shared is not None and rng.random() < 0.5 and grow.arr[
            prev_shared
        ] + 12 <= cap:
            head = grow.add("XOR2", [head, prev_shared])
            used -= 1
        # Burn remaining budget without leaving the arrival cap.
        while used >= 2 and grow.arr[head] + 20 <= cap and len(wnets) >= 2:
            k = min(len(wnets), used)
            if k < 2:
                break
            bush = grow.tree(rng.sample(wnets, k))
            head = grow.add("XOR2", [head, bush])
            used -= k
        while used >= 1 and grow.arr[head] + 4 <= cap:
            head = grow.add("INV", [head])
            used -= 1
        # Final gate carries the output name.
        side = rng.choice(wnets)
        grow.add(rng.choice(("AND2", "OR2", "NAND2", "NOR2")), [head, side],
                 name=outputs[out_idx])
        circuit.add_output(outputs[out_idx])
        prev_shared = head
    # Restore declared output order.
    circuit._outputs = list(outputs)  # noqa: SLF001 - deterministic ordering

    _pad_deep_cones(circuit, lib, [outputs[i] for i in deep])
    circuit.validate()
    return circuit


def _pad_deep_cones(
    circuit: Circuit, library: Library, deep_outputs: list[str]
) -> None:
    """Buffer/inverter-pad deep cone outputs into the top-10% delay band."""
    if not deep_outputs:
        return
    from repro.sta.timing import analyze

    buf = library.get("BUF")
    inv = library.get("INV")
    buf_delay = buf.pin_delays[0]
    inv_delay = inv.pin_delays[0]
    report = analyze(circuit, target=0)
    delta = report.critical_delay
    target = int(0.9 * delta)
    for out in deep_outputs:
        arrival = report.arrival[out]
        if arrival > target:
            continue
        best: tuple[int, int, int] | None = None
        for invs in range((delta - arrival) // inv_delay + 1):
            bufs = (delta - arrival - invs * inv_delay) // buf_delay
            final = arrival + bufs * buf_delay + invs * inv_delay
            if final > target and (best is None or final > best[0]):
                best = (final, bufs, invs)
        if best is None:
            continue
        _, bufs, invs = best
        gate = circuit.gates[out]
        head = gate.fanins[0]
        for k in range(bufs):
            pad = f"{out}_pad{k}"
            circuit.add_gate(pad, buf, (head,))
            head = pad
        for k in range(invs):
            pad = f"{out}_ipad{k}"
            circuit.add_gate(pad, inv, (head,))
            head = pad
        circuit.replace_gate(
            type(gate)(gate.name, gate.cell, (head,) + gate.fanins[1:])
        )


def make_benchmark(name: str, library: Library | None = None) -> Circuit:
    """Build one of the paper's named benchmark circuits."""
    try:
        spec = PAPER_SPECS[name]
    except KeyError:
        raise NetlistError(
            f"unknown benchmark {name!r}; choose from {sorted(PAPER_SPECS)}"
        ) from None
    return generate_control_circuit(spec, library)


def table1_circuits(library: Library | None = None) -> dict[str, Circuit]:
    """The five circuits of Table 1."""
    return {name: make_benchmark(name, library) for name in TABLE1_NAMES}


def table2_circuits(library: Library | None = None) -> dict[str, Circuit]:
    """All twenty circuits of Table 2."""
    return {name: make_benchmark(name, library) for name in PAPER_SPECS}

"""The paper's worked example: a 2-bit comparator (Sec. 4.2, Fig. 2).

``y = 0`` iff the 2-bit number ``a1 a0`` is less than ``b1 b0``.  With the
unit-delay library (INV = 1, 2-input gates = 2) the mapped structure below
has critical path delay 7, and the exact SPCF at threshold
``Delta_y = floor(0.9 * 7) = 6`` is the paper's

.. math:: \\Sigma_y = \\overline{a_1} + \\overline{a_0} b_1

(10 of the 16 input patterns).  The golden tests in
``tests/core/test_comparator_paper.py`` reproduce every quantity of the
paper's walkthrough from this module.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.library import Library, unit_library


def comparator2(library: Library | None = None) -> Circuit:
    """The 2-bit comparator of Fig. 2(a), mapped as

    .. code-block:: text

        y = (a1 & ~b1) | ((a0 | ~b0) & (a1 | ~b1))

    with explicit inverters so the two delay-7 speed-paths run through
    ``~b0`` and ``~b1`` into the product term.
    """
    lib = library or unit_library()
    c = Circuit("comparator2", inputs=("a0", "a1", "b0", "b1"), outputs=("y",))
    c.add_gate("nb0", lib.get("INV"), ("b0",))
    c.add_gate("nb1", lib.get("INV"), ("b1",))
    c.add_gate("t1", lib.get("AND2"), ("a1", "nb1"))
    c.add_gate("t2", lib.get("OR2"), ("a0", "nb0"))
    c.add_gate("t3", lib.get("OR2"), ("a1", "nb1"))
    c.add_gate("t4", lib.get("AND2"), ("t2", "t3"))
    c.add_gate("y", lib.get("OR2"), ("t1", "t4"))
    c.validate()
    return c


def comparator2_reference(a0: bool, a1: bool, b0: bool, b1: bool) -> bool:
    """Specification: ``a1a0 >= b1b0`` (y = 0 iff a < b)."""
    return (a1 * 2 + a0) >= (b1 * 2 + b0)


def comparator_nbit(n: int, library: Library | None = None) -> Circuit:
    """A ripple-style n-bit unsigned comparator: ``y = (a >= b)``.

    Built MSB-first: ``ge_k = gt_bit | (eq_bit & ge_{k-1})``.  Used by the
    examples and as a scalable timing-rich circuit in tests.
    """
    lib = library or unit_library()
    inputs = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    c = Circuit(f"comparator{n}", inputs=inputs, outputs=("y",))
    # LSB stage: ge = a0 | ~b0  (a0 >= b0 for single bits)
    c.add_gate("nb0_", lib.get("INV"), ("b0",))
    c.add_gate("ge0", lib.get("OR2"), ("a0", "nb0_"))
    prev = "ge0"
    for i in range(1, n):
        c.add_gate(f"nb{i}_", lib.get("INV"), (f"b{i}",))
        c.add_gate(f"na{i}_", lib.get("INV"), (f"a{i}",))
        c.add_gate(f"gt{i}", lib.get("AND2"), (f"a{i}", f"nb{i}_"))
        c.add_gate(f"lt{i}", lib.get("AND2"), (f"na{i}_", f"b{i}"))
        c.add_gate(f"nlt{i}", lib.get("INV"), (f"lt{i}",))
        c.add_gate(f"keep{i}", lib.get("AND2"), (f"nlt{i}", prev))
        c.add_gate(f"ge{i}", lib.get("OR2"), (f"gt{i}", f"keep{i}"))
        prev = f"ge{i}"
    c.add_gate("y", lib.get("BUF"), (prev,))
    c.validate()
    return c

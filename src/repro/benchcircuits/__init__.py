"""Benchmark circuits: the paper's worked example, hand-made real logic,
and deterministic synthetic stand-ins for the paper's named benchmarks."""

from repro.benchcircuits.comparator import (
    comparator2,
    comparator2_reference,
    comparator_nbit,
)
from repro.benchcircuits.generators import (
    PAPER_SPECS,
    TABLE1_NAMES,
    BenchSpec,
    generate_control_circuit,
    make_benchmark,
    table1_circuits,
    table2_circuits,
)
from repro.benchcircuits.suite import (
    HANDMADE,
    all_circuit_names,
    circuit_by_name,
)

__all__ = [
    "comparator2",
    "comparator2_reference",
    "comparator_nbit",
    "BenchSpec",
    "PAPER_SPECS",
    "TABLE1_NAMES",
    "generate_control_circuit",
    "make_benchmark",
    "table1_circuits",
    "table2_circuits",
    "HANDMADE",
    "circuit_by_name",
    "all_circuit_names",
]

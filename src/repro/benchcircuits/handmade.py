"""Hand-written real circuits used by tests and examples.

Unlike the synthetic named benchmarks (:mod:`repro.benchcircuits.generators`)
these are genuine textbook structures — adders, a carry-lookahead unit, an
ALU slice, decoders, a priority encoder, parity trees, mux trees — giving the
test-suite functionally meaningful logic with known references.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.library import Library, unit_library


def full_adder(library: Library | None = None) -> Circuit:
    """1-bit full adder: sum and carry out."""
    lib = library or unit_library()
    c = Circuit("full_adder", inputs=("a", "b", "cin"), outputs=("sum", "cout"))
    c.add_gate("axb", lib.get("XOR2"), ("a", "b"))
    c.add_gate("sum", lib.get("XOR2"), ("axb", "cin"))
    c.add_gate("ab", lib.get("AND2"), ("a", "b"))
    c.add_gate("cx", lib.get("AND2"), ("axb", "cin"))
    c.add_gate("cout", lib.get("OR2"), ("ab", "cx"))
    c.validate()
    return c


def ripple_adder(n: int, library: Library | None = None) -> Circuit:
    """n-bit ripple-carry adder: ``s = a + b + cin`` (long carry chain)."""
    lib = library or unit_library()
    inputs = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)] + ["cin"]
    outputs = [f"s{i}" for i in range(n)] + ["cout"]
    c = Circuit(f"ripple_adder{n}", inputs=inputs, outputs=outputs)
    carry = "cin"
    for i in range(n):
        c.add_gate(f"axb{i}", lib.get("XOR2"), (f"a{i}", f"b{i}"))
        c.add_gate(f"s{i}", lib.get("XOR2"), (f"axb{i}", carry))
        c.add_gate(f"ab{i}", lib.get("AND2"), (f"a{i}", f"b{i}"))
        c.add_gate(f"cx{i}", lib.get("AND2"), (f"axb{i}", carry))
        c.add_gate(f"c{i}", lib.get("OR2"), (f"ab{i}", f"cx{i}"))
        carry = f"c{i}"
    c.add_gate("cout", lib.get("BUF"), (carry,))
    c.validate()
    return c


def ripple_adder_reference(n: int, pattern: dict[str, bool]) -> dict[str, bool]:
    """Specification of :func:`ripple_adder` for one input pattern."""
    a = sum(int(pattern[f"a{i}"]) << i for i in range(n))
    b = sum(int(pattern[f"b{i}"]) << i for i in range(n))
    total = a + b + int(pattern["cin"])
    out = {f"s{i}": bool((total >> i) & 1) for i in range(n)}
    out["cout"] = bool((total >> n) & 1)
    return out


def carry_lookahead4(library: Library | None = None) -> Circuit:
    """74182-style 4-bit carry-lookahead generator (p/g in, carries out)."""
    lib = library or unit_library()
    inputs = [f"p{i}" for i in range(4)] + [f"g{i}" for i in range(4)] + ["cin"]
    outputs = ["c1", "c2", "c3", "c4"]
    c = Circuit("cla4", inputs=inputs, outputs=outputs)
    carry = "cin"
    for i in range(4):
        c.add_gate(f"pc{i}", lib.get("AND2"), (f"p{i}", carry))
        c.add_gate(f"c{i + 1}", lib.get("OR2"), (f"g{i}", f"pc{i}"))
        carry = f"c{i + 1}"
    c.validate()
    return c


def alu_slice(library: Library | None = None) -> Circuit:
    """A 1-bit ALU slice: op selects among AND/OR/XOR/ADD of a, b.

    Inputs: ``a b cin op0 op1``; outputs: ``out cout``.
    """
    lib = library or unit_library()
    c = Circuit(
        "alu_slice",
        inputs=("a", "b", "cin", "op0", "op1"),
        outputs=("out", "cout"),
    )
    c.add_gate("f_and", lib.get("AND2"), ("a", "b"))
    c.add_gate("f_or", lib.get("OR2"), ("a", "b"))
    c.add_gate("f_xor", lib.get("XOR2"), ("a", "b"))
    c.add_gate("f_sum", lib.get("XOR2"), ("f_xor", "cin"))
    c.add_gate("cx", lib.get("AND2"), ("f_xor", "cin"))
    c.add_gate("cout", lib.get("OR2"), ("f_and", "cx"))
    # out = op1 ? (op0 ? sum : xor) : (op0 ? or : and)
    c.add_gate("m0", lib.get("MUX2"), ("op0", "f_and", "f_or"))
    c.add_gate("m1", lib.get("MUX2"), ("op0", "f_xor", "f_sum"))
    c.add_gate("out", lib.get("MUX2"), ("op1", "m0", "m1"))
    c.validate()
    return c


def decoder(n: int, library: Library | None = None) -> Circuit:
    """n-to-2^n one-hot decoder with an enable input."""
    lib = library or unit_library()
    inputs = [f"s{i}" for i in range(n)] + ["en"]
    outputs = [f"d{i}" for i in range(1 << n)]
    c = Circuit(f"decoder{n}", inputs=inputs, outputs=outputs)
    for i in range(n):
        c.add_gate(f"ns{i}", lib.get("INV"), (f"s{i}",))
    for idx in range(1 << n):
        lits = [
            (f"s{i}" if (idx >> i) & 1 else f"ns{i}") for i in range(n)
        ] + ["en"]
        prev = lits[0]
        for j, net in enumerate(lits[1:]):
            out = f"d{idx}" if j == len(lits) - 2 else f"d{idx}_t{j}"
            c.add_gate(out, lib.get("AND2"), (prev, net))
            prev = out
    c.validate()
    return c


def priority_encoder(n: int, library: Library | None = None) -> Circuit:
    """n-input priority encoder: ``valid`` plus one-hot ``h_i`` for the
    highest asserted request (request ``r{n-1}`` has the highest priority)."""
    lib = library or unit_library()
    inputs = [f"r{i}" for i in range(n)]
    outputs = [f"h{i}" for i in range(n)] + ["valid"]
    c = Circuit(f"prienc{n}", inputs=inputs, outputs=outputs)
    c.add_gate(f"h{n - 1}", lib.get("BUF"), (f"r{n - 1}",))
    blocked = f"r{n - 1}"
    for i in range(n - 2, -1, -1):
        c.add_gate(f"nb{i}", lib.get("INV"), (blocked,))
        c.add_gate(f"h{i}", lib.get("AND2"), (f"r{i}", f"nb{i}"))
        if i > 0:
            c.add_gate(f"blk{i}", lib.get("OR2"), (blocked, f"r{i}"))
            blocked = f"blk{i}"
    prev = f"r{n - 1}"
    for i in range(n - 1):
        c.add_gate(f"v{i}", lib.get("OR2"), (prev, f"r{i}"))
        prev = f"v{i}"
    c.add_gate("valid", lib.get("BUF"), (prev,))
    c.validate()
    return c


def parity_tree(n: int, library: Library | None = None) -> Circuit:
    """Balanced XOR parity tree over n inputs."""
    lib = library or unit_library()
    inputs = [f"x{i}" for i in range(n)]
    c = Circuit(f"parity{n}", inputs=inputs, outputs=("p",))
    level = list(inputs)
    counter = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            name = f"x_{counter}"
            counter += 1
            c.add_gate(name, lib.get("XOR2"), (level[i], level[i + 1]))
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    c.add_gate("p", lib.get("BUF"), (level[0],))
    c.validate()
    return c


def speculative_bypass(library: Library | None = None) -> Circuit:
    """A small datapath with one *false* speed-path (for paths analysis).

    A slow buffered copy ``p4`` of ``x`` and a fast inverted copy ``nx``
    feed a select mux ``m1 = s ? p4 : nx``; a second mux re-merges with the
    fast comparator ``c = x ^ s``: ``y = s ? c : m1``.  The single longest
    structural path ``x -> p1..p4 -> m1(d1) -> y(d0)`` requires ``s = 1``
    at ``m1`` but ``s = 0`` at ``y`` — statically unsensitizable, so the
    path is FALSE and the true arrival of ``y`` is strictly below its
    structural bound.  (Functionally ``y = ~x``.)
    """
    lib = library or unit_library()
    c = Circuit("bypass", inputs=("x", "s"), outputs=("y",))
    c.add_gate("nx", lib.get("INV"), ("x",))
    c.add_gate("p1", lib.get("BUF"), ("x",))
    c.add_gate("p2", lib.get("BUF"), ("p1",))
    c.add_gate("p3", lib.get("BUF"), ("p2",))
    c.add_gate("p4", lib.get("BUF"), ("p3",))
    c.add_gate("c", lib.get("XOR2"), ("x", "s"))
    c.add_gate("m1", lib.get("MUX2"), ("s", "nx", "p4"))
    c.add_gate("y", lib.get("MUX2"), ("s", "m1", "c"))
    c.validate()
    return c


def mux_tree(select_bits: int, library: Library | None = None) -> Circuit:
    """2^k-to-1 multiplexer built from MUX2 cells."""
    lib = library or unit_library()
    data = [f"d{i}" for i in range(1 << select_bits)]
    sels = [f"s{i}" for i in range(select_bits)]
    c = Circuit(f"muxtree{select_bits}", inputs=data + sels, outputs=("z",))
    level = list(data)
    counter = 0
    for bit in range(select_bits):
        nxt = []
        for i in range(0, len(level), 2):
            name = (
                "z" if len(level) == 2 else f"m_{counter}"
            )
            counter += 1
            c.add_gate(name, lib.get("MUX2"), (sels[bit], level[i], level[i + 1]))
            nxt.append(name)
        level = nxt
    c.validate()
    return c

"""Campaign and shard specifications: the deterministic work plan.

A campaign sweeps injected failure modes over circuits and measures how
well the paper's masking circuit ``C~`` repairs the resulting output
errors.  The unit of work is a :class:`ShardSpec` — one (circuit, fault
mode, shard index) cell with its own derived seed — small enough that a
crashed or quarantined worker loses a bounded slice of the campaign, and
fully self-describing so an isolated subprocess can execute it from JSON
alone.

Everything here is deliberately *pure data*: specs round-trip through
JSON (the checkpoint journal stores them verbatim), shard seeds are
derived with SHA-256 so they are stable across interpreters and
``PYTHONHASHSEED`` values, and :func:`plan_campaign` is a deterministic
function of the spec — the foundation for bit-identical resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import CampaignError

#: Journal/report schema version; bump on any incompatible layout change.
SCHEMA_VERSION = 1

#: The injected failure modes the shard executor understands.
FAULT_KINDS = ("delay", "seu", "stuck", "aging", "clock")

#: Default parameters per fault mode; a spec entry overrides per key.
DEFAULT_MODE_PARAMS: dict[str, dict[str, Any]] = {
    # Slow `arcs` randomly chosen speed-path gates by `scale`.
    "delay": {"scale": 2.5, "arcs": 4},
    # One transient bit-flip on a random internal net per vector.
    "seu": {"flips": 1},
    # One random net stuck at a random constant for the whole shard.
    "stuck": {},
    # Age all speed-path gates with a named wearout model at stress time t.
    "aging": {"model": "linear", "rate": 0.1, "t": 8.0},
    # No fault: overclock so natural speed paths miss the sample edge.
    "clock": {"fraction": 0.6},
}


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, tight separators, ASCII only."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def derive_seed(campaign_seed: int, *parts: Any) -> int:
    """A stable 63-bit stream seed from the campaign seed and a label path.

    SHA-256 based so it is identical across processes and platforms —
    shard results must not depend on which worker (or retry) ran them.
    """
    payload = canonical_json([campaign_seed, *parts]).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") >> 1


def normalize_mode(mode: Mapping[str, Any] | str) -> dict[str, Any]:
    """Validate a fault-mode spec and fill in defaulted parameters."""
    if isinstance(mode, str):
        mode = {"kind": mode}
    kind = mode.get("kind")
    if kind not in FAULT_KINDS:
        raise CampaignError(
            f"unknown fault mode {kind!r}; choose from {FAULT_KINDS}"
        )
    merged = dict(DEFAULT_MODE_PARAMS[kind])
    for key, value in mode.items():
        if key == "kind":
            continue
        if key not in merged:
            raise CampaignError(
                f"fault mode {kind!r} has no parameter {key!r} "
                f"(valid: {tuple(merged)})"
            )
        merged[key] = value
    return {"kind": kind, **merged}


def mode_key(mode: Mapping[str, Any]) -> str:
    """Compact stable identifier of a normalized mode, e.g. ``seu(flips=1)``."""
    params = ",".join(
        f"{k}={mode[k]}" for k in sorted(mode) if k != "kind"
    )
    return f"{mode['kind']}({params})"


@dataclass(frozen=True)
class CampaignSpec:
    """The full, JSON-serializable description of a campaign."""

    circuits: tuple[str, ...]
    modes: tuple[dict, ...]
    shards_per_cell: int = 2
    vectors_per_shard: int = 128
    seed: int = 0
    clock_fraction: float = 0.85
    threshold: float = 0.9
    library: str = "lsi10k_like"

    def __post_init__(self) -> None:
        if not self.circuits:
            raise CampaignError("campaign needs at least one circuit")
        if not self.modes:
            raise CampaignError("campaign needs at least one fault mode")
        if self.shards_per_cell <= 0:
            raise CampaignError(
                f"shards_per_cell {self.shards_per_cell} must be positive"
            )
        if self.vectors_per_shard < 0:
            raise CampaignError(
                f"vectors_per_shard {self.vectors_per_shard} must be non-negative"
            )
        if not 0.0 < self.clock_fraction <= 2.0:
            raise CampaignError(
                f"clock_fraction {self.clock_fraction} outside (0, 2]"
            )
        object.__setattr__(
            self, "modes", tuple(normalize_mode(m) for m in self.modes)
        )
        object.__setattr__(self, "circuits", tuple(self.circuits))

    def to_json(self) -> dict:
        return {
            "circuits": list(self.circuits),
            "modes": [dict(m) for m in self.modes],
            "shards_per_cell": self.shards_per_cell,
            "vectors_per_shard": self.vectors_per_shard,
            "seed": self.seed,
            "clock_fraction": self.clock_fraction,
            "threshold": self.threshold,
            "library": self.library,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        try:
            return cls(
                circuits=tuple(data["circuits"]),
                modes=tuple(data["modes"]),
                shards_per_cell=data["shards_per_cell"],
                vectors_per_shard=data["vectors_per_shard"],
                seed=data["seed"],
                clock_fraction=data["clock_fraction"],
                threshold=data["threshold"],
                library=data["library"],
            )
        except KeyError as exc:
            raise CampaignError(
                f"campaign spec missing field {exc.args[0]!r}"
            ) from None

    def fingerprint(self) -> str:
        """SHA-256 of the canonical spec; identifies a campaign across runs."""
        return hashlib.sha256(canonical_json(self.to_json()).encode()).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One isolated slice of work: fully self-describing, deterministic."""

    index: int
    circuit: str
    mode: dict = field(compare=False)
    vectors: int = 128
    seed: int = 0
    clock_fraction: float = 0.85
    threshold: float = 0.9
    library: str = "lsi10k_like"

    @property
    def mode_key(self) -> str:
        return mode_key(self.mode)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "circuit": self.circuit,
            "mode": dict(self.mode),
            "vectors": self.vectors,
            "seed": self.seed,
            "clock_fraction": self.clock_fraction,
            "threshold": self.threshold,
            "library": self.library,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ShardSpec":
        try:
            return cls(
                index=data["index"],
                circuit=data["circuit"],
                mode=normalize_mode(data["mode"]),
                vectors=data["vectors"],
                seed=data["seed"],
                clock_fraction=data["clock_fraction"],
                threshold=data["threshold"],
                library=data["library"],
            )
        except KeyError as exc:
            raise CampaignError(f"shard spec missing field {exc.args[0]!r}") from None


def plan_campaign(spec: CampaignSpec) -> tuple[ShardSpec, ...]:
    """Expand a campaign into its deterministic shard list.

    Shard order — and therefore shard indices and derived seeds — is a pure
    function of the spec: circuits x modes x shard slot, in spec order.
    """
    shards: list[ShardSpec] = []
    for circuit in spec.circuits:
        for mode in spec.modes:
            for slot in range(spec.shards_per_cell):
                index = len(shards)
                shards.append(
                    ShardSpec(
                        index=index,
                        circuit=circuit,
                        mode=mode,
                        vectors=spec.vectors_per_shard,
                        seed=derive_seed(spec.seed, circuit, mode_key(mode), slot),
                        clock_fraction=spec.clock_fraction,
                        threshold=spec.threshold,
                        library=spec.library,
                    )
                )
    return tuple(shards)

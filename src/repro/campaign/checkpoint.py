"""Append-only campaign checkpoint journal (``campaign.ckpt.jsonl``).

One JSON record per line.  The first line is a header binding the journal
to a campaign fingerprint; every completed shard appends a ``shard``
record, every exhausted retry budget a ``quarantine`` record.  Records are
flushed *and fsync'd* before the runner considers the shard durable, so a
SIGKILL at any instant loses at most the in-flight shard.

The loader is exactly as tolerant as a crash requires and no more: a torn
*final* line (the classic kill-during-write artifact) is dropped; garbage
anywhere else — or a header that does not match the campaign being resumed
— raises :class:`~repro.errors.CheckpointError` rather than silently
mis-aggregating someone else's numbers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.campaign.spec import SCHEMA_VERSION, CampaignSpec, canonical_json
from repro.errors import CheckpointError

_METER = obs.get_meter()
_FSYNC_SECONDS = _METER.histogram(
    "repro_campaign_checkpoint_fsync_seconds",
    "flush+fsync latency per journal append",
)


@dataclass
class JournalState:
    """Everything a resume needs to know from an existing journal."""

    spec: CampaignSpec
    fingerprint: str
    n_shards: int
    results: dict[int, dict] = field(default_factory=dict)
    quarantined: dict[int, dict] = field(default_factory=dict)
    dropped_tail: bool = False

    @property
    def done_indices(self) -> frozenset[int]:
        return frozenset(self.results)


def _parse_line(line: str, lineno: int, path: Path) -> dict:
    try:
        record = json.loads(line)
    except ValueError:
        raise CheckpointError(
            f"{path}:{lineno}: corrupt checkpoint record (not JSON)"
        ) from None
    if not isinstance(record, dict) or "kind" not in record:
        raise CheckpointError(f"{path}:{lineno}: malformed checkpoint record")
    return record


def load_journal(path: str | os.PathLike) -> JournalState:
    """Parse a journal; later records for a shard supersede earlier ones."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise CheckpointError(f"{path}: empty checkpoint (no header)")

    dropped_tail = False
    if not text.endswith("\n"):
        # The writer always terminates records; an unterminated tail is a
        # torn write from a kill mid-append.  Drop that record only.
        lines.pop()
        dropped_tail = True
        if not lines:
            raise CheckpointError(f"{path}: checkpoint holds only a torn header")

    header = _parse_line(lines[0], 1, path)
    if header.get("kind") != "header":
        raise CheckpointError(f"{path}: first record is not a campaign header")
    if header.get("schema") != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema {header.get('schema')!r} "
            f"not supported (this build writes {SCHEMA_VERSION})"
        )
    spec = CampaignSpec.from_json(header.get("spec", {}))
    fingerprint = header.get("fingerprint", "")
    if fingerprint != spec.fingerprint():
        raise CheckpointError(
            f"{path}: header fingerprint does not match its own spec "
            "(checkpoint edited or mixed)"
        )

    state = JournalState(
        spec=spec,
        fingerprint=fingerprint,
        n_shards=int(header.get("n_shards", 0)),
        dropped_tail=dropped_tail,
    )
    for lineno, line in enumerate(lines[1:], start=2):
        record = _parse_line(line, lineno, path)
        kind = record["kind"]
        if kind == "shard":
            index = record["shard"]
            state.results[index] = record
            state.quarantined.pop(index, None)
        elif kind == "quarantine":
            index = record["shard"]
            if index not in state.results:
                state.quarantined[index] = record
        else:
            raise CheckpointError(
                f"{path}:{lineno}: unknown record kind {kind!r}"
            )
    return state


class CheckpointWriter:
    """Serialized, durable appends to the journal file."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()

    @classmethod
    def create(
        cls, path: str | os.PathLike, spec: CampaignSpec, n_shards: int
    ) -> "CheckpointWriter":
        """Start a fresh journal; refuses to clobber an existing one."""
        path = Path(path)
        if path.exists():
            raise CheckpointError(
                f"checkpoint {path} already exists; resume it or pick a new path"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        writer = cls(path)
        writer._append(
            {
                "kind": "header",
                "schema": SCHEMA_VERSION,
                "fingerprint": spec.fingerprint(),
                "n_shards": n_shards,
                "spec": spec.to_json(),
            }
        )
        return writer

    def _append(self, record: dict) -> None:
        line = canonical_json(record) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="ascii") as handle:
                handle.write(line)
                if _METER.enabled:
                    t0 = time.perf_counter()
                    handle.flush()
                    os.fsync(handle.fileno())
                    _FSYNC_SECONDS.observe(time.perf_counter() - t0)
                else:
                    handle.flush()
                    os.fsync(handle.fileno())

    def shard_done(
        self,
        index: int,
        attempts: int,
        result: dict,
        obs_record: dict | None = None,
    ) -> None:
        """Journal a completed shard; ``obs_record`` rides along only when
        observability captured one, so obs-off journals are byte-identical
        to pre-observability ones."""
        record = {"kind": "shard", "shard": index, "attempts": attempts,
                  "result": result}
        if obs_record is not None:
            record["obs"] = obs_record
        self._append(record)

    def quarantine(self, index: int, attempts: int, error: str) -> None:
        self._append(
            {"kind": "quarantine", "shard": index, "attempts": attempts,
             "error": error}
        )

"""Live status of a (possibly distributed) campaign: journal + queue.

``repro campaign status CKPT --queue-dir DIR`` renders, while the
campaign runs, what an operator wants to know during a half-the-fleet
outage:

* journal progress — shards done / quarantined / total,
* the work queue — todo / claimed / results, per-lease age and expiry
  (including *why* an expired lease counts as expired),
* every worker that ever heartbeat, classified ``live`` / ``wedged`` /
  ``stale`` / ``dead`` / ``exited`` from heartbeat age and lease
  ownership — a *wedged* worker is alive (fresh heartbeats) but lost the
  lease on the task it thinks it is running,
* protocol counters (claims / steals / dedups / divergences),
* live telemetry, when the fleet runs with ``REPRO_OBS`` on: per-worker
  throughput rates, a fleet ETA, and straggler flags folded read-only
  from the queue's ``telemetry/*.jsonl`` streams
  (:class:`~repro.obs.timeseries.FleetSeries`).

Everything is read-only: status never mutates the queue, so it is safe
to run from any host at any moment, including mid-chaos.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.campaign.checkpoint import load_journal
from repro.campaign.spec import plan_campaign
from repro.errors import CampaignError
from repro.exec.queuedir import QueueSnapshot, WorkQueue
from repro.obs.timeseries import FleetSeries

#: Worker classifications, healthiest first (render order).
WORKER_STATES = ("live", "wedged", "stale", "dead", "exited")


def classify_worker(
    doc: dict, age: float, queue: WorkQueue, snapshot: QueueSnapshot
) -> str:
    """One worker's health from heartbeat age and lease ownership."""
    if doc.get("state") == "exited":
        return "exited"
    policy = queue.policy
    if age <= policy.lease_ttl + policy.clock_skew_grace:
        current = doc.get("current")
        if current:
            lease_owner = None
            for lease in snapshot.leases:
                if lease.get("fingerprint") == current:
                    lease_owner = lease.get("worker")
                    break
            if lease_owner != doc.get("worker"):
                # Heartbeating but no longer holds the lease on the task
                # it believes it is running: the runner is stuck past its
                # budget and the task was (or will be) stolen.  (Workers
                # clear ``current`` with an immediate heartbeat when a task
                # settles, so a healthy finisher does not linger here.)
                return "wedged"
        return "live"
    if age <= policy.max_lease_age:
        return "stale"
    return "dead"


def campaign_status(
    checkpoint: str | os.PathLike,
    queue_dir: str | os.PathLike | None = None,
) -> dict:
    """Point-in-time status document (JSON-serializable).

    The checkpoint journal gives authoritative progress; the queue
    directory (optional — inline/process campaigns have none) adds the
    live distributed view.
    """
    state = load_journal(checkpoint)
    status: dict = {
        "checkpoint": str(checkpoint),
        "fingerprint": state.fingerprint,
        "shards_total": state.n_shards,
        "shards_done": len(state.results),
        "shards_quarantined": len(state.quarantined),
        "percent": round(
            100.0 * len(state.results) / state.n_shards, 1
        ) if state.n_shards else 100.0,
        "queue": None,
    }
    if queue_dir is None:
        return status
    queue = WorkQueue.open(queue_dir)
    snapshot = queue.scan()

    # Map task fingerprints back to shard indices so leases read as
    # "shard 5", not a SHA prefix.  The plan is deterministic, so this
    # is a pure recomputation from the journal header.
    from repro.campaign.runner import _shard_task

    fp_to_shard = {
        _shard_task(shard).fingerprint(): shard.index
        for shard in plan_campaign(state.spec)
    }

    # Live telemetry (present only when workers run with REPRO_OBS on):
    # a read-only one-shot fold of the telemetry streams.
    fleet = FleetSeries.from_queue_dir(queue_dir)
    telemetry = None
    if fleet.workers():
        telemetry = fleet.summary(
            time.time(), remaining=snapshot.todo + snapshot.claimed
        )

    ages = snapshot.worker_ages()
    workers = {}
    for wid, doc in snapshot.workers.items():
        age = ages.get(wid, 0.0)
        current = doc.get("current")
        workers[wid] = {
            "state": classify_worker(doc, age, queue, snapshot),
            "heartbeat_age_seconds": age,
            "tasks_done": int(doc.get("tasks_done", 0)),
            "failures": int(doc.get("failures", 0)),
            "host": doc.get("host"),
            "pid": doc.get("pid"),
            "current_shard": fp_to_shard.get(current) if current else None,
        }
        if telemetry is not None and wid in telemetry["workers"]:
            reported = telemetry["workers"][wid]
            workers[wid]["rate_per_second"] = reported["rate_per_second"]
            workers[wid]["straggler"] = reported["straggler"]
    leases = []
    for lease in snapshot.leases:
        fp = lease.get("fingerprint")
        leases.append({
            "shard": fp_to_shard.get(fp),
            "fingerprint": (fp or "")[:12],
            "worker": lease.get("worker"),
            "attempt": lease.get("attempt", 0),
            "age_seconds": lease.get("age_seconds"),
            "expires_in_seconds": lease.get("expires_in_seconds"),
            "expired": lease.get("expired"),
        })
    status["queue"] = {
        "root": snapshot.root,
        "todo": snapshot.todo,
        "claimed": snapshot.claimed,
        "results": snapshot.done,
        "quarantined": snapshot.quarantined,
        "stopped": snapshot.stopped,
        "workers": workers,
        "leases": leases,
        "counters": snapshot.counters,
        "telemetry": telemetry,
    }
    return status


def render_status_text(status: dict) -> str:
    """Operator-facing rendering of :func:`campaign_status`."""
    lines = [
        f"campaign {status['fingerprint'][:12]}: "
        f"{status['shards_done']}/{status['shards_total']} shards done "
        f"({status['percent']:.1f}%)"
        + (
            f", {status['shards_quarantined']} quarantined"
            if status["shards_quarantined"] else ""
        )
    ]
    queue = status.get("queue")
    if not queue:
        lines.append("(no queue directory: local backend or not started)")
        return "\n".join(lines) + "\n"
    lines.append(
        f"queue {queue['root']}: todo {queue['todo']}, "
        f"claimed {queue['claimed']}, results {queue['results']}"
        + (f", quarantined {queue['quarantined']}"
           if queue["quarantined"] else "")
        + (" [stopped]" if queue["stopped"] else "")
    )
    telemetry = queue.get("telemetry")
    if telemetry:
        fleet = telemetry["fleet"]
        line = f"telemetry: throughput {fleet['rate_per_second']:.2f}/s"
        eta = fleet.get("eta_seconds")
        if eta is not None:
            line += f", eta {eta:.0f}s"
        if fleet["stragglers"]:
            line += ", stragglers: " + ", ".join(fleet["stragglers"])
        lines.append(line)
    workers = queue["workers"]
    if workers:
        lines.append(f"workers ({len(workers)}):")
        order = {state: i for i, state in enumerate(WORKER_STATES)}
        for wid in sorted(
            workers, key=lambda w: (order.get(workers[w]["state"], 99), w)
        ):
            info = workers[wid]
            shard = info["current_shard"]
            rate = info.get("rate_per_second")
            lines.append(
                f"  {wid:28s} {info['state']:7s} "
                f"hb {info['heartbeat_age_seconds']:6.1f}s  "
                f"done {info['tasks_done']:<4d} fail {info['failures']:<3d}"
                + (f" rate {rate:5.2f}/s" if rate is not None else "")
                + (f" shard {shard}" if shard is not None else "")
                + (" STRAGGLER" if info.get("straggler") else "")
            )
    if queue["leases"]:
        lines.append(f"leases ({len(queue['leases'])}):")
        for lease in queue["leases"]:
            shard = lease["shard"]
            name = f"shard {shard}" if shard is not None else lease["fingerprint"]
            expiry = lease.get("expires_in_seconds")
            lines.append(
                f"  {name:14s} worker {str(lease['worker'])[:28]:28s} "
                f"attempt {lease['attempt']}"
                + (f"  expires in {expiry:.1f}s"
                   if isinstance(expiry, (int, float)) else "")
                + (f"  [EXPIRED: {lease['expired']}]"
                   if lease.get("expired") else "")
            )
    counters = queue["counters"]
    lines.append(
        "counters: "
        + ", ".join(f"{k} {v}" for k, v in sorted(counters.items()))
    )
    return "\n".join(lines) + "\n"


def watch_status(
    checkpoint: str | os.PathLike,
    queue_dir: str | os.PathLike | None,
    interval: float,
    echo=print,
    max_rounds: int | None = None,
) -> int:
    """Re-render status every ``interval`` seconds until the campaign is
    complete (all shards settled) or the queue is stopped."""
    if interval <= 0:
        raise CampaignError(f"watch interval {interval} must be positive")
    rounds = 0
    while True:
        if not Path(checkpoint).exists():
            echo(f"waiting for checkpoint {checkpoint} ...")
        else:
            status = campaign_status(checkpoint, queue_dir)
            echo(render_status_text(status).rstrip("\n"))
            settled = (
                status["shards_done"] + status["shards_quarantined"]
                >= status["shards_total"]
            )
            queue = status.get("queue")
            if settled or (queue and queue["stopped"]):
                return 0
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return 0
        time.sleep(interval)
        echo("")


__all__ = [
    "WORKER_STATES",
    "campaign_status",
    "classify_worker",
    "render_status_text",
    "watch_status",
]

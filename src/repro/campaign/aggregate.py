"""Order-independent aggregation of shard results into campaign coverage.

The aggregate is a pure function of (spec, shard results): counts are sums
of per-shard integers, groups follow plan order, output maps are sorted —
so the same set of completed shards produces byte-identical JSON whether
the campaign ran straight through, was resumed three times, or finished
its shards in any interleaving.

Aggregation *degrades gracefully*: missing shards never raise.  They are
listed under ``incomplete_shards`` (quarantined, with their last error, or
simply pending) and every group reports how much of its sample actually
arrived, so partial coverage is explicit rather than silently wrong.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.campaign.spec import SCHEMA_VERSION, CampaignSpec, ShardSpec
from repro.core.report import MaskingEffectiveness
from repro.obs import merge_snapshots


def _merge_outputs(
    into: dict[str, dict[str, int]], outputs: Mapping[str, Mapping[str, int]]
) -> None:
    for name, counters in outputs.items():
        row = into.setdefault(
            name, {"unmasked": 0, "masked": 0, "recovered": 0, "introduced": 0}
        )
        for key in row:
            row[key] += int(counters.get(key, 0))


def _effectiveness(vectors: int, unmasked: int, masked: int) -> dict:
    eff = MaskingEffectiveness(
        vectors=vectors, unmasked_errors=unmasked, masked_errors=masked
    )
    return {
        "vectors": eff.vectors,
        "unmasked_errors": eff.unmasked_errors,
        "masked_errors": eff.masked_errors,
        "recovered": eff.recovered,
        "effectiveness_percent": round(eff.effectiveness_percent, 4),
    }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (deterministic)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank - 1))]


def _telemetry(
    shard_obs: Mapping[int, dict], quarantined: Mapping[int, dict]
) -> dict:
    """Fold per-shard telemetry records into the aggregate's section.

    A pure, order-independent function of the journaled records: shard
    wall times come sorted, metric snapshots merge commutatively, so a
    resumed campaign reporting from the same journal emits identical
    bytes.  Wall times themselves are of course wall times — two separate
    executions differ here even when every shard result matches, which is
    why the section only exists when observability recorded something.
    """
    walls = sorted(
        round(float(shard_obs[i].get("wall_seconds", 0.0)), 6)
        for i in shard_obs
    )
    retries = sum(
        max(0, int(shard_obs[i].get("attempts", 1)) - 1) for i in shard_obs
    )
    section: dict = {
        "shards_with_telemetry": len(shard_obs),
        "wall_seconds": {
            "count": len(walls),
            "total": round(sum(walls), 6),
            "mean": round(sum(walls) / len(walls), 6) if walls else 0.0,
            "p50": _percentile(walls, 50),
            "p90": _percentile(walls, 90),
            "p99": _percentile(walls, 99),
            "max": walls[-1] if walls else 0.0,
        },
        "retries": retries,
        "quarantined": len(quarantined),
    }
    snaps = [
        shard_obs[i]["metrics"]
        for i in sorted(shard_obs)
        if isinstance(shard_obs[i].get("metrics"), dict)
    ]
    if snaps:
        merged = merge_snapshots(snaps)
        counters = {
            name: dict(entry["series"])
            for name, entry in merged["metrics"].items()
            if entry["kind"] == "counter"
        }
        if counters:
            section["counters"] = counters
    return section


def aggregate_results(
    spec: CampaignSpec,
    plan: Sequence[ShardSpec],
    results: Mapping[int, dict],
    quarantined: Mapping[int, dict] | None = None,
    shard_obs: Mapping[int, dict] | None = None,
) -> dict:
    """Fold shard results into the deterministic campaign aggregate.

    ``shard_obs`` maps shard index to the journaled telemetry record
    (wall seconds, attempts, optional worker metric snapshot).  When any
    are present the aggregate gains a ``telemetry`` section; with
    observability off the output is byte-identical to earlier releases.
    """
    quarantined = quarantined or {}
    group_order: list[tuple[str, str]] = []
    group_shards: dict[tuple[str, str], list[ShardSpec]] = {}
    for shard in plan:
        key = (shard.circuit, shard.mode_key)
        if key not in group_shards:
            group_order.append(key)
            group_shards[key] = []
        group_shards[key].append(shard)

    groups = []
    total_vectors = total_unmasked = total_masked = 0
    for circuit, mkey in group_order:
        shards = group_shards[(circuit, mkey)]
        done = [results[s.index] for s in shards if s.index in results]
        vectors = sum(r["vectors"] for r in done)
        pairs_un = sum(r["pairs_unmasked_errors"] for r in done)
        pairs_mk = sum(r["pairs_masked_errors"] for r in done)
        outputs: dict[str, dict[str, int]] = {}
        for record in done:
            _merge_outputs(outputs, record["outputs"])
        per_output = {
            name: {
                **outputs[name],
                "effectiveness_percent": round(
                    MaskingEffectiveness(
                        vectors, outputs[name]["unmasked"], outputs[name]["masked"]
                    ).effectiveness_percent,
                    4,
                ),
            }
            for name in sorted(outputs)
        }
        groups.append(
            {
                "circuit": circuit,
                "mode": dict(shards[0].mode),
                "mode_key": mkey,
                "shards_total": len(shards),
                "shards_done": len(done),
                **_effectiveness(vectors, pairs_un, pairs_mk),
                "outputs": per_output,
            }
        )
        total_vectors += vectors
        total_unmasked += pairs_un
        total_masked += pairs_mk

    incomplete = []
    for shard in plan:
        if shard.index in results:
            continue
        record = quarantined.get(shard.index)
        entry = {
            "shard": shard.index,
            "circuit": shard.circuit,
            "mode_key": shard.mode_key,
            "status": "quarantined" if record else "pending",
        }
        if record:
            entry["attempts"] = record.get("attempts", 0)
            entry["error"] = record.get("error", "")
        incomplete.append(entry)

    aggregate = {
        "schema": SCHEMA_VERSION,
        "campaign": {
            "fingerprint": spec.fingerprint(),
            "seed": spec.seed,
            "n_shards": len(plan),
            "circuits": list(spec.circuits),
            "clock_fraction": spec.clock_fraction,
            "threshold": spec.threshold,
            "library": spec.library,
        },
        "complete": len(incomplete) == 0,
        "shards_done": len(plan) - len(incomplete),
        "totals": _effectiveness(total_vectors, total_unmasked, total_masked),
        "groups": groups,
        "incomplete_shards": incomplete,
    }
    if shard_obs:
        aggregate["telemetry"] = _telemetry(shard_obs, quarantined)
    return aggregate

"""Resilient fault-injection campaigns over the compiled engine.

``repro.campaign`` measures the paper's claim at scale: sweep injected
failure modes — speed-path delay perturbation, SEU bit-flips, stuck-at
faults, wearout drift, clock-period squeeze — across circuits, and count
how many sampled output errors the masking mux patch repairs.

The subsystem is built around a *resilient runner*: deterministic seeded
shards executed in isolated worker subprocesses, per-task timeouts,
bounded retries with exponential backoff and jitter, quarantine for
persistently failing shards, and an append-only fsync'd checkpoint journal
that makes a killed campaign resume to bit-identical aggregates.  See
DESIGN.md §10 for the architecture.

With ``backend="queue"`` the same campaign runs on an *elastic fleet*:
shards flow through a shared-directory work queue (DESIGN.md §15) that
any number of ``repro worker`` processes — on any host mounting the
directory — serve, join, and abandon at any time; lease steals and
first-write-wins result dedup keep the aggregate byte-identical to a
single-host run even when half the fleet is lost mid-campaign.
"""

from repro.campaign.aggregate import aggregate_results
from repro.campaign.checkpoint import CheckpointWriter, JournalState, load_journal
from repro.campaign.report import render_campaign_json, render_campaign_text
from repro.campaign.runner import (
    CAMPAIGN_BACKENDS,
    CampaignOutcome,
    RunnerConfig,
    resume_campaign,
    run_campaign,
)
from repro.campaign.shard import run_shard
from repro.campaign.sizing import (
    ShardTiming,
    autoshard_spec,
    shard_timing,
    suggest_spec,
)
from repro.campaign.smoke import (
    distributed_spec,
    run_distributed_smoke,
    run_smoke,
    smoke_spec,
)
from repro.campaign.status import (
    WORKER_STATES,
    campaign_status,
    render_status_text,
    watch_status,
)
from repro.campaign.spec import (
    DEFAULT_MODE_PARAMS,
    FAULT_KINDS,
    SCHEMA_VERSION,
    CampaignSpec,
    ShardSpec,
    derive_seed,
    mode_key,
    plan_campaign,
)

__all__ = [
    "SCHEMA_VERSION",
    "FAULT_KINDS",
    "DEFAULT_MODE_PARAMS",
    "CampaignSpec",
    "ShardSpec",
    "plan_campaign",
    "mode_key",
    "derive_seed",
    "run_shard",
    "RunnerConfig",
    "CampaignOutcome",
    "run_campaign",
    "resume_campaign",
    "CheckpointWriter",
    "JournalState",
    "load_journal",
    "aggregate_results",
    "render_campaign_json",
    "render_campaign_text",
    "run_smoke",
    "smoke_spec",
    "CAMPAIGN_BACKENDS",
    "WORKER_STATES",
    "campaign_status",
    "render_status_text",
    "watch_status",
    "ShardTiming",
    "shard_timing",
    "suggest_spec",
    "autoshard_spec",
    "distributed_spec",
    "run_distributed_smoke",
]

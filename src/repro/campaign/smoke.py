"""End-to-end campaign smoke drill: tiny campaign, real process death.

Three phases, all on one small spec:

1. **baseline** — run with a worker SIGKILLed on its first attempt; the
   retry absorbs the crash and the campaign completes.
2. **wound** — fresh checkpoint, one shard's worker SIGKILLed on *every*
   attempt; the shard is quarantined and the report lists it under
   ``incomplete_shards`` without failing the run.
3. **heal** — resume the wounded checkpoint with the drill disabled; the
   final aggregate JSON must be byte-identical to the baseline's.

This is what `make campaign-smoke` and the CI campaign job execute.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Callable

from repro.campaign.report import render_campaign_json
from repro.campaign.runner import RunnerConfig, resume_campaign, run_campaign
from repro.campaign.spec import CampaignSpec

#: Shard the wound phase crashes forever (last shard of the tiny plan).
_WOUNDED_SHARD = 3


def smoke_spec() -> CampaignSpec:
    return CampaignSpec(
        circuits=("comparator2",),
        modes=({"kind": "delay"}, {"kind": "seu"}),
        shards_per_cell=2,
        vectors_per_shard=16,
        seed=7,
        clock_fraction=0.9,
    )


def run_smoke(workdir: str | None = None, echo: Callable[[str], None] = print) -> int:
    """Run the drill; returns 0 on success, 1 with a diagnostic otherwise."""
    spec = smoke_spec()
    config = RunnerConfig(
        workers=2,
        task_timeout=120.0,
        max_retries=2,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    with tempfile.TemporaryDirectory(prefix="repro-campaign-smoke-") as tmp:
        base = Path(workdir) if workdir else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)

        echo("phase 1/3: baseline with worker SIGKILLed on first attempt ...")
        baseline = run_campaign(
            spec,
            base / "baseline.ckpt.jsonl",
            config,
            sabotage={1: {"mode": "kill", "attempts": 1}},
        )
        if not baseline.complete:
            echo("FAIL: baseline did not complete despite retry budget")
            return 1
        if baseline.aggregate["totals"]["unmasked_errors"] == 0:
            echo("FAIL: baseline injected no errors; smoke spec too gentle")
            return 1

        echo("phase 2/3: campaign with one always-crashing shard ...")
        wounded = run_campaign(
            spec,
            base / "wounded.ckpt.jsonl",
            RunnerConfig(
                workers=2,
                task_timeout=120.0,
                max_retries=1,
                backoff_base=0.05,
                backoff_cap=0.1,
            ),
            sabotage={_WOUNDED_SHARD: {"mode": "kill"}},
        )
        if wounded.complete:
            echo("FAIL: wounded run completed; sabotage did not bite")
            return 1
        quarantined = [
            e
            for e in wounded.aggregate["incomplete_shards"]
            if e["shard"] == _WOUNDED_SHARD and e["status"] == "quarantined"
        ]
        if not quarantined:
            echo("FAIL: crashed shard missing from incomplete_shards")
            return 1

        echo("phase 3/3: resume the wounded checkpoint, drill disabled ...")
        healed = resume_campaign(base / "wounded.ckpt.jsonl", config)
        if not healed.complete:
            echo("FAIL: resume did not complete the campaign")
            return 1
        if render_campaign_json(healed.aggregate) != render_campaign_json(
            baseline.aggregate
        ):
            echo("FAIL: resumed aggregate differs from uninterrupted baseline")
            return 1

        totals = healed.aggregate["totals"]
        echo(
            "campaign smoke OK: "
            f"{healed.aggregate['shards_done']} shards, "
            f"{totals['unmasked_errors']} injected errors, "
            f"{totals['effectiveness_percent']:.1f}% masked, "
            "resume byte-identical"
        )
    return 0

"""End-to-end campaign smoke drills: tiny campaigns, real process death.

:func:`run_smoke` (``make campaign-smoke``) — three phases, one spec:

1. **baseline** — run with a worker SIGKILLed on its first attempt; the
   retry absorbs the crash and the campaign completes.
2. **wound** — fresh checkpoint, one shard's worker SIGKILLed on *every*
   attempt; the shard is quarantined and the report lists it under
   ``incomplete_shards`` without failing the run.
3. **heal** — resume the wounded checkpoint with the drill disabled; the
   final aggregate JSON must be byte-identical to the baseline's.

:func:`run_distributed_smoke` (``make distributed-smoke``) — the elastic
fleet drill the queue backend exists for:

1. **baseline** — the same campaign single-host, inline.
2. **chaos** — four queue workers, respawn disabled (a killed worker is
   a lost host): two workers are SIGKILLed mid-lease, a third wedges
   (hangs past its task budget while still heartbeating).  A sampler
   thread watches ``campaign_status`` live while this happens.
3. **verify** — the campaign must complete with ``incomplete_shards ==
   []``, the aggregate must be byte-identical to the inline baseline's,
   the queue must have journaled the steals, and the status view must
   have shown lost workers *while the campaign ran*.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path
from typing import Callable

from repro.campaign.report import render_campaign_json
from repro.campaign.runner import RunnerConfig, resume_campaign, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.status import campaign_status, render_status_text

#: Shard the wound phase crashes forever (last shard of the tiny plan).
_WOUNDED_SHARD = 3


def _comparable_json(aggregate: dict) -> str:
    """Aggregate rendering for byte-identity checks.

    The ``telemetry`` section is dropped before comparing: it derives
    from wall-clock timings (percentiles, rates) that legitimately differ
    between runs, while every *result* byte must still match.  With
    ``REPRO_OBS`` off the section is absent and this is exactly
    :func:`render_campaign_json`.
    """
    doc = {k: v for k, v in aggregate.items() if k != "telemetry"}
    return render_campaign_json(doc)


def smoke_spec() -> CampaignSpec:
    return CampaignSpec(
        circuits=("comparator2",),
        modes=({"kind": "delay"}, {"kind": "seu"}),
        shards_per_cell=2,
        vectors_per_shard=16,
        seed=7,
        clock_fraction=0.9,
    )


def run_smoke(workdir: str | None = None, echo: Callable[[str], None] = print) -> int:
    """Run the drill; returns 0 on success, 1 with a diagnostic otherwise."""
    spec = smoke_spec()
    config = RunnerConfig(
        workers=2,
        task_timeout=120.0,
        max_retries=2,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    with tempfile.TemporaryDirectory(prefix="repro-campaign-smoke-") as tmp:
        base = Path(workdir) if workdir else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)

        echo("phase 1/3: baseline with worker SIGKILLed on first attempt ...")
        baseline = run_campaign(
            spec,
            base / "baseline.ckpt.jsonl",
            config,
            sabotage={1: {"mode": "kill", "attempts": 1}},
        )
        if not baseline.complete:
            echo("FAIL: baseline did not complete despite retry budget")
            return 1
        if baseline.aggregate["totals"]["unmasked_errors"] == 0:
            echo("FAIL: baseline injected no errors; smoke spec too gentle")
            return 1

        echo("phase 2/3: campaign with one always-crashing shard ...")
        wounded = run_campaign(
            spec,
            base / "wounded.ckpt.jsonl",
            RunnerConfig(
                workers=2,
                task_timeout=120.0,
                max_retries=1,
                backoff_base=0.05,
                backoff_cap=0.1,
            ),
            sabotage={_WOUNDED_SHARD: {"mode": "kill"}},
        )
        if wounded.complete:
            echo("FAIL: wounded run completed; sabotage did not bite")
            return 1
        quarantined = [
            e
            for e in wounded.aggregate["incomplete_shards"]
            if e["shard"] == _WOUNDED_SHARD and e["status"] == "quarantined"
        ]
        if not quarantined:
            echo("FAIL: crashed shard missing from incomplete_shards")
            return 1

        echo("phase 3/3: resume the wounded checkpoint, drill disabled ...")
        healed = resume_campaign(base / "wounded.ckpt.jsonl", config)
        if not healed.complete:
            echo("FAIL: resume did not complete the campaign")
            return 1
        if _comparable_json(healed.aggregate) != _comparable_json(
            baseline.aggregate
        ):
            echo("FAIL: resumed aggregate differs from uninterrupted baseline")
            return 1

        totals = healed.aggregate["totals"]
        echo(
            "campaign smoke OK: "
            f"{healed.aggregate['shards_done']} shards, "
            f"{totals['unmasked_errors']} injected errors, "
            f"{totals['effectiveness_percent']:.1f}% masked, "
            "resume byte-identical"
        )
    return 0


#: Shards the chaos phase sabotages (distinct workers absorb each one).
_KILLED_SHARDS = (1, 5)
_WEDGED_SHARD = 3


def distributed_spec() -> CampaignSpec:
    """Slightly wider than :func:`smoke_spec` so work remains to steal."""
    return CampaignSpec(
        circuits=("comparator2",),
        modes=({"kind": "delay"}, {"kind": "seu"}),
        shards_per_cell=4,
        vectors_per_shard=16,
        seed=11,
        clock_fraction=0.9,
    )


def run_distributed_smoke(
    workdir: str | None = None, echo: Callable[[str], None] = print
) -> int:
    """Run the elastic-fleet drill; 0 on success, 1 with a diagnostic."""
    spec = distributed_spec()
    with tempfile.TemporaryDirectory(prefix="repro-distributed-smoke-") as tmp:
        base = Path(workdir) if workdir else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)

        echo("phase 1/3: single-host inline baseline ...")
        baseline = run_campaign(
            spec, base / "inline.ckpt.jsonl", RunnerConfig(workers=0)
        )
        if not baseline.complete:
            echo("FAIL: inline baseline did not complete")
            return 1
        baseline_json = _comparable_json(baseline.aggregate)

        echo(
            "phase 2/3: 4 queue workers, no respawn; SIGKILL shards "
            f"{list(_KILLED_SHARDS)} mid-lease, wedge shard {_WEDGED_SHARD} ..."
        )
        queue_dir = base / "queue"
        checkpoint = base / "distributed.ckpt.jsonl"
        config = RunnerConfig(
            workers=4,
            task_timeout=6.0,
            max_retries=3,
            backoff_base=0.05,
            backoff_cap=0.2,
            backend="queue",
            queue_dir=str(queue_dir),
            lease_ttl=1.5,
            queue_respawn=False,
        )
        sabotage: dict[int, dict] = {
            shard: {"mode": "kill", "attempts": 1} for shard in _KILLED_SHARDS
        }
        sabotage[_WEDGED_SHARD] = {
            "mode": "hang", "seconds": 120.0, "attempts": 1,
        }

        samples: list[dict] = []
        sampler_stop = threading.Event()

        def _sample() -> None:
            # A real operator runs `repro campaign status` from another
            # host; the queue may not even exist yet when we first look.
            while not sampler_stop.is_set():
                try:
                    samples.append(campaign_status(checkpoint, queue_dir))
                except Exception:
                    pass
                sampler_stop.wait(0.3)

        sampler = threading.Thread(target=_sample, daemon=True)
        sampler.start()
        try:
            outcome = run_campaign(spec, checkpoint, config, sabotage=sabotage)
        finally:
            sampler_stop.set()
            sampler.join(timeout=5.0)

        echo("phase 3/3: verifying completion, identity, and status view ...")
        if not outcome.complete:
            echo("FAIL: distributed campaign did not complete")
            return 1
        if outcome.aggregate["incomplete_shards"]:
            echo(
                "FAIL: incomplete shards after chaos: "
                f"{outcome.aggregate['incomplete_shards']}"
            )
            return 1
        if _comparable_json(outcome.aggregate) != baseline_json:
            echo("FAIL: distributed aggregate differs from inline baseline")
            return 1

        final = campaign_status(checkpoint, queue_dir)
        counters = final["queue"]["counters"]
        if counters.get("steals", 0) < len(_KILLED_SHARDS) + 1:
            echo(f"FAIL: expected >= 3 lease steals, saw {counters}")
            return 1
        lost = [
            wid
            for wid, info in final["queue"]["workers"].items()
            if info["state"] in ("dead", "stale", "wedged")
        ]
        if len(lost) < len(_KILLED_SHARDS):
            echo(f"FAIL: lost workers not visible in status: {final['queue']['workers']}")
            return 1
        live_views = [
            s for s in samples
            if s.get("queue") and not s["queue"]["stopped"]
            and (
                s["queue"]["counters"].get("steals", 0) > 0
                or any(
                    w["state"] in ("dead", "stale", "wedged")
                    for w in s["queue"]["workers"].values()
                )
            )
        ]
        if not live_views:
            echo("FAIL: status never showed the outage while it happened")
            return 1
        echo("mid-run status as the operator saw it:")
        for line in render_status_text(live_views[-1]).rstrip().splitlines():
            echo(f"  {line}")

        echo(
            "distributed smoke OK: "
            f"{outcome.aggregate['shards_done']} shards on a fleet that "
            f"lost {len(lost)} of 4 workers, {counters.get('steals', 0)} "
            "leases stolen, aggregate byte-identical to single-host run"
        )
    return 0

"""Single-shot campaign worker: one shard spec in, one result out.

Runs as ``python -m repro.campaign.worker``.  The parent writes a JSON
request on stdin and reads a JSON response on stdout; anything that goes
wrong — a crash, an OOM kill, a hang past the runner's timeout — costs
exactly this process and therefore exactly one shard attempt.

The request may carry a ``sabotage`` directive.  That is the campaign's
built-in fault drill: CI and the kill-and-resume tests use it to make a
worker SIGKILL itself, hang, or exit nonzero on demand, proving the
runner's isolation/retry/quarantine story against *real* process death
rather than mocks.  Sabotage is a runner option, never part of the shard
spec, so checkpoints and fingerprints are untouched by drills.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time

from repro import obs
from repro.campaign.shard import run_shard
from repro.campaign.spec import SCHEMA_VERSION, ShardSpec
from repro.errors import ReproError

#: Sabotage directives the drill understands.
SABOTAGE_MODES = ("kill", "hang", "exit")


def apply_sabotage(directive: dict | None, attempt: int) -> None:
    """Carry out a fault drill if it applies to this attempt."""
    if not directive:
        return
    if attempt >= int(directive.get("attempts", 1 << 30)):
        return
    mode = directive.get("mode")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(float(directive.get("seconds", 3600.0)))
    elif mode == "exit":
        sys.exit(int(directive.get("code", 3)))
    else:
        raise ValueError(
            f"unknown sabotage mode {mode!r}; choose from {SABOTAGE_MODES}"
        )


def main() -> int:
    try:
        request = json.load(sys.stdin)
    except ValueError:
        print(json.dumps({"error": "worker request is not valid JSON"}))
        return 1
    attempt = int(request.get("attempt", 0))
    apply_sabotage(request.get("sabotage"), attempt)
    try:
        shard = ShardSpec.from_json(request["shard"])
        started = time.perf_counter()
        with obs.get_tracer("campaign").span(
            "campaign.worker_shard",
            shard=shard.index,
            circuit=shard.circuit,
            mode=shard.mode_key,
            attempt=attempt,
        ):
            result = run_shard(shard)
        wall = time.perf_counter() - started
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        # A deterministic shard failure: report it as data so the runner
        # can quarantine immediately instead of burning retries.
        print(json.dumps({"schema": SCHEMA_VERSION,
                          "error": f"{type(exc).__name__}: {exc}"}))
        return 1
    response: dict = {"schema": SCHEMA_VERSION, "result": result}
    if obs.enabled():
        # Ship this process's telemetry back across the stdio protocol so
        # the runner can stitch worker spans into one campaign timeline.
        response["obs"] = {
            "wall_seconds": round(wall, 6),
            "spans": obs.span_records(),
            "metrics": obs.metrics_snapshot(),
        }
    print(json.dumps(response))
    return 0


if __name__ == "__main__":
    sys.exit(main())

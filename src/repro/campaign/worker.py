"""Campaign shard task: the ``campaign.shard`` runner for repro.exec.

:func:`run_shard_task` / :func:`shard_task_span` are the registry entries
the generic execution substrate resolves — the persistent worker pool
(:mod:`repro.exec.worker`) calls them for every ``campaign.shard`` task,
wrapping the run in the same ``campaign.worker_shard`` span the original
single-shot worker opened.

The single-shot protocol (``python -m repro.campaign.worker``: one JSON
request on stdin, one response on stdout, exit nonzero on deterministic
failure) is kept as a compatibility shim for drills and ad-hoc debugging;
the campaign runner itself now dispatches through the pool.

Sabotage directives (SIGKILL self, hang, exit nonzero) live in
:mod:`repro.exec.worker` now; the names are re-exported here unchanged.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Mapping

from repro import obs
from repro.campaign.shard import run_shard
from repro.campaign.spec import SCHEMA_VERSION, ShardSpec
from repro.errors import ReproError
from repro.exec.protocol import SABOTAGE_MODES, apply_sabotage

__all__ = [
    "SABOTAGE_MODES",
    "apply_sabotage",
    "run_shard_task",
    "shard_task_span",
    "main",
]


def run_shard_task(payload: dict) -> dict:
    """Registry runner for ``campaign.shard``: payload holds the shard JSON."""
    return run_shard(ShardSpec.from_json(payload["shard"]))


def shard_task_span(
    payload: dict, attempt: int
) -> tuple[str, str, Mapping[str, Any]]:
    """Worker-span factory for ``campaign.shard`` tasks."""
    shard = payload.get("shard") or {}
    attrs: dict[str, Any] = {
        "shard": shard.get("index"),
        "circuit": shard.get("circuit"),
        "attempt": attempt,
    }
    try:
        attrs["mode"] = ShardSpec.from_json(shard).mode_key
    except ReproError:
        pass
    return ("campaign", "campaign.worker_shard", attrs)


def main() -> int:
    try:
        request = json.load(sys.stdin)
    except ValueError:
        print(json.dumps({"error": "worker request is not valid JSON"}))
        return 1
    attempt = int(request.get("attempt", 0))
    apply_sabotage(request.get("sabotage"), attempt)
    try:
        shard = ShardSpec.from_json(request["shard"])
        started = time.perf_counter()
        with obs.get_tracer("campaign").span(
            "campaign.worker_shard",
            shard=shard.index,
            circuit=shard.circuit,
            mode=shard.mode_key,
            attempt=attempt,
        ):
            result = run_shard(shard)
        wall = time.perf_counter() - started
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        # A deterministic shard failure: report it as data so the runner
        # can quarantine immediately instead of burning retries.
        print(json.dumps({"schema": SCHEMA_VERSION,
                          "error": f"{type(exc).__name__}: {exc}"}))
        return 1
    response: dict = {"schema": SCHEMA_VERSION, "result": result}
    if obs.enabled():
        # Ship this process's telemetry back across the stdio protocol so
        # the runner can stitch worker spans into one campaign timeline.
        response["obs"] = {
            "wall_seconds": round(wall, 6),
            "spans": obs.span_records(),
            "metrics": obs.metrics_snapshot(),
        }
    print(json.dumps(response))
    return 0


if __name__ == "__main__":
    sys.exit(main())

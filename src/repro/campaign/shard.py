"""Deterministic execution of one campaign shard.

:func:`run_shard` is a *pure function* of its :class:`ShardSpec`: every
random choice (vector pairs, struck nets, perturbed arcs) comes from one
``random.Random`` seeded with the shard's SHA-derived seed, so a retry, a
different worker, or a resumed campaign reproduces bit-identical counts.

The measurement itself is the paper's question asked under adversity: with
a failure mode injected into the design, how many output errors reach the
sampling flops *before* the masking mux patch, and how many survive *after*
it?  Timing modes (``delay``, ``aging``, ``clock``) sample two-vector
waveforms at the clock edge; value modes (``seu``, ``stuck``) compare
zero-delay evaluations against the fault-free reference.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.benchcircuits import circuit_by_name
from repro.campaign.spec import SCHEMA_VERSION, ShardSpec
from repro.core.integrate import MaskedDesign, build_masked_design
from repro.core.masking import synthesize_masking
from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import CampaignError, ReproError
from repro.netlist import builtin_library
from repro.netlist.circuit import Circuit
from repro.sim.aging import aging_model, speed_path_gates
from repro.sim.eventsim import two_vector_waveforms
from repro.sim.faults import eval_with_faults

#: Per-process cache of synthesized masked designs; keyed by the shard
#: fields that determine the synthesis.  Workers run one shard per process,
#: but the inline runner and tests execute many shards in-process.
_design_cache: dict[tuple, tuple[Circuit, MaskedDesign]] = {}


def _masked_design(shard: ShardSpec) -> tuple[Circuit, MaskedDesign]:
    key = (shard.circuit, shard.library, shard.threshold)
    cached = _design_cache.get(key)
    if cached is None:
        library = builtin_library(shard.library)
        circuit = circuit_by_name(shard.circuit, library)
        masking = synthesize_masking(circuit, library, threshold=shard.threshold)
        cached = (circuit, build_masked_design(masking))
        _design_cache[key] = cached
    return cached


def _rng_pattern(rng: random.Random, inputs) -> dict[str, bool]:
    return {net: bool(rng.getrandbits(1)) for net in inputs}


def _delay_scales(
    shard: ShardSpec, circuit: Circuit, rng: random.Random
) -> dict[str, float]:
    """Gate -> delay-scale map for the shard's timing fault, {} for none."""
    mode = shard.mode
    kind = mode["kind"]
    if kind == "clock":
        return {}
    if kind == "delay":
        scale = float(mode["scale"])
        pool = sorted(speed_path_gates(circuit, threshold=shard.threshold))
        if not pool:
            return {}
        count = min(int(mode["arcs"]), len(pool))
        return {g: scale for g in rng.sample(pool, count)}
    # aging: every speed-path gate drifts by the model's scale at time t.
    model = aging_model(mode["model"], rate=float(mode["rate"]))
    scale = model.scale_at(float(mode["t"]))
    pool = speed_path_gates(circuit, threshold=shard.threshold)
    return {g: scale for g in pool}


def _timing_shard(
    shard: ShardSpec,
    circuit: Circuit,
    design: MaskedDesign,
    rng: random.Random,
) -> tuple[dict[str, dict[str, int]], int, int, dict]:
    """delay/aging/clock: sample faulty waveforms at the clock edge."""
    compiled_good = compile_circuit(circuit)
    delta = compiled_good.critical_delay()
    if shard.mode["kind"] == "clock":
        fraction = float(shard.mode["fraction"])
    else:
        fraction = shard.clock_fraction
    clock = int(fraction * delta)
    masked_clock = clock + design.mux_delay

    scales = _delay_scales(shard, circuit, rng)
    faulty: CompiledCircuit = (
        compiled_good.with_delay_scales(scales) if scales else compiled_good
    )
    compiled_masked = compile_circuit(design.circuit)
    faulty_masked: CompiledCircuit = (
        compiled_masked.with_delay_scales(scales) if scales else compiled_masked
    )

    counts = {y: {"unmasked": 0, "masked": 0, "recovered": 0, "introduced": 0}
              for y in circuit.outputs}
    pairs_unmasked = pairs_masked = 0
    for _ in range(shard.vectors):
        v1 = _rng_pattern(rng, circuit.inputs)
        v2 = _rng_pattern(rng, circuit.inputs)
        reference = compiled_good.eval_pattern(v2)
        ref = dict(zip(compiled_good.net_names, reference))
        waves = two_vector_waveforms(faulty, v1, v2)
        masked_waves = two_vector_waveforms(faulty_masked, v1, v2)
        any_un = any_mk = False
        for y in circuit.outputs:
            good = bool(ref[y])
            unmasked_err = waves[y].value_at(clock) != good
            masked_err = (
                masked_waves[design.output_map[y]].value_at(masked_clock) != good
            )
            _tally(counts[y], unmasked_err, masked_err)
            any_un = any_un or unmasked_err
            any_mk = any_mk or masked_err
        pairs_unmasked += any_un
        pairs_masked += any_mk
    detail = {"clock": clock, "masked_clock": masked_clock,
              "scaled_gates": sorted(scales)}
    return counts, pairs_unmasked, pairs_masked, detail


def _value_shard(
    shard: ShardSpec,
    circuit: Circuit,
    design: MaskedDesign,
    rng: random.Random,
) -> tuple[dict[str, dict[str, int]], int, int, dict]:
    """seu/stuck: zero-delay evaluation with injected net faults."""
    kind = shard.mode["kind"]
    gate_pool = sorted(circuit.gates)
    if not gate_pool:
        raise CampaignError(f"circuit {shard.circuit!r} has no gates to fault")
    stuck: dict[str, bool] = {}
    if kind == "stuck":
        stuck = {rng.choice(gate_pool): bool(rng.getrandbits(1))}
    flips_per_vector = int(shard.mode.get("flips", 1)) if kind == "seu" else 0

    compiled_good = compile_circuit(circuit)
    counts = {y: {"unmasked": 0, "masked": 0, "recovered": 0, "introduced": 0}
              for y in circuit.outputs}
    pairs_unmasked = pairs_masked = 0
    for _ in range(shard.vectors):
        pattern = _rng_pattern(rng, circuit.inputs)
        flips = (
            rng.sample(gate_pool, min(flips_per_vector, len(gate_pool)))
            if flips_per_vector
            else ()
        )
        ref = dict(zip(compiled_good.net_names, compiled_good.eval_pattern(pattern)))
        faulty = eval_with_faults(circuit, pattern, flips=flips, stuck=stuck)
        faulty_masked = eval_with_faults(
            design.circuit, pattern, flips=flips, stuck=stuck
        )
        any_un = any_mk = False
        for y in circuit.outputs:
            good = bool(ref[y])
            unmasked_err = faulty[y] != good
            masked_err = faulty_masked[design.output_map[y]] != good
            _tally(counts[y], unmasked_err, masked_err)
            any_un = any_un or unmasked_err
            any_mk = any_mk or masked_err
        pairs_unmasked += any_un
        pairs_masked += any_mk
    detail = {"stuck": {n: int(v) for n, v in stuck.items()}} if stuck else {}
    return counts, pairs_unmasked, pairs_masked, detail


def _tally(row: dict[str, int], unmasked_err: bool, masked_err: bool) -> None:
    row["unmasked"] += unmasked_err
    row["masked"] += masked_err
    row["recovered"] += unmasked_err and not masked_err
    row["introduced"] += masked_err and not unmasked_err


def run_shard(shard: ShardSpec) -> dict:
    """Execute one shard and return its JSON-serializable result record.

    ``vectors == 0`` is a legal empty batch: the result is well-formed with
    all counts zero (the aggregator treats it like any other shard).
    """
    try:
        circuit, design = _masked_design(shard)
    except ReproError as exc:
        raise CampaignError(
            f"shard {shard.index}: cannot build masked design for "
            f"{shard.circuit!r}: {exc}"
        ) from exc
    rng = random.Random(shard.seed)
    if shard.mode["kind"] in ("delay", "aging", "clock"):
        counts, pairs_un, pairs_mk, detail = _timing_shard(
            shard, circuit, design, rng
        )
    else:
        counts, pairs_un, pairs_mk, detail = _value_shard(
            shard, circuit, design, rng
        )
    return {
        "schema": SCHEMA_VERSION,
        "shard": shard.index,
        "circuit": shard.circuit,
        "mode": dict(shard.mode),
        "mode_key": shard.mode_key,
        "vectors": shard.vectors,
        "pairs_unmasked_errors": pairs_un,
        "pairs_masked_errors": pairs_mk,
        "outputs": {y: dict(counts[y]) for y in sorted(counts)},
        "detail": detail,
    }

"""Text and JSON rendering of campaign aggregates.

Follows the reporter idiom of :mod:`repro.analysis.reporters`: one JSON
renderer (canonical, machine-diffable — the byte-identity guarantee of
checkpoint/resume is stated over this form) and one human table renderer.
"""

from __future__ import annotations

import json


def render_campaign_json(aggregate: dict) -> str:
    """Canonical JSON form; byte-identical for identical shard result sets."""
    return json.dumps(aggregate, indent=2, sort_keys=True) + "\n"


def render_campaign_text(aggregate: dict) -> str:
    """Human-readable campaign coverage tables."""
    lines: list[str] = []
    campaign = aggregate["campaign"]
    status = "COMPLETE" if aggregate["complete"] else "PARTIAL"
    lines.append(
        f"campaign {campaign['fingerprint'][:12]}  "
        f"[{status}: {aggregate['shards_done']}/{campaign['n_shards']} shards]"
    )
    lines.append(
        f"{'circuit':14s} {'mode':28s} {'shards':>7s} {'vectors':>8s} "
        f"{'errors':>7s} {'escaped':>8s} {'masked%':>8s}"
    )
    for group in aggregate["groups"]:
        lines.append(
            f"{group['circuit']:14s} {group['mode_key']:28s} "
            f"{group['shards_done']}/{group['shards_total']:<5d} "
            f"{group['vectors']:>8d} {group['unmasked_errors']:>7d} "
            f"{group['masked_errors']:>8d} "
            f"{group['effectiveness_percent']:>7.1f}%"
        )
        for name, row in group["outputs"].items():
            if row["unmasked"] == 0 and row["masked"] == 0:
                continue
            lines.append(
                f"    {name:24s} unmasked={row['unmasked']:<6d} "
                f"masked={row['masked']:<6d} recovered={row['recovered']:<6d} "
                f"({row['effectiveness_percent']:.1f}%)"
            )
    totals = aggregate["totals"]
    lines.append(
        f"{'total':14s} {'':28s} {aggregate['shards_done']:>7d} "
        f"{totals['vectors']:>8d} {totals['unmasked_errors']:>7d} "
        f"{totals['masked_errors']:>8d} {totals['effectiveness_percent']:>7.1f}%"
    )
    if aggregate["incomplete_shards"]:
        lines.append("incomplete shards:")
        for entry in aggregate["incomplete_shards"]:
            suffix = ""
            if entry["status"] == "quarantined":
                suffix = (
                    f" after {entry.get('attempts', 0)} attempts: "
                    f"{entry.get('error', '')}"
                )
            lines.append(
                f"  #{entry['shard']:<4d} {entry['circuit']} "
                f"{entry['mode_key']}  {entry['status']}{suffix}"
            )
    telemetry = aggregate.get("telemetry")
    if telemetry:
        wall = telemetry["wall_seconds"]
        lines.append(
            f"telemetry: {telemetry['shards_with_telemetry']} shards  "
            f"wall p50={wall['p50']:.3f}s p90={wall['p90']:.3f}s "
            f"p99={wall['p99']:.3f}s max={wall['max']:.3f}s  "
            f"retries={telemetry['retries']} "
            f"quarantined={telemetry['quarantined']}"
        )
    return "\n".join(lines)

"""The resilient campaign runner: isolation, retry, backoff, quarantine.

Execution model:

* Each pending shard is handed to an **isolated worker subprocess**
  (``repro.campaign.worker``).  A segfault, OOM kill, or hang costs one
  shard attempt, never the campaign.
* Every attempt runs under a **per-task timeout**; an expired worker is
  killed and the attempt counted as a failure.
* Failures that look *environmental* (crash, signal, timeout, garbled
  pipe) are retried with **exponential backoff plus deterministic
  jitter**, up to ``max_retries``.  Failures the worker itself reports as
  deterministic (a :class:`~repro.errors.ReproError` inside the shard)
  skip the retry budget — re-running the same pure function would spin.
* A shard that exhausts its budget is **quarantined**: journaled as such,
  reported under ``incomplete_shards``, and never allowed to wedge the
  run.  A campaign-level **circuit breaker** aborts dispatch when too many
  consecutive attempts fail — the signature of a broken environment, not
  a bad shard.
* Completed shards are journaled (fsync'd) to the **checkpoint** before
  they count; :func:`resume_campaign` replays the journal and re-runs only
  what is missing.  Because shards are deterministic and aggregation is
  order-independent, a resumed campaign's aggregate is bit-identical to an
  uninterrupted one.

``workers=0`` selects the in-process inline mode (no isolation, fastest;
used by unit tests and tiny sweeps).
"""

from __future__ import annotations

import json
import os
import queue
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import repro
from repro import obs
from repro.campaign.aggregate import aggregate_results
from repro.campaign.checkpoint import CheckpointWriter, load_journal
from repro.campaign.shard import run_shard
from repro.campaign.spec import CampaignSpec, ShardSpec, derive_seed, plan_campaign
from repro.errors import CampaignError, ObsError, ReproError

#: Callback signature: ``progress(event, shard_index, message)``.
ProgressFn = Callable[[str, int, str], None]

_TRACER = obs.get_tracer("campaign")
_METER = obs.get_meter()
_ATTEMPTS = _METER.counter(
    "repro_campaign_attempts_total", "shard attempts started"
)
_ATTEMPT_FAILURES = _METER.counter(
    "repro_campaign_attempt_failures_total",
    "shard attempts that failed (label: retryable)",
)
_RETRIES = _METER.counter(
    "repro_campaign_retries_total",
    "failed attempts retried after exponential backoff",
)
_QUARANTINED = _METER.counter(
    "repro_campaign_quarantined_total",
    "shards quarantined after exhausting their retry budget",
)
_BREAKER_TRIPS = _METER.counter(
    "repro_campaign_breaker_trips_total", "circuit-breaker activations"
)
_SHARDS_COMPLETED = _METER.counter(
    "repro_campaign_shards_completed_total", "shards completed and journaled"
)
_SHARD_SECONDS = _METER.histogram(
    "repro_campaign_shard_seconds",
    "wall seconds per completed shard (includes retries and backoff)",
)


@dataclass(frozen=True)
class RunnerConfig:
    """Resilience knobs; defaults suit medium campaigns on one machine."""

    workers: int = 2
    task_timeout: float = 300.0
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    backoff_jitter: float = 0.25
    max_consecutive_failures: int = 16

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise CampaignError(f"workers {self.workers} must be >= 0")
        if self.task_timeout <= 0:
            raise CampaignError(f"task_timeout {self.task_timeout} must be positive")
        if self.max_retries < 0:
            raise CampaignError(f"max_retries {self.max_retries} must be >= 0")
        if self.max_consecutive_failures <= 0:
            raise CampaignError("max_consecutive_failures must be positive")


@dataclass
class CampaignOutcome:
    """What a run/resume returns: the aggregate plus runner bookkeeping."""

    aggregate: dict
    checkpoint: Path
    stats: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return bool(self.aggregate.get("complete"))


class _AttemptFailure(Exception):
    """One worker attempt failed. ``retryable`` marks environmental causes."""

    def __init__(self, message: str, retryable: bool = True):
        super().__init__(message)
        self.retryable = retryable


def _child_env() -> dict[str, str]:
    """Environment for worker subprocesses; guarantees ``repro`` imports."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    # Workers inherit the runner's observability state so their spans and
    # metric snapshots come back across the JSON-over-stdio protocol.
    if obs.enabled():
        env[obs.ENV_VAR] = "1"
    else:
        env.pop(obs.ENV_VAR, None)
    return env


def _attempt_subprocess(
    shard: ShardSpec,
    attempt: int,
    sabotage: dict | None,
    timeout: float,
) -> tuple[dict, dict | None]:
    request = {
        "shard": shard.to_json(),
        "attempt": attempt,
        "sabotage": sabotage,
    }
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.worker"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_child_env(),
    )
    try:
        out, err = proc.communicate(json.dumps(request), timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        raise _AttemptFailure(f"worker timed out after {timeout:g}s") from None
    payload: dict | None = None
    try:
        payload = json.loads(out) if out.strip() else None
    except ValueError:
        payload = None
    if proc.returncode != 0:
        if payload and "error" in payload:
            # The worker ran the shard and reported a deterministic error.
            raise _AttemptFailure(payload["error"], retryable=False)
        cause = (
            f"killed by signal {-proc.returncode}"
            if proc.returncode < 0
            else f"exited {proc.returncode}"
        )
        tail = err.strip().splitlines()[-1] if err and err.strip() else ""
        raise _AttemptFailure(f"worker {cause}" + (f" ({tail})" if tail else ""))
    if not payload or "result" not in payload:
        raise _AttemptFailure("worker produced no parseable result")
    result = payload["result"]
    if result.get("shard") != shard.index:
        raise _AttemptFailure(
            f"worker answered for shard {result.get('shard')!r}, "
            f"expected {shard.index}", retryable=False,
        )
    worker_obs = payload.get("obs")
    return result, worker_obs if isinstance(worker_obs, dict) else None


def _backoff_delay(config: RunnerConfig, shard: ShardSpec, attempt: int) -> float:
    """Exponential backoff with deterministic per-(shard, attempt) jitter."""
    delay = min(config.backoff_cap, config.backoff_base * (2.0 ** attempt))
    rng = random.Random(derive_seed(shard.seed, "backoff", attempt))
    return delay * (1.0 + config.backoff_jitter * rng.random())


class _Dispatcher:
    """Shared mutable state of one campaign execution."""

    def __init__(
        self,
        config: RunnerConfig,
        writer: CheckpointWriter,
        sabotage: Mapping[int, dict] | None,
        progress: ProgressFn | None,
    ):
        self.config = config
        self.writer = writer
        self.sabotage = dict(sabotage or {})
        self.progress = progress
        self.results: dict[int, dict] = {}
        self.quarantined: dict[int, dict] = {}
        self.shard_obs: dict[int, dict] = {}
        #: id of the enclosing ``campaign.run`` span; shard spans run on
        #: dispatcher threads, so nesting must be passed explicitly.
        self.run_span_id: int | None = None
        self.attempts_made = 0
        self.stop = threading.Event()
        self.breaker_reason: str | None = None
        self._lock = threading.Lock()
        self._consecutive = 0

    def _emit(self, event: str, index: int, message: str) -> None:
        if self.progress is not None:
            self.progress(event, index, message)

    def _note_failure(self, message: str) -> None:
        with self._lock:
            self.attempts_made += 1
            self._consecutive += 1
            if (
                self._consecutive >= self.config.max_consecutive_failures
                and not self.stop.is_set()
            ):
                self.breaker_reason = (
                    f"circuit breaker: {self._consecutive} consecutive "
                    f"failed attempts (last: {message})"
                )
                self.stop.set()
                _BREAKER_TRIPS.add()

    def _note_success(self) -> None:
        with self._lock:
            self.attempts_made += 1
            self._consecutive = 0

    def run_one(self, shard: ShardSpec) -> None:
        with _TRACER.span(
            "campaign.shard",
            parent_id=self.run_span_id,
            shard=shard.index,
            circuit=shard.circuit,
            mode=shard.mode_key,
        ) as shard_span:
            started = time.perf_counter()
            failures: list[str] = []
            attempt = 0
            worker_obs: dict | None = None
            while attempt <= self.config.max_retries:
                if self.stop.is_set():
                    shard_span.set(outcome="stopped")
                    return
                _ATTEMPTS.add()
                try:
                    with _TRACER.span(
                        "campaign.attempt", shard=shard.index, attempt=attempt
                    ):
                        if self.config.workers == 0:
                            try:
                                result = run_shard(shard)
                            except ReproError as exc:
                                raise _AttemptFailure(
                                    f"{type(exc).__name__}: {exc}",
                                    retryable=False,
                                ) from exc
                            worker_obs = None
                        else:
                            result, worker_obs = _attempt_subprocess(
                                shard,
                                attempt,
                                self.sabotage.get(shard.index),
                                self.config.task_timeout,
                            )
                except _AttemptFailure as exc:
                    failures.append(str(exc))
                    self._note_failure(str(exc))
                    _ATTEMPT_FAILURES.add(
                        1, retryable="true" if exc.retryable else "false"
                    )
                    self._emit(
                        "attempt-failed", shard.index,
                        f"attempt {attempt + 1}: {exc}",
                    )
                    if not exc.retryable:
                        break
                    attempt += 1
                    if attempt <= self.config.max_retries and not self.stop.is_set():
                        _RETRIES.add()
                        time.sleep(_backoff_delay(self.config, shard, attempt - 1))
                    continue
                self._note_success()
                obs_record = self._shard_obs_record(
                    attempt + 1, time.perf_counter() - started, worker_obs
                )
                with self._lock:
                    self.results[shard.index] = result
                    if obs_record is not None:
                        self.shard_obs[shard.index] = obs_record
                self.writer.shard_done(
                    shard.index, attempt + 1, result, obs_record=obs_record
                )
                self._emit("shard-done", shard.index, f"attempts={attempt + 1}")
                if _METER.enabled:
                    _SHARDS_COMPLETED.add()
                    _SHARD_SECONDS.observe(time.perf_counter() - started)
                    shard_span.set(outcome="done", attempts=attempt + 1)
                return
            error = failures[-1] if failures else "no attempt made"
            record = {
                "kind": "quarantine",
                "shard": shard.index,
                "attempts": len(failures),
                "error": error,
            }
            with self._lock:
                self.quarantined[shard.index] = record
            self.writer.quarantine(shard.index, len(failures), error)
            _QUARANTINED.add()
            shard_span.set(outcome="quarantined", attempts=len(failures))
            self._emit("quarantined", shard.index, error)

    def _shard_obs_record(
        self, attempts: int, wall: float, worker_obs: dict | None
    ) -> dict | None:
        """Journalable telemetry for one completed shard.

        Worker spans are adopted into the runner's collector (remapped ids,
        same epoch timeline); the worker's metric snapshot is merged into
        the runner's registry *and* kept in the journal record so a resumed
        campaign can rebuild the aggregate's telemetry section without
        re-running the shard.
        """
        if not _METER.enabled:
            return None
        record: dict = {"wall_seconds": round(wall, 6), "attempts": attempts}
        if worker_obs:
            try:
                spans = worker_obs.get("spans")
                if spans:
                    obs.ingest_spans(spans)
                metrics = worker_obs.get("metrics")
                if metrics:
                    obs.merge_metrics(metrics)
                    record["metrics"] = metrics
            except ObsError:
                # Telemetry must never fail a shard that computed fine.
                pass
            if isinstance(worker_obs.get("wall_seconds"), (int, float)):
                record["worker_wall_seconds"] = round(
                    worker_obs["wall_seconds"], 6
                )
        return record


def _execute(
    spec: CampaignSpec,
    writer: CheckpointWriter,
    prior_results: dict[int, dict],
    config: RunnerConfig,
    sabotage: Mapping[int, dict] | None,
    progress: ProgressFn | None,
    prior_obs: dict[int, dict] | None = None,
) -> CampaignOutcome:
    if config.workers == 0 and sabotage:
        raise CampaignError(
            "sabotage drills require isolated workers (workers >= 1); "
            "inline mode would kill the campaign process itself"
        )
    plan = plan_campaign(spec)
    for index in prior_results:
        if index >= len(plan):
            raise CampaignError(
                f"checkpoint refers to shard {index} but the plan has "
                f"{len(plan)} shards"
            )
    pending = [shard for shard in plan if shard.index not in prior_results]
    dispatcher = _Dispatcher(config, writer, sabotage, progress)

    started = time.monotonic()
    with _TRACER.span(
        "campaign.run",
        fingerprint=spec.fingerprint()[:12],
        shards=len(plan),
        pending=len(pending),
        workers=config.workers,
    ) as run_span:
        dispatcher.run_span_id = getattr(run_span, "id", None)
        if config.workers == 0 or len(pending) <= 1:
            for shard in pending:
                if dispatcher.stop.is_set():
                    break
                dispatcher.run_one(shard)
        else:
            work: queue.SimpleQueue[ShardSpec] = queue.SimpleQueue()
            for shard in pending:
                work.put(shard)

            def loop() -> None:
                while not dispatcher.stop.is_set():
                    try:
                        shard = work.get_nowait()
                    except queue.Empty:
                        return
                    dispatcher.run_one(shard)

            threads = [
                threading.Thread(target=loop, name=f"campaign-worker-{i}")
                for i in range(min(config.workers, len(pending)))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    wall = time.monotonic() - started

    merged = dict(prior_results)
    merged.update(dispatcher.results)
    shard_obs = dict(prior_obs or {})
    shard_obs.update(dispatcher.shard_obs)
    aggregate = aggregate_results(
        spec, plan, merged, dispatcher.quarantined, shard_obs=shard_obs
    )
    stats = {
        "shards_total": len(plan),
        "shards_previously_done": len(prior_results),
        "shards_run": len(dispatcher.results),
        "shards_quarantined": len(dispatcher.quarantined),
        "attempts": dispatcher.attempts_made,
        "wall_seconds": wall,
        "aborted": dispatcher.breaker_reason,
    }
    return CampaignOutcome(
        aggregate=aggregate, checkpoint=writer.path, stats=stats
    )


def run_campaign(
    spec: CampaignSpec,
    checkpoint: str | os.PathLike,
    config: RunnerConfig | None = None,
    sabotage: Mapping[int, dict] | None = None,
    progress: ProgressFn | None = None,
) -> CampaignOutcome:
    """Run a fresh campaign, journaling every completed shard.

    Refuses to overwrite an existing checkpoint — that is what
    :func:`resume_campaign` is for.  Partial failure does not raise: the
    outcome's aggregate carries ``incomplete_shards`` and ``complete`` is
    False.  Only misconfiguration raises :class:`~repro.errors.CampaignError`.
    """
    config = config or RunnerConfig()
    writer = CheckpointWriter.create(checkpoint, spec, len(plan_campaign(spec)))
    return _execute(spec, writer, {}, config, sabotage, progress)


def resume_campaign(
    checkpoint: str | os.PathLike,
    config: RunnerConfig | None = None,
    sabotage: Mapping[int, dict] | None = None,
    progress: ProgressFn | None = None,
) -> CampaignOutcome:
    """Continue a campaign exactly where its checkpoint left off.

    The spec is read back from the journal header; shards with journaled
    results are skipped, quarantined shards get a fresh retry budget, and
    the final aggregate is bit-identical to an uninterrupted run of the
    same spec.
    """
    config = config or RunnerConfig()
    state = load_journal(checkpoint)
    prior = {index: record["result"] for index, record in state.results.items()}
    prior_obs = {
        index: record["obs"]
        for index, record in state.results.items()
        if isinstance(record.get("obs"), dict)
    }
    writer = CheckpointWriter(checkpoint)
    return _execute(
        state.spec, writer, prior, config, sabotage, progress,
        prior_obs=prior_obs,
    )

"""The resilient campaign runner, re-plumbed onto :mod:`repro.exec`.

Execution model (unchanged semantics, new substrate):

* Each pending shard becomes a ``campaign.shard`` :class:`~repro.exec.Task`
  dispatched through an executor — :class:`~repro.exec.InlineExecutor`
  for ``workers=0`` (no isolation, fastest; unit tests and tiny sweeps),
  or a :class:`~repro.exec.ProcessPoolExecutor` of persistent worker
  subprocesses otherwise.  A segfault, OOM kill, or hang costs one shard
  attempt, never the campaign.
* Every attempt runs under a **per-task timeout**; an expired worker is
  killed and the attempt counted as a failure.
* Environmental failures (crash, signal, timeout, garbled pipe) are
  retried with **exponential backoff plus deterministic jitter**
  (:class:`~repro.exec.RetryPolicy`); deterministic shard failures skip
  the retry budget.
* A shard that exhausts its budget is **quarantined**; a run-wide
  **circuit breaker** (:class:`~repro.exec.BreakerPolicy`) aborts
  dispatch when too many consecutive attempts fail.
* Completed shards are journaled (fsync'd) to the **checkpoint** before
  they count; :func:`resume_campaign` replays the journal and re-runs only
  what is missing, producing a bit-identical aggregate.

This module keeps the campaign-facing surface (RunnerConfig,
CampaignOutcome, run_campaign, resume_campaign, progress events, metric
series, journal format) exactly as before; the retry loop, subprocess
management, and breaker now live in :mod:`repro.exec.executors`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro import obs
from repro.campaign.aggregate import aggregate_results
from repro.campaign.checkpoint import CheckpointWriter, load_journal
from repro.campaign.spec import CampaignSpec, ShardSpec, plan_campaign
from repro.errors import CampaignError
from repro.exec import (
    BreakerPolicy,
    RetryPolicy,
    Task,
    TaskResult,
    make_executor,
)

#: Callback signature: ``progress(event, shard_index, message)``.
ProgressFn = Callable[[str, int, str], None]

_TRACER = obs.get_tracer("campaign")
_METER = obs.get_meter()
_ATTEMPTS = _METER.counter(
    "repro_campaign_attempts_total", "shard attempts started"
)
_ATTEMPT_FAILURES = _METER.counter(
    "repro_campaign_attempt_failures_total",
    "shard attempts that failed (label: retryable)",
)
_RETRIES = _METER.counter(
    "repro_campaign_retries_total",
    "failed attempts retried after exponential backoff",
)
_QUARANTINED = _METER.counter(
    "repro_campaign_quarantined_total",
    "shards quarantined after exhausting their retry budget",
)
_BREAKER_TRIPS = _METER.counter(
    "repro_campaign_breaker_trips_total", "circuit-breaker activations"
)
_SHARDS_COMPLETED = _METER.counter(
    "repro_campaign_shards_completed_total", "shards completed and journaled"
)
_SHARD_SECONDS = _METER.histogram(
    "repro_campaign_shard_seconds",
    "wall seconds per completed shard (includes retries and backoff)",
)


#: Executor backends a campaign may run on (``auto`` keeps the historical
#: ``workers`` convention: 0 -> inline, otherwise a local process pool).
CAMPAIGN_BACKENDS = ("auto", "inline", "thread", "process", "queue")


@dataclass(frozen=True)
class RunnerConfig:
    """Resilience knobs; defaults suit medium campaigns on one machine.

    ``backend="queue"`` runs the campaign on the shared-directory work
    queue (``queue_dir`` required): ``workers`` local queue workers are
    spawned (0 = the coordinator participates inline) and any number of
    external ``repro worker QUEUE_DIR`` processes — on this or other
    hosts — may join or die at any time.  ``lease_ttl`` bounds how long
    a dead worker can hold a shard before it is stolen.
    """

    workers: int = 2
    task_timeout: float = 300.0
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    backoff_jitter: float = 0.25
    max_consecutive_failures: int = 16
    backend: str = "auto"
    queue_dir: str | None = None
    lease_ttl: float = 15.0
    queue_respawn: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise CampaignError(f"workers {self.workers} must be >= 0")
        if self.task_timeout <= 0:
            raise CampaignError(f"task_timeout {self.task_timeout} must be positive")
        if self.max_retries < 0:
            raise CampaignError(f"max_retries {self.max_retries} must be >= 0")
        if self.max_consecutive_failures <= 0:
            raise CampaignError("max_consecutive_failures must be positive")
        if self.backend not in CAMPAIGN_BACKENDS:
            raise CampaignError(
                f"backend {self.backend!r} must be one of {CAMPAIGN_BACKENDS}"
            )
        if self.backend == "queue" and not self.queue_dir:
            raise CampaignError(
                "backend 'queue' needs queue_dir (the shared directory "
                "workers rendezvous on)"
            )
        if self.lease_ttl <= 0:
            raise CampaignError(f"lease_ttl {self.lease_ttl} must be positive")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            backoff_jitter=self.backoff_jitter,
        )

    def breaker_policy(self) -> BreakerPolicy:
        return BreakerPolicy(
            max_consecutive_failures=self.max_consecutive_failures
        )


@dataclass
class CampaignOutcome:
    """What a run/resume returns: the aggregate plus runner bookkeeping."""

    aggregate: dict
    checkpoint: Path
    stats: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return bool(self.aggregate.get("complete"))


def _shard_task(shard: ShardSpec) -> Task:
    """A campaign shard as a content-addressed executor task."""
    return Task(
        kind="campaign.shard",
        payload={"shard": shard.to_json()},
        key=shard.index,
        span_name="campaign.shard",
        span_category="campaign",
        span_attrs={
            "shard": shard.index,
            "circuit": shard.circuit,
            "mode": shard.mode_key,
        },
        attempt_attrs={"shard": shard.index},
    )


def _shard_obs_record(result: TaskResult) -> dict | None:
    """Journalable telemetry for one completed shard.

    Worker spans/metrics were already ingested into the parent registry by
    the executor at attempt completion; here we only keep the journalable
    copy so a resumed campaign can rebuild the aggregate's telemetry
    section without re-running the shard.
    """
    if not _METER.enabled:
        return None
    record: dict = {
        "wall_seconds": round(result.wall_seconds, 6),
        "attempts": result.attempts,
    }
    worker_obs = result.worker_obs
    if worker_obs:
        metrics = worker_obs.get("metrics")
        if metrics:
            record["metrics"] = metrics
        if isinstance(worker_obs.get("wall_seconds"), (int, float)):
            record["worker_wall_seconds"] = round(
                worker_obs["wall_seconds"], 6
            )
    return record


class _Bookkeeper:
    """Bridges executor callbacks to journal, metrics, and progress."""

    def __init__(
        self,
        writer: CheckpointWriter,
        progress: ProgressFn | None,
        flight_dir: Path | None = None,
    ):
        self.writer = writer
        self.progress = progress
        self.flight_dir = flight_dir
        self.results: dict[int, dict] = {}
        self.quarantined: dict[int, dict] = {}
        self.shard_obs: dict[int, dict] = {}

    def _emit(self, event: str, index: int, message: str) -> None:
        if self.progress is not None:
            self.progress(event, index, message)

    def _dump_flight(self, trigger: str) -> None:
        """Persist the coordinator's flight ring on investigable events."""
        recorder = obs.flight_recorder()
        if recorder is None or self.flight_dir is None:
            return
        try:
            recorder.dump_to(
                self.flight_dir / "coordinator.flight.json", trigger=trigger
            )
        except OSError:  # post-mortem capture must never fail the run
            pass

    def on_event(self, event: str, task: Task, message: str, info: dict) -> None:
        index = int(task.key)
        if event == "attempt-started":
            _ATTEMPTS.add()
        elif event == "attempt-failed":
            _ATTEMPT_FAILURES.add(
                1, retryable="true" if info.get("retryable") else "false"
            )
            self._emit("attempt-failed", index, message)
        elif event == "retry":
            _RETRIES.add()
        elif event == "breaker":
            _BREAKER_TRIPS.add()
            self._dump_flight("breaker")
        elif event == "task-done":
            if _METER.enabled:
                _SHARDS_COMPLETED.add()
                _SHARD_SECONDS.observe(info.get("wall_seconds", 0.0))
            self._emit(
                "shard-done", index, f"attempts={info.get('attempts', 0)}"
            )
        elif event == "quarantined":
            _QUARANTINED.add()
            self._dump_flight("quarantine")
            self._emit("quarantined", index, message)

    def on_result(self, result: TaskResult) -> None:
        """Journal a settled shard (done or quarantined) durably."""
        index = int(result.task.key)
        if result.outcome == "done":
            obs_record = _shard_obs_record(result)
            self.results[index] = result.value
            if obs_record is not None:
                self.shard_obs[index] = obs_record
            self.writer.shard_done(
                index, result.attempts, result.value, obs_record=obs_record
            )
        elif result.outcome == "quarantined":
            error = result.error or "no attempt made"
            self.quarantined[index] = {
                "kind": "quarantine",
                "shard": index,
                "attempts": result.attempts,
                "error": error,
            }
            self.writer.quarantine(index, result.attempts, error)


def _execute(
    spec: CampaignSpec,
    writer: CheckpointWriter,
    prior_results: dict[int, dict],
    config: RunnerConfig,
    sabotage: Mapping[int, dict] | None,
    progress: ProgressFn | None,
    prior_obs: dict[int, dict] | None = None,
) -> CampaignOutcome:
    if config.workers == 0 and sabotage:
        raise CampaignError(
            "sabotage drills require isolated workers (workers >= 1); "
            "inline and coordinator-inline modes would kill the campaign "
            "process itself"
        )
    plan = plan_campaign(spec)
    for index in prior_results:
        if index >= len(plan):
            raise CampaignError(
                f"checkpoint refers to shard {index} but the plan has "
                f"{len(plan)} shards"
            )
    pending = [shard for shard in plan if shard.index not in prior_results]

    # Flight-recorder plane (only with REPRO_OBS on): the coordinator
    # keeps its own ring, dumped beside the checkpoint on quarantine or
    # breaker trip; the queue backend additionally harvests the workers'
    # crash-surviving dumps into the same directory after the run.
    flight_dir: Path | None = None
    if obs.enabled():
        flight_dir = Path(f"{writer.path}.flight")
        if obs.flight_recorder() is None:
            obs.install_flight_recorder(
                obs.FlightRecorder(worker="coordinator")
            )
    books = _Bookkeeper(writer, progress, flight_dir=flight_dir)

    started = time.monotonic()
    with _TRACER.span(
        "campaign.run",
        fingerprint=spec.fingerprint()[:12],
        shards=len(plan),
        pending=len(pending),
        workers=config.workers,
        backend=config.backend,
    ) as run_span:
        with make_executor(
            config.workers,
            retry=config.retry_policy(),
            breaker=config.breaker_policy(),
            task_timeout=config.task_timeout,
            events=books.on_event,
            backend=config.backend,
            queue_dir=config.queue_dir,
            lease_ttl=config.lease_ttl,
            respawn=config.queue_respawn,
            flight_dir=flight_dir,
        ) as executor:
            executor.parent_span_id = getattr(run_span, "id", None)
            report = executor.run(
                [_shard_task(shard) for shard in pending],
                on_result=books.on_result,
                sabotage=sabotage,
            )
    wall = time.monotonic() - started

    merged = dict(prior_results)
    merged.update(books.results)
    shard_obs = dict(prior_obs or {})
    shard_obs.update(books.shard_obs)
    aggregate = aggregate_results(
        spec, plan, merged, books.quarantined, shard_obs=shard_obs
    )
    stats = {
        "shards_total": len(plan),
        "shards_previously_done": len(prior_results),
        "shards_run": len(books.results),
        "shards_quarantined": len(books.quarantined),
        "attempts": report.attempts,
        "wall_seconds": wall,
        "aborted": report.breaker_reason,
        "backend": config.backend,
    }
    return CampaignOutcome(
        aggregate=aggregate, checkpoint=writer.path, stats=stats
    )


def run_campaign(
    spec: CampaignSpec,
    checkpoint: str | os.PathLike,
    config: RunnerConfig | None = None,
    sabotage: Mapping[int, dict] | None = None,
    progress: ProgressFn | None = None,
) -> CampaignOutcome:
    """Run a fresh campaign, journaling every completed shard.

    Refuses to overwrite an existing checkpoint — that is what
    :func:`resume_campaign` is for.  Partial failure does not raise: the
    outcome's aggregate carries ``incomplete_shards`` and ``complete`` is
    False.  Only misconfiguration raises :class:`~repro.errors.CampaignError`.
    """
    config = config or RunnerConfig()
    writer = CheckpointWriter.create(checkpoint, spec, len(plan_campaign(spec)))
    return _execute(spec, writer, {}, config, sabotage, progress)


def resume_campaign(
    checkpoint: str | os.PathLike,
    config: RunnerConfig | None = None,
    sabotage: Mapping[int, dict] | None = None,
    progress: ProgressFn | None = None,
) -> CampaignOutcome:
    """Continue a campaign exactly where its checkpoint left off.

    The spec is read back from the journal header; shards with journaled
    results are skipped, quarantined shards get a fresh retry budget, and
    the final aggregate is bit-identical to an uninterrupted run of the
    same spec.
    """
    config = config or RunnerConfig()
    state = load_journal(checkpoint)
    prior = {index: record["result"] for index, record in state.results.items()}
    prior_obs = {
        index: record["obs"]
        for index, record in state.results.items()
        if isinstance(record.get("obs"), dict)
    }
    writer = CheckpointWriter(checkpoint)
    return _execute(
        state.spec, writer, prior, config, sabotage, progress,
        prior_obs=prior_obs,
    )

"""Adaptive shard sizing from journaled wall-time telemetry.

Shard size is the throughput/robustness trade of a distributed campaign:
shards too small drown the queue in per-task protocol overhead; shards
too large lose minutes of work to every stolen lease.  This module
closes the loop using evidence the runner already journals — the
per-shard ``wall_seconds`` telemetry records an obs-enabled campaign
writes into its checkpoint — instead of guesses.

The resize is **total-work preserving**: ``shards_per_cell *
vectors_per_shard`` stays exactly constant (the candidate vector counts
are the divisors of that product), so an auto-sized campaign sweeps the
same number of injected vectors per (circuit, mode) cell — only the
granularity changes.  Sizing is driven by the **p90** per-vector rate,
not the mean: the budget must hold on the slow tail, because that is
what a lease steal forfeits.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

from repro.campaign.checkpoint import JournalState, load_journal
from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class ShardTiming:
    """Wall-time evidence extracted from one campaign journal."""

    samples: int
    vectors_per_shard: int
    p50_seconds: float
    p90_seconds: float

    @property
    def p50_rate(self) -> float:
        """Median seconds per injected vector."""
        return self.p50_seconds / self.vectors_per_shard

    @property
    def p90_rate(self) -> float:
        """Tail seconds per injected vector (what sizing budgets for)."""
        return self.p90_seconds / self.vectors_per_shard


def shard_timing(state: JournalState) -> ShardTiming:
    """Extract shard wall percentiles from a journal's telemetry records.

    Raises :class:`~repro.errors.CampaignError` when the journal has no
    telemetry — the donor campaign must have run with observability on
    (``REPRO_OBS=1`` or ``--metrics``/``--trace``).
    """
    walls = sorted(
        float(record["obs"]["wall_seconds"])
        for record in state.results.values()
        if isinstance(record.get("obs"), dict)
        and isinstance(record["obs"].get("wall_seconds"), (int, float))
        and record["obs"]["wall_seconds"] > 0
    )
    if not walls:
        raise CampaignError(
            "journal has no shard telemetry to size from; re-run the "
            "donor campaign with observability enabled (REPRO_OBS=1 or "
            "--metrics/--trace)"
        )
    return ShardTiming(
        samples=len(walls),
        vectors_per_shard=state.spec.vectors_per_shard,
        p50_seconds=_percentile(walls, 0.50),
        p90_seconds=_percentile(walls, 0.90),
    )


def suggest_spec(
    spec: CampaignSpec,
    timing: ShardTiming,
    target_shard_seconds: float,
) -> CampaignSpec:
    """Resize ``spec``'s shards so each takes ~``target_shard_seconds``.

    Candidate ``vectors_per_shard`` values are the divisors of the cell's
    total vector count (exact total-work preservation); the one whose
    predicted p90 wall time lands closest to the target wins, with ties
    broken toward *smaller* shards (less work forfeited per steal).
    """
    if target_shard_seconds <= 0:
        raise CampaignError(
            f"target_shard_seconds {target_shard_seconds} must be positive"
        )
    total = spec.shards_per_cell * spec.vectors_per_shard
    ideal = target_shard_seconds / timing.p90_rate
    best = None
    for vectors in range(1, total + 1):
        if total % vectors:
            continue
        distance = abs(math.log(vectors / ideal))
        if best is None or distance < best[0]:
            best = (distance, vectors)
    assert best is not None  # total >= 1 always divides itself
    vectors = best[1]
    return replace(
        spec,
        vectors_per_shard=vectors,
        shards_per_cell=total // vectors,
    )


def autoshard_spec(
    spec: CampaignSpec,
    donor_checkpoint: str | os.PathLike,
    target_shard_seconds: float,
) -> tuple[CampaignSpec, ShardTiming]:
    """Resize ``spec`` using a finished (or partial) donor journal.

    Returns the resized spec plus the timing evidence, so callers can
    show *why* the plan changed.
    """
    timing = shard_timing(load_journal(donor_checkpoint))
    return suggest_spec(spec, timing, target_shard_seconds), timing


__all__ = [
    "ShardTiming",
    "autoshard_spec",
    "shard_timing",
    "suggest_spec",
]

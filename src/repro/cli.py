"""Command-line interface.

Usage (installed as ``python -m repro``)::

    python -m repro list
    python -m repro report C432
    python -m repro spcf C432 --algorithm all
    python -m repro spcf comparator2 --precert --jobs 4
    python -m repro mask C432 --out masked.blif --mask-out mask.blif
    python -m repro lint C432 --format json
    python -m repro lint all --fail-on warning --baseline lint.baseline.json
    python -m repro analyze comparator2
    python -m repro analyze all --format sarif --out analysis.sarif
    python -m repro analyze bypass --paths
    python -m repro paths comparator2
    python -m repro paths bypass --format json --out bypass.paths.json
    python -m repro verify-mask cmb
    python -m repro table1
    python -m repro table2 --circuits cmb x2 cu
    python -m repro campaign plan --circuits comparator2 --modes delay seu
    python -m repro campaign run camp.ckpt.jsonl --circuits comparator2
    python -m repro campaign run camp.ckpt.jsonl --backend queue --queue-dir /mnt/q
    python -m repro campaign resume camp.ckpt.jsonl
    python -m repro campaign report camp.ckpt.jsonl --format json
    python -m repro campaign status camp.ckpt.jsonl --queue-dir /mnt/q --watch 2
    python -m repro campaign smoke
    python -m repro campaign smoke --distributed
    python -m repro worker /mnt/q --timeout 300
    python -m repro mask path/to/design.blif --library lsi10k_like
    python -m repro info
    python -m repro mask cmb --trace mask.trace.json --metrics mask.prom
    python -m repro obs report mask.trace.json

Every subcommand accepts ``--trace FILE`` / ``--metrics FILE`` to switch
on :mod:`repro.obs` recording for the run and write the span trace
(Chrome ``trace_event`` JSON, or JSONL for ``.jsonl`` paths) and metrics
snapshot (Prometheus text for ``.prom``/``.txt``, else JSON) on exit.

Circuits are named benchmarks from :mod:`repro.benchcircuits` or paths to
BLIF files (``.gate`` netlists are read against the chosen library).

Exit codes (``lint`` and ``analyze``): 0 — clean, 1 — diagnostics at or
above ``--fail-on``, 2 — the tool itself failed (bad arguments, unreadable
input, internal error).  Other subcommands use 0/1 for pass/fail and 2 for
tool failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback
from pathlib import Path

from repro import obs
from repro.benchcircuits import PAPER_SPECS, TABLE1_NAMES, all_circuit_names, circuit_by_name
from repro.campaign import (
    CAMPAIGN_BACKENDS,
    FAULT_KINDS,
    CampaignSpec,
    RunnerConfig,
    aggregate_results,
    autoshard_spec,
    campaign_status,
    load_journal,
    plan_campaign,
    render_campaign_json,
    render_campaign_text,
    render_status_text,
    resume_campaign,
    run_campaign,
    run_distributed_smoke,
    run_smoke,
    watch_status,
)
from repro.analysis import (
    LintConfig,
    Severity,
    apply_baseline_many,
    lint_circuit,
    lint_suite,
    load_baseline,
    render_json,
    render_json_many,
    render_sarif,
    render_text,
    render_text_many,
    render_verify_json,
    render_verify_text,
    verify_mask,
    write_baseline,
)
from repro.analysis.absint import AbsintConfig, analyze_circuit, analyze_suite
from repro.core import build_masked_design, mask_circuit, synthesize_masking
from repro.engine import available_backends, numpy_available, validated_backend_name
from repro.errors import BlifError, CampaignError, ExecError, ReproError
from repro.exec import (
    QueueWorker,
    WorkQueue,
    available_backends as exec_backends,
    default_worker_count,
)
from repro.netlist import (
    Circuit,
    Library,
    builtin_library,
    read_blif,
    write_blif_file,
    write_verilog_file,
)
from repro.spcf import (
    compare_algorithms,
    spcf_nodebased,
    spcf_parallel,
    spcf_pathbased,
    spcf_shortpath,
)
from repro.sta import analyze


#: Exit codes of the diagnostic subcommands (documented in ``--help``).
EXIT_OK = 0  #: no findings at or above the ``--fail-on`` severity
EXIT_FINDINGS = 1  #: diagnostics found; the tool itself ran fine
EXIT_ERROR = 2  #: the tool failed (bad arguments, unreadable input, crash)

_EXIT_CODE_EPILOG = (
    "exit codes:\n"
    "  0  clean (no findings at or above --fail-on)\n"
    "  1  diagnostics found\n"
    "  2  the tool itself failed (bad arguments, unreadable input, crash)"
)


def _load_circuit(spec: str, library: Library, validate: bool = True) -> Circuit:
    path = Path(spec)
    if spec.endswith(".blif"):
        if not path.exists():
            raise BlifError(f"BLIF file not found: {path}")
        return read_blif(path, library=library, validate=validate)
    if path.exists():
        return read_blif(path, library=library, validate=validate)
    return circuit_by_name(spec, library)


def _nonneg_int(text: str) -> int:
    """argparse type for worker/job counts: ``0`` = inline, ``< 0`` rejected.

    Validating here keeps a bad ``--jobs -1`` an argument error (usage +
    exit 2) instead of a failure deep inside pool startup.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"worker count {value} must be >= 0 (0 = inline)"
        )
    return value


def _fmt_count(n: int) -> str:
    """Compact rendering of a pattern count: exact below 1000, else mantissa+exp."""
    if -1000 < n < 1000:
        return str(n)
    sign = "-" if n < 0 else ""
    magnitude = abs(n)
    exp = len(str(magnitude)) - 1
    return f"{sign}{magnitude / 10**exp:.2f}e{exp}"


def cmd_list(args: argparse.Namespace) -> int:
    print("hand-made circuits and paper benchmarks:")
    for name in all_circuit_names():
        mark = "  [table 2]" if name in PAPER_SPECS else ""
        print(f"  {name}{mark}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    circuit = _load_circuit(args.circuit, library)
    report = analyze(circuit, threshold=args.threshold)
    crit = report.critical_outputs(circuit)
    print(f"circuit          : {circuit.name}")
    print(f"inputs/outputs   : {len(circuit.inputs)}/{len(circuit.outputs)}")
    print(f"gates / area     : {circuit.num_gates} / {circuit.area():.0f}")
    print(f"critical delay   : {report.critical_delay}")
    print(f"target (Delta_y) : {report.target}")
    print(f"critical outputs : {len(crit)}  {list(crit)[:8]}")
    print(f"critical gates   : {len(report.critical_gates(circuit))}")
    return 0


def cmd_spcf(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    circuit = _load_circuit(args.circuit, library)
    if args.algorithm == "all":
        if args.jobs is not None or args.precert:
            raise ExecError(
                "--jobs/--precert do not apply to --algorithm all "
                "(the comparison times each serial algorithm)"
            )
        row = compare_algorithms(circuit, threshold=args.threshold)
        print(f"node-based : {_fmt_count(row.node_based_count):>12s}  "
              f"({row.node_based_runtime:.3f}s)")
        print(f"path-based : {_fmt_count(row.path_based_count):>12s}  "
              f"({row.path_based_runtime:.3f}s)")
        print(f"short-path : {_fmt_count(row.short_path_count):>12s}  "
              f"({row.short_path_runtime:.3f}s)")
        print(f"over-approximation factor: {row.over_approximation_factor:.2f}x")
        return 0
    certificates = None
    if args.precert:
        from repro.analysis.precert import precertify

        certificates = precertify(circuit, threshold=args.threshold)
    if args.jobs is not None:
        if args.algorithm != "short":
            raise ExecError(
                "--jobs parallelizes the short-path algorithm; "
                f"use --algorithm short, not {args.algorithm!r}"
            )
        result = spcf_parallel(
            circuit,
            threshold=args.threshold,
            certificates=certificates,
            jobs=args.jobs,
        )
        print(f"jobs      : {args.jobs} "
              f"({'inline' if args.jobs == 0 else 'process pool'})")
    else:
        algo = {
            "short": spcf_shortpath,
            "path": spcf_pathbased,
            "node": spcf_nodebased,
        }[args.algorithm]
        result = algo(
            circuit, threshold=args.threshold, certificates=certificates
        )
    print(f"algorithm : {result.algorithm}")
    print(f"target    : {result.target}")
    for y, count in sorted(result.counts_by_output().items()):
        print(f"  {y:16s} {_fmt_count(count):>14s} critical patterns")
    for y, reason in sorted(result.incomplete.items()):
        print(f"  {y:16s} {'INCOMPLETE':>14s} {reason}")
    print(f"union     : {_fmt_count(result.count()):>14s} "
          f"({result.runtime_seconds:.3f}s)")
    return 0 if result.is_complete else 1


def cmd_mask(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    circuit = _load_circuit(args.circuit, library)
    result = mask_circuit(
        circuit,
        library,
        threshold=args.threshold,
        max_support=args.max_support,
    )
    r = result.report
    print(f"circuit            : {r.circuit_name} "
          f"({r.num_inputs}/{r.num_outputs}, {r.num_gates} gates)")
    print(f"critical outputs   : {r.critical_outputs}")
    print(f"critical minterms  : {_fmt_count(r.critical_minterms)}")
    print(f"original delay     : {r.original_delay}")
    print(f"masking delay      : {r.masking_delay} (slack {r.slack_percent:.1f}%)")
    print(f"area overhead      : {r.area_overhead_percent:.1f}%")
    print(f"power overhead     : {r.power_overhead_percent:.1f}%")
    print(f"sound              : {r.sound}")
    print(f"masking coverage   : {r.coverage_percent:.1f}%")
    if not r.meets_slack_constraint:
        print("warning: masking circuit has < 20% slack on this design")
    if args.out:
        write_blif_file(result.design.circuit, args.out)
        print(f"masked design written to {args.out}")
    if args.mask_out:
        write_blif_file(result.masking.masking_circuit, args.mask_out)
        print(f"masking circuit written to {args.mask_out}")
    if args.verilog:
        write_verilog_file(result.design.circuit, args.verilog)
        print(f"masked design (verilog) written to {args.verilog}")
    return 0 if (r.sound and r.coverage_percent == 100.0) else 1


def _finish_reports(reports: dict, args: argparse.Namespace) -> tuple[dict, int]:
    """Shared baseline plumbing of ``lint`` and ``analyze``.

    Writes the baseline first (so ``--write-baseline`` records *all* current
    findings), then filters through ``--baseline``; returns the filtered
    reports and the suppressed count.
    """
    if getattr(args, "write_baseline", None):
        n = write_baseline(args.write_baseline, reports)
        print(
            f"baseline with {n} finding(s) written to {args.write_baseline}",
            file=sys.stderr,
        )
    suppressed = 0
    if getattr(args, "baseline", None):
        reports, suppressed = apply_baseline_many(
            reports, load_baseline(args.baseline)
        )
        if suppressed:
            print(
                f"{suppressed} baselined finding(s) suppressed",
                file=sys.stderr,
            )
    return reports, suppressed


def _emit_reports(reports: dict, args: argparse.Namespace, fail_on: Severity) -> int:
    """Render reports in the chosen format and derive the exit code."""
    if args.format == "sarif":
        text = render_sarif(reports)
    elif args.format == "json":
        if len(reports) == 1 and args.circuit != "all":
            text = render_json(next(iter(reports.values())))
        else:
            text = render_json_many(reports)
    else:
        if len(reports) == 1 and args.circuit != "all":
            text = render_text(next(iter(reports.values())))
        else:
            text = render_text_many(reports)
    out = getattr(args, "out", None)
    if out:
        Path(out).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )
        print(f"report written to {out}", file=sys.stderr)
    else:
        print(text)
    ok = all(r.ok(fail_on) for r in reports.values())
    return EXIT_OK if ok else EXIT_FINDINGS


def cmd_lint(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    config = LintConfig(
        fanout_threshold=args.fanout_threshold,
        ignore=frozenset(args.ignore or ()),
    )
    fail_on = Severity.from_name(args.fail_on)
    if args.circuit == "all":
        reports = lint_suite(library, config)
    else:
        # Load without structural validation: diagnosing loops and dangling
        # nets (LINT001/LINT002) is the linter's job, not the loader's.
        reports = {
            args.circuit: lint_circuit(
                _load_circuit(args.circuit, library, validate=False), config
            )
        }
    reports, _ = _finish_reports(reports, args)
    return _emit_reports(reports, args, fail_on)


def cmd_analyze(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    config = AbsintConfig(
        threshold=args.threshold,
        target=args.target,
        seed=args.seed,
        samples=args.samples,
        replay_budget=args.replay_budget,
        report_potential=args.report_potential,
        report_precert=args.precert,
        report_paths=args.paths,
        backend=args.backend,
        select=frozenset(args.select) if args.select else None,
        ignore=frozenset(args.ignore or ()),
    )
    # Resolve --select/--ignore eagerly: an unknown pass id must be a usage
    # error (exit 2, naming the known passes) before any circuit loads, not
    # a failure halfway through an `all` sweep.
    config.active_passes()
    fail_on = Severity.from_name(args.fail_on)
    if args.circuit == "all":
        reports = analyze_suite(library, config)
    else:
        # validate=False: a broken netlist yields ABS001 findings, not a
        # loader exception.
        reports = {
            args.circuit: analyze_circuit(
                _load_circuit(args.circuit, library, validate=False), config
            )
        }
    reports, _ = _finish_reports(reports, args)
    return _emit_reports(reports, args, fail_on)


def cmd_paths(args: argparse.Namespace) -> int:
    from repro.analysis.paths import (
        PathsConfig,
        analyze_paths,
        render_paths_json,
        render_paths_text,
    )

    library = builtin_library(args.library)
    circuit = _load_circuit(args.circuit, library)
    if args.masked:
        result = mask_circuit(
            circuit, library, threshold=args.threshold, target=args.target
        )
        circuit = result.design.circuit
    analysis = analyze_paths(
        circuit,
        threshold=args.threshold,
        target=args.target,
        config=PathsConfig(
            limit=args.limit, replay_budget=args.replay_budget
        ),
    )
    text = (
        render_paths_json(analysis)
        if args.format == "json"
        else render_paths_text(analysis)
    )
    if args.out:
        Path(args.out).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )
        print(f"paths report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    # Exit 1 when classification is incomplete: an unresolved path must be
    # treated as potentially true by any downstream consumer.
    unresolved = analysis.certificates.unresolved_paths()
    return EXIT_OK if not unresolved else EXIT_FINDINGS


def cmd_verify_mask(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    circuit = _load_circuit(args.circuit, library)
    result = synthesize_masking(
        circuit,
        library,
        threshold=args.threshold,
        max_support=args.max_support,
    )
    report = verify_mask(result, design=build_masked_design(result))
    render = render_verify_json if args.format == "json" else render_verify_text
    print(render(report))
    return 0 if report.ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    print(f"{'circuit':18s} {'node-based':>12s} {'path-based':>12s} "
          f"{'short-path':>12s} {'over':>6s}")
    for name in TABLE1_NAMES:
        circuit = circuit_by_name(name, library)
        row = compare_algorithms(circuit)
        print(f"{name:18s} {_fmt_count(row.node_based_count):>12s} "
              f"{_fmt_count(row.path_based_count):>12s} "
              f"{_fmt_count(row.short_path_count):>12s} "
              f"{row.over_approximation_factor:5.1f}x")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    library = builtin_library(args.library)
    names = args.circuits or list(PAPER_SPECS)
    print(f"{'circuit':18s} {'critPO':>7s} {'minterms':>10s} {'slack%':>7s} "
          f"{'area%':>7s} {'power%':>7s} {'cov%':>5s}")
    slacks, areas, powers = [], [], []
    for name in names:
        circuit = circuit_by_name(name, library)
        r = mask_circuit(circuit, library).report
        slacks.append(r.slack_percent)
        areas.append(r.area_overhead_percent)
        powers.append(r.power_overhead_percent)
        print(f"{name:18s} {r.critical_outputs:7d} "
              f"{_fmt_count(r.critical_minterms):>10s} {r.slack_percent:7.1f} "
              f"{r.area_overhead_percent:7.1f} {r.power_overhead_percent:7.1f} "
              f"{r.coverage_percent:5.0f}")
    n = len(names)
    print(f"{'average':18s} {'':7s} {'':10s} {sum(slacks) / n:7.1f} "
          f"{sum(areas) / n:7.1f} {sum(powers) / n:7.1f}")
    return 0


def _parse_mode(text: str) -> dict:
    """Parse ``kind`` or ``kind:key=value,key=value`` into a mode spec."""
    kind, _, params = text.partition(":")
    mode: dict = {"kind": kind.strip()}
    if params.strip():
        for item in params.split(","):
            key, sep, raw = item.partition("=")
            if not sep or not key.strip():
                raise CampaignError(
                    f"bad mode parameter {item!r} in {text!r}; expected key=value"
                )
            raw = raw.strip()
            try:
                value = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            mode[key.strip()] = value
    return mode


def _parse_sabotage(entries: list[str] | None) -> dict[int, dict] | None:
    """Parse ``SHARD:MODE[:ATTEMPTS]`` drill directives."""
    if not entries:
        return None
    sabotage: dict[int, dict] = {}
    for text in entries:
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise CampaignError(
                f"bad sabotage {text!r}; expected SHARD:MODE[:ATTEMPTS]"
            )
        try:
            shard = int(parts[0])
        except ValueError:
            raise CampaignError(f"bad sabotage shard index {parts[0]!r}") from None
        directive: dict = {"mode": parts[1]}
        if len(parts) == 3:
            try:
                directive["attempts"] = int(parts[2])
            except ValueError:
                raise CampaignError(
                    f"bad sabotage attempt count {parts[2]!r}"
                ) from None
        sabotage[shard] = directive
    return sabotage


def _campaign_spec(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        circuits=tuple(args.circuits),
        modes=tuple(_parse_mode(m) for m in args.modes),
        shards_per_cell=args.shards,
        vectors_per_shard=args.vectors,
        seed=args.seed,
        clock_fraction=args.clock_fraction,
        threshold=args.threshold,
        library=args.library,
    )


def _runner_config(args: argparse.Namespace) -> RunnerConfig:
    return RunnerConfig(
        workers=args.workers,
        task_timeout=args.timeout,
        max_retries=args.retries,
        backend=args.backend,
        queue_dir=args.queue_dir,
        lease_ttl=args.lease_ttl,
    )


def _maybe_autoshard(spec: CampaignSpec, args: argparse.Namespace) -> CampaignSpec:
    """Apply ``--auto-shard-from`` resizing, narrating what changed."""
    donor = getattr(args, "auto_shard_from", None)
    if not donor:
        return spec
    resized, timing = autoshard_spec(spec, donor, args.target_shard_seconds)
    print(
        f"auto-shard: {timing.samples} journaled shard(s) from {donor} "
        f"(p50 {timing.p50_seconds:.2f}s / p90 {timing.p90_seconds:.2f}s "
        f"at {timing.vectors_per_shard} vectors) -> "
        f"{resized.vectors_per_shard} vectors x "
        f"{resized.shards_per_cell} shards per cell "
        f"(~{args.target_shard_seconds:g}s per shard)",
        file=sys.stderr,
    )
    return resized


def _emit_campaign(outcome_aggregate: dict, args: argparse.Namespace) -> None:
    render = (
        render_campaign_json if args.format == "json" else render_campaign_text
    )
    text = render(outcome_aggregate)
    if args.out:
        Path(args.out).write_text(
            text if text.endswith("\n") else text + "\n"
        )
        print(f"campaign report written to {args.out}")
    else:
        print(text.rstrip("\n"))


def cmd_campaign_plan(args: argparse.Namespace) -> int:
    spec = _maybe_autoshard(_campaign_spec(args), args)
    plan = plan_campaign(spec)
    print(f"campaign {spec.fingerprint()[:12]}: {len(plan)} shards")
    for shard in plan:
        print(
            f"  #{shard.index:<4d} {shard.circuit:14s} {shard.mode_key:32s} "
            f"vectors={shard.vectors} seed={shard.seed}"
        )
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    outcome = run_campaign(
        _maybe_autoshard(_campaign_spec(args), args),
        args.checkpoint,
        _runner_config(args),
        sabotage=_parse_sabotage(args.sabotage),
        progress=print if args.progress else None,
    )
    _emit_campaign(outcome.aggregate, args)
    return 0 if outcome.complete else 1


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    outcome = resume_campaign(
        args.checkpoint,
        _runner_config(args),
        progress=print if args.progress else None,
    )
    _emit_campaign(outcome.aggregate, args)
    return 0 if outcome.complete else 1


def cmd_campaign_report(args: argparse.Namespace) -> int:
    state = load_journal(args.checkpoint)
    results = {i: record["result"] for i, record in state.results.items()}
    # Telemetry records journaled by an obs-enabled run survive in the
    # checkpoint, so reporting offline still shows the telemetry section.
    shard_obs = {
        i: record["obs"]
        for i, record in state.results.items()
        if isinstance(record.get("obs"), dict)
    }
    aggregate = aggregate_results(
        state.spec,
        plan_campaign(state.spec),
        results,
        state.quarantined,
        shard_obs=shard_obs,
    )
    _emit_campaign(aggregate, args)
    return 0 if aggregate["complete"] else 1


def cmd_campaign_smoke(args: argparse.Namespace) -> int:
    if args.distributed:
        return run_distributed_smoke(args.workdir)
    return run_smoke(args.workdir)


def cmd_campaign_status(args: argparse.Namespace) -> int:
    if args.watch:
        return watch_status(args.checkpoint, args.queue_dir, args.watch)
    print(
        render_status_text(
            campaign_status(args.checkpoint, args.queue_dir)
        ).rstrip("\n")
    )
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    queue = WorkQueue.open(args.queue_dir)
    worker = QueueWorker(
        queue,
        worker_id=args.worker_id,
        task_timeout=args.timeout,
        max_consecutive_failures=args.max_failures,
        idle_exit=args.idle_exit,
        echo=None if args.quiet else (
            lambda line: print(line, file=sys.stderr, flush=True)
        ),
    )
    return worker.run()


def cmd_info(args: argparse.Namespace) -> int:
    from repro import __version__

    obs_state = "enabled" if obs.enabled() else "disabled"
    sources = []
    if obs.ENV_VAR in os.environ:
        sources.append(f"{obs.ENV_VAR}={os.environ[obs.ENV_VAR]!r}")
    if getattr(args, "trace", None):
        sources.append("--trace")
    if getattr(args, "metrics", None):
        sources.append("--metrics")
    print(f"repro version     : {__version__}")
    print(f"python            : {sys.version.split()[0]} ({sys.platform})")
    print(f"engine backends   : {', '.join(available_backends())}")
    print(f"default backend   : {validated_backend_name()}")
    print(f"numpy             : {'available' if numpy_available() else 'not available'}")
    print(f"executor backends : {', '.join(exec_backends())}")
    print(f"cpu count         : {os.cpu_count() or 'unknown'}")
    print(f"default workers   : {default_worker_count()}")
    print(f"observability     : {obs_state}"
          + (f" (via {', '.join(sources)})" if sources else ""))
    print(f"library (selected): {args.library}")
    from repro.analysis.absint import PASS_REGISTRY
    from repro.analysis.rules import RULE_REGISTRY

    print("analysis rules    :")
    for rid, rule in sorted(RULE_REGISTRY.items()):
        print(f"  {rid}  {rule.name:24s} [{rule.severity}] {rule.description}")
    for pid, pss in sorted(PASS_REGISTRY.items()):
        print(f"  {pid}  {pss.name:24s} [{pss.severity}] {pss.description}")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    records = obs.load_trace(args.tracefile)
    print(f"trace: {args.tracefile}  ({len(records)} spans)")
    print(obs.render_trace_summary(records, top=args.top))
    return 0


def cmd_obs_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs.serve import QueueDirSource, start_server

    source = QueueDirSource(args.queue_dir, window=args.window)
    server = start_server(source, host=args.host, port=args.port)
    print(f"serving {args.queue_dir} read-only on {server.url}")
    print("routes: /metrics (Prometheus), /healthz, /snapshot.json; "
          "Ctrl-C to stop")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Masking timing errors on speed-paths (DATE 2009) — "
        "reproduction toolkit",
    )
    parser.add_argument(
        "--library",
        default="lsi10k_like",
        choices=("unit", "lsi10k_like"),
        help="cell library for loading/mapping (default: lsi10k_like)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared observability flags.  argparse only accepts main-parser options
    # *before* the subcommand, so these ride on every leaf subparser via a
    # ``parents=`` parent; either flag switches recording on for the run.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_group = obs_parent.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        metavar="FILE",
        help="record spans; .jsonl streams span records, anything else "
        "writes Chrome trace JSON (load in Perfetto)",
    )
    obs_group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a metrics snapshot; .prom/.txt renders Prometheus "
        "text exposition, anything else JSON",
    )

    p = sub.add_parser(
        "list", help="list available circuits", parents=[obs_parent]
    )
    p.set_defaults(func=cmd_list)

    p = sub.add_parser(
        "report", help="static timing summary", parents=[obs_parent]
    )
    p.add_argument("circuit", help="benchmark name or .blif path")
    p.add_argument("--threshold", type=float, default=0.9)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "spcf", help="speed-path characteristic function", parents=[obs_parent]
    )
    p.add_argument("circuit")
    p.add_argument(
        "--algorithm", default="short", choices=("short", "path", "node", "all")
    )
    p.add_argument("--threshold", type=float, default=0.9)
    p.add_argument(
        "--jobs",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="fan per-output SPCF across N worker processes "
        "(0 = inline through the executor; default: serial)",
    )
    p.add_argument(
        "--precert",
        action="store_true",
        help="statically pre-certify obligations first and feed the "
        "certificates into the SPCF compile",
    )
    p.set_defaults(func=cmd_spcf)

    p = sub.add_parser(
        "mask", help="synthesize the error-masking circuit", parents=[obs_parent]
    )
    p.add_argument("circuit")
    p.add_argument("--threshold", type=float, default=0.9)
    p.add_argument("--max-support", type=int, default=12)
    p.add_argument("--out", help="write the masked design as BLIF")
    p.add_argument("--mask-out", help="write the masking circuit as BLIF")
    p.add_argument("--verilog", help="write the masked design as Verilog")
    p.set_defaults(func=cmd_mask)

    def add_baseline_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--baseline",
            metavar="FILE",
            help="suppress findings recorded in this baseline file",
        )
        cp.add_argument(
            "--write-baseline",
            metavar="FILE",
            help="record the current findings as a new baseline file",
        )

    p = sub.add_parser(
        "lint",
        help="rule-based netlist lint (LINT001-LINT007)",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[obs_parent],
    )
    p.add_argument("circuit", help="benchmark name, .blif path, or 'all'")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.add_argument(
        "--fail-on",
        default="error",
        choices=("info", "warning", "error"),
        help="lowest severity that makes the exit code 1",
    )
    p.add_argument("--fanout-threshold", type=int, default=64)
    p.add_argument(
        "--ignore", nargs="*", metavar="RULE", help="rule ids or names to skip"
    )
    add_baseline_options(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="abstract-interpretation proofs over the compiled IR "
        "(ABS001-ABS013)",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[obs_parent],
    )
    p.add_argument("circuit", help="benchmark name, .blif path, or 'all'")
    p.add_argument("--format", default="text", choices=("text", "json", "sarif"))
    p.add_argument(
        "--fail-on",
        default="error",
        choices=("info", "warning", "error"),
        help="lowest severity that makes the exit code 1",
    )
    p.add_argument("--threshold", type=float, default=0.9,
                   help="speed-path threshold fraction (paper's Delta_y)")
    p.add_argument("--target", type=int, default=None,
                   help="explicit target arrival time (overrides --threshold)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for sampled transition classes and vectors")
    p.add_argument("--samples", type=int, default=128,
                   help="transition classes sampled above the exhaustive cap")
    p.add_argument("--replay-budget", type=int, default=512,
                   help="total event-simulator replays confirming hazards")
    p.add_argument("--report-potential", action="store_true",
                   help="also report X verdicts without a replayed witness "
                   "(ABS006)")
    p.add_argument("--precert", action="store_true",
                   help="also report per-output precert discharge rates "
                   "(ABS010)")
    p.add_argument("--paths", action="store_true",
                   help="also classify speed-paths as false/true and report "
                   "them (ABS011/ABS012)")
    p.add_argument("--backend", default=None, choices=("python", "numpy"),
                   help="word backend for the ternary domain")
    p.add_argument("--select", nargs="*", metavar="PASS",
                   help="run only these pass ids or names")
    p.add_argument("--ignore", nargs="*", metavar="PASS",
                   help="pass ids or names to skip")
    p.add_argument("--out", help="write the report to a file (any format)")
    add_baseline_options(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "paths",
        help="classify speed-paths as false (proved unsensitizable) or "
        "true (witnessed)",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[obs_parent],
    )
    p.add_argument("circuit", help="benchmark name or .blif path")
    p.add_argument("--threshold", type=float, default=0.9,
                   help="speed-path threshold fraction (paper's Delta_y)")
    p.add_argument("--target", type=int, default=None,
                   help="explicit target arrival time (overrides --threshold)")
    p.add_argument("--limit", type=int, default=4096,
                   help="abort if the circuit has more speed-paths than this")
    p.add_argument("--replay-budget", type=int, default=8,
                   help="event-simulator replays per path for true-path "
                   "witnesses")
    p.add_argument("--masked", action="store_true",
                   help="synthesize the masked design first and classify "
                   "its speed-paths instead")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.add_argument("--out", help="write the report to a file")
    p.set_defaults(func=cmd_paths)

    p = sub.add_parser(
        "verify-mask",
        help="formally verify masking soundness/coverage/equivalence (BDD)",
        parents=[obs_parent],
    )
    p.add_argument("circuit", help="benchmark name or .blif path")
    p.add_argument("--threshold", type=float, default=0.9)
    p.add_argument("--max-support", type=int, default=12)
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(func=cmd_verify_mask)

    p = sub.add_parser("table1", help="regenerate Table 1", parents=[obs_parent])
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "table2", help="regenerate Table 2 rows", parents=[obs_parent]
    )
    p.add_argument("--circuits", nargs="*", help="subset of circuit names")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "info",
        help="toolkit version, engine backends, observability status",
        parents=[obs_parent],
    )
    p.set_defaults(func=cmd_info)

    obs_cmd = sub.add_parser(
        "obs", help="observability utilities (trace inspection, /metrics)"
    )
    osub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    p = osub.add_parser(
        "report", help="summarize a trace file (per-span-name wall/CPU table)"
    )
    p.add_argument("tracefile", help="Chrome trace JSON or span JSONL file")
    p.add_argument("--top", type=int, default=0,
                   help="show only the N hottest span names (0 = all)")
    p.set_defaults(func=cmd_obs_report)

    p = osub.add_parser(
        "serve",
        help="scrape-able /metrics endpoint over a work-queue directory "
        "(read-only; live or finished campaigns)",
    )
    p.add_argument("--queue-dir", required=True, metavar="DIR",
                   help="work-queue directory to observe")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=9464,
                   help="TCP port (default: 9464; 0 = pick a free one)")
    p.add_argument("--window", type=float, default=30.0, metavar="SECONDS",
                   help="trailing window for throughput rates (default: 30)")
    p.set_defaults(func=cmd_obs_serve)

    camp = sub.add_parser(
        "campaign",
        help="resilient fault-injection campaigns (checkpoint/resume)",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def add_spec_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--circuits",
            nargs="+",
            default=["comparator2", "cu"],
            help="benchmark circuits to sweep",
        )
        cp.add_argument(
            "--modes",
            nargs="+",
            default=list(FAULT_KINDS),
            metavar="KIND[:k=v,...]",
            help=f"fault modes, from {FAULT_KINDS} "
            "(e.g. delay:scale=3.0,arcs=2)",
        )
        cp.add_argument("--shards", type=int, default=2,
                        help="shards per (circuit, mode) cell")
        cp.add_argument("--vectors", type=int, default=128,
                        help="vector pairs per shard")
        cp.add_argument("--seed", type=int, default=0)
        cp.add_argument("--clock-fraction", type=float, default=0.85,
                        help="sample clock as fraction of critical delay")
        cp.add_argument("--threshold", type=float, default=0.9)

    def add_runner_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--workers", type=_nonneg_int, default=2,
                        help="worker subprocesses; 0 runs shards inline")
        cp.add_argument("--timeout", type=float, default=300.0,
                        help="per-shard attempt timeout in seconds")
        cp.add_argument("--retries", type=int, default=3,
                        help="retries per shard before quarantine")
        cp.add_argument("--backend", default="auto",
                        choices=CAMPAIGN_BACKENDS,
                        help="executor backend (auto: 0 workers = inline, "
                        "else process pool; queue = shared-directory "
                        "elastic fleet)")
        cp.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="shared work-queue directory (required for "
                        "--backend queue; external `repro worker DIR` "
                        "processes may join at any time)")
        cp.add_argument("--lease-ttl", type=float, default=15.0,
                        metavar="SECONDS",
                        help="queue lease time-to-live: how long a dead "
                        "worker can hold a shard before it is stolen")
        cp.add_argument("--progress", action="store_true",
                        help="log per-shard progress lines")

    def add_autoshard_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--auto-shard-from", default=None, metavar="CKPT",
            help="resize shards from this donor journal's wall-time "
            "telemetry (total vectors preserved exactly)",
        )
        cp.add_argument(
            "--target-shard-seconds", type=float, default=30.0,
            metavar="SECONDS",
            help="p90 wall budget per shard for --auto-shard-from "
            "(default: 30)",
        )

    def add_output_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--format", default="text", choices=("text", "json"))
        cp.add_argument("--out", help="write the report to a file")

    p = csub.add_parser(
        "plan", help="show the deterministic shard plan", parents=[obs_parent]
    )
    add_spec_options(p)
    add_autoshard_options(p)
    p.set_defaults(func=cmd_campaign_plan)

    p = csub.add_parser(
        "run",
        help="run a campaign against a new checkpoint",
        parents=[obs_parent],
    )
    p.add_argument("checkpoint", help="checkpoint journal path (must not exist)")
    add_spec_options(p)
    add_autoshard_options(p)
    add_runner_options(p)
    add_output_options(p)
    p.add_argument(
        "--sabotage",
        nargs="*",
        metavar="SHARD:MODE[:ATTEMPTS]",
        help="failure drill: kill/hang/exit a shard's worker "
        "(testing; not recorded in the checkpoint)",
    )
    p.set_defaults(func=cmd_campaign_run)

    p = csub.add_parser(
        "resume",
        help="resume an interrupted checkpoint",
        parents=[obs_parent],
    )
    p.add_argument("checkpoint", help="existing checkpoint journal path")
    add_runner_options(p)
    add_output_options(p)
    p.set_defaults(func=cmd_campaign_resume)

    p = csub.add_parser(
        "report",
        help="aggregate an existing checkpoint without running",
        parents=[obs_parent],
    )
    p.add_argument("checkpoint", help="existing checkpoint journal path")
    add_output_options(p)
    p.set_defaults(func=cmd_campaign_report)

    p = csub.add_parser(
        "status",
        help="live journal + work-queue status (safe from any host)",
        parents=[obs_parent],
    )
    p.add_argument("checkpoint", help="existing checkpoint journal path")
    p.add_argument("--queue-dir", default=None, metavar="DIR",
                   help="work-queue directory of a --backend queue run")
    p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="re-render every SECONDS until the campaign settles")
    p.set_defaults(func=cmd_campaign_status)

    p = csub.add_parser(
        "smoke",
        help="end-to-end crash/quarantine/resume drill (CI gate)",
        parents=[obs_parent],
    )
    p.add_argument("--workdir", help="keep checkpoints here instead of a tmpdir")
    p.add_argument(
        "--distributed", action="store_true",
        help="run the elastic-fleet drill instead: 4 queue workers, two "
        "SIGKILLed mid-lease and one wedged, byte-identical aggregate",
    )
    p.set_defaults(func=cmd_campaign_smoke)

    p = sub.add_parser(
        "worker",
        help="serve a shared work-queue directory (join/leave any time)",
        parents=[obs_parent],
    )
    p.add_argument("queue_dir", help="work-queue directory to serve")
    p.add_argument("--worker-id", default=None,
                   help="override the generated worker identity")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-task wall budget before lease renewal stops")
    p.add_argument("--max-failures", type=int, default=16,
                   help="consecutive environmental failures before this "
                   "worker removes itself (exit code 3)")
    p.add_argument("--idle-exit", type=float, default=None, metavar="SECONDS",
                   help="exit after this long idle (default: wait for the "
                   "queue's stop marker)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-task log lines on stderr")
    p.set_defaults(func=cmd_worker)
    return parser


def _flush_obs_outputs(args: argparse.Namespace) -> None:
    """Write the requested trace/metrics files; never mask the exit path."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    try:
        if trace:
            obs.write_trace(trace, obs.span_records())
            print(f"trace written to {trace}", file=sys.stderr)
        if metrics:
            obs.write_metrics(metrics, obs.metrics_snapshot())
            print(f"metrics written to {metrics}", file=sys.stderr)
    except (OSError, ReproError) as exc:
        print(f"error: could not write telemetry: {exc}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", None) or getattr(args, "metrics", None):
        obs.configure(enabled=True)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except Exception:  # noqa: BLE001 - CLI boundary: crash must not exit 1
        # Exit 1 is reserved for "diagnostics found"; an unexpected crash
        # must be distinguishable by scripts and CI, so it maps to 2 like
        # every other tool failure (the traceback still goes to stderr).
        traceback.print_exc()
        return EXIT_ERROR
    finally:
        # Even a failed run leaves its telemetry behind — that is when a
        # trace is most wanted.
        _flush_obs_outputs(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

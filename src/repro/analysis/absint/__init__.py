"""repro.analysis.absint — abstract interpretation over the compiled IR.

Fixpoint passes with pluggable lattice domains proving properties the
sampling subsystems (engine, campaign) can only observe:

* **ternary domain** (:mod:`.ternary`) — word-parallel Kleene 0/1/X
  evaluation through the dual-rail engine backends; ``SAFE`` verdicts are
  proofs of hazard-freedom, reported hazards are event-simulator replays,
* **arrival-interval domain** (:mod:`.intervals`) — per-net ``[lo, hi]``
  stabilization bounds cross-checked against :mod:`repro.sta.timing`,
* **structural domain** (:mod:`.structure`) — SCC, reachability,
  constancy, and X-observability over the flat gate arrays,
* **SPCF audit** (:mod:`.spcfcheck`) — machine check that every provably
  critical pattern lies inside ``Sigma_y`` (Eqn. 1 soundness).

Quickstart::

    from repro.analysis.absint import AbsintConfig, analyze_circuit
    report = analyze_circuit(circuit, AbsintConfig(threshold=0.9))
    for diag in report:
        print(diag.render())
"""

from repro.analysis.absint.domain import AbstractDomain, run_fixpoint
from repro.analysis.absint.intervals import (
    ArrivalIntervalDomain,
    Interval,
    arrival_intervals,
    check_interval_consistency,
)
from repro.analysis.absint.passes import (
    PASS_REGISTRY,
    AbsintConfig,
    AbsintContext,
    AbsintPass,
    abs_pass,
    analyze_circuit,
    analyze_suite,
    resolve_pass_ids,
)
from repro.analysis.absint.structure import constant_nets, unreachable_nets
from repro.analysis.absint.ternary import (
    X,
    HazardAnalysis,
    HazardWitness,
    OutputHazards,
    TransitionClass,
    analyze_hazards,
    class_of_pair,
    enumerate_classes,
    inject_x,
    pack_classes,
    ternary_class_values,
)

__all__ = [
    "AbstractDomain",
    "run_fixpoint",
    "Interval",
    "ArrivalIntervalDomain",
    "arrival_intervals",
    "check_interval_consistency",
    "AbsintConfig",
    "AbsintContext",
    "AbsintPass",
    "PASS_REGISTRY",
    "abs_pass",
    "resolve_pass_ids",
    "analyze_circuit",
    "analyze_suite",
    "constant_nets",
    "unreachable_nets",
    "X",
    "TransitionClass",
    "HazardAnalysis",
    "HazardWitness",
    "OutputHazards",
    "analyze_hazards",
    "class_of_pair",
    "enumerate_classes",
    "inject_x",
    "pack_classes",
    "ternary_class_values",
]

"""Pass registry and drivers for the abstract interpreter.

Mirrors the linter's architecture (stable ids, shared context, structured
:class:`~repro.analysis.diagnostics.Diagnostic` output) but over the
*compiled* IR, with verdicts that are proofs or replayed counterexamples
rather than structural pattern matches:

========  ========================  ========  ==================================
id        name                      severity  meaning
========  ========================  ========  ==================================
ABS001    combinational-scc         error     cycle through gate fanins (IR
                                              cannot be built; other passes skip)
ABS002    unreachable-net           info      gate net outside every output cone
ABS003    constant-net              info      gate net proven constant by
                                              exhaustive word evaluation
ABS004    x-unobservable-net        warning   X injected at the net never
                                              reaches an output (redundant)
ABS005    confirmed-hazard          warning*  replayed glitch; warning when it
                                              endangers the clock edge, else info
ABS006    potential-hazard          info      ternary X without a replayed
                                              witness (opt-in, off by default)
ABS007    interval-inconsistency    error     interval fixpoint disagrees with
                                              independent STA (internal bug)
ABS008    spcf-unsound              error     hazard/oracle pattern outside
                                              Sigma_y (Eqn. 1 soundness bug)
ABS009    precert-contradiction     error     pre-certification certificate
                                              refused (tampered) or contradicted
                                              by the exact BDD cross-check
ABS010    precert-summary           info      per-output obligation discharge
                                              rates (opt-in, off by default)
ABS011    false-speed-path          info      statically unsensitizable
                                              speed-path, with certificate
                                              (opt-in, off by default)
ABS012    true-speed-path           info      sensitizable speed-path with a
                                              replayed witness and masking rank
                                              (opt-in, off by default)
ABS013    paths-contradiction       error     path certificate refused
                                              (tampered) or contradicted by a
                                              fresh BDD re-derivation / replay
========  ========================  ========  ==================================

``ABS005`` severity is per finding: a witness on a *critical* output whose
waveform settles after the speed-path target ``Delta_y`` is exactly the
timing error the paper masks, so it warns; an early-settling glitch is
sampled correctly at the clock edge and is informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.analysis.absint.intervals import (
    arrival_intervals,
    check_interval_consistency,
)
from repro.analysis.absint.spcfcheck import (
    containment_violations,
    equivalence_violations,
)
from repro.analysis.absint.structure import (
    constant_nets,
    structural_findings,
    unreachable_nets,
)
from repro.analysis.absint.ternary import (
    HazardAnalysis,
    analyze_hazards,
    inject_x,
)
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.rules import LintContext
from repro.benchcircuits.suite import all_circuit_names, circuit_by_name
from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import AbsintError, ReproError
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library, builtin_library
from repro.spcf.result import SpcfResult
from repro.spcf.shortpath import compute_spcf
from repro.sta.timing import TimingReport, analyze

if TYPE_CHECKING:  # pragma: no cover - avoids the precert <-> absint cycle
    from repro.analysis.paths.sensitize import PathsAnalysis
    from repro.analysis.precert.certificate import CertificateSet


@dataclass(frozen=True)
class AbsintConfig:
    """Tunables for one analysis run.

    The exhaustiveness caps trade proof coverage for time: below
    ``exhaustive_inputs`` the ternary pass enumerates all ``3**n - 2**n``
    transition classes (exact verdicts); below
    ``binary_exhaustive_inputs`` constancy/observability proofs enumerate
    all ``2**n`` stimuli.  Budgets bound the event-simulator replays that
    confirm hazards.  ``select``/``ignore`` take pass ids (``"ABS005"``)
    or names (``"confirmed-hazard"``).
    """

    threshold: float = 0.9
    target: int | None = None
    exhaustive_inputs: int = 8
    binary_exhaustive_inputs: int = 12
    samples: int = 128
    seed: int = 0
    max_completion_x: int = 12
    max_replays_per_class: int = 16
    max_witnesses_per_output: int = 4
    max_candidate_classes: int = 128
    replay_budget: int = 512
    max_injection_nets: int = 512
    report_potential: bool = False
    report_precert: bool = False
    report_paths: bool = False
    spcf_max_inputs: int = 12
    spcf_samples: int = 64
    precert_max_inputs: int = 12
    paths_max_inputs: int = 12
    paths_limit: int = 4096
    paths_replay_budget: int = 8
    backend: str | None = None
    select: frozenset[str] | None = None
    ignore: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise AbsintError(
                f"threshold fraction {self.threshold} outside (0, 1]"
            )
        for name in (
            "exhaustive_inputs",
            "binary_exhaustive_inputs",
            "samples",
            "max_completion_x",
            "max_replays_per_class",
            "max_witnesses_per_output",
            "max_candidate_classes",
            "replay_budget",
            "max_injection_nets",
            "spcf_max_inputs",
            "spcf_samples",
            "precert_max_inputs",
            "paths_max_inputs",
            "paths_limit",
            "paths_replay_budget",
        ):
            if getattr(self, name) < 0:
                raise AbsintError(f"{name} must be >= 0, got {getattr(self, name)}")

    def active_passes(self) -> tuple["AbsintPass", ...]:
        """The passes this config enables, in pass-id order."""
        selected = (
            resolve_pass_ids(self.select)
            if self.select is not None
            else frozenset(PASS_REGISTRY)
        )
        ignored = resolve_pass_ids(self.ignore)
        return tuple(
            PASS_REGISTRY[pid] for pid in sorted(selected - ignored)
        )


#: A finding: (location, message, hint, severity override or None, data).
AbsFinding = tuple[str, str, str, Severity | None, dict | None]
PassFn = Callable[["AbsintContext", AbsintConfig], Iterator[AbsFinding]]


@dataclass(frozen=True)
class AbsintPass:
    """One registered pass: identity, default severity, check function."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    check: PassFn
    needs_ir: bool = True


PASS_REGISTRY: dict[str, AbsintPass] = {}


def abs_pass(
    rule_id: str,
    name: str,
    severity: Severity,
    description: str,
    needs_ir: bool = True,
):
    """Decorator registering a check function as an absint pass."""

    def decorate(fn: PassFn) -> PassFn:
        if rule_id in PASS_REGISTRY:
            raise AbsintError(f"duplicate pass id {rule_id!r}")
        PASS_REGISTRY[rule_id] = AbsintPass(
            rule_id, name, severity, description, fn, needs_ir
        )
        return fn

    return decorate


def resolve_pass_ids(names: frozenset[str] | set[str]) -> frozenset[str]:
    """Map pass ids *or* names to ids; raise on unknown entries."""
    by_name = {p.name: p.rule_id for p in PASS_REGISTRY.values()}
    out = set()
    for entry in names:
        if entry in PASS_REGISTRY:
            out.add(entry)
        elif entry in by_name:
            out.add(by_name[entry])
        else:
            raise AbsintError(
                f"unknown absint pass {entry!r}; known passes: "
                f"{sorted(PASS_REGISTRY)}"
            )
    return frozenset(out)


class AbsintContext:
    """Lazily computed shared state of one analysis run."""

    def __init__(self, circuit: Circuit, config: AbsintConfig) -> None:
        self.circuit = circuit
        self.config = config
        self.lint_ctx = LintContext(circuit)

    @property
    def compiled(self) -> CompiledCircuit | None:
        """The IR, or ``None`` when the netlist cannot be lowered."""
        if not hasattr(self, "_compiled"):
            if self.lint_ctx.is_cyclic:
                self._compiled = None
            else:
                try:
                    self._compiled = compile_circuit(self.circuit)
                except ReproError:
                    # Dangling nets etc. — LINT002 territory; the absint
                    # passes that need the IR simply skip.
                    self._compiled = None
        return self._compiled

    @property
    def timing(self) -> TimingReport:
        if not hasattr(self, "_timing"):
            self._timing = analyze(
                self.compiled,
                target=self.config.target,
                threshold=self.config.threshold,
            )
        return self._timing

    @property
    def intervals(self):
        if not hasattr(self, "_intervals"):
            self._intervals = arrival_intervals(self.compiled)
        return self._intervals

    @property
    def hazards(self) -> HazardAnalysis:
        if not hasattr(self, "_hazards"):
            self._hazards = analyze_hazards(self.compiled, self.config)
        return self._hazards

    @property
    def spcf(self) -> SpcfResult | None:
        """Short-path SPCF, or ``None`` when out of scope (size, validity)."""
        if not hasattr(self, "_spcf"):
            self._spcf = None
            if (
                self.compiled is not None
                and self.compiled.n_inputs <= self.config.spcf_max_inputs
            ):
                try:
                    self._spcf = compute_spcf(
                        self.circuit,
                        threshold=self.config.threshold,
                        target=self.config.target,
                    )
                except ReproError:
                    self._spcf = None
        return self._spcf

    @property
    def precert(self) -> "CertificateSet | None":
        """Pre-certification certificates, or ``None`` when out of scope.

        Imported lazily: :mod:`repro.analysis.precert` pulls in the ternary
        domain of this package, so a module-level import would be circular.
        """
        if not hasattr(self, "_precert"):
            self._precert = None
            if self.compiled is not None:
                from repro.analysis.precert.precertify import precertify

                targets = (
                    [self.config.target]
                    if self.config.target is not None
                    else None
                )
                try:
                    self._precert = precertify(
                        self.compiled,
                        targets=targets,
                        threshold=self.config.threshold,
                    )
                except ReproError:
                    self._precert = None
        return self._precert

    @property
    def paths(self) -> "PathsAnalysis | None":
        """Speed-path classification, or ``None`` when out of scope.

        Gated on ``paths_max_inputs`` like the other exact planes, and
        budget-capped: a circuit with more than ``paths_limit`` speed-paths
        (or any other analysis failure) yields ``None`` rather than a
        partial — and hence unsound-to-tighten — certificate set.
        """
        if not hasattr(self, "_paths"):
            self._paths = None
            if (
                self.compiled is not None
                and self.compiled.n_inputs <= self.config.paths_max_inputs
            ):
                from repro.analysis.paths import PathsConfig, analyze_paths

                try:
                    self._paths = analyze_paths(
                        self.circuit,
                        threshold=self.config.threshold,
                        target=self.config.target,
                        config=PathsConfig(
                            limit=self.config.paths_limit,
                            replay_budget=self.config.paths_replay_budget,
                            backend=self.config.backend,
                        ),
                    )
                except ReproError:
                    self._paths = None
        return self._paths

    def critical_output_names(self) -> frozenset[str]:
        compiled = self.compiled
        arrival = compiled.arrival()
        target = self.timing.target
        return frozenset(
            name
            for idx, name in zip(compiled.output_index, compiled.outputs)
            if arrival[idx] > target
        )


# --------------------------------------------------------------------- passes


@abs_pass(
    "ABS001",
    "combinational-scc",
    Severity.ERROR,
    "strongly connected component in the gate graph",
    needs_ir=False,
)
def check_scc(ctx: AbsintContext, config: AbsintConfig) -> Iterator[AbsFinding]:
    for scc in ctx.lint_ctx.cycles():
        shown = ", ".join(scc[:6]) + (", ..." if len(scc) > 6 else "")
        yield (
            scc[0],
            f"combinational SCC of {len(scc)} gate(s): {shown}; "
            "abstract interpretation over the levelized IR is skipped",
            "break the cycle before asking for hazard or timing proofs",
            None,
            {"scc": list(scc)},
        )


@abs_pass(
    "ABS002",
    "unreachable-net",
    Severity.INFO,
    "gate net outside every primary-output cone",
)
def check_unreachable(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    for location, message, data in structural_findings(ctx.compiled):
        yield (
            location,
            message,
            "dead logic distorts critical-delay and aging statistics",
            None,
            data,
        )


@abs_pass(
    "ABS003",
    "constant-net",
    Severity.INFO,
    "gate net proven constant by exhaustive evaluation",
)
def check_constant(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    compiled = ctx.compiled
    if compiled.n_inputs > config.binary_exhaustive_inputs:
        return
    dead = set(unreachable_nets(compiled))
    for net, value in sorted(constant_nets(compiled, config.backend).items()):
        if net in dead:
            continue  # already ABS002; constancy of dead logic is moot
        yield (
            net,
            f"net {net!r} evaluates to constant {value} for all "
            f"{1 << compiled.n_inputs} input patterns",
            "fold the constant and re-run timing; its cone is wasted area",
            None,
            {"net": net, "value": value},
        )


@abs_pass(
    "ABS004",
    "x-unobservable-net",
    Severity.WARNING,
    "X at the net can never reach a primary output",
)
def check_x_unobservable(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    compiled = ctx.compiled
    if compiled.n_inputs > config.binary_exhaustive_inputs:
        return
    dead = set(unreachable_nets(compiled))
    outputs = set(compiled.outputs)
    injected = 0
    for pos in range(compiled.n_gates):
        net = compiled.net_names[compiled.n_inputs + pos]
        if net in dead or net in outputs:
            continue
        if injected >= config.max_injection_nets:
            return
        injected += 1
        observable = inject_x(compiled, net)
        if not any(observable.values()):
            yield (
                net,
                f"an unknown value at net {net!r} never reaches any "
                "primary output (proven over all input patterns)",
                "the net is redundant cover; candidates for the paper's "
                "essential-weight pruning",
                None,
                {"net": net},
            )


@abs_pass(
    "ABS005",
    "confirmed-hazard",
    Severity.WARNING,
    "replayed two-vector glitch on a primary output",
)
def check_confirmed_hazards(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    critical = ctx.critical_output_names()
    target = ctx.timing.target
    for oh in ctx.hazards.per_output.values():
        for w in oh.confirmed:
            endangers = w.output in critical and w.settle_time > target
            data = w.to_data()
            data["endangers_clock"] = endangers
            data["target"] = target
            v1 = "".join(str(b) for b in w.v1)
            v2 = "".join(str(b) for b in w.v2)
            if endangers:
                message = (
                    f"{w.kind} hazard on critical output {w.output!r}: "
                    f"transition {v1} -> {v2} glitches "
                    f"{w.num_transitions} times and settles at "
                    f"t={w.settle_time} > target {target}"
                )
                hint = (
                    "this is a maskable timing error; synthesize_masking "
                    "covers its pattern via Sigma_y"
                )
                severity = Severity.WARNING
            else:
                message = (
                    f"{w.kind} hazard on output {w.output!r}: transition "
                    f"{v1} -> {v2} glitches {w.num_transitions} times, "
                    f"settled by t={w.settle_time} (target {target})"
                )
                hint = "settles before the clock edge; sampled correctly"
                severity = Severity.INFO
            yield (w.output, message, hint, severity, data)


@abs_pass(
    "ABS006",
    "potential-hazard",
    Severity.INFO,
    "ternary X verdict without a replayed witness",
)
def check_potential_hazards(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    if not config.report_potential:
        return
    for oh in ctx.hazards.per_output.values():
        if oh.unconfirmed_classes:
            yield (
                oh.output,
                f"output {oh.output!r}: {oh.unconfirmed_classes} of "
                f"{oh.x_classes} X transition class(es) have no replayed "
                "glitch (Kleene X over-approximates; may be spurious)",
                "raise the replay budget or treat as hazard-possible",
                None,
                {
                    "output": oh.output,
                    "x_classes": oh.x_classes,
                    "unconfirmed": oh.unconfirmed_classes,
                },
            )


@abs_pass(
    "ABS007",
    "interval-inconsistency",
    Severity.ERROR,
    "arrival-interval fixpoint disagrees with STA",
)
def check_intervals(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    compiled = ctx.compiled
    true_upper = None
    if config.report_paths and ctx.paths is not None:
        from repro.analysis.paths import tightened_arrivals

        true_upper = tightened_arrivals(ctx.paths)
    for location, message, data in check_interval_consistency(
        compiled,
        ctx.intervals,
        compiled.arrival(),
        compiled.min_stable(),
        true_upper=true_upper,
    ):
        yield (
            location,
            message,
            "internal consistency bug: report it with the circuit attached",
            None,
            data,
        )


@abs_pass(
    "ABS008",
    "spcf-unsound",
    Severity.ERROR,
    "pattern provably critical yet outside Sigma_y (or vice versa)",
)
def check_spcf(ctx: AbsintContext, config: AbsintConfig) -> Iterator[AbsFinding]:
    spcf = ctx.spcf
    if spcf is None or not spcf.per_output:
        return
    for location, message, data in containment_violations(
        spcf, ctx.hazards.witnesses
    ):
        yield (
            location,
            message,
            "Eqn. 1 soundness bug in repro.spcf; do not trust masking "
            "built from this SPCF",
            None,
            data,
        )
    for location, message, data in equivalence_violations(spcf, config):
        yield (
            location,
            message,
            "Eqn. 1 soundness bug in repro.spcf; do not trust masking "
            "built from this SPCF",
            None,
            data,
        )


@abs_pass(
    "ABS009",
    "precert-contradiction",
    Severity.ERROR,
    "pre-certification certificate refused or contradicted by exact BDDs",
)
def check_precert(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    """Cross-check every certificate against the exact BDD result.

    Size-gated like ABS008: the audit recomputes each claim with BDDs over
    all primary inputs.  Tampered certificates (failed integrity hash) are
    *refused* with a distinct diagnostic and never cross-checked;
    contradictions are soundness bugs in the static plane.
    """
    compiled = ctx.compiled
    if compiled is None or compiled.n_inputs > config.precert_max_inputs:
        return
    certs = ctx.precert
    if certs is None or not len(certs):
        return
    from repro.analysis.precert.audit import audit_certificates

    for finding in audit_certificates(ctx.circuit, certs):
        location = (
            finding.node
            if finding.time is None
            else f"{finding.node}@t={finding.time}"
        )
        if finding.kind == "tampered":
            hint = (
                "certificate integrity failure: regenerate the set with "
                "precertify(); never consult evidence that fails its hash"
            )
        else:
            hint = (
                "static-plane soundness bug: a certificate would have made "
                "SPCF skip real BDD work; do not trust precert speedups "
                "until this is fixed"
            )
        yield (
            location,
            finding.message,
            hint,
            None,
            {"kind": finding.kind, **finding.data},
        )


@abs_pass(
    "ABS010",
    "precert-summary",
    Severity.INFO,
    "per-output obligation discharge rates from pre-certification",
)
def check_precert_summary(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    if not config.report_precert:
        return
    certs = ctx.precert
    if certs is None or not len(certs):
        return
    from repro.analysis.precert.report import summarize

    for s in summarize(ctx.circuit, certs):
        rate = round(100 * s.discharge_rate)
        yield (
            s.output,
            f"output {s.output!r} at t={s.target}: {s.discharged} of "
            f"{s.obligations} obligation(s) discharged statically ({rate}%), "
            f"{s.refuted} refuted, {s.required} left for BDDs "
            f"[{s.verdict}]",
            "discharged/refuted obligations skip their S0/S1 BDD builds",
            None,
            s.to_data(),
        )


@abs_pass(
    "ABS011",
    "false-speed-path",
    Severity.INFO,
    "statically unsensitizable speed-path, with proof certificate",
)
def check_false_paths(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    if not config.report_paths:
        return
    analysis = ctx.paths
    if analysis is None:
        return
    for cert in analysis.certificates.false_paths():
        route = "->".join(cert.nets)
        qualifier = (
            "; its activation conditions fail too, so the output's "
            "true-arrival bound may be tightened"
            if cert.prunable
            else ""
        )
        yield (
            cert.end,
            f"false speed-path {route} (delay {cert.delay} > target "
            f"{cert.target}): no input vector sensitizes it "
            f"[{cert.method}]{qualifier}",
            "exclude it from masking-cube selection; the certificate is "
            "re-derivable by audit_path_certificates",
            None,
            {
                "nets": list(cert.nets),
                "delay": cert.delay,
                "method": cert.method,
                "prunable": cert.prunable,
            },
        )


@abs_pass(
    "ABS012",
    "true-speed-path",
    Severity.INFO,
    "sensitizable speed-path with a replayed witness and masking rank",
)
def check_true_paths(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    if not config.report_paths:
        return
    analysis = ctx.paths
    if analysis is None:
        return
    for cert in analysis.certificates.ranked_true_paths():
        route = "->".join(cert.nets)
        v1 = "".join(str(int(b)) for b in cert.facts.get("v1", ()))
        v2 = "".join(str(int(b)) for b in cert.facts.get("v2", ()))
        yield (
            cert.end,
            f"true speed-path {route} (delay {cert.delay} > target "
            f"{cert.target}), masking rank {cert.rank}: witness "
            f"{v1} -> {v2} replays with settle time "
            f"{cert.facts.get('settle_time')}",
            "a real late transition; masking-cube selection should cover "
            "its patterns first (rank order)",
            None,
            {
                "nets": list(cert.nets),
                "delay": cert.delay,
                "rank": cert.rank,
                "settle_time": cert.facts.get("settle_time"),
            },
        )
    for cert in analysis.certificates.unresolved_paths():
        route = "->".join(cert.nets)
        yield (
            cert.end,
            f"speed-path {route} (delay {cert.delay} > target "
            f"{cert.target}) is unresolved: "
            f"{cert.facts.get('reason', 'budget exhausted')}",
            "raise the paths budgets; an unresolved path must be treated "
            "as potentially true",
            None,
            {"nets": list(cert.nets), "delay": cert.delay},
        )


@abs_pass(
    "ABS013",
    "paths-contradiction",
    Severity.ERROR,
    "path certificate refused or contradicted by fresh re-derivation",
)
def check_paths_audit(
    ctx: AbsintContext, config: AbsintConfig
) -> Iterator[AbsFinding]:
    """Audit every path certificate from scratch (the ABS009 pattern).

    Always on (size-gated like ABS009): FALSE verdicts are re-derived on a
    fresh certificate-free BDD context regardless of the cheap plane that
    produced them, and TRUE witnesses are replayed through the event
    simulator.  Tampered certificates are refused with a distinct
    diagnostic before any semantic check.
    """
    compiled = ctx.compiled
    if compiled is None or compiled.n_inputs > config.paths_max_inputs:
        return
    analysis = ctx.paths
    if analysis is None or not len(analysis.certificates):
        return
    from repro.analysis.paths import audit_path_certificates

    for finding in audit_path_certificates(
        ctx.circuit, analysis.certificates
    ):
        location = finding.nets[-1] if finding.nets else ctx.circuit.name
        if finding.kind == "tampered":
            hint = (
                "certificate integrity failure: regenerate with "
                "analyze_paths(); never consult evidence failing its hash"
            )
        else:
            hint = (
                "paths-plane soundness bug: a wrong verdict here would "
                "prune a real speed-path or mask a false one; do not "
                "trust path-based tightening until this is fixed"
            )
        yield (
            location,
            finding.message,
            hint,
            None,
            {"kind": finding.kind, "nets": list(finding.nets), **finding.data},
        )


# -------------------------------------------------------------------- drivers


def analyze_circuit(
    circuit: Circuit, config: AbsintConfig | None = None
) -> LintReport:
    """Run every active pass over one circuit; findings in pass-id order.

    Broken netlists never raise: a cyclic or unlowerable circuit yields its
    ``ABS001`` findings and the IR-dependent passes are skipped.
    """
    cfg = config or AbsintConfig()
    ctx = AbsintContext(circuit, cfg)
    diagnostics: list[Diagnostic] = []
    for p in cfg.active_passes():
        if p.needs_ir and ctx.compiled is None:
            continue
        for location, message, hint, severity, data in p.check(ctx, cfg):
            diagnostics.append(
                Diagnostic(
                    rule_id=p.rule_id,
                    rule_name=p.name,
                    severity=severity if severity is not None else p.severity,
                    circuit=circuit.name,
                    location=location,
                    message=message,
                    hint=hint,
                    data=data,
                )
            )
    return LintReport(
        circuit_name=circuit.name,
        num_gates=circuit.num_gates,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        diagnostics=tuple(diagnostics),
    )


def analyze_suite(
    library: Library | None = None,
    config: AbsintConfig | None = None,
    names: Iterable[str] | None = None,
) -> dict[str, LintReport]:
    """Analyze every builtin benchmark (or the given subset), by name."""
    lib = library or builtin_library("lsi10k_like")
    selected = tuple(names) if names is not None else all_circuit_names()
    return {
        name: analyze_circuit(circuit_by_name(name, lib), config)
        for name in selected
    }


__all__ = [
    "AbsintConfig",
    "AbsintContext",
    "AbsintPass",
    "PASS_REGISTRY",
    "abs_pass",
    "resolve_pass_ids",
    "analyze_circuit",
    "analyze_suite",
]

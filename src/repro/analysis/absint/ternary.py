"""Word-parallel Kleene ternary hazard / X-propagation analysis.

A *transition class* abstracts a two-vector transition at the clock edge:
each primary input is assigned ``0`` (stays low), ``1`` (stays high), or
``X`` (changes, or is unknown).  Evaluating the class through the dual-rail
Kleene backends (:meth:`~repro.engine.PythonWordBackend.eval_ternary_words`)
gives, per net, either a definite value or X — this is Eichelberger's
classic ternary hazard test run word-parallel, thousands of classes per
backend call.

Soundness (the "no false negatives" half of the contract): compositional
Kleene evaluation over each cell's expression tree over-approximates the
natural ternary extension, and by induction over the levelized IR a net
whose ternary value is definite has a *constant* pure-delay waveform for
every vector pair drawn from the class — so any glitch the event simulator
can exhibit implies X here, and a ``SAFE`` verdict is a proof of
hazard-freedom under arbitrary delays.

Completeness is recovered by *replay* (the other half): an X output is only
a candidate; the analysis enumerates binary completions of the class
word-parallel, picks vector pairs, and replays them through
:func:`repro.sim.eventsim.two_vector_waveforms`.  Only a pair whose
waveform actually glitches (>= 2 transitions) becomes a
:class:`HazardWitness` — every reported hazard is an event-simulator
counterexample, not a may-warning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.engine import CompiledCircuit, compile_circuit, select_backend
from repro.errors import AbsintError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.absint.passes import AbsintConfig

#: The "changing / unknown" input value of a transition class.
X = 2

#: A transition class: one of 0, 1, X per primary input (engine order).
TransitionClass = tuple[int, ...]


@dataclass(frozen=True)
class HazardWitness:
    """One replayed hazard: a vector pair whose output waveform glitches."""

    output: str
    v1: tuple[int, ...]  #: initial input bits, engine order
    v2: tuple[int, ...]  #: final input bits, engine order
    kind: str  #: ``static-0`` | ``static-1`` | ``dynamic``
    num_transitions: int
    settle_time: int

    def to_data(self) -> dict:
        """JSON-ready evidence payload for a diagnostic."""
        return {
            "output": self.output,
            "v1": list(self.v1),
            "v2": list(self.v2),
            "kind": self.kind,
            "transitions": self.num_transitions,
            "settle_time": self.settle_time,
        }


@dataclass(frozen=True)
class OutputHazards:
    """Per-output verdict summary of one hazard analysis."""

    output: str
    x_classes: int  #: classes where the ternary value is X
    analyzed_classes: int  #: X classes that got a completion analysis
    confirmed: tuple[HazardWitness, ...]
    unconfirmed_classes: int  #: X classes left candidate (budget or clean replay)


@dataclass(frozen=True)
class HazardAnalysis:
    """Result of :func:`analyze_hazards` for one circuit."""

    circuit: str
    n_inputs: int
    n_classes: int
    exhaustive: bool
    per_output: Mapping[str, OutputHazards]
    replays: int
    safe_classes: dict[str, int] = field(default_factory=dict)

    @property
    def witnesses(self) -> tuple[HazardWitness, ...]:
        return tuple(
            w for oh in self.per_output.values() for w in oh.confirmed
        )


def enumerate_classes(
    n_inputs: int, config: "AbsintConfig"
) -> tuple[list[TransitionClass], bool]:
    """Transition classes to analyze; second value marks exhaustiveness.

    Exhaustive mode (``n_inputs <= config.exhaustive_inputs``) yields every
    class with at least one X input — the ``2**n`` all-binary classes are
    constant transitions and cannot glitch.  Above the cap, a seeded sample
    biased toward few-X classes (1–3 changing inputs, the regime where
    static hazards live) plus the all-X class.
    """
    if n_inputs == 0:
        return [], True
    if n_inputs <= config.exhaustive_inputs:
        classes = []
        for code in range(3**n_inputs):
            cls = []
            rest = code
            has_x = False
            for _ in range(n_inputs):
                rest, digit = divmod(rest, 3)
                cls.append(digit)
                has_x = has_x or digit == X
            if has_x:
                classes.append(tuple(cls))
        return classes, True
    rng = random.Random(config.seed)
    seen: set[TransitionClass] = set()
    classes = []
    all_x = (X,) * n_inputs
    seen.add(all_x)
    classes.append(all_x)
    attempts = 0
    while len(classes) < config.samples and attempts < 16 * config.samples:
        attempts += 1
        base = [rng.randint(0, 1) for _ in range(n_inputs)]
        for pos in rng.sample(range(n_inputs), rng.randint(1, 3)):
            base[pos] = X
        cls = tuple(base)
        if cls not in seen:
            seen.add(cls)
            classes.append(cls)
    return classes, False


def pack_classes(
    compiled: CompiledCircuit,
    classes: Sequence[TransitionClass],
    backend: str | None = None,
) -> tuple[list[int], list[int]]:
    """Rail words of every net, one pattern bit per transition class."""
    width = len(classes)
    ones = [0] * compiled.n_inputs
    zeros = [0] * compiled.n_inputs
    for j, cls in enumerate(classes):
        if len(cls) != compiled.n_inputs:
            raise AbsintError(
                f"transition class of {len(cls)} values for "
                f"{compiled.n_inputs} inputs"
            )
        bit = 1 << j
        for i, v in enumerate(cls):
            if v in (1, X):
                ones[i] |= bit
            if v in (0, X):
                zeros[i] |= bit
            if v not in (0, 1, X):
                raise AbsintError(
                    f"transition class value {v!r} is not 0, 1, or X"
                )
    return select_backend(backend).eval_ternary_words(
        compiled, ones, zeros, width
    )


def ternary_class_values(
    circuit: Circuit | CompiledCircuit,
    cls: TransitionClass,
    backend: str | None = None,
) -> dict[str, int]:
    """Ternary value of every net for one class: ``0``, ``1``, or ``X``.

    The single-class convenience used by oracle tests and by the worked
    README example; bulk analysis goes through :func:`pack_classes`.
    """
    compiled = compile_circuit(circuit)
    hi, lo = pack_classes(compiled, [cls], backend)
    out: dict[str, int] = {}
    for name, h, l in zip(compiled.net_names, hi, lo):
        out[name] = X if (h & l & 1) else (1 if h & 1 else 0)
    return out


def class_of_pair(
    v1: Sequence[int], v2: Sequence[int]
) -> TransitionClass:
    """The transition class abstracting the two-vector pair ``v1 -> v2``."""
    if len(v1) != len(v2):
        raise AbsintError(f"vector lengths differ: {len(v1)} vs {len(v2)}")
    return tuple(
        (1 if a else 0) if bool(a) == bool(b) else X
        for a, b in zip(v1, v2)
    )


def _completion_vector(
    cls: TransitionClass, x_positions: Sequence[int], code: int
) -> tuple[int, ...]:
    """Binary input vector: class values with X bits filled from ``code``."""
    v = list(cls)
    for m, pos in enumerate(x_positions):
        v[pos] = (code >> m) & 1
    return tuple(v)


def _completion_words(
    compiled: CompiledCircuit, cls: TransitionClass, x_positions: Sequence[int]
) -> list[int]:
    """Input words enumerating all ``2**k`` completions of the class."""
    k = len(x_positions)
    width = 1 << k
    mask = (1 << width) - 1
    words = []
    x_rank = {pos: m for m, pos in enumerate(x_positions)}
    for i, v in enumerate(cls):
        if v == X:
            m = x_rank[i]
            # Bit j of the word is bit m of completion code j.
            period = 1 << m
            block = (1 << period) - 1
            word = 0
            j = period
            while j < width:
                word |= block << j
                j += 2 * period
            words.append(word)
        else:
            words.append(mask if v else 0)
    return words


def _pairs_by_distance(codes: Sequence[int]) -> list[tuple[int, int]]:
    """All code pairs, farthest Hamming distance first (deterministic)."""
    pairs = [
        (codes[i], codes[j])
        for i in range(len(codes))
        for j in range(i + 1, len(codes))
    ]
    pairs.sort(key=lambda p: (-((p[0] ^ p[1]).bit_count()), p[0], p[1]))
    return pairs


def analyze_hazards(
    circuit: Circuit | CompiledCircuit, config: "AbsintConfig"
) -> HazardAnalysis:
    """Three-tier hazard verdicts for every primary output.

    Per (output, class): **SAFE** when the ternary value is definite (a
    proof of hazard-freedom), **confirmed** when a completion pair replays
    with a glitch in the event simulator (a :class:`HazardWitness`), and
    **unconfirmed candidate** otherwise (X output, but no glitching pair
    found within the replay budget — or none exists, as Kleene X
    over-approximates).
    """
    compiled = compile_circuit(circuit)
    classes, exhaustive = enumerate_classes(compiled.n_inputs, config)
    per_output: dict[str, OutputHazards] = {}
    safe_classes: dict[str, int] = {}
    if not classes:
        for name in compiled.outputs:
            per_output[name] = OutputHazards(name, 0, 0, (), 0)
            safe_classes[name] = 0
        return HazardAnalysis(
            compiled.name, compiled.n_inputs, 0, exhaustive, per_output, 0,
            safe_classes,
        )

    hi, lo = pack_classes(compiled, classes, config.backend)
    replays = 0
    total_analyzed = 0  # completion analyses are whole-circuit evaluations,
    # so the cap is global — a 1000-output netlist must not do 1000x the work
    for out_idx, name in zip(compiled.output_index, compiled.outputs):
        x_word = hi[out_idx] & lo[out_idx]
        x_count = x_word.bit_count()
        safe_classes[name] = len(classes) - x_count
        witnesses: list[HazardWitness] = []
        analyzed = 0
        unconfirmed = 0
        confirmed_classes = 0
        j = 0
        word = x_word
        while word:
            if not (word & 1):
                word >>= 1
                j += 1
                continue
            word >>= 1
            cls = classes[j]
            j += 1
            if (
                total_analyzed >= config.max_candidate_classes
                or len(witnesses) >= config.max_witnesses_per_output
                or replays >= config.replay_budget
            ):
                unconfirmed += 1
                continue
            x_positions = [i for i, v in enumerate(cls) if v == X]
            k = len(x_positions)
            if k > config.max_completion_x:
                unconfirmed += 1
                continue
            analyzed += 1
            total_analyzed += 1
            out_word = select_backend(config.backend).eval_words(
                compiled, _completion_words(compiled, cls, x_positions), 1 << k
            )[out_idx]
            zeros_c = [c for c in range(1 << k) if not (out_word >> c) & 1]
            ones_c = [c for c in range(1 << k) if (out_word >> c) & 1]
            # Static pairs (same endpoints) first — the paper's hazard of
            # interest at the clock edge — then dynamic pairs.
            pair_pool = (
                [(a, b, "static-0") for a, b in _pairs_by_distance(zeros_c)]
                + [(a, b, "static-1") for a, b in _pairs_by_distance(ones_c)]
                + [
                    (a, b, "dynamic")
                    for a, b in _pairs_by_distance(
                        sorted(zeros_c) + sorted(ones_c)
                    )
                    if ((out_word >> a) & 1) != ((out_word >> b) & 1)
                ]
            )
            found = None
            for n_tried, (ca, cb, kind) in enumerate(pair_pool):
                if (
                    n_tried >= config.max_replays_per_class
                    or replays >= config.replay_budget
                ):
                    break
                v1 = _completion_vector(cls, x_positions, ca)
                v2 = _completion_vector(cls, x_positions, cb)
                waves = two_vector_waveforms(
                    compiled,
                    dict(zip(compiled.inputs, map(bool, v1))),
                    dict(zip(compiled.inputs, map(bool, v2))),
                )
                replays += 1
                wave = waves[name]
                if wave.num_transitions >= 2:
                    found = HazardWitness(
                        output=name,
                        v1=v1,
                        v2=v2,
                        kind=kind,
                        num_transitions=wave.num_transitions,
                        settle_time=wave.settle_time,
                    )
                    break
            if found is not None:
                witnesses.append(found)
                confirmed_classes += 1
            else:
                unconfirmed += 1
        per_output[name] = OutputHazards(
            output=name,
            x_classes=x_count,
            analyzed_classes=analyzed,
            confirmed=tuple(witnesses),
            unconfirmed_classes=unconfirmed,
        )
    return HazardAnalysis(
        circuit=compiled.name,
        n_inputs=compiled.n_inputs,
        n_classes=len(classes),
        exhaustive=exhaustive,
        per_output=per_output,
        replays=replays,
        safe_classes=safe_classes,
    )


def inject_x(
    circuit: Circuit | CompiledCircuit,
    net: str,
) -> dict[str, bool]:
    """X-observability of ``net``: can an unknown there reach each output?

    Drives every primary input with all ``2**n`` binary stimuli at once,
    forces the rails of ``net`` to X, and propagates dual-rail Kleene values
    through the plan.  Returns, per output, whether X is visible for *any*
    stimulus.  ``False`` for every output proves the net's value can never
    matter (redundant logic) — Kleene X-propagation over-approximates
    observability, so "unobservable" verdicts are sound while ``True`` may
    be a false alarm of the abstraction.
    """
    compiled = compile_circuit(circuit)
    idx = compiled.net_index.get(net)
    if idx is None:
        raise AbsintError(f"no net {net!r} in circuit {compiled.name!r}")
    n = compiled.n_inputs
    width = 1 << n
    mask = (1 << width) - 1
    hi = [0] * compiled.n_nets
    lo = [0] * compiled.n_nets
    for i in range(n):
        period = 1 << i
        word = 0
        j = period
        while j < width:
            word |= ((1 << period) - 1) << j
            j += 2 * period
        hi[i] = word
        lo[i] = mask ^ word
    if idx < n:
        hi[idx] = lo[idx] = mask
    for func, out, fanins in compiled.ternary_plan:
        args: list[int] = []
        for f in fanins:
            args.append(hi[f])
            args.append(lo[f])
        hi[out], lo[out] = func(mask, *args)
        if out == idx:
            hi[out] = lo[out] = mask
    return {
        name: bool(hi[i] & lo[i])
        for i, name in zip(compiled.output_index, compiled.outputs)
    }


__all__ = [
    "X",
    "TransitionClass",
    "HazardWitness",
    "OutputHazards",
    "HazardAnalysis",
    "enumerate_classes",
    "pack_classes",
    "ternary_class_values",
    "class_of_pair",
    "analyze_hazards",
    "inject_x",
]

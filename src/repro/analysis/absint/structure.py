"""Structural abstract domain: SCCs, reachability, constancy, observability.

These passes work on the flat compiled arrays where possible (reverse BFS
over ``gate_fanins``), falling back to the cycle-safe
:class:`~repro.analysis.rules.LintContext` Tarjan walk for loop detection on
circuits that cannot be compiled at all.

The observability pass is where the structural and ternary domains meet:
a net is *X-unobservable* when forcing it to X under every binary stimulus
leaves every primary output definite (:func:`..ternary.inject_x`).  Kleene
X-propagation over-approximates observability, so that verdict is a proof
the net's value never matters — exactly the redundant-cover side condition
the paper's essential-weight pruning relies on.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine import CompiledCircuit, select_backend

#: One structural finding: ``(location, message, data)``.
StructFinding = tuple[str, str, dict]


def unreachable_nets(compiled: CompiledCircuit) -> tuple[str, ...]:
    """Gate nets outside every primary-output cone (compiled reverse BFS)."""
    seen = [False] * compiled.n_nets
    stack = list(compiled.output_index)
    while stack:
        idx = stack.pop()
        if seen[idx]:
            continue
        seen[idx] = True
        if idx >= compiled.n_inputs:
            stack.extend(compiled.gate_fanins[idx - compiled.n_inputs])
    return tuple(
        compiled.net_names[compiled.n_inputs + pos]
        for pos in range(compiled.n_gates)
        if not seen[compiled.n_inputs + pos]
    )


def constant_nets(
    compiled: CompiledCircuit, backend: str | None = None
) -> dict[str, int]:
    """Gate nets whose global function is constant, with the constant.

    Exhaustive word-parallel evaluation over all ``2**n`` stimuli; callers
    gate on input count.  A constant *driven by real logic* is foldable —
    every gate in its cone is wasted area and a wasted aging margin.
    """
    n = compiled.n_inputs
    width = 1 << n
    mask = (1 << width) - 1
    words = []
    for i in range(n):
        period = 1 << i
        word = 0
        j = period
        while j < width:
            word |= ((1 << period) - 1) << j
            j += 2 * period
        words.append(word)
    values = select_backend(backend).eval_words(compiled, words, width)
    out: dict[str, int] = {}
    for pos in range(compiled.n_gates):
        idx = n + pos
        w = values[idx]
        if w == 0:
            out[compiled.net_names[idx]] = 0
        elif w == mask:
            out[compiled.net_names[idx]] = 1
    return out


def structural_findings(
    compiled: CompiledCircuit,
) -> Iterator[StructFinding]:
    """ABS002 findings: unreachable gate nets."""
    for name in unreachable_nets(compiled):
        yield (
            name,
            f"gate net {name!r} is outside every primary-output cone",
            {"net": name},
        )


__all__ = [
    "StructFinding",
    "unreachable_nets",
    "constant_nets",
    "structural_findings",
]

"""Machine-checked audit of Eqn. 1: hazards must live inside the SPCF.

The paper's masking construction only pays for patterns in ``Sigma_y`` —
every pattern that can still be switching after the speed-path target
``Delta_y``.  Two independent oracles bound that set from below:

* **confirmed hazard witnesses** (two-vector event simulation): the pure
  delay model with a *specific* initial vector is one realization of the
  floating-mode worst case, so ``settle(v1 -> v2)[y] <= stab(v2)[y]``; a
  witness settling after the target therefore proves ``v2 in Sigma_y``;
* **floating-mode stabilization** (:func:`repro.sim.timingsim
  .stabilization_times`): exact per-pattern membership, checked as a full
  equivalence ``stab(v)[y] > Delta_y  <=>  Sigma_y(v)`` on enumerated or
  sampled vectors.

Any disagreement means the short-path BDD recursion dropped a critical
pattern (or invented one) — a soundness bug in :mod:`repro.spcf`, reported
as ``ABS008`` with the counterexample vector attached.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.sim.timingsim import stabilization_times
from repro.spcf.result import SpcfResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.absint.passes import AbsintConfig
    from repro.analysis.absint.ternary import HazardWitness

#: One audit violation: ``(location, message, data)``.
SpcfFinding = tuple[str, str, dict]


def containment_violations(
    spcf: SpcfResult,
    witnesses: Iterable["HazardWitness"],
) -> Iterator[SpcfFinding]:
    """Confirmed hazards that escape ``Sigma_y`` (should be impossible).

    Only witnesses on critical outputs settling *after* the target are
    obligations; an early-settling glitch is harmless at the clock edge and
    legitimately outside the SPCF.
    """
    circuit = spcf.context.circuit
    inputs = circuit.inputs
    target = spcf.target
    for w in witnesses:
        sigma = spcf.per_output.get(w.output)
        if sigma is None or w.settle_time <= target:
            continue
        pattern = dict(zip(inputs, map(bool, w.v2)))
        if not sigma.evaluate(pattern):
            yield (
                w.output,
                f"confirmed hazard on {w.output!r} settles at "
                f"t={w.settle_time} > target {target} but its final vector "
                f"is outside Sigma_y — Eqn. 1 dropped a critical pattern",
                {
                    "output": w.output,
                    "v1": list(w.v1),
                    "v2": list(w.v2),
                    "settle_time": w.settle_time,
                    "target": target,
                },
            )


def _sample_vectors(
    n_inputs: int, config: "AbsintConfig"
) -> Sequence[tuple[int, ...]]:
    """Vectors for the floating-mode equivalence check.

    Exhaustive for small input counts, a seeded sample otherwise (distinct
    stream from the class sampler so the two probes are independent).
    """
    if n_inputs <= config.binary_exhaustive_inputs:
        return [
            tuple((code >> i) & 1 for i in range(n_inputs))
            for code in range(1 << n_inputs)
        ]
    rng = random.Random(config.seed + 0x5BCF)
    return [
        tuple(rng.randint(0, 1) for _ in range(n_inputs))
        for _ in range(config.spcf_samples)
    ]


def equivalence_violations(
    spcf: SpcfResult, config: "AbsintConfig"
) -> Iterator[SpcfFinding]:
    """Vectors where ``Sigma_y`` and the floating-mode oracle disagree."""
    circuit = spcf.context.circuit
    inputs = circuit.inputs
    target = spcf.target
    for v in _sample_vectors(len(inputs), config):
        pattern = dict(zip(inputs, map(bool, v)))
        times = stabilization_times(circuit, pattern)
        for output, sigma in spcf.per_output.items():
            is_late = times[output] > target
            in_sigma = sigma.evaluate(pattern)
            if is_late != in_sigma:
                direction = (
                    "late pattern missing from Sigma_y (unsound)"
                    if is_late
                    else "on-time pattern inside Sigma_y (over-approximate)"
                )
                yield (
                    output,
                    f"floating-mode oracle disagrees with Sigma_y on "
                    f"{output!r}: stab={times[output]}, target={target} — "
                    f"{direction}",
                    {
                        "output": output,
                        "vector": list(v),
                        "stabilization": times[output],
                        "target": target,
                        "in_sigma": bool(in_sigma),
                    },
                )


__all__ = [
    "SpcfFinding",
    "containment_violations",
    "equivalence_violations",
]

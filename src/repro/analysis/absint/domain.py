"""The abstract-interpretation fixpoint framework over the compiled IR.

An :class:`AbstractDomain` assigns every net an element of a join-semilattice
and gives each gate a monotone transfer function over its fanin values;
:func:`run_fixpoint` computes the least fixpoint by chaotic iteration with a
fanout-driven worklist seeded in level order.

Termination argument
--------------------

Each worklist step either leaves a net's value unchanged (its fanouts are not
re-enqueued) or strictly raises it in the lattice order (``join`` with the
old value guarantees ascent, monotonicity of ``transfer`` is the domain's
contract).  On the acyclic :class:`~repro.engine.CompiledCircuit` IR the
level-ordered seed reaches the fixpoint in a single sweep; on domains with
unbounded ascending chains (or a buggy non-monotone transfer) the explicit
``max_steps`` guard raises :class:`~repro.errors.AbsintError` instead of
spinning, so every pass terminates by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Sequence, TypeVar

from repro.engine.ir import CompiledCircuit
from repro.errors import AbsintError

V = TypeVar("V")


class AbstractDomain(Generic[V]):
    """One lattice domain: values, order, and per-gate transfer.

    Subclasses implement the four hooks; ``transfer`` must be monotone in
    every fanin value for the fixpoint to be the least one (and for the
    termination guard to be an error signal rather than a crutch).
    """

    name = "abstract"

    def bottom(self, compiled: CompiledCircuit) -> V:
        """Least element; initial value of every gate net."""
        raise NotImplementedError

    def input_value(self, compiled: CompiledCircuit, index: int) -> V:
        """Abstract value of primary input ``index`` (fixed, never recomputed)."""
        raise NotImplementedError

    def transfer(
        self, compiled: CompiledCircuit, pos: int, fanin_values: Sequence[V]
    ) -> V:
        """Output value of gate ``pos`` from its fanin values (pin order)."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        """Least upper bound."""
        raise NotImplementedError

    def leq(self, a: V, b: V) -> bool:
        """Lattice order: ``a`` below-or-equal ``b``."""
        raise NotImplementedError


def run_fixpoint(
    compiled: CompiledCircuit,
    domain: AbstractDomain[V],
    max_steps: int | None = None,
) -> list[V]:
    """Least-fixpoint values of ``domain`` for every net of ``compiled``.

    Gates are seeded in level order (one sweep suffices on the DAG); the
    worklist re-enqueues fanout readers whenever a net's value rises, so the
    same engine drives domains that need more than one pass.  ``max_steps``
    defaults to a generous multiple of the gate count; exceeding it raises
    :class:`~repro.errors.AbsintError` naming the domain.
    """
    n_inputs = compiled.n_inputs
    values: list[V] = [
        domain.input_value(compiled, i) for i in range(n_inputs)
    ] + [domain.bottom(compiled) for _ in range(compiled.n_gates)]
    fanouts = compiled.fanouts()
    if max_steps is None:
        max_steps = 64 * compiled.n_gates + 64

    worklist: deque[int] = deque(range(compiled.n_gates))
    queued = [True] * compiled.n_gates
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps:
            raise AbsintError(
                f"domain {domain.name!r} did not reach a fixpoint on "
                f"{compiled.name!r} within {max_steps} steps; the transfer "
                "function is non-monotone or the chain is unbounded"
            )
        pos = worklist.popleft()
        queued[pos] = False
        out = n_inputs + pos
        fanins = compiled.gate_fanins[pos]
        candidate = domain.transfer(
            compiled, pos, [values[f] for f in fanins]
        )
        new = domain.join(values[out], candidate)
        if domain.leq(new, values[out]):
            continue
        values[out] = new
        for reader_pos, _pin in fanouts[out]:
            if not queued[reader_pos]:
                queued[reader_pos] = True
                worklist.append(reader_pos)
    return values


__all__ = ["AbstractDomain", "run_fixpoint"]

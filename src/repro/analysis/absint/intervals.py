"""Arrival-interval abstract domain and its STA cross-check.

Each net is assigned an interval ``[lo, hi]`` certifying that *every*
transition of the net (under any vector pair) happens within it: ``lo`` is
the min-plus shortest-delay bound (no path can flip the net earlier) and
``hi`` the max-plus latest-arrival bound.  The lattice order is interval
containment with the empty interval as bottom, so the generic fixpoint
engine computes both bounds in one sweep.

The cross-check against :mod:`repro.sta.timing` is an internal-consistency
audit, not a redundancy: the two computations walk different code paths
(generic fixpoint vs. hand-rolled topological loops), so any disagreement —
``hi != arrival``, or ``lo`` above the prime-based ``min_stable`` lower
bound it must stay below — is a bug in one of them and surfaces as an
``ABS007`` diagnostic instead of silently corrupting downstream passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.analysis.absint.domain import AbstractDomain, run_fixpoint
from repro.engine import CompiledCircuit

#: Sentinel bounds of the empty (bottom) interval.
_POS_INF = 1 << 60
_NEG_INF = -(1 << 60)


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``lo > hi`` encodes the empty interval."""

    lo: int
    hi: int

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def contains(self, t: int) -> bool:
        return self.lo <= t <= self.hi

    def __str__(self) -> str:
        return "[]" if self.is_empty else f"[{self.lo}, {self.hi}]"


BOTTOM = Interval(_POS_INF, _NEG_INF)


class ArrivalIntervalDomain(AbstractDomain[Interval]):
    """Min-plus / max-plus transition-time bounds per net.

    Primary inputs switch exactly at t = 0 (the two-vector clock-edge
    model), so their interval is ``[0, 0]``; a gate's output can only move
    in response to a fanin move shifted by that pin's delay, giving
    ``lo = min(lo_f + d)`` and ``hi = max(hi_f + d)``.  Both transfers are
    monotone in the containment order, so the fixpoint is the least one.
    """

    name = "arrival-interval"

    def bottom(self, compiled: CompiledCircuit) -> Interval:
        return BOTTOM

    def input_value(self, compiled: CompiledCircuit, index: int) -> Interval:
        return Interval(0, 0)

    def transfer(
        self,
        compiled: CompiledCircuit,
        pos: int,
        fanin_values: Sequence[Interval],
    ) -> Interval:
        if not fanin_values:
            # Constant cell: its output never transitions; [0, 0] keeps the
            # invariant "all transitions inside" vacuously and matches the
            # STA convention arrival == 0 for constants.
            return Interval(0, 0)
        if any(v.is_empty for v in fanin_values):
            return BOTTOM
        delays = compiled.gate_delays[pos]
        lo = min(v.lo + d for v, d in zip(fanin_values, delays))
        hi = max(v.hi + d for v, d in zip(fanin_values, delays))
        return Interval(lo, hi)

    def join(self, a: Interval, b: Interval) -> Interval:
        # All empty intervals are one lattice element; canonicalize to
        # BOTTOM so join stays structurally commutative.
        if a.is_empty:
            return BOTTOM if b.is_empty else b
        if b.is_empty:
            return a
        return Interval(min(a.lo, b.lo), max(a.hi, b.hi))

    def leq(self, a: Interval, b: Interval) -> bool:
        if a.is_empty:
            return True
        if b.is_empty:
            return False
        return b.lo <= a.lo and a.hi <= b.hi


def arrival_intervals(compiled: CompiledCircuit) -> list[Interval]:
    """Fixpoint intervals for every net of ``compiled`` (engine net order)."""
    return run_fixpoint(compiled, ArrivalIntervalDomain())


#: One inconsistency: ``(net_name, message, data)``.
IntervalFinding = tuple[str, str, dict]


def check_interval_consistency(
    compiled: CompiledCircuit,
    intervals: Sequence[Interval],
    arrival: Sequence[int],
    min_stable: Sequence[int],
    true_upper: Mapping[str, int] | None = None,
) -> Iterator[IntervalFinding]:
    """Audit the interval fixpoint against independently computed STA.

    Invariants (per net): the interval is non-empty, ``lo <= arrival <= hi``
    (the exact latest arrival is a realizable transition bound), ``hi``
    equals the max-plus arrival bit-for-bit (same recurrence, different
    code), and ``lo <= min_stable`` (a net cannot stabilize before it can
    first move).  ``arrival``/``min_stable`` are injectable so tests can
    feed corrupted values and watch the audit fire.

    ``true_upper`` carries the false-path-pruned true-arrival bounds of the
    paths analysis, which must stay *inside* the interval: never above the
    structural ``hi`` (pruning can only tighten) and never below
    ``min_stable`` (some pattern stabilizes at ``min_stable`` at the
    earliest, so a sound all-patterns upper bound cannot undercut it).
    """
    true_upper = true_upper or {}
    for i, name in enumerate(compiled.net_names):
        iv = intervals[i]
        arr = arrival[i]
        ms = min_stable[i]
        data = {
            "net": name,
            "lo": iv.lo,
            "hi": iv.hi,
            "arrival": arr,
            "min_stable": ms,
        }
        if iv.is_empty:
            yield name, f"net {name!r}: interval fixpoint is empty", data
            continue
        if not iv.contains(arr):
            yield (
                name,
                f"net {name!r}: STA arrival {arr} outside certified "
                f"interval {iv}",
                data,
            )
        elif iv.hi != arr:
            yield (
                name,
                f"net {name!r}: interval upper bound {iv.hi} disagrees with "
                f"STA arrival {arr}",
                data,
            )
        if iv.lo > ms:
            yield (
                name,
                f"net {name!r}: interval lower bound {iv.lo} exceeds "
                f"prime-based earliest stabilization {ms}",
                data,
            )
        if name in true_upper:
            tu = true_upper[name]
            data = {**data, "true_upper": tu}
            if tu > iv.hi:
                yield (
                    name,
                    f"net {name!r}: true-arrival bound {tu} exceeds the "
                    f"structural interval upper bound {iv.hi} (pruning can "
                    "only tighten)",
                    data,
                )
            if tu < ms:
                yield (
                    name,
                    f"net {name!r}: true-arrival bound {tu} undercuts the "
                    f"earliest stabilization {ms} (some pattern stabilizes "
                    "no earlier)",
                    data,
                )


__all__ = [
    "Interval",
    "BOTTOM",
    "ArrivalIntervalDomain",
    "arrival_intervals",
    "check_interval_consistency",
    "IntervalFinding",
]

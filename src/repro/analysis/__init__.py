"""repro.analysis — circuit lint, abstract interpretation, verification.

Three correctness tools on top of the netlist, engine, and BDD layers:

* the **linter** (:func:`lint_circuit`) — rule-based structural checks with
  stable rule ids (``LINT001`` combinational-loop ... ``LINT007``
  constant-output) emitting structured :class:`Diagnostic` records,
* the **abstract interpreter** (:mod:`repro.analysis.absint`) — fixpoint
  passes over the compiled IR (``ABS001`` ... ``ABS008``): Kleene-ternary
  hazard proofs with event-simulator replays, arrival-interval
  certification cross-checked against STA, X-observability, and the
  machine-checked Eqn. 1 / SPCF soundness audit,
* the **formal pass** (:func:`verify_mask`) — BDD equivalence proofs of the
  masking invariants (``e=1 ⟹ y~ = y``, ``Sigma_y ⟹ e``, off-SPCF
  combinational equivalence of the mux-patched design) with counterexample
  extraction.

All three emit through the same :class:`Diagnostic`/report pipeline, with
baseline suppression (:mod:`repro.analysis.baseline`) and text / JSON /
SARIF 2.1.0 rendering (:mod:`repro.analysis.sarif`).

Quickstart::

    from repro.analysis import lint_circuit, verify_mask
    from repro.analysis.absint import analyze_circuit
    for diag in lint_circuit(circuit):
        print(diag.render())
    for diag in analyze_circuit(circuit):
        print(diag.render())

    result = synthesize_masking(circuit, library)
    assert verify_mask(result).ok
"""

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.linter import CircuitLinter, LintConfig, lint_circuit
from repro.analysis.rules import RULE_REGISTRY, LintRule, rule
from repro.analysis.batch import lint_suite, suite_ok
from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    apply_baseline_many,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.reporters import (
    render_json,
    render_json_many,
    render_text,
    render_text_many,
    render_verify_json,
    render_verify_text,
)
from repro.analysis.sarif import render_sarif, sarif_log
from repro.analysis.verify import (
    CheckResult,
    Counterexample,
    VerifyMaskReport,
    assert_verified,
    verify_mask,
)

__all__ = [
    "BASELINE_SCHEMA",
    "CheckResult",
    "CircuitLinter",
    "Counterexample",
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "LintRule",
    "RULE_REGISTRY",
    "Severity",
    "VerifyMaskReport",
    "apply_baseline",
    "apply_baseline_many",
    "assert_verified",
    "lint_circuit",
    "lint_suite",
    "load_baseline",
    "render_baseline",
    "render_json",
    "render_json_many",
    "render_sarif",
    "render_text",
    "render_text_many",
    "render_verify_json",
    "render_verify_text",
    "rule",
    "sarif_log",
    "suite_ok",
    "verify_mask",
    "write_baseline",
]

"""repro.analysis — circuit lint and formal verification.

Two correctness tools on top of the netlist and BDD layers:

* the **linter** (:func:`lint_circuit`) — rule-based structural checks with
  stable rule ids (``LINT001`` combinational-loop ... ``LINT007``
  constant-output) emitting structured :class:`Diagnostic` records,
* the **formal pass** (:func:`verify_mask`) — BDD equivalence proofs of the
  masking invariants (``e=1 ⟹ y~ = y``, ``Sigma_y ⟹ e``, off-SPCF
  combinational equivalence of the mux-patched design) with counterexample
  extraction.

Quickstart::

    from repro.analysis import lint_circuit, verify_mask
    report = lint_circuit(circuit)
    for diag in report:
        print(diag.render())

    result = synthesize_masking(circuit, library)
    assert verify_mask(result).ok
"""

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.linter import CircuitLinter, LintConfig, lint_circuit
from repro.analysis.rules import RULE_REGISTRY, LintRule, rule
from repro.analysis.batch import lint_suite, suite_ok
from repro.analysis.reporters import (
    render_json,
    render_json_many,
    render_text,
    render_text_many,
    render_verify_json,
    render_verify_text,
)
from repro.analysis.verify import (
    CheckResult,
    Counterexample,
    VerifyMaskReport,
    assert_verified,
    verify_mask,
)

__all__ = [
    "CheckResult",
    "CircuitLinter",
    "Counterexample",
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "LintRule",
    "RULE_REGISTRY",
    "Severity",
    "VerifyMaskReport",
    "assert_verified",
    "lint_circuit",
    "lint_suite",
    "render_json",
    "render_json_many",
    "render_text",
    "render_text_many",
    "render_verify_json",
    "render_verify_text",
    "rule",
    "suite_ok",
    "verify_mask",
]

"""SARIF 2.1.0 rendering of diagnostic reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is what
code-scanning UIs ingest; one ``run`` per invocation with the rule metadata
of both registries (lint + absint) in the tool's driver, one ``result`` per
diagnostic.  Circuits have no files, so findings carry *logical* locations
(``circuit/net``) — viewers that require physical locations fall back to
the artifact-free form the standard explicitly allows.

Severity maps onto SARIF levels as ``info -> note``, ``warning ->
warning``, ``error -> error``; every result also carries the stable
baseline fingerprint under ``partialFingerprints`` so SARIF-native baseline
tooling agrees with :mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``partialFingerprints`` key carrying :meth:`Diagnostic.fingerprint`.
FINGERPRINT_KEY = "reproDiagnostic/v1"

_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_metadata() -> list[dict]:
    """Driver rule descriptors: every registered lint and absint rule."""
    from repro.analysis.absint.passes import PASS_REGISTRY
    from repro.analysis.rules import RULE_REGISTRY

    rules = []
    for rule_id in sorted(set(RULE_REGISTRY) | set(PASS_REGISTRY)):
        entry = RULE_REGISTRY.get(rule_id) or PASS_REGISTRY[rule_id]
        rules.append(
            {
                "id": rule_id,
                "name": entry.name,
                "shortDescription": {"text": entry.description},
                "defaultConfiguration": {"level": _LEVELS[entry.severity]},
            }
        )
    return rules


def _result(diag: Diagnostic) -> dict:
    fq = f"{diag.circuit}/{diag.location}" if diag.location else diag.circuit
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    result: dict = {
        "ruleId": diag.rule_id,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": diag.location or diag.circuit,
                        "fullyQualifiedName": fq,
                        "kind": "element",
                    }
                ]
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: diag.fingerprint()},
    }
    if diag.data is not None:
        result["properties"] = {"data": diag.data}
    return result


def sarif_log(
    reports: Mapping[str, LintReport],
    tool_name: str = "repro-analyze",
    tool_version: str | None = None,
) -> dict:
    """The SARIF log object for a batch of reports (one run)."""
    if tool_version is None:
        from repro import __version__ as tool_version
    driver = {
        "name": tool_name,
        "version": tool_version,
        "informationUri": "https://example.invalid/repro",
        "rules": _rule_metadata(),
    }
    results = [
        _result(diag)
        for name in reports
        for diag in reports[name].diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def render_sarif(
    reports: Mapping[str, LintReport],
    tool_name: str = "repro-analyze",
) -> str:
    """Serialize the SARIF log as indented JSON."""
    return json.dumps(sarif_log(reports, tool_name=tool_name), indent=2)


__all__ = [
    "FINGERPRINT_KEY",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render_sarif",
    "sarif_log",
]

"""Batch analysis over the builtin benchmark suite.

``repro lint all`` and ``make check`` use these helpers to sweep every
circuit of :mod:`repro.benchcircuits.suite` — the canary for correctness
drift: a refactor that introduces a dangling net or breaks masking soundness
in *any* benchmark turns the sweep red.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.benchcircuits.suite import all_circuit_names, circuit_by_name
from repro.netlist.library import Library, builtin_library
from repro.analysis.diagnostics import LintReport, Severity
from repro.analysis.linter import LintConfig, lint_circuit


def lint_suite(
    library: Library | None = None,
    config: LintConfig | None = None,
    names: Iterable[str] | None = None,
) -> dict[str, LintReport]:
    """Lint every builtin benchmark (or the given subset), by name."""
    lib = library or builtin_library("lsi10k_like")
    selected = tuple(names) if names is not None else all_circuit_names()
    return {
        name: lint_circuit(circuit_by_name(name, lib), config)
        for name in selected
    }


def suite_ok(
    reports: Mapping[str, LintReport],
    fail_on: Severity = Severity.ERROR,
) -> bool:
    """True when no report reaches the ``fail_on`` severity."""
    return all(report.ok(fail_on) for report in reports.values())

"""Baseline (suppression) files for diagnostics.

A baseline freezes the *current* findings of a codebase so CI fails only on
regressions: ``--write-baseline`` records every finding's fingerprint
(:meth:`Diagnostic.fingerprint` — rule + circuit + location + message, so
re-wording hints or enriching evidence payloads never un-suppresses), and
``--baseline`` filters those fingerprints out of later runs.  Works
identically for lint (``LINT...``) and absint (``ABS...``) diagnostics —
both flow through the same :class:`Diagnostic` pipeline.

File format (JSON, versioned)::

    {
      "schema": "repro-baseline/1",
      "entries": [
        {"fingerprint": "...", "rule_id": "...", "circuit": "...",
         "location": "...", "message": "..."},
        ...
      ]
    }

The redundant context fields exist for human review of the baseline diff;
only the fingerprint is consulted when filtering.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.analysis.diagnostics import LintReport
from repro.errors import BaselineError

BASELINE_SCHEMA = "repro-baseline/1"


def baseline_entries(reports: Mapping[str, LintReport]) -> list[dict]:
    """JSON-ready baseline entries for every finding of a batch run."""
    entries = []
    for name in sorted(reports):
        for diag in reports[name].diagnostics:
            entries.append(
                {
                    "fingerprint": diag.fingerprint(),
                    "rule_id": diag.rule_id,
                    "circuit": diag.circuit,
                    "location": diag.location,
                    "message": diag.message,
                }
            )
    return entries


def render_baseline(reports: Mapping[str, LintReport]) -> str:
    """Serialize a baseline file for the findings of ``reports``."""
    return json.dumps(
        {"schema": BASELINE_SCHEMA, "entries": baseline_entries(reports)},
        indent=2,
    )


def write_baseline(path: str | Path, reports: Mapping[str, LintReport]) -> int:
    """Write the baseline file; returns the number of entries recorded."""
    text = render_baseline(reports)
    Path(path).write_text(text + "\n", encoding="utf-8")
    return sum(len(r) for r in reports.values())


def load_baseline(path: str | Path) -> frozenset[str]:
    """Load the suppressed fingerprints from a baseline file."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {doc.get('schema') if isinstance(doc, dict) else None!r}; "
            f"expected {BASELINE_SCHEMA!r}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    fingerprints = set()
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("fingerprint"), str
        ):
            raise BaselineError(
                f"baseline {path}: entry {i} has no string fingerprint"
            )
        fingerprints.add(entry["fingerprint"])
    return frozenset(fingerprints)


def apply_baseline(
    report: LintReport, fingerprints: frozenset[str]
) -> tuple[LintReport, int]:
    """Drop suppressed findings; returns the filtered report and the count."""
    kept = tuple(
        d for d in report.diagnostics if d.fingerprint() not in fingerprints
    )
    suppressed = len(report.diagnostics) - len(kept)
    if not suppressed:
        return report, 0
    return (
        LintReport(
            circuit_name=report.circuit_name,
            num_gates=report.num_gates,
            num_inputs=report.num_inputs,
            num_outputs=report.num_outputs,
            diagnostics=kept,
        ),
        suppressed,
    )


def apply_baseline_many(
    reports: Mapping[str, LintReport], fingerprints: frozenset[str]
) -> tuple[dict[str, LintReport], int]:
    """Batch form of :func:`apply_baseline`; preserves report order."""
    out: dict[str, LintReport] = {}
    total = 0
    for name, report in reports.items():
        filtered, suppressed = apply_baseline(report, fingerprints)
        out[name] = filtered
        total += suppressed
    return out, total


__all__ = [
    "BASELINE_SCHEMA",
    "apply_baseline",
    "apply_baseline_many",
    "baseline_entries",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

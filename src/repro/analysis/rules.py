"""Rule registry and the builtin netlist lint rules.

Every rule has a stable id (``LINT001`` ...), a kebab-case name, a fixed
severity, and a check function.  Check functions receive the circuit, a
shared :class:`LintContext` of precomputed structural facts, and the
:class:`~repro.analysis.linter.LintConfig`; they yield
``(location, message, hint)`` triples which the linter wraps into
:class:`~repro.analysis.diagnostics.Diagnostic` records.

Rules must work on *structurally broken* circuits — the whole point of
``LINT001``/``LINT002`` is to diagnose netlists on which
:meth:`Circuit.validate` would raise — so nothing here may call
``topo_order()`` on the full circuit.  The :class:`LintContext` provides
cycle-safe traversals instead.

Builtin rules:

========  ======================  ========  =====================================
id        name                    severity  meaning
========  ======================  ========  =====================================
LINT001   combinational-loop      error     cycle through gate fanins
LINT002   dangling-net            error     fanin/output net with no driver
LINT003   unreachable-node        warning   gate feeding no primary output
LINT004   unused-pi               info      primary input read by nothing
LINT005   fanout-threshold        warning   net fanout above the configured limit
LINT006   non-monotone-arc-delay  warning   zero-delay arc on a non-constant gate
LINT007   constant-output         info      primary output is a constant function
========  ======================  ========  =====================================

``LINT004``/``LINT007`` are *info*, not warnings: the builtin paper
benchmarks are grown from published (inputs, outputs, gates) shapes, so
padded-but-unread inputs and outputs whose cones collapse to a constant are
expected by construction there.  Flows where either is a defect can promote
them via a custom registry entry or gate the CLI with ``--fail-on info``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.bdd.manager import BddManager
from repro.errors import LintError
from repro.netlist.circuit import Circuit, Gate
from repro.spcf.timedfunc import expr_to_function

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.linter import LintConfig

from repro.analysis.diagnostics import Severity

#: A finding: (location, message, hint).
Finding = tuple[str, str, str]
CheckFn = Callable[[Circuit, "LintContext", "LintConfig"], Iterator[Finding]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, severity, and its check function."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    check: CheckFn


#: Registry of builtin rules by rule id (populated by :func:`rule` below).
RULE_REGISTRY: dict[str, LintRule] = {}


def rule(rule_id: str, name: str, severity: Severity, description: str):
    """Decorator registering a check function as a lint rule."""

    def decorate(fn: CheckFn) -> CheckFn:
        if rule_id in RULE_REGISTRY:
            raise LintError(f"duplicate rule id {rule_id!r}")
        RULE_REGISTRY[rule_id] = LintRule(rule_id, name, severity, description, fn)
        return fn

    return decorate


def resolve_rule_ids(names: frozenset[str] | set[str]) -> frozenset[str]:
    """Map rule ids *or* rule names to rule ids; raise on unknown entries."""
    by_name = {r.name: r.rule_id for r in RULE_REGISTRY.values()}
    out = set()
    for entry in names:
        if entry in RULE_REGISTRY:
            out.add(entry)
        elif entry in by_name:
            out.add(by_name[entry])
        else:
            raise LintError(
                f"unknown lint rule {entry!r}; known rules: "
                f"{sorted(RULE_REGISTRY)}"
            )
    return frozenset(out)


class LintContext:
    """Cycle-safe structural facts shared by all rules of one lint run."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.gates: dict[str, Gate] = dict(circuit.gates)
        self.defined: set[str] = set(circuit.inputs) | set(self.gates)
        self._sccs: list[list[str]] | None = None
        self._reachable: set[str] | None = None

    # -------------------------------------------------------------- fanouts

    def fanout_counts(self) -> dict[str, int]:
        """Reader count per net (inputs and gate outputs)."""
        counts = {net: 0 for net in self.defined}
        for gate in self.gates.values():
            for net in gate.fanins:
                if net in counts:
                    counts[net] += 1
        return counts

    # --------------------------------------------------------------- cycles

    def cycles(self) -> list[list[str]]:
        """Non-trivial strongly connected components of the gate graph.

        Each entry is one combinational loop (gate names, sorted); a gate
        listing itself as a fanin forms a single-node cycle.  Iterative
        Tarjan, so deep circuits cannot overflow the Python stack.
        """
        if self._sccs is not None:
            return self._sccs
        gates = self.gates
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = 0

        for root in gates:
            if root in index:
                continue
            work = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                fanins = [f for f in gates[node].fanins if f in gates]
                advanced = False
                for i in range(child_i, len(fanins)):
                    nxt = fanins[i]
                    if nxt not in index:
                        work.append((node, i + 1))
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1 or node in gates[node].fanins:
                        sccs.append(sorted(scc))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        self._sccs = sorted(sccs)
        return self._sccs

    @property
    def is_cyclic(self) -> bool:
        return bool(self.cycles())

    # ---------------------------------------------------------- reachability

    def reachable_from_outputs(self) -> set[str]:
        """Nets in the transitive fanin of any primary output (cycle-safe)."""
        if self._reachable is not None:
            return self._reachable
        seen: set[str] = set()
        stack = [net for net in self.circuit.outputs if net in self.defined]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self.gates.get(net)
            if gate is not None:
                stack.extend(f for f in gate.fanins if f in self.defined)
        self._reachable = seen
        return seen

    # ------------------------------------------------------------ cone logic

    def cone_function_constant(
        self, net: str, max_inputs: int
    ) -> bool | None:
        """Whether the global function of ``net`` is constant.

        Returns ``True``/``False`` when decidable, ``None`` when the check is
        skipped: the cone is broken (dangling fanin, part of a cycle) or has
        more than ``max_inputs`` primary inputs.
        """
        circuit = self.circuit
        if circuit.is_input(net):
            return False
        # Collect the cone; bail out on dangling nets or cycles within it.
        cone: set[str] = set()
        pis: list[str] = []
        stack = [net]
        while stack:
            n = stack.pop()
            if n in cone:
                continue
            if circuit.is_input(n):
                cone.add(n)
                pis.append(n)
                continue
            gate = self.gates.get(n)
            if gate is None:
                return None
            cone.add(n)
            stack.extend(gate.fanins)
        if any(n in cone for scc in self.cycles() for n in scc):
            return None
        if len(pis) > max_inputs:
            return None
        # Local topological evaluation of the cone with BDDs.
        order: list[str] = []
        marked: set[str] = set(pis)
        stack = [(net, False)]
        while stack:
            n, expanded = stack.pop()
            if n in marked:
                continue
            if expanded:
                marked.add(n)
                order.append(n)
                continue
            stack.append((n, True))
            stack.extend((f, False) for f in self.gates[n].fanins)
        mgr = BddManager(sorted(pis, key=list(circuit.inputs).index))
        fns = {pi: mgr.var(pi) for pi in pis}
        for n in order:
            gate = self.gates[n]
            env = {pin: fns[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
            fns[n] = expr_to_function(gate.cell.expr, env, mgr)
        fn = fns[net]
        return fn.is_true or fn.is_false


# --------------------------------------------------------------------- rules


@rule(
    "LINT001",
    "combinational-loop",
    Severity.ERROR,
    "gates forming a combinational cycle",
)
def check_combinational_loop(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    for scc in ctx.cycles():
        shown = ", ".join(scc[:6]) + (", ..." if len(scc) > 6 else "")
        yield (
            scc[0],
            f"combinational loop through {len(scc)} gate(s): {shown}",
            "break the cycle with a register or restructure the logic",
        )


@rule(
    "LINT002",
    "dangling-net",
    Severity.ERROR,
    "net referenced but driven by nothing",
)
def check_dangling_net(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    for name in sorted(ctx.gates):
        gate = ctx.gates[name]
        for net in gate.fanins:
            if net not in ctx.defined:
                yield (
                    name,
                    f"gate {name!r} reads undriven net {net!r}",
                    "declare the net as a primary input or add its driver",
                )
    for net in circuit.outputs:
        if net not in ctx.defined:
            yield (
                net,
                f"primary output {net!r} is not driven",
                "add a gate driving the output or remove the declaration",
            )


@rule(
    "LINT003",
    "unreachable-node",
    Severity.WARNING,
    "gate outside every primary-output cone",
)
def check_unreachable_node(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    reachable = ctx.reachable_from_outputs()
    for name in sorted(ctx.gates):
        if name not in reachable:
            yield (
                name,
                f"gate {name!r} does not feed any primary output",
                "remove the dead logic or declare an output observing it",
            )


@rule(
    "LINT004",
    "unused-pi",
    Severity.INFO,
    "primary input with no reader",
)
def check_unused_pi(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    counts = ctx.fanout_counts()
    outputs = set(circuit.outputs)
    for net in circuit.inputs:
        if counts.get(net, 0) == 0 and net not in outputs:
            yield (
                net,
                f"primary input {net!r} is never read",
                "remove the input or connect it",
            )


@rule(
    "LINT005",
    "fanout-threshold",
    Severity.WARNING,
    "net fanout above the configured threshold",
)
def check_fanout_threshold(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    if config.fanout_threshold < 1:
        raise LintError(
            f"fanout threshold must be >= 1, got {config.fanout_threshold}"
        )
    counts = ctx.fanout_counts()
    for net in sorted(counts):
        if counts[net] > config.fanout_threshold:
            yield (
                net,
                f"net {net!r} drives {counts[net]} pins "
                f"(threshold {config.fanout_threshold})",
                "buffer the net or duplicate its driver",
            )


@rule(
    "LINT006",
    "non-monotone-arc-delay",
    Severity.WARNING,
    "zero-delay arc breaks stabilization-time monotonicity",
)
def check_non_monotone_arc_delay(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    # The Eqn. 1 recursion steps time by ``t - delay(pin)``; a zero-delay
    # arc on a real (non-constant) gate makes arrival/stabilization times
    # non-monotone in logic depth, so speed-paths can hide behind it.
    for name in sorted(ctx.gates):
        gate = ctx.gates[name]
        if gate.cell.num_inputs == 0:
            continue
        zero_pins = [i for i in range(gate.cell.num_inputs) if gate.pin_delay(i) == 0]
        if zero_pins:
            pins = ", ".join(gate.cell.inputs[i] for i in zero_pins)
            yield (
                name,
                f"gate {name!r} ({gate.cell.name}) has zero-delay arc(s) "
                f"on pin(s) {pins}",
                "give every arc of a non-constant cell a delay >= 1",
            )


@rule(
    "LINT007",
    "constant-output",
    Severity.INFO,
    "primary output computes a constant function",
)
def check_constant_output(
    circuit: Circuit, ctx: LintContext, config: "LintConfig"
) -> Iterator[Finding]:
    for net in circuit.outputs:
        if net not in ctx.defined or circuit.is_input(net):
            continue
        gate = ctx.gates[net]
        if gate.cell.num_inputs == 0:
            yield (
                net,
                f"output {net!r} is driven by constant cell {gate.cell.name!r}",
                "tie-offs on outputs usually indicate a synthesis bug",
            )
            continue
        constant = ctx.cone_function_constant(net, config.max_function_inputs)
        if constant:
            yield (
                net,
                f"output {net!r} computes a constant function",
                "the cone reduces to a tie-off; check the logic feeding it",
            )

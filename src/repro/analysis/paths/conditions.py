"""Per-segment sensitization and activation conditions, on three planes.

A speed-path visits a sequence of *segments* — (gate, on-path fanin) pairs.
Two side-input conditions govern each segment:

* the **sensitization condition** ``cond(z, f)``: the Boolean difference
  ``F_z[f<-1] XOR F_z[f<-0]`` of the gate's cell function, composed at the
  global functions of the side fanins.  An input vector sensitizes the
  whole path iff it satisfies every segment's ``cond`` — the classic static
  (floating-mode) criterion that decides FALSE vs TRUE.

* the **activation condition** ``act(z, f)``: the disjunction, over every
  prime implicant of ``F_z``'s on- and off-set that *contains* pin ``f``,
  of the conjunction of all the prime's literals evaluated at the global
  fanin functions.  This is exactly the per-prime term shape of the
  paper's Eqn. 1 recursion, so ``AND of act`` over a path upper-bounds the
  path's contribution to ``late(y, t)``; proving it unsatisfiable for every
  over-target path licenses tightening the true-arrival bound *without
  changing a single SPCF bit*.  ``cond`` implies ``act`` pointwise (a
  vector with a sensitized pin lies in some prime containing that pin), so
  ``act``-unsatisfiable ("prunable") is a strictly stronger verdict than
  FALSE.

Gates may carry the same net on several pins; both conditions then take
the disjunction over all such pins (conservative: the path is counted
sensitizable/active if *any* pin placement works).

The three planes compute the same two conditions three ways, cheapest
first: the all-X **ternary** scan proves side inputs constant and blocks
primes without touching patterns; the **word** plane evaluates all ``2^n``
stimuli in one machine-word sweep for small cones; the **BDD** plane is
exact at any width and is what the ABS013 auditor re-derives from scratch.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.analysis.absint.ternary import X, pack_classes
from repro.bdd.manager import BddManager, Function, conjunction, disjunction
from repro.engine import CompiledCircuit
from repro.engine.backends import select_backend
from repro.engine.ir import cell_word_function
from repro.errors import PathsError
from repro.netlist.circuit import Circuit, Gate
from repro.spcf.timedfunc import SpcfContext, expr_to_function
from repro.sta.paths import SpeedPath

#: One path segment: ``(gate_output_net, on_path_fanin_net)``.
Segment = tuple[str, str]


def path_segments(path: SpeedPath) -> list[Segment]:
    """The (gate, fanin) segments of ``path``, input-first."""
    return [
        (path.nets[i], path.nets[i - 1]) for i in range(1, len(path.nets))
    ]


def _on_path_pins(gate: Gate, fanin: str) -> list[str]:
    pins = [
        pin for pin, f in zip(gate.cell.inputs, gate.fanins) if f == fanin
    ]
    if not pins:
        raise PathsError(
            f"net {fanin!r} does not feed gate {gate.name!r}; "
            "path and circuit disagree"
        )
    return pins


# ----------------------------------------------------------------- BDD plane


def segment_conditions_bdd(
    ctx: SpcfContext, net: str, fanin: str
) -> tuple[Function, Function]:
    """``(cond, act)`` of segment ``(net, fanin)`` as global-input BDDs."""
    gate = ctx.circuit.gates[net]
    cell = gate.cell
    mgr = ctx.manager
    env = {pin: ctx.functions[f] for pin, f in zip(cell.inputs, gate.fanins)}
    on_primes, off_primes = cell.primes()
    conds: list[Function] = []
    acts: list[Function] = []
    for pin in _on_path_pins(gate, fanin):
        env1 = dict(env)
        env1[pin] = mgr.true
        env0 = dict(env)
        env0[pin] = mgr.false
        conds.append(
            expr_to_function(cell.expr, env1, mgr)
            ^ expr_to_function(cell.expr, env0, mgr)
        )
        terms: list[Function] = []
        for prime in on_primes + off_primes:
            literals = prime.to_dict(cell.inputs)
            if pin not in literals:
                continue
            terms.append(
                conjunction(
                    mgr,
                    [
                        env[q] if polarity else ~env[q]
                        for q, polarity in literals.items()
                    ],
                )
            )
        acts.append(disjunction(mgr, terms))
    return disjunction(mgr, conds), disjunction(mgr, acts)


def path_conditions_bdd(
    ctx: SpcfContext, path: SpeedPath
) -> tuple[Function, Function, list[tuple[Segment, Function, Function]]]:
    """``(cond_conj, act_conj, per_segment)`` for a whole path."""
    per_segment: list[tuple[Segment, Function, Function]] = []
    conds: list[Function] = []
    acts: list[Function] = []
    for segment in path_segments(path):
        cond, act = segment_conditions_bdd(ctx, *segment)
        per_segment.append((segment, cond, act))
        conds.append(cond)
        acts.append(act)
    mgr = ctx.manager
    return conjunction(mgr, conds), conjunction(mgr, acts), per_segment


# ---------------------------------------------------------------- word plane


def exhaustive_input_words(n_inputs: int) -> tuple[list[int], int, int]:
    """``(input_words, width, mask)`` enumerating all ``2**n`` minterms.

    Minterm ``j`` assigns input ``i`` (position in ``compiled.inputs``) the
    value ``(j >> i) & 1``, so input ``i``'s word alternates in blocks of
    ``2**i`` — the standard truth-table packing.
    """
    width = 1 << n_inputs
    mask = (1 << width) - 1
    words: list[int] = []
    for i in range(n_inputs):
        period = 1 << i
        block = ((1 << period) - 1) << period
        word = 0
        for j in range(0, width, 2 * period):
            word |= block << j
        words.append(word & mask)
    return words, width, mask


def net_value_words(
    compiled: CompiledCircuit, backend: str | None
) -> tuple[list[int], int, int]:
    """``(net_words, width, mask)``: every net under all ``2**n`` stimuli."""
    words, width, mask = exhaustive_input_words(compiled.n_inputs)
    values = select_backend(backend).eval_words(compiled, words, width)
    return values, width, mask


def segment_conditions_words(
    compiled: CompiledCircuit,
    values: Sequence[int],
    mask: int,
    net: str,
    fanin: str,
    circuit: Circuit,
) -> tuple[int, int]:
    """``(cond_word, act_word)`` of one segment, bit ``j`` = minterm ``j``."""
    gate = circuit.gates[net]
    cell = gate.cell
    func: Callable[..., int] = cell_word_function(cell)
    net_index = compiled.net_index
    pin_words = [values[net_index[f]] for f in gate.fanins]
    on_primes, off_primes = cell.primes()
    cond_word = 0
    act_word = 0
    for pin_pos, (pin, f) in enumerate(zip(cell.inputs, gate.fanins)):
        if f != fanin:
            continue
        forced1 = list(pin_words)
        forced1[pin_pos] = mask
        forced0 = list(pin_words)
        forced0[pin_pos] = 0
        cond_word |= func(mask, *forced1) ^ func(mask, *forced0)
        for prime in on_primes + off_primes:
            literals = prime.to_dict(cell.inputs)
            if pin not in literals:
                continue
            term = mask
            for q, polarity in literals.items():
                word = values[net_index[gate.fanins[cell.inputs.index(q)]]]
                term &= word if polarity else mask ^ word
            act_word |= term
    return cond_word & mask, act_word & mask


def path_conditions_words(
    compiled: CompiledCircuit,
    values: Sequence[int],
    mask: int,
    path: SpeedPath,
    circuit: Circuit,
) -> tuple[int, int, list[tuple[Segment, int, int]]]:
    """``(cond_conj, act_conj, per_segment)`` words for a whole path."""
    per_segment: list[tuple[Segment, int, int]] = []
    cond_conj = mask
    act_conj = mask
    for segment in path_segments(path):
        cond, act = segment_conditions_words(
            compiled, values, mask, *segment, circuit
        )
        per_segment.append((segment, cond, act))
        cond_conj &= cond
        act_conj &= act
    return cond_conj, act_conj, per_segment


def minterm_to_vector(j: int, n_inputs: int) -> list[int]:
    """Decode minterm index ``j`` into an input vector (engine input order)."""
    return [(j >> i) & 1 for i in range(n_inputs)]


# ------------------------------------------------------------- ternary plane


def ternary_constant_nets(
    compiled: CompiledCircuit, backend: str | None
) -> dict[str, bool]:
    """Nets proven constant by one all-X word pass (Kleene monotonicity)."""
    out: dict[str, bool] = {}
    if compiled.n_inputs == 0:
        return out
    hi, lo = pack_classes(compiled, [(X,) * compiled.n_inputs], backend)
    for idx in range(compiled.n_inputs, compiled.n_nets):
        if hi[idx] & lo[idx] & 1:
            continue  # still X: not constant
        out[compiled.net_names[idx]] = bool(hi[idx] & 1)
    return out


def ternary_blocked_segment(
    circuit: Circuit,
    constants: dict[str, bool],
    net: str,
    fanin: str,
) -> list[dict[str, Any]] | None:
    """Evidence that constants kill every activation prime of the segment.

    Returns per-pin evidence when, for each pin carrying ``fanin``, every
    prime implicant containing that pin has at least one literal whose
    fanin net is proven constant at the *opposite* polarity — making every
    ``act`` term (and a fortiori every ``cond`` minterm) identically false.
    Returns ``None`` when any prime survives; the segment then needs the
    word or BDD plane.
    """
    gate = circuit.gates[net]
    cell = gate.cell
    pin_to_fanin = dict(zip(cell.inputs, gate.fanins))
    on_primes, off_primes = cell.primes()
    evidence: list[dict[str, Any]] = []
    for pin in _on_path_pins(gate, fanin):
        blocked: list[dict[str, Any]] = []
        for prime in on_primes + off_primes:
            literals = prime.to_dict(cell.inputs)
            if pin not in literals:
                continue
            blocker: dict[str, Any] | None = None
            for q, polarity in literals.items():
                value = constants.get(pin_to_fanin[q])
                if value is not None and value != polarity:
                    blocker = {
                        "literal": pin_to_fanin[q],
                        "constant": value,
                        "required": polarity,
                    }
                    break
            if blocker is None:
                return None
            blocked.append(blocker)
        evidence.append({"pin": pin, "blocked": blocked})
    return evidence


__all__ = [
    "Segment",
    "path_segments",
    "segment_conditions_bdd",
    "path_conditions_bdd",
    "exhaustive_input_words",
    "net_value_words",
    "segment_conditions_words",
    "path_conditions_words",
    "minterm_to_vector",
    "ternary_constant_nets",
    "ternary_blocked_segment",
]

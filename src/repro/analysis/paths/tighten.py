"""True-arrival tightening from prunable false paths.

Soundness argument (this is the only place it needs to hold):
``late(y, t)`` from the paper's Eqn. 1 recursion is contained in the union,
over structural paths to ``y`` with delay above ``t``, of the conjunction
of the path's per-segment *activation* conditions — each recursion step
that keeps ``y`` unsettled walks one prime implicant containing some pin
whose fanin is itself unsettled, and the prime's literal conjunction at
time ``t`` is contained in the same conjunction at the (untimed) global
functions.  Hence if every enumerated path to ``y`` with delay above some
``T >= target`` has an unsatisfiable activation conjunction ("prunable"),
then ``late(y, T)`` is identically false: every pattern of ``y`` has
stabilized by ``T`` even though the structural arrival is later.

:func:`tightened_arrivals` picks, per critical output, the smallest such
``T``: the maximum delay over the *non*-prunable enumerated paths (or the
target itself when every path is prunable).  Enumeration completeness
matters — :func:`~repro.analysis.paths.sensitize.analyze_paths` covers
every over-target path or raises — so any structural path with delay above
``T`` is one of the enumerated prunable ones.

Feeding the map to :func:`repro.analysis.precert.precertify` (``tighten=``)
turns would-be ``required`` obligations into ``true-arrival`` discharges;
by ROBDD canonicity the SPCF stays bit-identical, it is just reached with
less recursion.  The same map is what ABS007 cross-checks against the
interval domain (``min_stable <= T <= hi``).
"""

from __future__ import annotations

from repro.analysis.paths import _obs
from repro.analysis.paths.sensitize import PathsAnalysis


def tightened_arrivals(analysis: PathsAnalysis) -> dict[str, int]:
    """Per-output true-arrival bounds strictly below the structural arrival.

    Only outputs that actually tighten are returned: an output with a
    non-prunable path at its structural arrival gains nothing and is
    omitted so callers can treat the map as "what the analysis bought".
    """
    target = analysis.certificates.target
    arrival = analysis.report.arrival
    out: dict[str, int] = {}
    by_output: dict[str, list[int]] = {}
    for cert in analysis.certificates:
        by_output.setdefault(cert.end, []).append(
            -1 if cert.prunable else cert.delay
        )
    for y, delays in sorted(by_output.items()):
        residual = [d for d in delays if d >= 0]
        tight = max(residual) if residual else target
        if tight < arrival[y]:
            out[y] = tight
            _obs.TIGHTENED.add(1)
    return out


__all__ = ["tightened_arrivals"]

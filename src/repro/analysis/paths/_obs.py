"""Observability instruments of the paths analysis plane.

Mirrors :mod:`repro.spcf._obs`: module-level tracer + meter handles so the
hot paths pay one attribute load, and every instrument is a no-op unless
``repro.obs`` was configured.
"""

from __future__ import annotations

from repro import obs

TRACER = obs.get_tracer("paths")
METER = obs.get_meter()

#: Enumerated speed-paths classified, labelled by final verdict.
CLASSIFIED = METER.counter(
    "repro_paths_classified_total",
    "speed-paths classified by the sensitization analyzer, by verdict",
)

#: Paths settled by the word-parallel pre-filter before any BDD was built.
PREFILTER = METER.counter(
    "repro_paths_prefilter_discharged_total",
    "speed-paths settled by the word-parallel pre-filter, by method",
)

#: Two-vector witness replays through the event simulator.
REPLAYS = METER.counter(
    "repro_paths_witness_replays_total",
    "two-vector witness replays through the event simulator",
)

#: Outputs whose true-arrival bound was tightened below the structural one.
TIGHTENED = METER.counter(
    "repro_paths_tightened_outputs_total",
    "outputs whose true-arrival bound tightened below the structural arrival",
)

__all__ = ["TRACER", "METER", "CLASSIFIED", "PREFILTER", "REPLAYS", "TIGHTENED"]

"""Static path-sensitization analysis: false paths, true paths, certificates.

The paper masks timing errors on *speed-paths*; this package decides which
enumerated speed-paths can ever carry a late transition.  FALSE paths come
with machine-checkable unsatisfiability certificates and (when the
stronger activation criterion also fails) license tightening the output's
true-arrival bound — which :func:`repro.analysis.precert.precertify`
converts into extra discharged obligations without changing a single SPCF
bit.  TRUE paths come with replayed two-vector witnesses and a masking
rank consumed by :mod:`repro.core.masking`.  ABS013 audits it all from
scratch.
"""

from repro.analysis.paths.audit import PathAuditFinding, audit_path_certificates
from repro.analysis.paths.certificate import (
    METHODS,
    SCHEMA,
    VERDICTS,
    PathCertificate,
    PathCertificateSet,
)
from repro.analysis.paths.report import (
    paths_to_dict,
    render_paths_json,
    render_paths_text,
)
from repro.analysis.paths.sensitize import (
    PathsAnalysis,
    PathsConfig,
    analyze_paths,
)
from repro.analysis.paths.tighten import tightened_arrivals

__all__ = [
    "SCHEMA",
    "VERDICTS",
    "METHODS",
    "PathCertificate",
    "PathCertificateSet",
    "PathsAnalysis",
    "PathsConfig",
    "analyze_paths",
    "tightened_arrivals",
    "PathAuditFinding",
    "audit_path_certificates",
    "render_paths_text",
    "render_paths_json",
    "paths_to_dict",
]

"""Human- and machine-readable rendering of a paths analysis."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.paths.certificate import PathCertificate
from repro.analysis.paths.sensitize import PathsAnalysis
from repro.analysis.paths.tighten import tightened_arrivals


def _describe(cert: PathCertificate) -> str:
    route = "->".join(cert.nets)
    if cert.verdict == "false":
        tag = "FALSE"
        extra = f"method={cert.method}" + (
            ", prunable" if cert.prunable else ""
        )
    elif cert.verdict == "true":
        tag = "TRUE"
        extra = (
            f"rank={cert.rank}, settles at "
            f"{cert.facts.get('settle_time')} via witness replay"
        )
    else:
        tag = "UNRESOLVED"
        extra = str(cert.facts.get("reason", "budget"))
    return f"  {tag:10s} delay={cert.delay:<4d} {route}  ({extra})"


def render_paths_text(analysis: PathsAnalysis) -> str:
    """A compact fixed-order text report (stable for golden tests)."""
    counts = analysis.counts()
    report = analysis.report
    lines = [
        f"circuit {analysis.circuit.name}: critical delay "
        f"{report.critical_delay}, target {report.target}",
        f"speed-paths: {len(analysis.certificates)} "
        f"(false {counts['false']}, true {counts['true']}, "
        f"unresolved {counts['unresolved']})",
    ]
    for cert in analysis.certificates.false_paths():
        lines.append(_describe(cert))
    for cert in analysis.certificates.ranked_true_paths():
        lines.append(_describe(cert))
    for cert in analysis.certificates.unresolved_paths():
        lines.append(_describe(cert))
    tightened = tightened_arrivals(analysis)
    if tightened:
        for net, bound in sorted(tightened.items()):
            lines.append(
                f"  TIGHTEN    {net}: true arrival <= {bound} "
                f"(structural {report.arrival[net]})"
            )
    else:
        lines.append("  no true-arrival tightening possible")
    return "\n".join(lines)


def paths_to_dict(analysis: PathsAnalysis) -> dict[str, Any]:
    """JSON-ready payload: the certificate set plus run statistics."""
    return {
        "certificates": analysis.certificates.to_dict(),
        "stats": dict(analysis.stats),
        "tightened_arrivals": tightened_arrivals(analysis),
    }


def render_paths_json(analysis: PathsAnalysis) -> str:
    return json.dumps(paths_to_dict(analysis), indent=2, sort_keys=True)


__all__ = ["render_paths_text", "paths_to_dict", "render_paths_json"]

"""The independent auditor behind ABS013: re-derive, replay, or refuse.

Trust discipline (the ABS009 pattern, applied to path evidence): the
auditor never *believes* a certificate.  It first checks the set's circuit
binding and every per-certificate fingerprint, refusing anything tampered
with a distinct ``tampered`` finding before any semantic work.  Surviving
FALSE verdicts are then re-derived on a **fresh, certificate-free BDD
context** — whatever cheap plane (ternary, words) produced them, the audit
recomputes the sensitization conjunction (and the activation conjunction
for prunable claims) from nothing but the circuit and checks it
unsatisfiable; a ``bdd``-method certificate must additionally cite
per-segment covers equivalent to the re-derived conditions.  TRUE verdicts
must *replay*: the cited two-vector witness is pushed through the event
simulator and the path's output must settle after the target, at exactly
the cited settle time, with the final vector satisfying the re-derived
sensitization conjunction.  UNRESOLVED certificates make no claim and get
no check.  Any surviving mismatch is a ``contradicted`` finding — evidence
of a bug in the analyzer (or a forged set), never something to paper over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.paths import conditions
from repro.analysis.paths.certificate import PathCertificate, PathCertificateSet
from repro.bdd.isop import cover_to_function
from repro.engine import compile_circuit
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms
from repro.spcf.timedfunc import SpcfContext


@dataclass(frozen=True)
class PathAuditFinding:
    """One refusal (``tampered``) or disagreement (``contradicted``)."""

    nets: tuple[str, ...]
    kind: str  # "tampered" | "contradicted"
    message: str
    data: dict[str, Any] = field(default_factory=dict)


def _contradiction(
    cert: PathCertificate, message: str, **data: Any
) -> PathAuditFinding:
    return PathAuditFinding(
        nets=cert.nets,
        kind="contradicted",
        message=message,
        data={"verdict": cert.verdict, "method": cert.method, **data},
    )


def _audit_false(
    ctx: SpcfContext, cert: PathCertificate
) -> list[PathAuditFinding]:
    route = "->".join(cert.nets)
    findings: list[PathAuditFinding] = []
    # Re-derive both conjunctions from scratch; the path object is rebuilt
    # from the certificate's nets alone.
    from repro.sta.paths import SpeedPath

    path = SpeedPath(nets=cert.nets, delay=cert.delay)
    cond_conj, act_conj, per_segment = conditions.path_conditions_bdd(
        ctx, path
    )
    if not cond_conj.is_false:
        witness = cond_conj.pick_one()
        findings.append(
            _contradiction(
                cert,
                f"path {route} is claimed FALSE but the re-derived "
                "sensitization conjunction is satisfiable",
                witness={k: bool(v) for k, v in (witness or {}).items()},
            )
        )
    if cert.prunable and not act_conj.is_false:
        witness = act_conj.pick_one()
        findings.append(
            _contradiction(
                cert,
                f"path {route} is claimed prunable but the re-derived "
                "activation conjunction is satisfiable",
                witness={k: bool(v) for k, v in (witness or {}).items()},
            )
        )
    if cert.method == "bdd":
        cited = {
            (str(seg.get("gate")), str(seg.get("fanin"))): seg.get(
                "condition", []
            )
            for seg in cert.facts.get("segments", [])
        }
        for segment, cond, _act in per_segment:
            if segment not in cited:
                findings.append(
                    _contradiction(
                        cert,
                        f"path {route}: certificate cites no condition for "
                        f"segment {segment[0]}<-{segment[1]}",
                        segment=list(segment),
                    )
                )
                continue
            cover = [
                {str(k): bool(v) for k, v in cube.items()}
                for cube in cited[segment]
            ]
            if cover_to_function(ctx.manager, cover) != cond:
                findings.append(
                    _contradiction(
                        cert,
                        f"path {route}: cited condition cover for segment "
                        f"{segment[0]}<-{segment[1]} differs from the "
                        "re-derived sensitization condition",
                        segment=list(segment),
                    )
                )
    return findings


def _audit_true(
    ctx: SpcfContext,
    cert: PathCertificate,
    target: int,
) -> list[PathAuditFinding]:
    route = "->".join(cert.nets)
    compiled = compile_circuit(ctx.circuit)
    inputs = compiled.inputs
    facts = cert.facts
    try:
        v1 = [int(v) for v in facts["v1"]]
        v2 = [int(v) for v in facts["v2"]]
        cited_settle = int(facts["settle_time"])
    except (KeyError, TypeError, ValueError):
        return [
            _contradiction(
                cert, f"path {route}: TRUE certificate lacks a usable witness"
            )
        ]
    if len(v1) != len(inputs) or len(v2) != len(inputs):
        return [
            _contradiction(
                cert,
                f"path {route}: witness width {len(v2)} does not match the "
                f"{len(inputs)} primary inputs",
            )
        ]
    findings: list[PathAuditFinding] = []
    from repro.sta.paths import SpeedPath

    path = SpeedPath(nets=cert.nets, delay=cert.delay)
    cond_conj, _act, _segs = conditions.path_conditions_bdd(ctx, path)
    assignment = dict(zip(inputs, map(bool, v2)))
    if not cond_conj.evaluate(assignment):
        findings.append(
            _contradiction(
                cert,
                f"path {route}: final witness vector does not satisfy the "
                "re-derived sensitization conjunction",
            )
        )
    waves = two_vector_waveforms(
        compiled,
        dict(zip(inputs, map(bool, v1))),
        dict(zip(inputs, map(bool, v2))),
    )
    wave = waves[cert.end]
    if wave.settle_time <= target:
        findings.append(
            _contradiction(
                cert,
                f"path {route}: replayed witness settles at "
                f"{wave.settle_time} <= target {target}; no late transition",
                settle_time=wave.settle_time,
            )
        )
    elif wave.settle_time != cited_settle:
        findings.append(
            _contradiction(
                cert,
                f"path {route}: replayed settle time {wave.settle_time} "
                f"differs from the cited {cited_settle}",
                settle_time=wave.settle_time,
            )
        )
    return findings


def audit_path_certificates(
    circuit: Circuit, certs: PathCertificateSet
) -> list[PathAuditFinding]:
    """Independently re-check every path certificate against ``circuit``."""
    compiled = compile_circuit(circuit)
    if not certs.matches(compiled):
        return [
            PathAuditFinding(
                nets=(),
                kind="tampered",
                message=(
                    "certificate set was produced for a different circuit "
                    f"(fingerprint {certs.circuit_fp[:12]}... does not match "
                    f"{circuit.name!r}); refusing every certificate"
                ),
                data={"circuit": circuit.name},
            )
        ]
    findings: list[PathAuditFinding] = []
    refused: set[tuple[str, ...]] = set()
    for cert in certs.tampered():
        refused.add(cert.key)
        findings.append(
            PathAuditFinding(
                nets=cert.nets,
                kind="tampered",
                message=(
                    f"certificate for path {'->'.join(cert.nets)} fails "
                    "fingerprint verification; refusing to consult it"
                ),
                data={"verdict": cert.verdict},
            )
        )
    # Fresh, certificate-free context: the audit must not let the evidence
    # under test shortcut its own re-derivation.
    ctx = SpcfContext(circuit, threshold=certs.threshold, target=certs.target)
    for cert in sorted(certs, key=lambda c: c.nets):
        if cert.key in refused:
            continue
        if cert.verdict == "false":
            findings.extend(_audit_false(ctx, cert))
        elif cert.verdict == "true":
            findings.extend(_audit_true(ctx, cert, certs.target))
        # "unresolved" makes no claim: nothing to check.
    return findings


__all__ = ["PathAuditFinding", "audit_path_certificates"]

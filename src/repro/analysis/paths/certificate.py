"""Machine-checkable certificates for speed-path sensitization verdicts.

The paths analyzer classifies every enumerated speed-path (a structural
input-to-output path with delay above the target ``Delta_y``) into one of
three verdicts, each carrying the evidence a checker needs to re-derive it:

* ``false`` — *statically unsensitizable*: the conjunction of the per-segment
  side-input sensitization conditions is unsatisfiable, so no input vector
  propagates a transition along the whole path.  The facts cite the method
  (``ternary`` pre-filter, ``exhaustive`` word evaluation, or ``bdd``) and
  the per-segment condition functions; ``prunable`` additionally records
  that the *activation* conditions (the weaker prime-implicant criterion
  that soundly bounds the paper's Eqn. 1 recursion) are unsatisfiable too,
  which licenses tightening the true-arrival bound of the path's output.

* ``true`` — *sensitizable with a replayed witness*: a concrete two-vector
  transition ``v1 -> v2`` whose event-simulator waveform at the path's
  output settles after the target.  ``rank`` orders true paths for masking
  (longest, latest-settling first).

* ``unresolved`` — the analysis ran out of budget (path enumeration cap,
  witness replay budget, or cone size); no claim is made.

Like the precert plane, certificates are checkable evidence, not trust:
each is content-addressed (SHA-256) and chained to the exact circuit
structure via :func:`repro.analysis.precert.certificate.circuit_fingerprint`;
the whole set round-trips losslessly through JSON and any tampering is
detected on strict load and refused by the ABS013 audit with a distinct
diagnostic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.analysis.precert.certificate import _canonical, circuit_fingerprint
from repro.engine import CompiledCircuit
from repro.errors import PathsError
from repro.netlist.circuit import Circuit

#: Serialization schema of :meth:`PathCertificateSet.to_dict`.
SCHEMA = "repro-paths/1"

#: Allowed verdicts, in strength-of-claim order.
VERDICTS = ("false", "true", "unresolved")

#: Classification methods a verdict may cite.
METHODS = (
    "ternary",  # all-X constant side inputs block every activation prime
    "exhaustive",  # word-parallel evaluation over all 2**n stimuli
    "bdd",  # side-input condition functions composed as BDDs
    "none",  # unresolved: no method succeeded within budget
)


@dataclass(frozen=True)
class PathCertificate:
    """One classified speed-path with its evidence.

    ``nets`` is the structural path, input-first (the key of the set);
    ``delay`` its structural delay; ``target`` the ``Delta_y`` it exceeds.
    ``facts`` is the JSON-ready evidence payload (segment conditions,
    witness vectors, or the budget reason).
    """

    nets: tuple[str, ...]
    delay: int
    target: int
    verdict: str
    facts: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise PathsError(
                f"unknown path verdict {self.verdict!r}; "
                f"expected one of {VERDICTS}"
            )
        if len(self.nets) < 2:
            raise PathsError(
                f"path certificate needs at least 2 nets, got {self.nets!r}"
            )

    @property
    def key(self) -> tuple[str, ...]:
        return self.nets

    @property
    def start(self) -> str:
        return self.nets[0]

    @property
    def end(self) -> str:
        return self.nets[-1]

    @property
    def method(self) -> str:
        return str(self.facts.get("method", "none"))

    @property
    def prunable(self) -> bool:
        """True iff the activation conditions are proven unsatisfiable.

        Only prunable FALSE paths may tighten true-arrival bounds: the
        activation criterion is the one derived from Eqn. 1, while the
        classic sensitization condition (which decides FALSE) is strictly
        stronger and not sound for pruning the recursion.
        """
        return self.verdict == "false" and bool(self.facts.get("prunable"))

    @property
    def rank(self) -> int | None:
        """Masking priority of a TRUE path (1 = mask first), else ``None``."""
        value = self.facts.get("rank")
        return int(value) if value is not None else None

    def fingerprint(self, circuit_fp: str) -> str:
        """SHA-256 binding this certificate to one circuit fingerprint."""
        material = _canonical(
            {
                "circuit": circuit_fp,
                "nets": list(self.nets),
                "delay": self.delay,
                "target": self.target,
                "verdict": self.verdict,
                "facts": dict(self.facts),
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_dict(self, circuit_fp: str) -> dict[str, Any]:
        return {
            "nets": list(self.nets),
            "delay": self.delay,
            "target": self.target,
            "verdict": self.verdict,
            "facts": dict(self.facts),
            "fingerprint": self.fingerprint(circuit_fp),
        }


class PathCertificateSet:
    """All path certificates of one analysis run, keyed by the net tuple."""

    def __init__(
        self,
        circuit_name: str,
        circuit_fp: str,
        threshold: float,
        target: int,
        certificates: Mapping[tuple[str, ...], PathCertificate],
        stored_fingerprints: Mapping[tuple[str, ...], str] | None = None,
    ) -> None:
        self.circuit_name = circuit_name
        self.circuit_fp = circuit_fp
        self.threshold = threshold
        self.target = target
        self._by_key = dict(certificates)
        # Fingerprints as found in a loaded file; ``tampered()`` compares
        # them against re-derived ones.  A freshly produced set carries
        # none (fingerprints derive on demand at emission time).
        self._stored_fp: dict[tuple[str, ...], str] | None = (
            dict(stored_fingerprints) if stored_fingerprints is not None else None
        )

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[PathCertificate]:
        return iter(self._by_key.values())

    def lookup(self, nets: tuple[str, ...]) -> PathCertificate | None:
        return self._by_key.get(nets)

    def counts(self) -> dict[str, int]:
        """Certificate totals by verdict (all three keys always present)."""
        out = {v: 0 for v in VERDICTS}
        for cert in self._by_key.values():
            out[cert.verdict] += 1
        return out

    def by_verdict(self, verdict: str) -> tuple[PathCertificate, ...]:
        return tuple(
            cert
            for _, cert in sorted(self._by_key.items())
            if cert.verdict == verdict
        )

    def false_paths(self) -> tuple[PathCertificate, ...]:
        return self.by_verdict("false")

    def true_paths(self) -> tuple[PathCertificate, ...]:
        return self.by_verdict("true")

    def unresolved_paths(self) -> tuple[PathCertificate, ...]:
        return self.by_verdict("unresolved")

    def ranked_true_paths(self) -> tuple[PathCertificate, ...]:
        """TRUE paths in masking-priority order (rank 1 first)."""
        return tuple(
            sorted(
                self.true_paths(),
                key=lambda c: (c.rank if c.rank is not None else 1 << 30, c.nets),
            )
        )

    def matches(self, circuit: Circuit | CompiledCircuit) -> bool:
        """True iff this set was produced from exactly this circuit."""
        return circuit_fingerprint(circuit) == self.circuit_fp

    # ------------------------------------------------------------ integrity

    def tampered(self) -> list[PathCertificate]:
        """Certificates whose stored fingerprint no longer re-derives.

        Mirrors :meth:`repro.analysis.precert.certificate.CertificateSet.tampered`:
        a fresh set is self-consistent by construction and never reports
        here; entries only show up after a ``verify=False`` load of an
        edited file, and the ABS013 audit refuses them before any
        cross-checking.
        """
        if self._stored_fp is None:
            return []
        stored = self._stored_fp
        return [
            cert
            for key, cert in sorted(self._by_key.items())
            if stored.get(key) != cert.fingerprint(self.circuit_fp)
        ]

    # -------------------------------------------------------------- JSON IO

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "circuit": self.circuit_name,
            "circuit_fingerprint": self.circuit_fp,
            "threshold": self.threshold,
            "target": self.target,
            "certificates": [
                {
                    **cert.to_dict(self.circuit_fp),
                    # Loaded sets emit the fingerprint as stored, never a
                    # re-derived one: saving a tampered set must not
                    # silently re-sign it.
                    "fingerprint": (
                        cert.fingerprint(self.circuit_fp)
                        if self._stored_fp is None
                        else self._stored_fp.get(
                            key, cert.fingerprint(self.circuit_fp)
                        )
                    ),
                }
                for key, cert in sorted(self._by_key.items())
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], verify: bool = True
    ) -> "PathCertificateSet":
        """Rebuild a set from its JSON form.

        With ``verify=True`` (the only safe way to *use* loaded
        certificates) every stored fingerprint is recomputed from the
        entry's content and the circuit binding; any mismatch raises
        :class:`~repro.errors.PathsError`.  ``verify=False`` loads the data
        as-is so the ABS013 audit can inspect — and then refuse — tampered
        evidence instead of crashing on it.
        """
        if data.get("schema") != SCHEMA:
            raise PathsError(
                f"unsupported path-certificate schema {data.get('schema')!r}; "
                f"expected {SCHEMA!r}"
            )
        try:
            circuit_fp = str(data["circuit_fingerprint"])
            circuit_name = str(data["circuit"])
            threshold = float(data["threshold"])
            target = int(data["target"])
            entries = list(data["certificates"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PathsError(f"malformed path-certificate set: {exc}") from exc
        by_key: dict[tuple[str, ...], PathCertificate] = {}
        stored: dict[tuple[str, ...], str] = {}
        for entry in entries:
            try:
                cert = PathCertificate(
                    nets=tuple(str(n) for n in entry["nets"]),
                    delay=int(entry["delay"]),
                    target=int(entry["target"]),
                    verdict=str(entry["verdict"]),
                    facts=dict(entry["facts"]),
                )
                stored_fp = str(entry["fingerprint"])
            except (KeyError, TypeError, ValueError) as exc:
                raise PathsError(
                    f"malformed path-certificate entry: {exc}"
                ) from exc
            if verify and cert.fingerprint(circuit_fp) != stored_fp:
                raise PathsError(
                    f"certificate for path {'->'.join(cert.nets)} fails "
                    "fingerprint verification: content or circuit binding "
                    "was modified after emission"
                )
            by_key[cert.key] = cert
            stored[cert.key] = stored_fp
        return cls(circuit_name, circuit_fp, threshold, target, by_key, stored)

    @classmethod
    def from_json(cls, text: str, verify: bool = True) -> "PathCertificateSet":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PathsError(f"unreadable path-certificate JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise PathsError("path-certificate JSON must be an object")
        return cls.from_dict(data, verify=verify)


__all__ = [
    "SCHEMA",
    "VERDICTS",
    "METHODS",
    "PathCertificate",
    "PathCertificateSet",
    "circuit_fingerprint",
]

"""The speed-path classification driver: FALSE / TRUE / UNRESOLVED.

:func:`analyze_paths` enumerates every structural speed-path (delay above
the target) and settles each one with the cheapest sufficient plane, in
the same cheap-first spirit as :mod:`repro.analysis.precert.precertify`:

1. **ternary pre-filter** — the all-X constant scan blocks a segment's
   activation primes outright (no per-pattern work at all);
2. **exhaustive word plane** — for cones up to ``prefilter_max_inputs``
   primary inputs, one word-parallel sweep evaluates the sensitization
   and activation conjunctions over all ``2**n`` stimuli at once, deciding
   FALSE exactly and handing TRUE candidates their witness minterms;
3. **BDD plane** — exact at any width (up to ``bdd_max_inputs``), used
   only when the word plane is out of reach.

TRUE verdicts are never taken on faith from the static planes: a concrete
two-vector witness must *replay* through the event simulator with the
path's output settling after the target.  A statically sensitizable path
whose witnesses all settle on time within ``replay_budget`` stays
UNRESOLVED (with ``sensitizable: true`` recorded) — static sensitization
is necessary, not sufficient, for a late transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.analysis.paths import _obs
from repro.analysis.paths.certificate import (
    PathCertificate,
    PathCertificateSet,
    circuit_fingerprint,
)
from repro.analysis.paths import conditions
from repro.bdd.isop import isop_function
from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import PathsError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms
from repro.spcf.timedfunc import SpcfContext
from repro.sta.paths import SpeedPath, enumerate_speed_paths
from repro.sta.timing import TimingReport, analyze


@dataclass(frozen=True)
class PathsConfig:
    """Tunables for one path-classification run.

    ``limit`` caps path enumeration (exceeding it raises, mirroring
    :func:`repro.sta.paths.enumerate_speed_paths` — an incomplete path set
    would make every tightening unsound).  ``prefilter_max_inputs`` bounds
    the exhaustive word plane (``2**n``-bit words), ``bdd_max_inputs`` the
    BDD fallback; cones beyond both stay UNRESOLVED.  ``replay_budget``
    bounds witness replays *per path*.
    """

    limit: int = 4096
    prefilter_max_inputs: int = 12
    bdd_max_inputs: int = 24
    replay_budget: int = 8
    backend: str | None = None

    def __post_init__(self) -> None:
        for name in (
            "limit",
            "prefilter_max_inputs",
            "bdd_max_inputs",
            "replay_budget",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise PathsError(
                    f"{name} must be a non-negative int, got {value!r}"
                )


@dataclass
class PathsAnalysis:
    """Everything one :func:`analyze_paths` run produced."""

    circuit: Circuit
    report: TimingReport
    certificates: PathCertificateSet
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def target(self) -> int:
        return self.certificates.target

    def counts(self) -> dict[str, int]:
        return self.certificates.counts()

    def false_paths(self) -> tuple[PathCertificate, ...]:
        return self.certificates.false_paths()

    def true_paths(self) -> tuple[PathCertificate, ...]:
        return self.certificates.true_paths()

    def unresolved_paths(self) -> tuple[PathCertificate, ...]:
        return self.certificates.unresolved_paths()

    def ranked_true_paths(self) -> tuple[PathCertificate, ...]:
        return self.certificates.ranked_true_paths()


# --------------------------------------------------------------- witnesses


def _replay_witness(
    compiled: CompiledCircuit,
    path: SpeedPath,
    v2: list[int],
    target: int,
) -> dict[str, Any] | None:
    """Try one two-vector witness; facts fragment on a late settle."""
    inputs = compiled.inputs
    start = inputs.index(path.start)
    v1 = list(v2)
    v1[start] ^= 1
    waves = two_vector_waveforms(
        compiled,
        dict(zip(inputs, map(bool, v1))),
        dict(zip(inputs, map(bool, v2))),
    )
    _obs.REPLAYS.add(1)
    wave = waves[path.end]
    if wave.settle_time <= target:
        return None
    return {
        "v1": v1,
        "v2": v2,
        "settle_time": wave.settle_time,
        "transitions": wave.num_transitions,
    }


def _word_candidates(
    cond_word: int, n_inputs: int, budget: int
) -> Iterator[list[int]]:
    """Witness vectors from the set bits of an exhaustive condition word."""
    emitted = 0
    j = 0
    word = cond_word
    while word and emitted < budget:
        if word & 1:
            yield conditions.minterm_to_vector(j, n_inputs)
            emitted += 1
        word >>= 1
        j += 1


def _bdd_candidates(
    ctx: SpcfContext, cond_conj: Any, budget: int
) -> Iterator[list[int]]:
    """Witness vectors from the cubes of a BDD condition conjunction.

    Each cube yields up to two completions of its unassigned inputs
    (all-False, then all-True) — cheap diversity without enumeration.
    """
    inputs = ctx.circuit.inputs
    emitted = 0
    for cube in cond_conj.cubes():
        for default in (False, True):
            if emitted >= budget:
                return
            yield [int(cube.get(name, default)) for name in inputs]
            emitted += 1


# ------------------------------------------------------------ classification


def _classify_path(
    path: SpeedPath,
    circuit: Circuit,
    compiled: CompiledCircuit,
    target: int,
    constants: dict[str, bool],
    words: tuple[list[int], int, int] | None,
    ctx_cell: list[SpcfContext | None],
    config: PathsConfig,
    stats: dict[str, int],
) -> tuple[str, dict[str, Any]]:
    """One path's ``(verdict, facts)`` (rank is assigned by the caller)."""
    # Plane 1: ternary constant blocking — proves act (hence cond) false.
    for gate, fanin in conditions.path_segments(path):
        blocking = conditions.ternary_blocked_segment(
            circuit, constants, gate, fanin
        )
        if blocking is not None:
            stats["prefilter_ternary"] += 1
            _obs.PREFILTER.add(1, method="ternary")
            return "false", {
                "kind": "false-path",
                "method": "ternary",
                "prunable": True,
                "segments": [
                    {"gate": gate, "fanin": fanin, "blocking": blocking}
                ],
            }

    # Plane 2: exhaustive word evaluation (complete for small cones).
    if words is not None:
        values, _width, mask = words
        cond_conj, act_conj, per_segment = conditions.path_conditions_words(
            compiled, values, mask, path, circuit
        )
        segments = [
            {
                "gate": gate,
                "fanin": fanin,
                "cond": format(cond, "x"),
                "act": format(act, "x"),
            }
            for (gate, fanin), cond, act in per_segment
        ]
        if cond_conj == 0:
            stats["prefilter_exhaustive"] += 1
            _obs.PREFILTER.add(1, method="exhaustive")
            return "false", {
                "kind": "false-path",
                "method": "exhaustive",
                "prunable": act_conj == 0,
                "segments": segments,
            }
        for v2 in _word_candidates(
            cond_conj, compiled.n_inputs, config.replay_budget
        ):
            stats["replays"] += 1
            witness = _replay_witness(compiled, path, v2, target)
            if witness is not None:
                stats["prefilter_exhaustive"] += 1
                _obs.PREFILTER.add(1, method="exhaustive")
                return "true", {
                    "kind": "true-path",
                    "method": "exhaustive",
                    **witness,
                }
        return "unresolved", {
            "kind": "unresolved",
            "reason": (
                "statically sensitizable but no witness replayed late "
                f"within the budget of {config.replay_budget}"
            ),
            "sensitizable": True,
        }

    # Plane 3: BDDs (exact at any width, bounded by bdd_max_inputs).
    if compiled.n_inputs > config.bdd_max_inputs:
        return "unresolved", {
            "kind": "unresolved",
            "reason": (
                f"cone has {compiled.n_inputs} inputs, beyond both the "
                f"word plane ({config.prefilter_max_inputs}) and the BDD "
                f"plane ({config.bdd_max_inputs})"
            ),
        }
    if ctx_cell[0] is None:
        ctx_cell[0] = SpcfContext(circuit, target=target)
    ctx = ctx_cell[0]
    stats["bdd_paths"] += 1
    cond_conj, act_conj, per_segment = conditions.path_conditions_bdd(
        ctx, path
    )
    if cond_conj.is_false:
        segments = [
            {
                "gate": gate,
                "fanin": fanin,
                "condition": isop_function(cond),
            }
            for (gate, fanin), cond, _act in per_segment
        ]
        return "false", {
            "kind": "false-path",
            "method": "bdd",
            "prunable": act_conj.is_false,
            "segments": segments,
        }
    for v2 in _bdd_candidates(ctx, cond_conj, config.replay_budget):
        stats["replays"] += 1
        witness = _replay_witness(compiled, path, v2, target)
        if witness is not None:
            return "true", {
                "kind": "true-path",
                "method": "bdd",
                **witness,
            }
    return "unresolved", {
        "kind": "unresolved",
        "reason": (
            "statically sensitizable but no witness replayed late "
            f"within the budget of {config.replay_budget}"
        ),
        "sensitizable": True,
    }


def analyze_paths(
    circuit: Circuit,
    threshold: float = 0.9,
    target: int | None = None,
    config: PathsConfig | None = None,
) -> PathsAnalysis:
    """Classify every speed-path of ``circuit`` with evidence.

    Every enumerated path receives exactly one certificate; the set covers
    the full over-target path population (enumeration past ``limit``
    raises instead of silently truncating, because a partial set would
    make downstream arrival tightening unsound).
    """
    cfg = config or PathsConfig()
    circuit.validate()
    compiled = compile_circuit(circuit)
    report = analyze(circuit, target=target, threshold=threshold)
    with _obs.TRACER.span(
        "paths.analyze", circuit=circuit.name, target=report.target
    ) as span:
        paths = enumerate_speed_paths(
            circuit, report=report, threshold=threshold, limit=cfg.limit
        )
        stats: dict[str, int] = {
            "paths": len(paths),
            "false": 0,
            "true": 0,
            "unresolved": 0,
            "prunable": 0,
            "prefilter_ternary": 0,
            "prefilter_exhaustive": 0,
            "bdd_paths": 0,
            "replays": 0,
        }
        constants = conditions.ternary_constant_nets(compiled, cfg.backend)
        words = (
            conditions.net_value_words(compiled, cfg.backend)
            if 0 < compiled.n_inputs <= cfg.prefilter_max_inputs
            else None
        )
        ctx_cell: list[SpcfContext | None] = [None]
        classified: list[tuple[SpeedPath, str, dict[str, Any]]] = []
        for path in paths:
            verdict, facts = _classify_path(
                path,
                circuit,
                compiled,
                report.target,
                constants,
                words,
                ctx_cell,
                cfg,
                stats,
            )
            stats[verdict] += 1
            if verdict == "false" and facts.get("prunable"):
                stats["prunable"] += 1
            _obs.CLASSIFIED.add(1, verdict=verdict)
            classified.append((path, verdict, facts))
        # Rank TRUE paths for masking: longest, then latest-settling first.
        ranked = sorted(
            (
                (path, facts)
                for path, verdict, facts in classified
                if verdict == "true"
            ),
            key=lambda pf: (
                -pf[0].delay,
                -int(pf[1]["settle_time"]),
                pf[0].nets,
            ),
        )
        for rank, (_path, facts) in enumerate(ranked, start=1):
            facts["rank"] = rank
        certs: dict[tuple[str, ...], PathCertificate] = {}
        for path, verdict, facts in classified:
            certs[path.nets] = PathCertificate(
                nets=path.nets,
                delay=path.delay,
                target=report.target,
                verdict=verdict,
                facts=facts,
            )
        certset = PathCertificateSet(
            circuit_name=circuit.name,
            circuit_fp=circuit_fingerprint(compiled),
            threshold=threshold,
            target=report.target,
            certificates=certs,
        )
        span.set(
            paths=stats["paths"],
            false=stats["false"],
            true=stats["true"],
            unresolved=stats["unresolved"],
        )
    return PathsAnalysis(
        circuit=circuit, report=report, certificates=certset, stats=stats
    )


__all__ = ["PathsConfig", "PathsAnalysis", "analyze_paths"]

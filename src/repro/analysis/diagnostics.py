"""Structured diagnostics for the circuit linter.

A :class:`Diagnostic` is one finding of one rule at one location; a
:class:`LintReport` bundles every finding for one circuit.  Both are plain
value objects so reporters (:mod:`repro.analysis.reporters`) can render them
as text or JSON without reaching back into the linter.

Severities are ordered (``INFO < WARNING < ERROR``) so callers can gate exit
codes on a threshold (the CLI's ``--fail-on``).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.errors import LintError


class Severity(enum.IntEnum):
    """Ordered severity of a diagnostic."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a severity from its lowercase name."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise LintError(
                f"unknown severity {name!r}; choose from "
                f"{[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule firing at a net/gate of a circuit.

    ``data`` is an optional JSON-ready payload of machine-readable evidence
    (e.g. the witness vector pair of a confirmed hazard); reporters carry it
    through verbatim so ``to_dict``/``from_dict`` round-trip losslessly.
    """

    rule_id: str
    rule_name: str
    severity: Severity
    circuit: str
    location: str
    message: str
    hint: str = ""
    data: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        d = {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": str(self.severity),
            "circuit": self.circuit,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            d["hint"] = self.hint
        if self.data is not None:
            d["data"] = self.data
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {
            "rule_id",
            "rule_name",
            "severity",
            "circuit",
            "location",
            "message",
            "hint",
            "data",
        }
        extra = set(d) - known
        if extra:
            raise LintError(
                f"diagnostic dict has unknown key(s) {sorted(extra)}"
            )
        try:
            return cls(
                rule_id=d["rule_id"],
                rule_name=d["rule_name"],
                severity=Severity.from_name(d["severity"]),
                circuit=d["circuit"],
                location=d["location"],
                message=d["message"],
                hint=d.get("hint", ""),
                data=d.get("data"),
            )
        except KeyError as exc:
            raise LintError(
                f"diagnostic dict missing key {exc.args[0]!r}"
            ) from None

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + place + message.

        Deliberately excludes severity, hint, and ``data`` so re-wording a
        hint or enriching the evidence payload does not un-suppress a
        baselined finding.
        """
        text = "\x1f".join(
            (self.rule_id, self.circuit, self.location, self.message)
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]

    def render(self) -> str:
        """One-line human-readable rendering."""
        where = f"{self.circuit}:{self.location}" if self.location else self.circuit
        line = f"{where}: {self.severity} {self.rule_id} " \
               f"[{self.rule_name}] {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


@dataclass(frozen=True)
class LintReport:
    """Every diagnostic the linter produced for one circuit."""

    circuit_name: str
    num_gates: int
    num_inputs: int
    num_outputs: int
    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def counts(self) -> dict[str, int]:
        """Findings per severity name (always all three keys)."""
        out = {str(s): 0 for s in Severity}
        for diag in self.diagnostics:
            out[str(diag.severity)] += 1
        return out

    def by_rule(self) -> dict[str, int]:
        """Findings per rule id."""
        out: dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.rule_id] = out.get(diag.rule_id, 0) + 1
        return out

    def max_severity(self) -> Severity | None:
        """Worst severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_or_above(self, threshold: Severity) -> tuple[Diagnostic, ...]:
        """Diagnostics whose severity is at least ``threshold``."""
        return tuple(d for d in self.diagnostics if d.severity >= threshold)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches the ``fail_on`` severity."""
        return not self.at_or_above(fail_on)

    def to_dict(self) -> dict:
        """JSON-ready representation of the whole report."""
        return {
            "circuit": self.circuit_name,
            "gates": self.num_gates,
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "summary": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LintReport":
        """Inverse of :meth:`to_dict` (the summary is recomputed, not read)."""
        try:
            return cls(
                circuit_name=d["circuit"],
                num_gates=d["gates"],
                num_inputs=d["inputs"],
                num_outputs=d["outputs"],
                diagnostics=tuple(
                    Diagnostic.from_dict(entry) for entry in d["diagnostics"]
                ),
            )
        except KeyError as exc:
            raise LintError(
                f"report dict missing key {exc.args[0]!r}"
            ) from None

"""Per-output discharge summaries of a certificate set.

Feeds the ``repro analyze`` precert report (rule ABS010) and the benchmark:
for each ``(output, target)`` query, how many of its obligations the static
pass discharged, and what the top-level verdict was.  The per-output cone is
re-walked with the same integer enumeration used during certification, so
the summary is a pure function of (circuit, certificates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.precert.certificate import CertificateSet
from repro.analysis.precert.obligations import enumerate_obligations
from repro.engine import CompiledCircuit, compile_circuit
from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class OutputSummary:
    """Discharge statistics of one ``(output, target)`` query."""

    output: str
    target: int
    verdict: str  #: top-level verdict of the ``(output, target)`` obligation
    obligations: int  #: obligations in this query's recursion cone
    discharged: int
    refuted: int
    required: int

    @property
    def discharge_rate(self) -> float:
        if self.obligations == 0:
            return 1.0
        return self.discharged / self.obligations

    def to_data(self) -> dict[str, Any]:
        return {
            "output": self.output,
            "target": self.target,
            "verdict": self.verdict,
            "obligations": self.obligations,
            "discharged": self.discharged,
            "refuted": self.refuted,
            "required": self.required,
            "discharge_rate": round(self.discharge_rate, 4),
        }


def summarize(
    circuit: Circuit | CompiledCircuit, certs: CertificateSet
) -> list[OutputSummary]:
    """One :class:`OutputSummary` per ``(output, target)`` query, sorted."""
    compiled = compile_circuit(circuit)
    arrival = compiled.arrival()
    min_stable = compiled.min_stable()
    out: list[OutputSummary] = []
    for target in certs.targets:
        for output in compiled.outputs:
            cone = enumerate_obligations(
                compiled, [(output, target)], arrival, min_stable
            )
            counts = {"discharged": 0, "refuted": 0, "required": 0}
            for node, t in cone:
                cert = certs.lookup(node, t)
                if cert is not None:
                    counts[cert.verdict] += 1
            top = certs.lookup(output, target)
            out.append(
                OutputSummary(
                    output=output,
                    target=target,
                    verdict=top.verdict if top is not None else "required",
                    obligations=len(cone),
                    discharged=counts["discharged"],
                    refuted=counts["refuted"],
                    required=counts["required"],
                )
            )
    return sorted(out, key=lambda s: (s.target, s.output))


def render_summary(
    circuit: Circuit | CompiledCircuit, certs: CertificateSet
) -> str:
    """Human-readable table of the per-output discharge rates."""
    lines = [
        f"precert {certs.circuit_name}: {len(certs)} certificate(s), "
        f"targets {list(certs.targets)}"
    ]
    for s in summarize(circuit, certs):
        lines.append(
            f"  t={s.target:<5d} {s.output:16s} {s.verdict:10s} "
            f"{s.discharged}/{s.obligations} discharged "
            f"({100.0 * s.discharge_rate:.0f}%)"
        )
    return "\n".join(lines)


__all__ = ["OutputSummary", "summarize", "render_summary"]

"""Certificate-emitting SPCF pre-certification (static discharge of
``(node, t)`` timing obligations before any BDD work).

Public surface:

* :func:`precertify` — classify every obligation of one or more
  ``(output, target)`` SPCF queries as discharged / refuted / required,
  each with machine-checkable evidence;
* :class:`CertificateSet` / :class:`Certificate` — the evidence model, with
  content-addressed fingerprints and lossless, tamper-detecting JSON IO;
* :func:`audit_certificates` — the ABS009 back end re-deriving every claim
  in an independent plane;
* :func:`summarize` / :func:`render_summary` — per-output discharge rates
  for reports and benchmarks.

See DESIGN.md §13 for the architecture and the soundness argument.
"""

from repro.analysis.precert.audit import AuditFinding, audit_certificates
from repro.analysis.precert.certificate import (
    Certificate,
    CertificateSet,
    circuit_fingerprint,
)
from repro.analysis.precert.obligations import Obligation, enumerate_obligations
from repro.analysis.precert.precertify import (
    PrecertConfig,
    precertify,
    resolve_targets,
)
from repro.analysis.precert.report import (
    OutputSummary,
    render_summary,
    summarize,
)

__all__ = [
    "AuditFinding",
    "Certificate",
    "CertificateSet",
    "Obligation",
    "OutputSummary",
    "PrecertConfig",
    "audit_certificates",
    "circuit_fingerprint",
    "enumerate_obligations",
    "precertify",
    "render_summary",
    "resolve_targets",
    "summarize",
]

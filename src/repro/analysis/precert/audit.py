"""ABS009 back end: cross-check certificates against exact BDD results.

Trust chain: the discharge facts come from the *static* plane (STA arrays,
ternary words); the audit recomputes each claim in an independent plane —

* ``on-time`` / ``all-late`` claims are checked against the **path-based**
  exact late-activation recursion, which never consults the arrival or
  min-stable bounds the certificate cites (its only cutoffs are the global
  critical delay and ``t < 0`` at primary inputs), so a corrupted STA array
  cannot vouch for itself;
* ``constant`` claims are checked against the BDD global function (built by
  Boolean composition, independent of the Kleene ternary domain);
* ``refuted`` claims replay their witness through the event simulator and
  additionally require the final vector to lie in the exact late set.

Tampered certificates — stored fingerprint no longer re-derivable from the
content, or a circuit-binding mismatch — are *refused*: reported with the
distinct ``tampered`` kind and never cross-checked, because a checker must
not spend trust on evidence that fails its own integrity hash.

Any ``contradicted`` finding is a soundness bug (ERROR severity in ABS009):
a certificate that would have made the SPCF plane skip real BDD work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.precert.certificate import Certificate, CertificateSet
from repro.engine import compile_circuit
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms
from repro.spcf.pathbased import late_activation
from repro.spcf.timedfunc import SpcfContext


@dataclass(frozen=True)
class AuditFinding:
    """One refused or contradicted certificate."""

    node: str
    time: int | None
    #: ``tampered`` (integrity refusal) or ``contradicted`` (soundness bug)
    kind: str
    message: str
    data: dict[str, Any]


def _contradiction(
    cert: Certificate, detail: str, **extra: Any
) -> AuditFinding:
    return AuditFinding(
        node=cert.node,
        time=cert.time,
        kind="contradicted",
        message=(
            f"certificate for ({cert.node!r}, t={cert.time}) "
            f"[{cert.kind}, {cert.domain}] contradicts the exact BDD "
            f"result: {detail}"
        ),
        data={
            "node": cert.node,
            "time": cert.time,
            "verdict": cert.verdict,
            "domain": cert.domain,
            "certificate_kind": cert.kind,
            **extra,
        },
    )


def audit_certificates(
    circuit: Circuit, certs: CertificateSet
) -> list[AuditFinding]:
    """Every refused (tampered) and contradicted certificate of ``certs``.

    Intended for auditable-size cones (the exact recomputation builds BDDs
    over all primary inputs); callers gate by input count the way ABS008
    gates its SPCF equivalence check.  An empty list is the pass verdict:
    every certificate's claim was re-derived independently.
    """
    findings: list[AuditFinding] = []
    compiled = compile_circuit(circuit)
    if not certs.matches(compiled):
        findings.append(
            AuditFinding(
                node=compiled.name,
                time=None,
                kind="tampered",
                message=(
                    "certificate set is bound to a different circuit "
                    f"(fingerprint {certs.circuit_fp[:12]}... does not match "
                    f"{compiled.name!r}); refusing to audit its claims"
                ),
                data={"circuit_fingerprint": certs.circuit_fp},
            )
        )
        return findings
    tampered = set()
    for cert in certs.tampered():
        tampered.add(cert.key)
        findings.append(
            AuditFinding(
                node=cert.node,
                time=cert.time,
                kind="tampered",
                message=(
                    f"certificate for ({cert.node!r}, t={cert.time}) fails "
                    "fingerprint verification (content no longer matches "
                    "its stored hash); refused without cross-checking"
                ),
                data={
                    "node": cert.node,
                    "time": cert.time,
                    "verdict": cert.verdict,
                    "domain": cert.domain,
                },
            )
        )
    # Exact recomputation context: no certificates attached, so the
    # path-based recursion below cannot be steered by the evidence under
    # audit.
    ctx = SpcfContext(circuit)
    mgr = ctx.manager
    for cert in sorted(certs, key=lambda c: (c.node, c.time is not None, c.time or 0)):
        if cert.key in tampered:
            continue
        kind = cert.kind
        if kind == "constant":
            fn = ctx.functions[cert.node]
            want = mgr.true if cert.facts.get("value") else mgr.false
            if fn != want:
                findings.append(
                    _contradiction(
                        cert,
                        "global function is not the claimed constant",
                        claimed_value=bool(cert.facts.get("value")),
                    )
                )
        elif kind == "on-time":
            late = late_activation(ctx, cert.node, int(cert.time or 0))
            if not late.is_false:
                witness = late.pick_one()
                findings.append(
                    _contradiction(
                        cert,
                        "a pattern settles after t although the certificate "
                        "claims every pattern is on time",
                        late_count=ctx.count(late),
                        witness=witness,
                    )
                )
        elif kind == "all-late":
            late = late_activation(ctx, cert.node, int(cert.time or 0))
            if not late.is_true:
                witness = (~late).pick_one()
                findings.append(
                    _contradiction(
                        cert,
                        "a pattern settles by t although the certificate "
                        "claims no pattern can",
                        witness=witness,
                    )
                )
        elif kind == "refuted":
            findings.extend(_audit_refuted(ctx, compiled, cert))
        # "required" carries no claim: nothing to contradict.
    return findings


def _audit_refuted(
    ctx: SpcfContext, compiled: Any, cert: Certificate
) -> list[AuditFinding]:
    """Replay a refutation witness and re-derive its membership claim."""
    facts = cert.facts
    t = int(cert.time or 0)
    try:
        v1 = [int(b) for b in facts["v1"]]
        v2 = [int(b) for b in facts["v2"]]
    except (KeyError, TypeError, ValueError):
        return [_contradiction(cert, "witness vectors are malformed")]
    if len(v1) != compiled.n_inputs or len(v2) != compiled.n_inputs:
        return [_contradiction(cert, "witness vector width mismatch")]
    waves = two_vector_waveforms(
        compiled,
        dict(zip(compiled.inputs, map(bool, v1))),
        dict(zip(compiled.inputs, map(bool, v2))),
    )
    wave = waves[cert.node]
    if wave.settle_time <= t:
        return [
            _contradiction(
                cert,
                "replayed witness settles on time "
                f"(t={wave.settle_time} <= {t})",
                replayed_settle_time=wave.settle_time,
            )
        ]
    late = late_activation(ctx, cert.node, t)
    pattern = dict(zip(compiled.inputs, map(bool, v2)))
    if not late.evaluate(pattern):
        return [
            _contradiction(
                cert,
                "witness final vector is outside the exact late set",
                witness_v2=v2,
            )
        ]
    return []


__all__ = ["AuditFinding", "audit_certificates"]

"""The pre-certification driver: classify every obligation, with evidence.

:func:`precertify` runs three abstract domains over the compiled IR — the
arrival-interval and min-stable fixpoints (shared with STA and audited by
ABS007) and the all-X Kleene ternary domain — then replays a small budget of
two-vector transitions through the event simulator to *refute* top-level
on-time hopes with concrete witnesses.  The result is a
:class:`~repro.analysis.precert.certificate.CertificateSet` covering every
``(node, t)`` obligation of the requested ``(output, target)`` SPCF queries,
ready to be consulted by all three SPCF algorithms and audited by ABS009.

No BDD is ever built here: the pass is integer walks, one word-parallel
ternary evaluation, and at most ``refute_budget`` event-simulator replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.absint.ternary import X, pack_classes
from repro.analysis.precert.certificate import (
    Certificate,
    CertificateSet,
    circuit_fingerprint,
)
from repro.analysis.precert.obligations import enumerate_obligations
from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import PrecertError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms
from repro.sta.timing import threshold_target

TRACER = obs.get_tracer("precert")


@dataclass(frozen=True)
class PrecertConfig:
    """Tunables for one pre-certification run.

    ``refute_budget`` bounds the event-simulator replays shared across all
    refutable outputs (0 disables refutation: undecided top-level
    obligations stay ``required``).  ``backend`` selects the word backend
    for the all-X ternary constant scan.
    """

    refute_budget: int = 8
    seed: int = 0
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.refute_budget < 0:
            raise PrecertError(
                f"refute_budget must be >= 0, got {self.refute_budget}"
            )


def _constant_certificates(
    compiled: CompiledCircuit, backend: str | None
) -> dict[tuple[str, int | None], Certificate]:
    """Nets whose global function is constant, proved by one all-X pass.

    Evaluating the single all-X transition class word-parallel gives every
    net a Kleene value; a *definite* value under all-X inputs is, by Kleene
    monotonicity, the net's value under every binary refinement — a proof
    that the global function is constant.  (Primary inputs are X by
    definition and gates only below them can resolve.)
    """
    out: dict[tuple[str, int | None], Certificate] = {}
    if compiled.n_inputs == 0:
        return out
    hi, lo = pack_classes(compiled, [(X,) * compiled.n_inputs], backend)
    for idx in range(compiled.n_inputs, compiled.n_nets):
        if hi[idx] & lo[idx] & 1:
            continue  # X: not constant
        name = compiled.net_names[idx]
        out[(name, None)] = Certificate(
            node=name,
            time=None,
            verdict="discharged",
            domain="ternary-allx",
            facts={"kind": "constant", "value": bool(hi[idx] & 1)},
        )
    return out


def _refute(
    compiled: CompiledCircuit,
    roots: list[tuple[str, int]],
    config: PrecertConfig,
) -> dict[tuple[str, int], Certificate]:
    """Concrete late-settling witnesses for top-level obligations.

    Replays ``refute_budget`` seeded random two-vector transitions; a
    waveform of output ``y`` settling at ``s > t`` proves the final vector
    lies in the exact late set (a pure-delay settle time lower-bounds the
    floating-mode stabilization time), refuting the hope that ``(y, t)``
    could be discharged.  Replays are shared across every undecided root:
    one waveform evaluation serves all outputs.
    """
    found: dict[tuple[str, int], Certificate] = {}
    if not roots or config.refute_budget == 0 or compiled.n_inputs == 0:
        return found
    rng = random.Random(config.seed)
    inputs = compiled.inputs
    pending = set(roots)
    for _ in range(config.refute_budget):
        if not pending:
            break
        v1 = tuple(rng.randint(0, 1) for _ in inputs)
        v2 = tuple(rng.randint(0, 1) for _ in inputs)
        waves = two_vector_waveforms(
            compiled,
            dict(zip(inputs, map(bool, v1))),
            dict(zip(inputs, map(bool, v2))),
        )
        for key in sorted(pending):
            node, t = key
            wave = waves[node]
            if wave.settle_time > t:
                found[key] = Certificate(
                    node=node,
                    time=t,
                    verdict="refuted",
                    domain="event-sim",
                    facts={
                        "kind": "refuted",
                        "v1": list(v1),
                        "v2": list(v2),
                        "settle_time": wave.settle_time,
                        "transitions": wave.num_transitions,
                    },
                )
        pending -= set(found)
    return found


def resolve_targets(
    compiled: CompiledCircuit,
    targets: Sequence[int] | None,
    threshold: float,
) -> tuple[int, ...]:
    """The sorted, deduplicated target list of a (multi-root) query."""
    if targets is None:
        resolved: tuple[int, ...] = (
            threshold_target(compiled.critical_delay(), threshold),
        )
    else:
        resolved = tuple(sorted({int(t) for t in targets}))
    if not resolved:
        raise PrecertError("precertify needs at least one target")
    return resolved


def precertify(
    circuit: Circuit | CompiledCircuit,
    targets: Sequence[int] | None = None,
    threshold: float = 0.9,
    config: PrecertConfig | None = None,
    tighten: Mapping[str, int] | None = None,
) -> CertificateSet:
    """Pre-certify every obligation of the ``(output, target)`` SPCF queries.

    ``targets`` lists the absolute target arrival times to cover (a
    multi-threshold sweep shares one set); when ``None`` the single paper
    target ``floor(threshold * Delta)`` is used.

    ``tighten`` maps net names to *true-arrival* upper bounds proved by the
    false-path analysis (:func:`repro.analysis.paths.tightened_arrivals`):
    every pattern of ``net`` has stabilized by ``tighten[net]`` even though
    the structural arrival is later.  An obligation ``(net, t)`` with
    ``t >= tighten[net]`` that would otherwise stay ``required`` is
    discharged under the ``true-arrival`` domain with the same ``on-time``
    fact shape, so the SPCF shortcut (and the ABS009 audit) treat it
    exactly like an arrival-interval discharge.  Tightening never overrides
    a refuted or already-discharged verdict.
    """
    cfg = config or PrecertConfig()
    compiled = compile_circuit(circuit)
    resolved = resolve_targets(compiled, targets, threshold)
    with TRACER.span(
        "precert.run", circuit=compiled.name, targets=len(resolved)
    ) as span:
        arrival = compiled.arrival()
        min_stable = compiled.min_stable()
        certs = _constant_certificates(compiled, cfg.backend)
        roots = [(y, t) for t in resolved for y in compiled.outputs]
        obligations = enumerate_obligations(
            compiled, roots, arrival, min_stable
        )
        root_keys = set(roots)
        undecided = [
            key
            for key, ob in sorted(obligations.items())
            if ob.kind == "required" and key in root_keys
        ]
        refuted = _refute(compiled, undecided, cfg)
        net_index = compiled.net_index
        for key, ob in obligations.items():
            if key in refuted:
                certs[key] = refuted[key]
            elif ob.kind == "on-time":
                certs[key] = Certificate(
                    node=ob.node,
                    time=ob.time,
                    verdict="discharged",
                    domain="arrival-interval",
                    facts={
                        "kind": "on-time",
                        "arrival": arrival[net_index[ob.node]],
                    },
                )
            elif ob.kind == "all-late":
                certs[key] = Certificate(
                    node=ob.node,
                    time=ob.time,
                    verdict="discharged",
                    domain="min-stable",
                    facts={
                        "kind": "all-late",
                        "min_stable": min_stable[net_index[ob.node]],
                    },
                )
            elif (
                tighten is not None
                and ob.node in tighten
                and ob.time >= tighten[ob.node]
            ):
                certs[key] = Certificate(
                    node=ob.node,
                    time=ob.time,
                    verdict="discharged",
                    domain="true-arrival",
                    facts={
                        "kind": "on-time",
                        "arrival": tighten[ob.node],
                    },
                )
            else:
                certs[key] = Certificate(
                    node=ob.node,
                    time=ob.time,
                    verdict="required",
                    domain="none",
                    facts={"kind": "required"},
                )
        result = CertificateSet(
            circuit_name=compiled.name,
            circuit_fp=circuit_fingerprint(compiled),
            targets=resolved,
            certificates=certs,
        )
        if obs.get_meter().enabled:
            from repro.spcf import _obs as spcf_obs

            counts = result.counts()
            for verdict, n in counts.items():
                if n:
                    spcf_obs.OBLIGATIONS.add(n, verdict=verdict)
            span.set(
                obligations=len(result),
                discharged=counts["discharged"],
                refuted=counts["refuted"],
                required=counts["required"],
            )
    return result


__all__ = ["PrecertConfig", "precertify", "resolve_targets"]

"""Machine-checkable certificates for SPCF ``(node, t)`` timing obligations.

A *timing obligation* is one ``(node, t)`` pair arising in the paper's Eqn. 1
recursion: "compute the stabilized-by-``t`` characteristic functions of
``node``".  The pre-certification pass classifies every obligation before any
BDD is built:

* ``discharged`` — the answer is statically known.  The certificate names the
  abstract domain that proved it and carries the fixpoint facts used:

  - ``on-time`` (arrival-interval domain): ``t >= arrival[node]``, so every
    pattern has stabilized and ``(S0, S1) = (~F, F)``;
  - ``all-late`` (min-stable domain): ``t < min_stable[node]``, so no pattern
    can have stabilized and ``(S0, S1) = (0, 0)``;
  - ``constant`` (all-X Kleene ternary domain): the node's *global function*
    is constant, so ``F`` may be substituted by a BDD terminal.  Floating-mode
    stabilization is untouched — a constant-function net still settles late
    under an arbitrary initial state — so constant certificates shortcut only
    the global-function map, never ``stable()`` itself.

* ``refuted`` — the hope that the output settles on time for every pattern is
  disproved by a concrete witness: a two-vector transition replayed through
  the event simulator whose output waveform settles *after* ``t``.  Since a
  pure-delay waveform settling at ``s`` lower-bounds the floating-mode
  stabilization time, the witness proves the exact late set is non-empty.

* ``required`` — no static verdict; the obligation must go to the BDD plane.

Certificates are *checkable evidence*, not trust: each carries a
content-addressed SHA-256 fingerprint chained to a fingerprint of the exact
circuit structure (cells, fanins, delays, outputs) and target list, the whole
set round-trips losslessly through JSON, and any tampering — with facts,
verdicts, or the circuit binding — is detected on strict load and refused by
the ABS009 audit with a distinct diagnostic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import PrecertError
from repro.netlist.circuit import Circuit

#: Serialization schema of :meth:`CertificateSet.to_dict`.
SCHEMA = "repro-precert/1"

#: Allowed verdicts, in severity-of-claim order.
VERDICTS = ("discharged", "refuted", "required")

#: Abstract domains a discharged certificate may cite.
DOMAINS = (
    "arrival-interval",  # on-time: t >= arrival[node]
    "min-stable",  # all-late: t < min_stable[node]
    "ternary-allx",  # constant global function
    "event-sim",  # refuted: replayed late-settling witness
    "true-arrival",  # on-time via false-path-pruned arrival (paths analysis)
    "none",  # required: no static verdict
)


def _canonical(data: Any) -> str:
    """Canonical JSON used for all fingerprint material."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def circuit_fingerprint(circuit: Circuit | CompiledCircuit) -> str:
    """Content-addressed SHA-256 over the exact compiled circuit structure.

    Covers everything the timing obligations depend on: net names and order,
    per-gate cell identity, fanins, and pin delays, and the output list.
    Renaming a net, swapping a cell, or retiming a single arc all change the
    fingerprint, so stale certificates can never be replayed against an
    edited circuit.
    """
    compiled = compile_circuit(circuit)
    material = _canonical(
        {
            "name": compiled.name,
            "inputs": list(compiled.inputs),
            "outputs": list(compiled.outputs),
            "nets": list(compiled.net_names),
            "gates": [
                {
                    "cell": cell.name,
                    "fanins": list(fanins),
                    "delays": list(delays),
                }
                for cell, fanins, delays in zip(
                    compiled.gate_cells,
                    compiled.gate_fanins,
                    compiled.gate_delays,
                )
            ],
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Certificate:
    """One classified ``(node, t)`` obligation with its evidence.

    ``time`` is ``None`` only for ``constant`` facts, which hold at every
    ``t`` (they speak about the global function, not about stabilization).
    ``facts`` is the JSON-ready evidence payload: the fixpoint facts a
    checker needs to re-derive the verdict (arrival/min-stable bounds, the
    constant value, or the refutation witness).
    """

    node: str
    time: int | None
    verdict: str
    domain: str
    facts: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise PrecertError(
                f"unknown certificate verdict {self.verdict!r}; "
                f"expected one of {VERDICTS}"
            )
        if self.domain not in DOMAINS:
            raise PrecertError(
                f"unknown certificate domain {self.domain!r}; "
                f"expected one of {DOMAINS}"
            )

    @property
    def key(self) -> tuple[str, int | None]:
        return (self.node, self.time)

    @property
    def kind(self) -> str:
        """The discharge flavour: ``on-time``/``all-late``/``constant``/...."""
        return str(self.facts.get("kind", self.verdict))

    def fingerprint(self, circuit_fp: str) -> str:
        """SHA-256 binding this certificate to one circuit fingerprint."""
        material = _canonical(
            {
                "circuit": circuit_fp,
                "node": self.node,
                "time": self.time,
                "verdict": self.verdict,
                "domain": self.domain,
                "facts": dict(self.facts),
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_dict(self, circuit_fp: str) -> dict[str, Any]:
        return {
            "node": self.node,
            "time": self.time,
            "verdict": self.verdict,
            "domain": self.domain,
            "facts": dict(self.facts),
            "fingerprint": self.fingerprint(circuit_fp),
        }


class CertificateSet:
    """All certificates of one pre-certification run, indexed by obligation.

    One set spans every target threshold of a (possibly multi-root) SPCF
    query; obligations are keyed on absolute ``(node, t)`` so queries at
    different thresholds share discharged facts.
    """

    def __init__(
        self,
        circuit_name: str,
        circuit_fp: str,
        targets: tuple[int, ...],
        certificates: Mapping[tuple[str, int | None], Certificate],
        stored_fingerprints: Mapping[tuple[str, int | None], str] | None = None,
    ) -> None:
        self.circuit_name = circuit_name
        self.circuit_fp = circuit_fp
        self.targets = tuple(sorted(targets))
        self._by_key = dict(certificates)
        # The fingerprints as *found in a loaded file*; ``tampered()``
        # compares them against re-derived ones.  A freshly produced set
        # carries none — its fingerprints are derived on demand (emission
        # time), which keeps certificate production free of hashing cost.
        self._stored_fp: dict[tuple[str, int | None], str] | None = (
            dict(stored_fingerprints) if stored_fingerprints is not None else None
        )

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self._by_key.values())

    def lookup(self, node: str, time: int) -> Certificate | None:
        """The certificate for obligation ``(node, time)``, if any."""
        return self._by_key.get((node, time))

    def constant_value(self, node: str) -> bool | None:
        """The proven-constant global value of ``node``, if certified."""
        cert = self._by_key.get((node, None))
        if cert is None or cert.kind != "constant":
            return None
        return bool(cert.facts["value"])

    def counts(self) -> dict[str, int]:
        """Certificate totals by verdict (all three keys always present)."""
        out = {v: 0 for v in VERDICTS}
        for cert in self._by_key.values():
            out[cert.verdict] += 1
        return out

    def discharge_rate(self) -> float:
        """Fraction of obligations discharged (1.0 for an empty set)."""
        if not self._by_key:
            return 1.0
        return self.counts()["discharged"] / len(self._by_key)

    def for_output(self, output: str, target: int) -> Certificate | None:
        """The top-level certificate of one ``(output, target)`` query."""
        return self.lookup(output, target)

    def matches(self, circuit: Circuit | CompiledCircuit) -> bool:
        """True iff this set was produced from exactly this circuit."""
        return circuit_fingerprint(circuit) == self.circuit_fp

    # ------------------------------------------------------------ integrity

    def tampered(self) -> list[Certificate]:
        """Certificates whose stored fingerprint no longer re-derives.

        A freshly produced set carries no stored fingerprints (it is
        self-consistent by construction) and never reports here; entries
        only show up after a ``verify=False`` load of an edited file.  The
        ABS009 audit calls this first and refuses such evidence with a
        distinct diagnostic before doing any cross-checking.
        """
        if self._stored_fp is None:
            return []
        stored = self._stored_fp
        return [
            cert
            for key, cert in sorted(self._by_key.items(), key=_sort_key)
            if stored.get(key) != cert.fingerprint(self.circuit_fp)
        ]

    # -------------------------------------------------------------- JSON IO

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "circuit": self.circuit_name,
            "circuit_fingerprint": self.circuit_fp,
            "targets": list(self.targets),
            "certificates": [
                {
                    **cert.to_dict(self.circuit_fp),
                    # For loaded sets, emit the fingerprint as stored, never
                    # a re-derived one: saving a tampered set must not
                    # silently re-sign it.  Fresh sets derive at emission.
                    "fingerprint": (
                        cert.fingerprint(self.circuit_fp)
                        if self._stored_fp is None
                        else self._stored_fp.get(
                            key, cert.fingerprint(self.circuit_fp)
                        )
                    ),
                }
                for key, cert in sorted(self._by_key.items(), key=_sort_key)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], verify: bool = True
    ) -> "CertificateSet":
        """Rebuild a set from its JSON form.

        With ``verify=True`` (the default, and the only safe way to *use*
        loaded certificates) every stored fingerprint is recomputed from the
        entry's content and the circuit binding; any mismatch raises
        :class:`~repro.errors.PrecertError`.  ``verify=False`` loads the
        data as-is so the ABS009 audit can inspect — and then refuse —
        tampered evidence instead of crashing on it.
        """
        if data.get("schema") != SCHEMA:
            raise PrecertError(
                f"unsupported certificate schema {data.get('schema')!r}; "
                f"expected {SCHEMA!r}"
            )
        try:
            circuit_fp = str(data["circuit_fingerprint"])
            circuit_name = str(data["circuit"])
            targets = tuple(int(t) for t in data["targets"])
            entries = list(data["certificates"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PrecertError(f"malformed certificate set: {exc}") from exc
        by_key: dict[tuple[str, int | None], Certificate] = {}
        stored: dict[tuple[str, int | None], str] = {}
        for entry in entries:
            try:
                cert = Certificate(
                    node=str(entry["node"]),
                    time=None if entry["time"] is None else int(entry["time"]),
                    verdict=str(entry["verdict"]),
                    domain=str(entry["domain"]),
                    facts=dict(entry["facts"]),
                )
                stored_fp = str(entry["fingerprint"])
            except (KeyError, TypeError, ValueError) as exc:
                raise PrecertError(f"malformed certificate entry: {exc}") from exc
            if verify and cert.fingerprint(circuit_fp) != stored_fp:
                raise PrecertError(
                    f"certificate for ({cert.node!r}, t={cert.time}) fails "
                    "fingerprint verification: content or circuit binding "
                    "was modified after emission"
                )
            by_key[cert.key] = cert
            stored[cert.key] = stored_fp
        return cls(circuit_name, circuit_fp, targets, by_key, stored)

    @classmethod
    def from_json(cls, text: str, verify: bool = True) -> "CertificateSet":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PrecertError(f"unreadable certificate JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise PrecertError("certificate JSON must be an object")
        return cls.from_dict(data, verify=verify)


def _sort_key(
    item: tuple[tuple[str, int | None], Certificate]
) -> tuple[str, int, int]:
    (node, time), _ = item
    return (node, time is not None, time if time is not None else 0)


__all__ = [
    "SCHEMA",
    "VERDICTS",
    "DOMAINS",
    "Certificate",
    "CertificateSet",
    "circuit_fingerprint",
]

"""Static enumeration of the ``(node, t)`` obligations of an SPCF query.

Walks exactly the recursion tree of Eqn. 1 (``SpcfContext.stable``) but over
integers only — latest-arrival and earliest-stabilization bounds from STA,
prime-implicant pin delays from the compiled IR — and never touches a BDD.
Each obligation is classified the way the recursion would resolve it:

* ``t >= arrival[node]`` — leaf, discharged *on-time* (the recursion would
  return ``(~F, F)`` without descending);
* ``t < min_stable[node]`` — leaf, discharged *all-late* (``(0, 0)``);
* otherwise — *required*: the recursion must expand through the node's prime
  implicants, spawning one child obligation per (fanin, pin-delay) literal.

The walk is deduplicated on absolute ``(node, t)`` exactly like the
recursion's memo table, so the enumerated set is precisely the set of memo
entries plus the pruned leaves — the complete BDD workload of the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine import CompiledCircuit
from repro.errors import PrecertError


@dataclass(frozen=True)
class Obligation:
    """One classified ``(node, t)`` pair of the recursion tree."""

    node: str
    time: int
    #: ``on-time`` | ``all-late`` | ``required``
    kind: str


def _pin_delay_fanins(
    compiled: CompiledCircuit, pos: int
) -> tuple[tuple[int, int], ...]:
    """Distinct ``(fanin_index, delay)`` arcs referenced by some prime.

    Every prime literal of a cell references one input pin; the recursion
    spawns one child obligation per literal.  Distinct (fanin, delay) pairs
    over the pins that occur in at least one prime reproduce the child set
    exactly (duplicate literals dedupe in the memo anyway; a vacuous pin
    never spawns a child).
    """
    cell = compiled.gate_cells[pos]
    fanins = compiled.gate_fanins[pos]
    delays = compiled.gate_delays[pos]
    on_primes, off_primes = cell.primes()
    pins_used: set[str] = set()
    for prime in (*on_primes, *off_primes):
        pins_used.update(prime.to_dict(cell.inputs))
    return tuple(
        sorted(
            {
                (fanin, delay)
                for pin, fanin, delay in zip(cell.inputs, fanins, delays)
                if pin in pins_used
            }
        )
    )


def enumerate_obligations(
    compiled: CompiledCircuit,
    roots: Iterable[tuple[str, int]],
    arrival: Sequence[int],
    min_stable: Sequence[int],
) -> dict[tuple[str, int], Obligation]:
    """All ``(node, t)`` obligations reachable from the given root queries.

    ``roots`` are the top-level ``(output, target)`` pairs; the result maps
    every reachable obligation (roots included) to its static classification.
    Root obligations for non-gate nets (primary inputs used directly as
    outputs) classify like any other node: a PI has ``arrival == 0`` so any
    ``t >= 0`` is on-time.
    """
    net_index = compiled.net_index
    gate_position = compiled.gate_position
    out: dict[tuple[str, int], Obligation] = {}
    stack: list[tuple[str, int]] = []
    for node, t in roots:
        if node not in net_index:
            raise PrecertError(
                f"no net {node!r} in circuit {compiled.name!r}"
            )
        stack.append((node, int(t)))
    while stack:
        key = stack.pop()
        if key in out:
            continue
        node, t = key
        idx = net_index[node]
        if t >= arrival[idx]:
            out[key] = Obligation(node, t, "on-time")
            continue
        if t < min_stable[idx]:
            out[key] = Obligation(node, t, "all-late")
            continue
        out[key] = Obligation(node, t, "required")
        # arrival > 0 here, so the node is a gate (PIs arrive at 0).
        pos = gate_position[node]
        for fanin, delay in _pin_delay_fanins(compiled, pos):
            stack.append((compiled.net_names[fanin], t - delay))
    return out


__all__ = ["Obligation", "enumerate_obligations"]

"""Text and JSON rendering of lint reports and verification reports.

The JSON schema is versioned (``repro-lint/1`` and ``repro-verify/1``) so
downstream tooling can key on it; new fields may be added within a version
but existing fields keep their meaning.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.analysis.diagnostics import LintReport

LINT_SCHEMA = "repro-lint/1"
VERIFY_SCHEMA = "repro-verify/1"


def render_text(report: LintReport) -> str:
    """Human-readable rendering of one lint report."""
    lines = [d.render() for d in report.diagnostics]
    counts = report.counts()
    summary = (
        f"{report.circuit_name}: {len(report)} finding(s) "
        f"({counts['error']} error, {counts['warning']} warning, "
        f"{counts['info']} info) in {report.num_gates} gates"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """JSON rendering of one lint report."""
    return json.dumps(
        {"schema": LINT_SCHEMA, **report.to_dict()}, indent=2, sort_keys=False
    )


def render_json_many(reports: Mapping[str, LintReport]) -> str:
    """JSON rendering of a batch lint run (circuit name -> report)."""
    total = {"info": 0, "warning": 0, "error": 0}
    rendered = []
    for name in reports:
        report = reports[name]
        for severity, count in report.counts().items():
            total[severity] += count
        rendered.append(report.to_dict())
    return json.dumps(
        {"schema": LINT_SCHEMA, "summary": total, "circuits": rendered},
        indent=2,
        sort_keys=False,
    )


def render_text_many(reports: Mapping[str, LintReport]) -> str:
    """Human-readable rendering of a batch lint run."""
    lines: list[str] = []
    findings = 0
    for name in reports:
        report = reports[name]
        findings += len(report)
        lines.extend(d.render() for d in report.diagnostics)
    lines.append(f"linted {len(reports)} circuit(s): {findings} finding(s)")
    return "\n".join(lines)


def render_verify_text(report) -> str:
    """Human-readable rendering of a :class:`VerifyMaskReport`."""
    lines = [f"circuit : {report.circuit_name}"]
    for check in report.checks:
        status = "PASS" if check.passed else "FAIL"
        line = f"  {check.check:12s} {check.output:16s} {status}"
        if check.detail:
            line += f"  {check.detail}"
        lines.append(line)
        if check.counterexample is not None:
            lines.append(f"    counterexample: {check.counterexample.render()}")
    verdict = "VERIFIED" if report.ok else "FAILED"
    lines.append(f"result  : {verdict} ({len(report.checks)} checks, "
                 f"{len(report.failures)} failure(s))")
    return "\n".join(lines)


def render_verify_json(report) -> str:
    """JSON rendering of a :class:`VerifyMaskReport`."""
    return json.dumps(
        {"schema": VERIFY_SCHEMA, **report.to_dict()}, indent=2, sort_keys=False
    )

"""BDD-based formal verification of synthesized masking circuits.

For every critical output ``y`` of a :class:`~repro.core.masking.MaskingResult`
three theorems are checked by BDD equivalence over the primary inputs
(DESIGN.md §1–2 — the invariants the whole scheme rests on):

* **soundness** — ``e_y = 1  ⟹  y~ = y`` for *every* input pattern, where
  ``y`` is the functionally correct output recomputed independently from the
  original circuit,
* **coverage** — ``Sigma_y  ⟹  e_y = 1``: no speed-path activation pattern
  escapes the indicator,
* **equivalence** — the mux-patched design equals the original off the SPCF:
  ``¬Sigma_y  ⟹  masked(y) = y`` (with soundness this extends to the whole
  input space).

Failures come back as concrete counterexample input patterns, so a broken
refactor of the SPCF/masking hot paths points straight at a witness instead
of a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.bdd.manager import BddManager, Function
from repro.core.integrate import MaskedDesign, build_masked_design
from repro.core.masking import MaskingResult
from repro.errors import VerificationError
from repro.netlist.circuit import Circuit
from repro.spcf.timedfunc import expr_to_function

#: Names of the three checks, in report order.
CHECK_SOUNDNESS = "soundness"
CHECK_COVERAGE = "coverage"
CHECK_EQUIVALENCE = "equivalence"


@dataclass(frozen=True)
class Counterexample:
    """One concrete input pattern witnessing a violated check."""

    inputs: tuple[str, ...]
    assignment: tuple[tuple[str, bool], ...]
    observed: tuple[tuple[str, bool], ...]

    @classmethod
    def from_violation(
        cls,
        violation: Function,
        inputs: tuple[str, ...],
        observe: Mapping[str, Function],
    ) -> "Counterexample":
        """Pick one satisfying pattern and record the observed net values."""
        partial = violation.pick_one() or {}
        full = {net: partial.get(net, False) for net in inputs}
        observed = tuple(
            (name, fn.evaluate(full)) for name, fn in observe.items()
        )
        return cls(
            inputs=inputs,
            assignment=tuple((net, full[net]) for net in inputs),
            observed=observed,
        )

    def pattern(self) -> str:
        """The input pattern as a bitstring in primary-input order."""
        return "".join("1" if v else "0" for _, v in self.assignment)

    def render(self) -> str:
        obs = " ".join(f"{n}={int(v)}" for n, v in self.observed)
        return f"pattern={self.pattern()} {obs}"

    def to_dict(self) -> dict:
        return {
            "pattern": self.pattern(),
            "assignment": {n: int(v) for n, v in self.assignment},
            "observed": {n: int(v) for n, v in self.observed},
        }


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check for one critical output."""

    check: str
    output: str
    passed: bool
    counterexample: Counterexample | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        d = {"check": self.check, "output": self.output, "passed": self.passed}
        if self.detail:
            d["detail"] = self.detail
        if self.counterexample is not None:
            d["counterexample"] = self.counterexample.to_dict()
        return d


@dataclass(frozen=True)
class VerifyMaskReport:
    """All check results for one masking synthesis."""

    circuit_name: str
    checks: tuple[CheckResult, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit_name,
            "verified": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }


def _circuit_functions(
    circuit: Circuit, mgr: BddManager, seed: Mapping[str, Function]
) -> dict[str, Function]:
    """Global BDD functions of every net of ``circuit`` over ``mgr``'s vars."""
    fns = dict(seed)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        env = {pin: fns[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        fns[name] = expr_to_function(gate.cell.expr, env, mgr)
    return fns


def verify_mask(
    result: MaskingResult, design: MaskedDesign | None = None
) -> VerifyMaskReport:
    """Prove the soundness/coverage/equivalence theorems for ``result``.

    ``design`` is the integrated mux-patched circuit; it is built on demand
    when not supplied.  All three checks are complete (BDD equivalence, not
    simulation), and every failure carries a counterexample pattern.
    """
    ctx = result.context
    mgr = ctx.manager
    inputs = result.circuit.inputs
    pi_vars = {net: mgr.var(net) for net in inputs}

    checks: list[CheckResult] = []
    if result.is_trivial:
        return VerifyMaskReport(circuit_name=result.circuit.name, checks=())

    mask_fns = _circuit_functions(result.masking_circuit, mgr, pi_vars)
    if design is None:
        design = build_masked_design(result)
    design_fns = _circuit_functions(design.circuit, mgr, pi_vars)

    for y, (pred_net, ind_net) in result.outputs.items():
        correct = ctx.functions[y]
        pred = mask_fns[pred_net]
        ind = mask_fns[ind_net]
        sigma = result.spcf.per_output[y]
        masked = design_fns[design.output_map[y]]

        violation = ind & (pred ^ correct)
        checks.append(
            _check_result(
                CHECK_SOUNDNESS, y, violation, inputs,
                {y: correct, pred_net: pred, ind_net: ind},
                "e=1 implies y~ = y",
            )
        )
        violation = sigma - ind
        checks.append(
            _check_result(
                CHECK_COVERAGE, y, violation, inputs,
                {ind_net: ind},
                "Sigma_y implies e=1",
            )
        )
        violation = (masked ^ correct) - sigma
        checks.append(
            _check_result(
                CHECK_EQUIVALENCE, y, violation, inputs,
                {y: correct, design.output_map[y]: masked, ind_net: ind},
                "masked design = original off-SPCF",
            )
        )
    return VerifyMaskReport(
        circuit_name=result.circuit.name, checks=tuple(checks)
    )


def _check_result(
    check: str,
    output: str,
    violation: Function,
    inputs: tuple[str, ...],
    observe: Mapping[str, Function],
    detail: str,
) -> CheckResult:
    if violation.is_false:
        return CheckResult(check, output, True, detail=detail)
    return CheckResult(
        check,
        output,
        False,
        counterexample=Counterexample.from_violation(violation, inputs, observe),
        detail=detail,
    )


def assert_verified(
    result: MaskingResult, design: MaskedDesign | None = None
) -> VerifyMaskReport:
    """Run :func:`verify_mask`; raise :class:`VerificationError` on failure."""
    report = verify_mask(result, design=design)
    if not report.ok:
        first = report.failures[0]
        witness = (
            f" (counterexample {first.counterexample.render()})"
            if first.counterexample is not None
            else ""
        )
        raise VerificationError(
            f"masking circuit for {result.circuit.name!r} fails the "
            f"{first.check} check on output {first.output!r}{witness}"
        )
    return report

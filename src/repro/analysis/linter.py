"""The rule-driven netlist linter.

:func:`lint_circuit` runs every registered rule (minus config exclusions)
over one circuit and returns a :class:`~repro.analysis.diagnostics.LintReport`.
Unlike :meth:`Circuit.validate`, the linter never raises on a broken netlist —
it *reports*: a circuit with a combinational loop and three dangling nets
yields four diagnostics, not one exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LintError
from repro.netlist.circuit import Circuit
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.rules import (
    RULE_REGISTRY,
    LintContext,
    LintRule,
    resolve_rule_ids,
)


@dataclass(frozen=True)
class LintConfig:
    """Tunables for one lint run.

    ``select``/``ignore`` take rule ids (``"LINT005"``) or rule names
    (``"fanout-threshold"``); ``select=None`` means all registered rules.
    ``max_function_inputs`` bounds the BDD constant-function check of
    ``LINT007`` — cones with more primary inputs are skipped.
    """

    fanout_threshold: int = 64
    max_function_inputs: int = 24
    select: frozenset[str] | None = None
    ignore: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.fanout_threshold < 1:
            raise LintError(
                f"fanout threshold must be >= 1, got {self.fanout_threshold}"
            )
        if self.max_function_inputs < 0:
            raise LintError(
                f"max function inputs must be >= 0, got {self.max_function_inputs}"
            )

    def active_rules(self) -> tuple[LintRule, ...]:
        """The rules this config enables, in rule-id order."""
        selected = (
            resolve_rule_ids(self.select)
            if self.select is not None
            else frozenset(RULE_REGISTRY)
        )
        ignored = resolve_rule_ids(self.ignore)
        return tuple(
            RULE_REGISTRY[rid]
            for rid in sorted(selected - ignored)
        )


class CircuitLinter:
    """Run the registered rules over circuits with one shared config."""

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config or LintConfig()

    def lint(self, circuit: Circuit) -> LintReport:
        """Run every active rule; diagnostics come out in rule-id order."""
        ctx = LintContext(circuit)
        diagnostics: list[Diagnostic] = []
        for rule in self.config.active_rules():
            for location, message, hint in rule.check(circuit, ctx, self.config):
                diagnostics.append(
                    Diagnostic(
                        rule_id=rule.rule_id,
                        rule_name=rule.name,
                        severity=rule.severity,
                        circuit=circuit.name,
                        location=location,
                        message=message,
                        hint=hint,
                    )
                )
        return LintReport(
            circuit_name=circuit.name,
            num_gates=circuit.num_gates,
            num_inputs=len(circuit.inputs),
            num_outputs=len(circuit.outputs),
            diagnostics=tuple(diagnostics),
        )


def lint_circuit(circuit: Circuit, config: LintConfig | None = None) -> LintReport:
    """One-call API: lint ``circuit`` with the given (or default) config."""
    return CircuitLinter(config).lint(circuit)


__all__ = [
    "CircuitLinter",
    "LintConfig",
    "LintReport",
    "Severity",
    "lint_circuit",
]

"""Speed-path enumeration.

A *speed-path* for threshold ``Delta_y`` is a primary-input-to-output path
whose structural delay exceeds ``Delta_y``.  Enumeration is a backward DFS
from each critical output, pruned with the latest-arrival upper bound (a
prefix cannot help if even the longest completion misses the threshold), and
capped to keep pathological circuits tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TimingError
from repro.netlist.circuit import Circuit
from repro.sta.timing import TimingReport, analyze


@dataclass(frozen=True)
class SpeedPath:
    """One structural path with delay above the threshold.

    ``nets`` runs input-first: ``nets[0]`` is a primary input and ``nets[-1]``
    a primary output net.
    """

    nets: tuple[str, ...]
    delay: int

    @property
    def start(self) -> str:
        return self.nets[0]

    @property
    def end(self) -> str:
        return self.nets[-1]

    def __len__(self) -> int:
        return len(self.nets)


def enumerate_speed_paths(
    circuit: Circuit,
    report: TimingReport | None = None,
    threshold: float = 0.9,
    limit: int = 100_000,
) -> list[SpeedPath]:
    """All structural paths with delay strictly above the target.

    Raises :class:`TimingError` when more than ``limit`` paths exist, in
    which case callers should fall back to the characteristic-function view
    (the SPCF never enumerates paths).
    """
    if report is None:
        report = analyze(circuit, threshold=threshold)
    target = report.target
    paths: list[SpeedPath] = []
    for out in report.critical_outputs(circuit):
        for path in _walk_back(circuit, report, out, (), 0, target):
            paths.append(path)
            if len(paths) > limit:
                raise TimingError(
                    f"more than {limit} speed-paths; use the SPCF instead"
                )
    paths.sort(key=lambda p: (-p.delay, p.nets))
    return paths


def _walk_back(
    circuit: Circuit,
    report: TimingReport,
    net: str,
    suffix: tuple[str, ...],
    suffix_delay: int,
    target: int,
) -> Iterator[SpeedPath]:
    suffix = (net, *suffix)
    if circuit.is_input(net):
        if suffix_delay > target:
            yield SpeedPath(suffix, suffix_delay)
        return
    gate = circuit.gates[net]
    for fanin, delay in zip(gate.fanins, gate.pin_delays()):
        total = suffix_delay + delay
        # Longest possible completion through this fanin.
        if report.arrival[fanin] + total <= target:
            continue
        yield from _walk_back(circuit, report, fanin, suffix, total, target)


def count_speed_paths(
    circuit: Circuit,
    report: TimingReport | None = None,
    threshold: float = 0.9,
) -> int:
    """Number of speed-paths, without materializing them (DP over the DAG).

    Counts paths whose delay exceeds the target by dynamic programming over
    (net, residual-delay) states.
    """
    if report is None:
        report = analyze(circuit, threshold=threshold)
    target = report.target
    memo: dict[tuple[str, int], int] = {}

    def count_from(net: str, residual: int) -> int:
        """Paths from any PI to ``net`` with prefix delay > residual."""
        if report.arrival[net] <= residual:
            return 0
        if circuit.is_input(net):
            return 1 if residual < 0 else 0
        key = (net, residual)
        if key in memo:
            return memo[key]
        gate = circuit.gates[net]
        total = sum(
            count_from(f, residual - d)
            for f, d in zip(gate.fanins, gate.pin_delays())
        )
        memo[key] = total
        return total

    return sum(count_from(out, target) for out in report.critical_outputs(circuit))

"""Static timing analysis and speed-path enumeration."""

from repro.sta.paths import SpeedPath, count_speed_paths, enumerate_speed_paths
from repro.sta.timing import INFINITE_TIME, TimingReport, analyze, threshold_target

__all__ = [
    "TimingReport",
    "analyze",
    "threshold_target",
    "INFINITE_TIME",
    "SpeedPath",
    "enumerate_speed_paths",
    "count_speed_paths",
]

"""Static timing analysis.

Computes, for every net of a :class:`~repro.netlist.circuit.Circuit`:

* ``arrival`` — the classic latest arrival time (topological max-plus),
* ``min_stable`` — a lower bound on the floating-mode stabilization time,
  computed through the prime implicants of each cell (a gate output cannot
  stabilize before *some* prime has all its literals stable),
* ``required`` / ``slack`` with respect to a target arrival time
  ``Delta_y`` (the paper's speed-path threshold, default ``0.9 * Delta``).

Gates with negative slack are the *statically critical* gates used by the
node-based SPCF algorithm; outputs with ``arrival > Delta_y`` are the paper's
*critical primary outputs*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import TimingError
from repro.netlist.circuit import Circuit

#: Effectively-infinite required time for nets feeding no primary output.
INFINITE_TIME = 1 << 50


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`analyze`."""

    circuit_name: str
    arrival: Mapping[str, int]
    min_stable: Mapping[str, int]
    required: Mapping[str, int]
    critical_delay: int
    target: int

    def slack(self, net: str) -> int:
        """Required minus (latest) arrival for ``net``."""
        try:
            return self.required[net] - self.arrival[net]
        except KeyError:
            raise TimingError(f"unknown net {net!r}") from None

    def critical_gates(self, circuit: Circuit) -> set[str]:
        """Gates (not PIs) with negative slack w.r.t. the target."""
        return {
            name for name in circuit.gates if self.slack(name) < 0
        }

    def critical_nets(self) -> set[str]:
        """All nets (including PIs) with negative slack."""
        return {
            net
            for net in self.arrival
            if self.required[net] - self.arrival[net] < 0
        }

    def critical_outputs(self, circuit: Circuit) -> tuple[str, ...]:
        """Primary outputs where at least one speed-path terminates."""
        return tuple(
            net for net in circuit.outputs if self.arrival[net] > self.target
        )


def threshold_target(critical_delay: int, fraction: float) -> int:
    """The integer target arrival time ``Delta_y = floor(fraction * Delta)``.

    A pattern is a speed-path activation pattern iff its stabilization time
    strictly exceeds the target, so flooring keeps all paths within the
    ``(1 - fraction)`` band classified as speed-paths.
    """
    if not 0.0 < fraction <= 1.0:
        raise TimingError(f"threshold fraction {fraction} outside (0, 1]")
    return int(math.floor(fraction * critical_delay))


def analyze(
    circuit: Circuit | CompiledCircuit,
    target: int | None = None,
    threshold: float = 0.9,
) -> TimingReport:
    """Run STA on ``circuit`` (plain or pre-compiled).

    ``target`` overrides the required time at the primary outputs; when
    ``None`` it is derived as ``threshold_target(Delta, threshold)``.

    The forward passes (arrival, prime-based ``min_stable``) are cached on
    the :class:`~repro.engine.CompiledCircuit`, so repeated analyses of an
    unmodified circuit only redo the cheap backward required-time sweep.
    """
    compiled = compile_circuit(circuit)
    arrival_arr = compiled.arrival()
    min_stable_arr = compiled.min_stable()

    critical_delay = compiled.critical_delay()
    if target is None:
        target = threshold_target(critical_delay, threshold)

    required_arr = [INFINITE_TIME] * compiled.n_nets
    for idx in compiled.output_index:
        if target < required_arr[idx]:
            required_arr[idx] = target
    n_inputs = compiled.n_inputs
    for pos in range(compiled.n_gates - 1, -1, -1):
        req = required_arr[n_inputs + pos]
        fanins = compiled.gate_fanins[pos]
        delays = compiled.gate_delays[pos]
        for fanin, delay in zip(fanins, delays):
            candidate = req - delay
            if candidate < required_arr[fanin]:
                required_arr[fanin] = candidate

    names = compiled.net_names
    return TimingReport(
        circuit_name=compiled.name,
        arrival=dict(zip(names, arrival_arr)),
        min_stable=dict(zip(names, min_stable_arr)),
        required=dict(zip(names, required_arr)),
        critical_delay=critical_delay,
        target=target,
    )

"""Static timing analysis.

Computes, for every net of a :class:`~repro.netlist.circuit.Circuit`:

* ``arrival`` — the classic latest arrival time (topological max-plus),
* ``min_stable`` — a lower bound on the floating-mode stabilization time,
  computed through the prime implicants of each cell (a gate output cannot
  stabilize before *some* prime has all its literals stable),
* ``required`` / ``slack`` with respect to a target arrival time
  ``Delta_y`` (the paper's speed-path threshold, default ``0.9 * Delta``).

Gates with negative slack are the *statically critical* gates used by the
node-based SPCF algorithm; outputs with ``arrival > Delta_y`` are the paper's
*critical primary outputs*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.errors import TimingError
from repro.netlist.circuit import Circuit

#: Effectively-infinite required time for nets feeding no primary output.
INFINITE_TIME = 1 << 50


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`analyze`."""

    circuit_name: str
    arrival: Mapping[str, int]
    min_stable: Mapping[str, int]
    required: Mapping[str, int]
    critical_delay: int
    target: int

    def slack(self, net: str) -> int:
        """Required minus (latest) arrival for ``net``."""
        try:
            return self.required[net] - self.arrival[net]
        except KeyError:
            raise TimingError(f"unknown net {net!r}") from None

    def critical_gates(self, circuit: Circuit) -> set[str]:
        """Gates (not PIs) with negative slack w.r.t. the target."""
        return {
            name for name in circuit.gates if self.slack(name) < 0
        }

    def critical_nets(self) -> set[str]:
        """All nets (including PIs) with negative slack."""
        return {
            net
            for net in self.arrival
            if self.required[net] - self.arrival[net] < 0
        }

    def critical_outputs(self, circuit: Circuit) -> tuple[str, ...]:
        """Primary outputs where at least one speed-path terminates."""
        return tuple(
            net for net in circuit.outputs if self.arrival[net] > self.target
        )


def threshold_target(critical_delay: int, fraction: float) -> int:
    """The integer target arrival time ``Delta_y = floor(fraction * Delta)``.

    A pattern is a speed-path activation pattern iff its stabilization time
    strictly exceeds the target, so flooring keeps all paths within the
    ``(1 - fraction)`` band classified as speed-paths.
    """
    if not 0.0 < fraction <= 1.0:
        raise TimingError(f"threshold fraction {fraction} outside (0, 1]")
    return int(math.floor(fraction * critical_delay))


def analyze(
    circuit: Circuit,
    target: int | None = None,
    threshold: float = 0.9,
) -> TimingReport:
    """Run STA on ``circuit``.

    ``target`` overrides the required time at the primary outputs; when
    ``None`` it is derived as ``threshold_target(Delta, threshold)``.
    """
    order = circuit.topo_order()
    arrival: dict[str, int] = {net: 0 for net in circuit.inputs}
    min_stable: dict[str, int] = {net: 0 for net in circuit.inputs}

    for name in order:
        gate = circuit.gates[name]
        delays = gate.pin_delays()
        if not gate.fanins:
            arrival[name] = 0
            min_stable[name] = 0
            continue
        arrival[name] = max(
            arrival[f] + d for f, d in zip(gate.fanins, delays)
        )
        on_primes, off_primes = gate.cell.primes()
        pin_index = {pin: i for i, pin in enumerate(gate.cell.inputs)}
        best = None
        for prime in (*on_primes, *off_primes):
            worst = 0
            for pin_name, _pol in prime.to_dict(gate.cell.inputs).items():
                i = pin_index[pin_name]
                worst = max(worst, min_stable[gate.fanins[i]] + delays[i])
            if best is None or worst < best:
                best = worst
        min_stable[name] = best if best is not None else 0

    outputs = [net for net in circuit.outputs]
    critical_delay = max((arrival[net] for net in outputs), default=0)
    if target is None:
        target = threshold_target(critical_delay, threshold)

    required: dict[str, int] = {net: INFINITE_TIME for net in arrival}
    for net in outputs:
        required[net] = min(required[net], target)
    for name in reversed(order):
        gate = circuit.gates[name]
        req = required[name]
        for fanin, delay in zip(gate.fanins, gate.pin_delays()):
            candidate = req - delay
            if candidate < required[fanin]:
                required[fanin] = candidate

    return TimingReport(
        circuit_name=circuit.name,
        arrival=arrival,
        min_stable=min_stable,
        required=required,
        critical_delay=critical_delay,
        target=target,
    )
